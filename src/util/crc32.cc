#include "util/crc32.h"

#include <array>

namespace asppi::util {

namespace {

std::array<std::uint32_t, 256> BuildTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& Table() {
  static const std::array<std::uint32_t, 256> table = BuildTable();
  return table;
}

}  // namespace

std::uint32_t Crc32Extend(std::uint32_t seed, const void* data,
                          std::size_t size) {
  const auto& table = Table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t Crc32(const void* data, std::size_t size) {
  return Crc32Extend(0, data, size);
}

}  // namespace asppi::util
