// Deterministic, seedable random number generation.
//
// Every experiment in this repository derives all randomness from an explicit
// 64-bit seed so that figures are reproducible bit-for-bit across runs and
// machines. We implement xoshiro256** (public-domain algorithm by Blackman &
// Vigna) seeded through SplitMix64, rather than depending on the unspecified
// std::default_random_engine.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "util/check.h"

namespace asppi::util {

// SplitMix64: used to expand a single seed into the xoshiro state, and as a
// cheap standalone mixer for deriving sub-seeds.
inline std::uint64_t SplitMix64Next(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Derive an independent sub-seed from (seed, stream) — used to give each
// experiment instance (or fuzzer shard/iteration) its own deterministic
// stream.
//
// The mix runs TWO full SplitMix64 rounds with `stream` injected between
// them. An earlier version folded the inputs linearly — seed ^ (k * stream) —
// before a single round, so pairs with equal seed⊕k·stream collided exactly:
// (seed, stream) and (seed ^ k·Δ·…, stream′) families produced identical
// sub-seeds, which under sharded fuzzing meant different (seed, iteration)
// pairs could silently explore the same scenario. Mixing each input through
// its own nonlinear round removes that collision family; the output depends
// on (seed, stream) only, never on which thread asks.
inline std::uint64_t DeriveSeed(std::uint64_t seed, std::uint64_t stream) {
  std::uint64_t s = seed;
  const std::uint64_t mixed_seed = SplitMix64Next(s);
  s = mixed_seed ^ (stream + 0x9e3779b97f4a7c15ULL);
  return SplitMix64Next(s);
}

// xoshiro256**: fast, high-quality, 256-bit state generator.
// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) { Reseed(seed); }

  void Reseed(std::uint64_t seed) {
    seed_ = seed;
    std::uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64Next(sm);
  }

  // Forks an independent generator for sub-stream `stream`: deterministic in
  // (this generator's seed, stream), regardless of how many values have been
  // drawn from either generator or which thread calls. This is the supported
  // way to give parallel shards independent randomness that reproduces
  // bit-identically at any thread count.
  Rng Split(std::uint64_t stream) const {
    return Rng(DeriveSeed(seed_, stream));
  }

  // The seed this generator was (re)seeded with.
  std::uint64_t Seed() const { return seed_; }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  result_type operator()() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection
  // method to avoid modulo bias.
  std::uint64_t Below(std::uint64_t bound) {
    ASPPI_CHECK_GT(bound, 0u);
    while (true) {
      const std::uint64_t x = (*this)();
      const unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
      const std::uint64_t low = static_cast<std::uint64_t>(m);
      if (low >= bound || low >= (0 - bound) % bound) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t Range(std::int64_t lo, std::int64_t hi) {
    ASPPI_CHECK_LE(lo, hi);
    return lo + static_cast<std::int64_t>(
                    Below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  // Uniform double in [0, 1).
  double Uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  // Bernoulli trial.
  bool Chance(double p) { return Uniform() < p; }

  // Geometric: number of trials until first success (>= 1), success prob p.
  int Geometric(double p) {
    ASPPI_CHECK_GT(p, 0.0);
    int n = 1;
    while (!Chance(p) && n < 1000) ++n;
    return n;
  }

  // Zipf-like pick: index in [0, n) with probability proportional to
  // 1/(i+1)^alpha. O(n) sampling via precomputed caller-side weights is
  // preferred for hot loops; this helper is for setup code.
  std::size_t Zipf(std::size_t n, double alpha);

  // Sample k distinct indices from [0, n) (Floyd's algorithm, deterministic
  // order by value).
  std::vector<std::size_t> SampleWithoutReplacement(std::size_t n, std::size_t k);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = Below(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // Pick a uniformly random element (container must be non-empty).
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    ASPPI_CHECK(!v.empty());
    return v[Below(v.size())];
  }
  template <typename T>
  const T& Pick(std::span<const T> v) {
    ASPPI_CHECK(!v.empty());
    return v[Below(v.size())];
  }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  std::uint64_t seed_ = 0;
};

}  // namespace asppi::util
