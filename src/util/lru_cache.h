// ShardedLruCache: a thread-safe string→string LRU, the result cache behind
// the serve subsystem (serve/service.h).
//
// Keys are hashed onto N independent shards; each shard is a classic
// mutex-protected intrusive LRU (doubly-linked recency list + hash index), so
// contention is bounded by the shard count rather than by one global lock.
// Values are handed out as shared_ptr<const string>: a Get() racing an
// eviction keeps its value alive without copying the payload under the lock.
//
// Capacity is an entry budget split evenly across shards (each shard gets
// ceil(capacity / shards), so a capacity of 0 disables storage entirely).
// Hit/miss/eviction totals are plain atomics — deterministic for a serial
// workload, monotone under concurrency — surfaced by Stats() and re-exported
// by the server as serve.cache.* metrics.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace asppi::util {

class ShardedLruCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t entries = 0;
  };

  // `capacity` = total entry budget across all shards; `num_shards` >= 1
  // (values are clamped). capacity == 0 makes every Get a miss and Put a
  // no-op, which is how the serve layer implements --cache=0 ablations.
  explicit ShardedLruCache(std::size_t capacity, std::size_t num_shards = 8);

  ShardedLruCache(const ShardedLruCache&) = delete;
  ShardedLruCache& operator=(const ShardedLruCache&) = delete;

  // Value for `key` (refreshing its recency), or nullptr on miss.
  std::shared_ptr<const std::string> Get(const std::string& key);

  // Inserts or overwrites `key`, evicting the least-recently-used entries of
  // its shard beyond the shard budget. Returns the number of entries evicted
  // (so callers can export eviction deltas without a full-stats scan).
  std::size_t Put(const std::string& key, std::string value);

  std::size_t Capacity() const { return capacity_; }
  std::size_t NumShards() const { return shards_.size(); }

  Stats GetStats() const;

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const std::string> value;
  };
  struct Shard {
    std::mutex mu;
    // Front = most recently used.
    std::list<Entry> lru;
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
  };

  Shard& ShardOf(const std::string& key);

  std::size_t capacity_ = 0;
  std::size_t per_shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace asppi::util
