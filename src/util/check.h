// Lightweight runtime-check and logging macros used across the library.
//
// ASPPI_CHECK is always on (release included): the simulators' invariants are
// cheap relative to the work they guard, and a silently-corrupt routing state
// would invalidate every downstream experiment.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace asppi::util {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr,
                                     const std::string& message) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               message.empty() ? "" : " — ", message.c_str());
  std::abort();
}

// Stream-collector so call sites can write:
//   ASPPI_CHECK(x > 0) << "x=" << x;
class CheckMessageSink {
 public:
  CheckMessageSink(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}
  [[noreturn]] ~CheckMessageSink() { CheckFailed(file_, line_, expr_, stream_.str()); }
  template <typename T>
  CheckMessageSink& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace asppi::util

#define ASPPI_CHECK(expr)                                              \
  if (expr) {                                                          \
  } else                                                               \
    ::asppi::util::CheckMessageSink(__FILE__, __LINE__, #expr)

#define ASPPI_CHECK_EQ(a, b) ASPPI_CHECK((a) == (b)) << "lhs=" << (a) << " rhs=" << (b) << " "
#define ASPPI_CHECK_NE(a, b) ASPPI_CHECK((a) != (b)) << "lhs=" << (a) << " rhs=" << (b) << " "
#define ASPPI_CHECK_LT(a, b) ASPPI_CHECK((a) < (b)) << "lhs=" << (a) << " rhs=" << (b) << " "
#define ASPPI_CHECK_LE(a, b) ASPPI_CHECK((a) <= (b)) << "lhs=" << (a) << " rhs=" << (b) << " "
#define ASPPI_CHECK_GT(a, b) ASPPI_CHECK((a) > (b)) << "lhs=" << (a) << " rhs=" << (b) << " "
#define ASPPI_CHECK_GE(a, b) ASPPI_CHECK((a) >= (b)) << "lhs=" << (a) << " rhs=" << (b) << " "
