#include "util/lru_cache.h"

#include <algorithm>
#include <functional>

namespace asppi::util {

ShardedLruCache::ShardedLruCache(std::size_t capacity, std::size_t num_shards)
    : capacity_(capacity) {
  num_shards = std::max<std::size_t>(1, num_shards);
  per_shard_capacity_ = capacity == 0 ? 0 : (capacity + num_shards - 1) / num_shards;
  shards_.reserve(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ShardedLruCache::Shard& ShardedLruCache::ShardOf(const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

std::shared_ptr<const std::string> ShardedLruCache::Get(
    const std::string& key) {
  Shard& shard = ShardOf(key);
  std::shared_ptr<const std::string> value;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      value = it->second->value;
    }
  }
  if (value) {
    hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
  }
  return value;
}

std::size_t ShardedLruCache::Put(const std::string& key, std::string value) {
  if (per_shard_capacity_ == 0) return 0;
  Shard& shard = ShardOf(key);
  std::uint64_t evicted = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      it->second->value =
          std::make_shared<const std::string>(std::move(value));
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    } else {
      shard.lru.push_front(Entry{
          key, std::make_shared<const std::string>(std::move(value))});
      shard.index.emplace(key, shard.lru.begin());
      while (shard.lru.size() > per_shard_capacity_) {
        shard.index.erase(shard.lru.back().key);
        shard.lru.pop_back();
        ++evicted;
      }
    }
  }
  if (evicted != 0) evictions_.fetch_add(evicted, std::memory_order_relaxed);
  return static_cast<std::size_t>(evicted);
}

ShardedLruCache::Stats ShardedLruCache::GetStats() const {
  Stats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    stats.entries += shard->lru.size();
  }
  return stats;
}

}  // namespace asppi::util
