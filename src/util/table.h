// Tabular output used by the benchmark harness to print figure/table series
// both human-readably (aligned columns) and machine-readably (CSV).
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "util/json.h"

namespace asppi::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  // Begin a new row; subsequent Cell() calls fill it left to right.
  Table& Row();
  Table& Cell(const std::string& value);
  Table& Cell(double value, int precision = 2);
  Table& Cell(std::int64_t value);
  Table& Cell(std::uint64_t value);
  Table& Cell(int value);

  std::size_t NumRows() const { return rows_.size(); }
  const std::vector<std::string>& RowAt(std::size_t i) const { return rows_.at(i); }
  const std::vector<std::string>& Header() const { return header_; }

  // Aligned, pipe-separated pretty print.
  void PrintPretty(std::ostream& os) const;
  // RFC-4180 CSV: cells containing commas, quotes, or newlines are quoted
  // with embedded quotes doubled (detector `detail` columns need this).
  void PrintCsv(std::ostream& os) const;
  // JSON array of one object per row, keyed by the header. Cells that parse
  // as numbers are emitted as JSON numbers, everything else as strings.
  void PrintJson(std::ostream& os) const;
  // The same JSON array as a document (the run report embeds it as `rows`).
  Json ToJson() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace asppi::util
