#include "util/flags.h"

#include <cstdio>

#include "util/check.h"
#include "util/strings.h"

namespace asppi::util {

void Flags::Define(const std::string& name, Type type,
                   std::string default_text, const std::string& help) {
  ASPPI_CHECK(!defs_.contains(name)) << "duplicate flag --" << name;
  Def def;
  def.type = type;
  def.default_text = default_text;
  def.value_text = std::move(default_text);
  def.help = help;
  defs_.emplace(name, std::move(def));
}

void Flags::DefineInt(const std::string& name, std::int64_t v, const std::string& help) {
  Define(name, Type::kInt, Format("%lld", static_cast<long long>(v)), help);
}
void Flags::DefineUint(const std::string& name, std::uint64_t v, const std::string& help) {
  Define(name, Type::kUint, Format("%llu", static_cast<unsigned long long>(v)), help);
}
void Flags::DefineDouble(const std::string& name, double v, const std::string& help) {
  Define(name, Type::kDouble, Format("%g", v), help);
}
void Flags::DefineBool(const std::string& name, bool v, const std::string& help) {
  Define(name, Type::kBool, v ? "true" : "false", help);
}
void Flags::DefineString(const std::string& name, const std::string& v, const std::string& help) {
  Define(name, Type::kString, v, help);
}

bool Flags::SetValue(const std::string& name, const std::string& value) {
  auto it = defs_.find(name);
  if (it == defs_.end()) {
    std::fprintf(stderr, "unknown flag --%s\n", name.c_str());
    return false;
  }
  // Validate eagerly so sweeps fail fast on typos.
  switch (it->second.type) {
    case Type::kInt:
      if (!ParseInt(value)) {
        std::fprintf(stderr, "flag --%s: bad int '%s'\n", name.c_str(), value.c_str());
        return false;
      }
      break;
    case Type::kUint:
      if (!ParseUint(value)) {
        std::fprintf(stderr, "flag --%s: bad uint '%s'\n", name.c_str(), value.c_str());
        return false;
      }
      break;
    case Type::kDouble:
      if (!ParseDouble(value)) {
        std::fprintf(stderr, "flag --%s: bad double '%s'\n", name.c_str(), value.c_str());
        return false;
      }
      break;
    case Type::kBool:
      if (value != "true" && value != "false") {
        std::fprintf(stderr, "flag --%s: bad bool '%s'\n", name.c_str(), value.c_str());
        return false;
      }
      break;
    case Type::kString:
      break;
  }
  it->second.value_text = value;
  it->second.set = true;
  return true;
}

bool Flags::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage(argv[0]);
      return false;
    }
    if (!StartsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      if (!SetValue(body.substr(0, eq), body.substr(eq + 1))) return false;
      continue;
    }
    auto it = defs_.find(body);
    if (it != defs_.end() && it->second.type == Type::kBool) {
      it->second.value_text = "true";
      it->second.set = true;
      continue;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "flag --%s: missing value\n", body.c_str());
      return false;
    }
    if (!SetValue(body, argv[++i])) return false;
  }
  return true;
}

const Flags::Def& Flags::Lookup(const std::string& name, Type type) const {
  auto it = defs_.find(name);
  ASPPI_CHECK(it != defs_.end()) << "undefined flag --" << name;
  ASPPI_CHECK(it->second.type == type) << "flag --" << name << " type mismatch";
  return it->second;
}

std::int64_t Flags::GetInt(const std::string& name) const {
  return *ParseInt(Lookup(name, Type::kInt).value_text);
}
std::uint64_t Flags::GetUint(const std::string& name) const {
  return *ParseUint(Lookup(name, Type::kUint).value_text);
}
double Flags::GetDouble(const std::string& name) const {
  return *ParseDouble(Lookup(name, Type::kDouble).value_text);
}
bool Flags::GetBool(const std::string& name) const {
  return Lookup(name, Type::kBool).value_text == "true";
}
const std::string& Flags::GetString(const std::string& name) const {
  return Lookup(name, Type::kString).value_text;
}

bool Flags::WasSet(const std::string& name) const {
  auto it = defs_.find(name);
  ASPPI_CHECK(it != defs_.end()) << "undefined flag --" << name;
  return it->second.set;
}

const std::string& Flags::GetText(const std::string& name) const {
  auto it = defs_.find(name);
  ASPPI_CHECK(it != defs_.end()) << "undefined flag --" << name;
  return it->second.value_text;
}

std::vector<std::pair<std::string, std::string>> Flags::Values() const {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(defs_.size());
  for (const auto& [name, def] : defs_) out.emplace_back(name, def.value_text);
  return out;
}

void Flags::PrintUsage(const std::string& program) const {
  std::fprintf(stderr, "usage: %s [flags]\n", program.c_str());
  for (const auto& [name, def] : defs_) {
    std::fprintf(stderr, "  --%-24s %s (default: %s)\n", name.c_str(),
                 def.help.c_str(), def.default_text.c_str());
  }
}

}  // namespace asppi::util
