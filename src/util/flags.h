// Minimal command-line flag parsing for the benchmark and example binaries.
//
// Supports --name=value and --name value forms, plus bare --name for booleans.
// Unknown flags are an error (catches typos in experiment sweeps).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace asppi::util {

class Flags {
 public:
  // Registration: call before Parse(). `help` is shown by --help.
  void DefineInt(const std::string& name, std::int64_t default_value, const std::string& help);
  void DefineUint(const std::string& name, std::uint64_t default_value, const std::string& help);
  void DefineDouble(const std::string& name, double default_value, const std::string& help);
  void DefineBool(const std::string& name, bool default_value, const std::string& help);
  void DefineString(const std::string& name, const std::string& default_value, const std::string& help);

  // Parses argv; returns false (after printing usage) on --help or a parse
  // error. Positional arguments are collected into Positional().
  bool Parse(int argc, char** argv);

  std::int64_t GetInt(const std::string& name) const;
  std::uint64_t GetUint(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;
  const std::string& GetString(const std::string& name) const;

  const std::vector<std::string>& Positional() const { return positional_; }

  // Raw current value text of any defined flag, regardless of its type —
  // for accessors that re-validate beyond the type's own parse (e.g. the
  // checked ASN range in bench::Experiment::AsnFlag).
  const std::string& GetText(const std::string& name) const;

  // True once DefineX() ran for `name` (the Experiment API uses this to
  // avoid double-defining shared flags; defining twice is a hard error).
  bool IsDefined(const std::string& name) const { return defs_.contains(name); }

  // True when `name` was explicitly set on the command line (even to its
  // default value). Lets preset flags yield to explicit overrides.
  bool WasSet(const std::string& name) const;

  // Every flag's (name, current value) in name order — the run-report meta
  // records these so a report identifies its exact configuration.
  std::vector<std::pair<std::string, std::string>> Values() const;

  void PrintUsage(const std::string& program) const;

 private:
  enum class Type { kInt, kUint, kDouble, kBool, kString };
  struct Def {
    Type type;
    std::string default_text;
    std::string value_text;
    std::string help;
    bool set = false;  // explicitly given on the command line
  };

  void Define(const std::string& name, Type type, std::string default_text, const std::string& help);
  const Def& Lookup(const std::string& name, Type type) const;
  bool SetValue(const std::string& name, const std::string& value);

  std::map<std::string, Def> defs_;
  std::vector<std::string> positional_;
};

}  // namespace asppi::util
