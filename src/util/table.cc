#include "util/table.h"

#include <algorithm>
#include <iomanip>

#include "util/check.h"
#include "util/strings.h"

namespace asppi::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  ASPPI_CHECK(!header_.empty());
}

Table& Table::Row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::Cell(const std::string& value) {
  ASPPI_CHECK(!rows_.empty()) << "Cell() before Row()";
  ASPPI_CHECK_LT(rows_.back().size(), header_.size());
  rows_.back().push_back(value);
  return *this;
}

Table& Table::Cell(double value, int precision) {
  return Cell(Format("%.*f", precision, value));
}

Table& Table::Cell(std::int64_t value) { return Cell(Format("%lld", static_cast<long long>(value))); }
Table& Table::Cell(std::uint64_t value) { return Cell(Format("%llu", static_cast<unsigned long long>(value))); }
Table& Table::Cell(int value) { return Cell(static_cast<std::int64_t>(value)); }

void Table::PrintPretty(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& v = c < row.size() ? row[c] : std::string();
      os << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(widths[c]))
         << v;
    }
    os << " |\n";
  };
  print_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) print_row(row);
}

namespace {

// RFC-4180 field quoting: only when the cell needs it.
std::string CsvCell(const std::string& value) {
  if (value.find_first_of(",\"\n\r") == std::string::npos) return value;
  std::string out = "\"";
  for (char c : value) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void PrintCsvRow(std::ostream& os, const std::vector<std::string>& row) {
  for (std::size_t c = 0; c < row.size(); ++c) {
    if (c != 0) os << ',';
    os << CsvCell(row[c]);
  }
  os << "\n";
}

}  // namespace

void Table::PrintCsv(std::ostream& os) const {
  PrintCsvRow(os, header_);
  for (const auto& row : rows_) PrintCsvRow(os, row);
}

void Table::PrintJson(std::ostream& os) const {
  ToJson().Write(os);
  os << "\n";
}

Json Table::ToJson() const {
  Json array = Json::Array();
  for (const auto& row : rows_) {
    Json object = Json::Object();
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& v = c < row.size() ? row[c] : std::string();
      if (auto number = ParseDouble(v)) {
        object[header_[c]] = Json(*number);
      } else {
        object[header_[c]] = Json(v);
      }
    }
    array.Push(std::move(object));
  }
  return array;
}

}  // namespace asppi::util
