#include "util/strings.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace asppi::util {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  std::size_t begin = 0;
  while (begin < s.size() && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  std::size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

namespace {

// Common preamble for the strict numeric parsers: trims, rejects empties.
std::optional<std::string> Prepare(std::string_view s) {
  std::string_view t = Trim(s);
  if (t.empty()) return std::nullopt;
  return std::string(t);
}

}  // namespace

std::optional<std::int64_t> ParseInt(std::string_view s) {
  auto t = Prepare(s);
  if (!t) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(t->c_str(), &end, 10);
  if (errno != 0 || end != t->c_str() + t->size()) return std::nullopt;
  return static_cast<std::int64_t>(v);
}

std::optional<std::uint64_t> ParseUint(std::string_view s) {
  auto t = Prepare(s);
  if (!t) return std::nullopt;
  if ((*t)[0] == '-') return std::nullopt;
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(t->c_str(), &end, 10);
  if (errno != 0 || end != t->c_str() + t->size()) return std::nullopt;
  return static_cast<std::uint64_t>(v);
}

std::optional<std::uint32_t> ParseAsn(std::string_view s) {
  // Stricter than ParseUint: an AS number from a CLI flag or the wire is a
  // bare run of decimal digits — no surrounding whitespace, no sign, no
  // leading-zero-padded 11+ digit spellings of small values.
  if (s.empty() || s.size() > 10) return std::nullopt;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  if (v > 0xFFFFFFFFull) return std::nullopt;
  return static_cast<std::uint32_t>(v);
}

std::optional<double> ParseDouble(std::string_view s) {
  auto t = Prepare(s);
  if (!t) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(t->c_str(), &end);
  if (errno != 0 || end != t->c_str() + t->size()) return std::nullopt;
  return v;
}

std::string Format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

}  // namespace asppi::util
