#include "util/rng.h"

#include <cmath>
#include <set>

namespace asppi::util {

std::size_t Rng::Zipf(std::size_t n, double alpha) {
  ASPPI_CHECK_GT(n, 0u);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) total += std::pow(i + 1.0, -alpha);
  double target = Uniform() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += std::pow(i + 1.0, -alpha);
    if (acc >= target) return i;
  }
  return n - 1;
}

std::vector<std::size_t> Rng::SampleWithoutReplacement(std::size_t n,
                                                       std::size_t k) {
  ASPPI_CHECK_LE(k, n);
  // Floyd's algorithm: k iterations, set membership keeps distinctness.
  std::set<std::size_t> chosen;
  for (std::size_t j = n - k; j < n; ++j) {
    std::size_t t = Below(j + 1);
    if (!chosen.insert(t).second) chosen.insert(j);
  }
  return {chosen.begin(), chosen.end()};
}

}  // namespace asppi::util
