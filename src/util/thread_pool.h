// A small fixed-size worker pool with a chunked parallel-for, built for the
// experiment sweeps: every loop body writes only its own output slot (indexed
// by the input position), so results are merged in input order and the output
// is bit-identical regardless of thread count.
//
// Concurrency model: ThreadPool(n) provides a total concurrency of n — the
// pool owns n-1 background workers and the calling thread participates in
// every ParallelFor. ThreadPool(1) therefore spawns no threads at all and
// ParallelFor degenerates to the plain serial loop, which is what makes the
// --threads=1 vs --threads=N determinism guarantee easy to audit.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace asppi::util {

class ThreadPool {
 public:
  // Total concurrency (callers + workers). 0 = hardware concurrency.
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total concurrency a ParallelFor call can use (>= 1).
  std::size_t NumThreads() const { return workers_.size() + 1; }

  // Runs fn(i) for every i in [0, count), distributing contiguous chunks of
  // `chunk` indices over the workers and the calling thread; blocks until
  // every index has run. chunk = 0 picks a chunk size that yields ~4 chunks
  // per thread. The first exception thrown by fn aborts the remaining chunks
  // and is rethrown on the calling thread.
  void ParallelFor(std::size_t count,
                   const std::function<void(std::size_t)>& fn,
                   std::size_t chunk = 0);

  // Fire-and-forget task execution on a background worker — the serve layer's
  // request executor. A ThreadPool(1) has no workers, so the task runs inline
  // on the calling thread (same degenerate-serial contract as ParallelFor).
  // The caller is responsible for its own completion signalling; tasks still
  // queued at destruction are drained by the workers before they join.
  void Submit(std::function<void()> task);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
};

// Convenience for call sites that take an optional pool: runs serially when
// `pool` is null (or has no extra workers), in parallel otherwise.
void ParallelFor(ThreadPool* pool, std::size_t count,
                 const std::function<void(std::size_t)>& fn);

}  // namespace asppi::util
