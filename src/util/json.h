// Minimal JSON document model with a deterministic writer and a strict
// parser — just enough for the run-report emitter (bench --json) and its
// round-trip tests. Objects preserve insertion order, so serialized reports
// are byte-stable across runs with the same inputs.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace asppi::util {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(bool v) : type_(Type::kBool), bool_(v) {}
  Json(double v) : type_(Type::kNumber), number_(v) {}
  Json(std::int64_t v) : type_(Type::kNumber), number_(static_cast<double>(v)) {}
  Json(std::uint64_t v) : type_(Type::kNumber), number_(static_cast<double>(v)) {}
  Json(int v) : type_(Type::kNumber), number_(v) {}
  Json(const char* v) : type_(Type::kString), string_(v) {}
  Json(std::string v) : type_(Type::kString), string_(std::move(v)) {}

  static Json Object() { return Json(Type::kObject); }
  static Json Array() { return Json(Type::kArray); }

  Type GetType() const { return type_; }
  bool IsObject() const { return type_ == Type::kObject; }
  bool IsArray() const { return type_ == Type::kArray; }

  // Object access: returns the member named `key`, inserting a null member
  // (at the end, preserving insertion order) if absent. Aborts on non-objects.
  Json& operator[](const std::string& key);
  // Member lookup without insertion; nullptr when absent or not an object.
  const Json* Find(const std::string& key) const;
  const std::vector<std::pair<std::string, Json>>& Members() const;

  // Array access.
  void Push(Json value);
  const std::vector<Json>& Items() const;

  // Scalar accessors (abort on type mismatch).
  bool AsBool() const;
  double AsDouble() const;
  const std::string& AsString() const;

  // Serialization: 2-space indented when `indent` >= 0, compact when -1.
  void Write(std::ostream& os, int indent = 0) const;
  std::string ToString(int indent = 0) const;

  // Strict parse of a complete JSON text (trailing garbage is an error).
  // On failure the optional is empty and, if `error` is non-null, it receives
  // a line/column-numbered message ("line 3, column 14: expected ':' after
  // object key") pointing at the first offending character.
  static std::optional<Json> Parse(std::string_view text);
  static std::optional<Json> Parse(std::string_view text, std::string* error);

  bool operator==(const Json& other) const;

 private:
  explicit Json(Type type) : type_(type) {}
  void WriteIndented(std::ostream& os, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> items_;                               // kArray
  std::vector<std::pair<std::string, Json>> members_;     // kObject
};

// Escapes `s` per RFC 8259 and writes it double-quoted.
void WriteJsonString(std::ostream& os, std::string_view s);

}  // namespace asppi::util
