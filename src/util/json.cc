#include "util/json.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/check.h"

namespace asppi::util {

Json& Json::operator[](const std::string& key) {
  ASPPI_CHECK(type_ == Type::kObject) << "operator[] on non-object JSON";
  for (auto& [name, value] : members_) {
    if (name == key) return value;
  }
  members_.emplace_back(key, Json());
  return members_.back().second;
}

const Json* Json::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

const std::vector<std::pair<std::string, Json>>& Json::Members() const {
  ASPPI_CHECK(type_ == Type::kObject) << "Members() on non-object JSON";
  return members_;
}

void Json::Push(Json value) {
  ASPPI_CHECK(type_ == Type::kArray) << "Push() on non-array JSON";
  items_.push_back(std::move(value));
}

const std::vector<Json>& Json::Items() const {
  ASPPI_CHECK(type_ == Type::kArray) << "Items() on non-array JSON";
  return items_;
}

bool Json::AsBool() const {
  ASPPI_CHECK(type_ == Type::kBool) << "AsBool() on non-bool JSON";
  return bool_;
}

double Json::AsDouble() const {
  ASPPI_CHECK(type_ == Type::kNumber) << "AsDouble() on non-number JSON";
  return number_;
}

const std::string& Json::AsString() const {
  ASPPI_CHECK(type_ == Type::kString) << "AsString() on non-string JSON";
  return string_;
}

void WriteJsonString(std::ostream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

namespace {

// Integral values print without a fractional part so counters round-trip
// exactly; everything else uses %.17g (shortest lossless for doubles is not
// worth the code — 17 significant digits always round-trips).
void WriteNumber(std::ostream& os, double v) {
  ASPPI_CHECK(std::isfinite(v)) << "JSON cannot represent " << v;
  char buf[40];
  if (v == std::floor(v) && std::fabs(v) < 9.0e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  os << buf;
}

}  // namespace

void Json::Write(std::ostream& os, int indent) const {
  WriteIndented(os, indent, 0);
}

std::string Json::ToString(int indent) const {
  std::ostringstream os;
  Write(os, indent);
  return os.str();
}

void Json::WriteIndented(std::ostream& os, int indent, int depth) const {
  const bool pretty = indent >= 0;
  auto newline = [&](int d) {
    if (!pretty) return;
    os << '\n';
    for (int i = 0; i < d * 2; ++i) os << ' ';
  };
  switch (type_) {
    case Type::kNull:
      os << "null";
      break;
    case Type::kBool:
      os << (bool_ ? "true" : "false");
      break;
    case Type::kNumber:
      WriteNumber(os, number_);
      break;
    case Type::kString:
      WriteJsonString(os, string_);
      break;
    case Type::kArray: {
      os << '[';
      bool first = true;
      for (const Json& item : items_) {
        if (!first) os << ',';
        first = false;
        newline(depth + 1);
        item.WriteIndented(os, indent, depth + 1);
      }
      if (!items_.empty()) newline(depth);
      os << ']';
      break;
    }
    case Type::kObject: {
      os << '{';
      bool first = true;
      for (const auto& [name, value] : members_) {
        if (!first) os << ',';
        first = false;
        newline(depth + 1);
        WriteJsonString(os, name);
        os << (pretty ? ": " : ":");
        value.WriteIndented(os, indent, depth + 1);
      }
      if (!members_.empty()) newline(depth);
      os << '}';
      break;
    }
  }
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Json> Run() {
    auto value = ParseValue();
    if (!value) return std::nullopt;
    SkipSpace();
    if (pos_ != text_.size()) return Fail("trailing garbage after value");
    return value;
  }

  // The first recorded failure, as "line L, column C: message" (1-based,
  // column in bytes). Empty when Run() succeeded.
  const std::string& Error() const { return error_; }

 private:
  // Records the first failure at the current position and returns nullopt so
  // call sites can `return Fail(...)` from any parse production.
  std::nullopt_t Fail(const std::string& message) {
    if (error_.empty()) {
      std::size_t line = 1, column = 1;
      for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
        if (text_[i] == '\n') {
          ++line;
          column = 1;
        } else {
          ++column;
        }
      }
      error_ = "line " + std::to_string(line) + ", column " +
               std::to_string(column) + ": " + message;
    }
    return std::nullopt;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  std::optional<Json> ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("expected a value, got end of input");
    switch (text_[pos_]) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': {
        auto s = ParseString();
        if (!s) return std::nullopt;
        return Json(std::move(*s));
      }
      case 't':
        if (ConsumeWord("true")) return Json(true);
        return Fail("invalid literal (expected 'true')");
      case 'f':
        if (ConsumeWord("false")) return Json(false);
        return Fail("invalid literal (expected 'false')");
      case 'n':
        if (ConsumeWord("null")) return Json();
        return Fail("invalid literal (expected 'null')");
      default: return ParseNumber();
    }
  }

  std::optional<Json> ParseObject() {
    if (!Consume('{')) return Fail("expected '{'");
    Json object = Json::Object();
    SkipSpace();
    if (Consume('}')) return object;
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected a string object key");
      }
      auto key = ParseString();
      if (!key) return std::nullopt;
      if (!Consume(':')) return Fail("expected ':' after object key");
      auto value = ParseValue();
      if (!value) return std::nullopt;
      object[*key] = std::move(*value);
      if (Consume(',')) continue;
      if (Consume('}')) return object;
      return Fail("expected ',' or '}' in object");
    }
  }

  std::optional<Json> ParseArray() {
    if (!Consume('[')) return Fail("expected '['");
    Json array = Json::Array();
    SkipSpace();
    if (Consume(']')) return array;
    while (true) {
      auto value = ParseValue();
      if (!value) return std::nullopt;
      array.Push(std::move(*value));
      if (Consume(',')) continue;
      if (Consume(']')) return array;
      return Fail("expected ',' or ']' in array");
    }
  }

  std::optional<std::string> ParseString() {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Fail("expected '\"'");
    }
    const std::size_t open = pos_;
    ++pos_;
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else {
              --pos_;
              return Fail("invalid hex digit in \\u escape");
            }
          }
          // The writer only emits \u escapes for control characters; decode
          // the BMP code point as UTF-8 for generality.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          --pos_;
          return Fail("invalid escape sequence");
      }
    }
    pos_ = open;
    return Fail("unterminated string");
  }

  std::optional<Json> ParseNumber() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected a value");
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    errno = 0;
    double v = std::strtod(token.c_str(), &end);
    // Overflow to infinity is rejected too: JSON has no non-finite numbers,
    // and an inf would not survive reserialization.
    if (end != token.c_str() + token.size() || errno == ERANGE ||
        !std::isfinite(v)) {
      pos_ = start;
      return Fail("invalid number '" + token + "'");
    }
    return Json(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::optional<Json> Json::Parse(std::string_view text) {
  return Parse(text, nullptr);
}

std::optional<Json> Json::Parse(std::string_view text, std::string* error) {
  Parser parser(text);
  auto value = parser.Run();
  if (!value && error != nullptr) *error = parser.Error();
  return value;
}

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull: return true;
    case Type::kBool: return bool_ == other.bool_;
    case Type::kNumber: return number_ == other.number_;
    case Type::kString: return string_ == other.string_;
    case Type::kArray: return items_ == other.items_;
    case Type::kObject: return members_ == other.members_;
  }
  return false;
}

}  // namespace asppi::util
