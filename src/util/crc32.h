// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) — the per-section checksum of
// the binary snapshot format (data/snapshot.h). Table-driven, byte at a time;
// snapshot sections are read once at load, so throughput is not critical.
#pragma once

#include <cstddef>
#include <cstdint>

namespace asppi::util {

// CRC of `size` bytes starting at `data`.
std::uint32_t Crc32(const void* data, std::size_t size);

// Incremental form: pass the previous return value as `seed` to extend a
// running checksum (Crc32(a+b) == Crc32Extend(Crc32(a), b)).
std::uint32_t Crc32Extend(std::uint32_t seed, const void* data,
                          std::size_t size);

}  // namespace asppi::util
