// String parsing/formatting helpers used by the text formats and CLI tools.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace asppi::util {

// Split on a single-character delimiter; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

// Split on runs of whitespace; drops empty fields.
std::vector<std::string> SplitWhitespace(std::string_view s);

// Strip leading/trailing whitespace.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);

// Strict numeric parsing: the whole (trimmed) string must be consumed.
std::optional<std::int64_t> ParseInt(std::string_view s);
std::optional<std::uint64_t> ParseUint(std::string_view s);
std::optional<double> ParseDouble(std::string_view s);

// Checked ASN parsing: strict decimal, no garbage suffix, range-limited to
// 32 bits (RFC 4893). Every tool-facing ASN string goes through this — a
// 2^32-overflowing value must be an error, not a silent truncation.
std::optional<std::uint32_t> ParseAsn(std::string_view s);

// Join elements with a separator using operator<<.
template <typename Container>
std::string Join(const Container& items, std::string_view sep);

// printf-style formatting into std::string.
std::string Format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace asppi::util

#include <sstream>

namespace asppi::util {

template <typename Container>
std::string Join(const Container& items, std::string_view sep) {
  std::ostringstream os;
  bool first = true;
  for (const auto& item : items) {
    if (!first) os << sep;
    first = false;
    os << item;
  }
  return os.str();
}

}  // namespace asppi::util
