#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

#include "util/metrics.h"

namespace asppi::util {

namespace {

// Scheduling counters. Unlike the engine counters these are inherently
// thread-count-dependent (ThreadPool(1) enqueues nothing at all), so
// determinism tests and the run-report comparison exclude the
// "util.thread_pool." prefix.
struct PoolMetrics {
  util::Counter parallel_fors{"util.thread_pool.parallel_fors"};
  util::Counter tasks{"util.thread_pool.tasks"};
  util::Timer queue_wait{"util.thread_pool.queue_wait"};
};

PoolMetrics& Instr() {
  static PoolMetrics* m = new PoolMetrics();
  return *m;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads - 1);
  for (std::size_t i = 0; i + 1 < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(std::size_t count,
                             const std::function<void(std::size_t)>& fn,
                             std::size_t chunk) {
  if (count == 0) return;
  Instr().parallel_fors.Add();
  if (chunk == 0) {
    chunk = std::max<std::size_t>(1, count / (NumThreads() * 4));
  }

  // Serial fast path: no workers, or too little work to split.
  if (workers_.empty() || count <= chunk) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  // Shared per-call state: workers and the caller pull chunks off `next`
  // until the range is drained; the first exception parks itself in `error`
  // and fast-forwards `next` so everyone else stops claiming work.
  struct Job {
    std::atomic<std::size_t> next{0};
    std::mutex done_mu;
    std::condition_variable done_cv;
    std::size_t tasks_pending = 0;
    std::exception_ptr error;
  };
  auto job = std::make_shared<Job>();

  auto run_chunks = [job, count, chunk, &fn] {
    for (std::size_t begin = job->next.fetch_add(chunk); begin < count;
         begin = job->next.fetch_add(chunk)) {
      const std::size_t end = std::min(begin + chunk, count);
      for (std::size_t i = begin; i < end; ++i) {
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(job->done_mu);
          if (!job->error) job->error = std::current_exception();
          job->next.store(count);
          return;
        }
      }
    }
  };

  const std::size_t num_chunks = (count + chunk - 1) / chunk;
  const std::size_t num_tasks = std::min(workers_.size(), num_chunks - 1);
  job->tasks_pending = num_tasks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const std::uint64_t enqueue_ns = MonotonicNowNs();
    for (std::size_t t = 0; t < num_tasks; ++t) {
      // The task captures run_chunks by value via the shared job, since it
      // may outlive this stack frame only up to the wait below — `fn` is
      // captured by reference and is safe because ParallelFor blocks until
      // every task signalled completion.
      queue_.emplace_back([job, run_chunks, enqueue_ns] {
        Instr().tasks.Add();
        Instr().queue_wait.RecordNs(MonotonicNowNs() - enqueue_ns);
        run_chunks();
        std::lock_guard<std::mutex> done_lock(job->done_mu);
        --job->tasks_pending;
        job->done_cv.notify_all();
      });
    }
  }
  work_cv_.notify_all();

  run_chunks();  // the calling thread works too

  std::unique_lock<std::mutex> lock(job->done_mu);
  job->done_cv.wait(lock, [&job] { return job->tasks_pending == 0; });
  if (job->error) std::rethrow_exception(job->error);
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    Instr().tasks.Add();
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    const std::uint64_t enqueue_ns = MonotonicNowNs();
    queue_.emplace_back([task = std::move(task), enqueue_ns] {
      Instr().tasks.Add();
      Instr().queue_wait.RecordNs(MonotonicNowNs() - enqueue_ns);
      task();
    });
  }
  work_cv_.notify_one();
}

void ParallelFor(ThreadPool* pool, std::size_t count,
                 const std::function<void(std::size_t)>& fn) {
  if (pool == nullptr) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  pool->ParallelFor(count, fn);
}

}  // namespace asppi::util
