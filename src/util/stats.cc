#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.h"

namespace asppi::util {

void Histogram::Add(int key, std::size_t count) {
  buckets_[key] += count;
  total_ += count;
}

std::size_t Histogram::Count(int key) const {
  auto it = buckets_.find(key);
  return it == buckets_.end() ? 0 : it->second;
}

double Histogram::Fraction(int key) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(Count(key)) / static_cast<double>(total_);
}

double Histogram::FractionAtLeast(int key) const {
  if (total_ == 0) return 0.0;
  std::size_t mass = 0;
  for (auto it = buckets_.lower_bound(key); it != buckets_.end(); ++it) {
    mass += it->second;
  }
  return static_cast<double>(mass) / static_cast<double>(total_);
}

int Histogram::MinKey() const {
  ASPPI_CHECK(!buckets_.empty());
  return buckets_.begin()->first;
}

int Histogram::MaxKey() const {
  ASPPI_CHECK(!buckets_.empty());
  return buckets_.rbegin()->first;
}

Cdf::Cdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Cdf::At(double x) const {
  if (sorted_.empty()) return 0.0;
  auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Cdf::Quantile(double q) const {
  ASPPI_CHECK(!sorted_.empty());
  ASPPI_CHECK_GE(q, 0.0);
  ASPPI_CHECK_LE(q, 1.0);
  if (q <= 0.0) return sorted_.front();
  std::size_t idx = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted_.size())));
  if (idx > 0) --idx;
  if (idx >= sorted_.size()) idx = sorted_.size() - 1;
  return sorted_[idx];
}

double Cdf::Min() const {
  ASPPI_CHECK(!sorted_.empty());
  return sorted_.front();
}

double Cdf::Max() const {
  ASPPI_CHECK(!sorted_.empty());
  return sorted_.back();
}

std::vector<std::pair<double, double>> Cdf::Points(std::size_t max_points) const {
  std::vector<std::pair<double, double>> out;
  if (sorted_.empty() || max_points == 0) return out;
  const std::size_t n = sorted_.size();
  const std::size_t step = std::max<std::size_t>(1, n / max_points);
  for (std::size_t i = 0; i < n; i += step) {
    out.emplace_back(sorted_[i],
                     static_cast<double>(i + 1) / static_cast<double>(n));
  }
  if (out.back().first != sorted_.back()) {
    out.emplace_back(sorted_.back(), 1.0);
  }
  return out;
}

void Summary::Add(double x) {
  if (n == 0) {
    min = max = x;
  } else {
    min = std::min(min, x);
    max = std::max(max, x);
  }
  ++n;
  sum += x;
  sum_sq += x * x;
}

double Summary::Variance() const {
  if (n < 2) return 0.0;
  const double mean = Mean();
  return sum_sq / static_cast<double>(n) - mean * mean;
}

double Summary::Stddev() const { return std::sqrt(std::max(0.0, Variance())); }

std::string Summary::ToString() const {
  std::ostringstream os;
  os << "n=" << n << " mean=" << Mean() << " min=" << min << " max=" << max
     << " sd=" << Stddev();
  return os.str();
}

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double Stddev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = Mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(v.size()));
}

double Quantile(std::vector<double> v, double q) {
  return Cdf(std::move(v)).Quantile(q);
}


void LatencyHistogram::RecordNs(std::uint64_t ns) {
  std::size_t bucket = 0;
  while (bucket + 1 < kBuckets && (std::uint64_t{1} << (bucket + 1)) <= ns) {
    ++bucket;
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t LatencyHistogram::Count() const {
  std::uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

std::array<std::uint64_t, LatencyHistogram::kBuckets>
LatencyHistogram::Snapshot() const {
  std::array<std::uint64_t, kBuckets> out{};
  for (std::size_t i = 0; i < kBuckets; ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double LatencyHistogram::QuantileNs(double q) const {
  const auto counts = Snapshot();
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  // Rank of the requested quantile (1-based), then walk to its bucket.
  const double rank = q * static_cast<double>(total);
  double seen = 0.0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (counts[i] == 0) continue;
    const double before = seen;
    seen += static_cast<double>(counts[i]);
    if (seen >= rank) {
      const double lo = static_cast<double>(std::uint64_t{1} << i);
      const double hi = i + 1 >= kBuckets ? lo * 2.0
                                          : static_cast<double>(
                                                std::uint64_t{1} << (i + 1));
      const double frac =
          counts[i] == 0 ? 0.0
                         : (rank - before) / static_cast<double>(counts[i]);
      return lo + (hi - lo) * std::min(1.0, std::max(0.0, frac));
    }
  }
  return static_cast<double>(std::uint64_t{1} << (kBuckets - 1));
}

}  // namespace asppi::util
