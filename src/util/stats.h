// Small statistics helpers shared by the measurement layer and the benchmark
// harness: integer histograms, empirical CDFs, scalar summaries, and a
// thread-safe latency histogram for the serve layer.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace asppi::util {

// Histogram over non-negative integer keys (e.g. prepend counts).
class Histogram {
 public:
  void Add(int key, std::size_t count = 1);
  std::size_t Count(int key) const;
  std::size_t Total() const { return total_; }
  // Fraction of total mass at `key`; 0 if the histogram is empty.
  double Fraction(int key) const;
  // Fraction of total mass at keys >= `key`.
  double FractionAtLeast(int key) const;
  int MinKey() const;
  int MaxKey() const;
  bool Empty() const { return total_ == 0; }
  const std::map<int, std::size_t>& Buckets() const { return buckets_; }

 private:
  std::map<int, std::size_t> buckets_;
  std::size_t total_ = 0;
};

// Empirical CDF over doubles.
class Cdf {
 public:
  explicit Cdf(std::vector<double> samples);

  std::size_t Size() const { return sorted_.size(); }
  bool Empty() const { return sorted_.empty(); }
  // P[X <= x].
  double At(double x) const;
  // Smallest sample s with P[X <= s] >= q, q in [0,1].
  double Quantile(double q) const;
  double Min() const;
  double Max() const;
  const std::vector<double>& Sorted() const { return sorted_; }

  // Evenly spaced (x, P[X<=x]) points suitable for plotting/printing.
  std::vector<std::pair<double, double>> Points(std::size_t max_points = 50) const;

 private:
  std::vector<double> sorted_;
};

// Running scalar summary.
struct Summary {
  std::size_t n = 0;
  double sum = 0.0;
  double sum_sq = 0.0;
  double min = 0.0;
  double max = 0.0;

  void Add(double x);
  double Mean() const { return n == 0 ? 0.0 : sum / static_cast<double>(n); }
  double Variance() const;
  double Stddev() const;
  std::string ToString() const;
};

// Thread-safe latency histogram: power-of-two buckets over nanoseconds
// (bucket k holds samples in [2^k, 2^(k+1))), recorded with one relaxed
// fetch_add so concurrent serve workers never contend. Quantiles are
// estimated by linear interpolation inside the covering bucket — at most one
// bucket width (~2x) of error, which is what a p99 needs to be useful, not a
// sorted-sample store that grows with traffic.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void RecordNs(std::uint64_t ns);

  std::uint64_t Count() const;
  // q in [0,1]; 0 when empty. Returns nanoseconds.
  double QuantileNs(double q) const;

  // Merged copy of the bucket counts (index = floor(log2(ns))).
  std::array<std::uint64_t, kBuckets> Snapshot() const;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

// Mean of a vector (0 for empty).
double Mean(const std::vector<double>& v);
// Population standard deviation (0 for size < 2).
double Stddev(const std::vector<double>& v);
// q-quantile by sorting a copy.
double Quantile(std::vector<double> v, double q);

}  // namespace asppi::util
