#include "util/metrics.h"

#include <array>
#include <atomic>
#include <chrono>
#include <mutex>
#include <unordered_map>

#include "util/check.h"

namespace asppi::util {

namespace {

// Fixed shard capacity keeps the per-thread storage a flat array of atomics
// that can be read while other threads grow into it (no reallocation, ever).
// Raising these is a recompile; the registry CHECKs on overflow.
constexpr std::size_t kMaxCounters = 256;
constexpr std::size_t kMaxTimers = 64;

}  // namespace

struct MetricsShard;

// All registry state lives here, in a never-destroyed singleton, so
// thread_local shard destructors can safely unregister during teardown.
struct MetricsState {
  std::mutex mu;
  std::unordered_map<std::string, Metrics::Id> counter_ids;
  std::vector<std::string> counter_names;
  std::unordered_map<std::string, Metrics::Id> timer_ids;
  std::vector<std::string> timer_names;
  std::map<std::string, double> gauges;

  std::vector<MetricsShard*> shards;
  // Folded totals of shards whose threads have exited.
  std::array<std::uint64_t, kMaxCounters> retired_counters{};
  std::array<std::uint64_t, kMaxTimers> retired_timer_count{};
  std::array<std::uint64_t, kMaxTimers> retired_timer_ns{};
};

namespace {

MetricsState& State() {
  static MetricsState* state = new MetricsState();  // intentionally leaked
  return *state;
}

}  // namespace

struct MetricsShard {
  std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
  std::array<std::atomic<std::uint64_t>, kMaxTimers> timer_count{};
  std::array<std::atomic<std::uint64_t>, kMaxTimers> timer_ns{};

  MetricsShard() {
    MetricsState& state = State();
    std::lock_guard<std::mutex> lock(state.mu);
    state.shards.push_back(this);
  }

  ~MetricsShard() {
    MetricsState& state = State();
    std::lock_guard<std::mutex> lock(state.mu);
    for (std::size_t i = 0; i < kMaxCounters; ++i) {
      state.retired_counters[i] +=
          counters[i].load(std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < kMaxTimers; ++i) {
      state.retired_timer_count[i] +=
          timer_count[i].load(std::memory_order_relaxed);
      state.retired_timer_ns[i] += timer_ns[i].load(std::memory_order_relaxed);
    }
    std::erase(state.shards, this);
  }
};

namespace {

MetricsShard& LocalShard() {
  thread_local MetricsShard shard;
  return shard;
}

}  // namespace

Metrics& Metrics::Global() {
  static Metrics* metrics = new Metrics();  // intentionally leaked
  return *metrics;
}

Metrics::Id Metrics::CounterId(const std::string& name) {
  MetricsState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  auto it = state.counter_ids.find(name);
  if (it != state.counter_ids.end()) return it->second;
  ASPPI_CHECK(state.counter_names.size() < kMaxCounters)
      << "metrics: counter capacity exhausted registering " << name;
  const Id id = state.counter_names.size();
  state.counter_names.push_back(name);
  state.counter_ids.emplace(name, id);
  return id;
}

Metrics::Id Metrics::TimerId(const std::string& name) {
  MetricsState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  auto it = state.timer_ids.find(name);
  if (it != state.timer_ids.end()) return it->second;
  ASPPI_CHECK(state.timer_names.size() < kMaxTimers)
      << "metrics: timer capacity exhausted registering " << name;
  const Id id = state.timer_names.size();
  state.timer_names.push_back(name);
  state.timer_ids.emplace(name, id);
  return id;
}

void Metrics::Add(Id counter, std::uint64_t delta) {
  LocalShard().counters[counter].fetch_add(delta, std::memory_order_relaxed);
}

void Metrics::RecordTimeNs(Id timer, std::uint64_t ns) {
  MetricsShard& shard = LocalShard();
  shard.timer_count[timer].fetch_add(1, std::memory_order_relaxed);
  shard.timer_ns[timer].fetch_add(ns, std::memory_order_relaxed);
}

void Metrics::SetGauge(const std::string& name, double value) {
  MetricsState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.gauges[name] = value;
}

Metrics::Snapshot Metrics::TakeSnapshot() const {
  MetricsState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  Snapshot snapshot;
  for (std::size_t i = 0; i < state.counter_names.size(); ++i) {
    std::uint64_t total = state.retired_counters[i];
    for (const MetricsShard* shard : state.shards) {
      total += shard->counters[i].load(std::memory_order_relaxed);
    }
    snapshot.counters[state.counter_names[i]] = total;
  }
  for (std::size_t i = 0; i < state.timer_names.size(); ++i) {
    TimerStat stat;
    stat.count = state.retired_timer_count[i];
    stat.total_ns = state.retired_timer_ns[i];
    for (const MetricsShard* shard : state.shards) {
      stat.count += shard->timer_count[i].load(std::memory_order_relaxed);
      stat.total_ns += shard->timer_ns[i].load(std::memory_order_relaxed);
    }
    snapshot.timers[state.timer_names[i]] = stat;
  }
  snapshot.gauges = state.gauges;
  return snapshot;
}

void Metrics::Reset() {
  MetricsState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.retired_counters.fill(0);
  state.retired_timer_count.fill(0);
  state.retired_timer_ns.fill(0);
  for (MetricsShard* shard : state.shards) {
    for (auto& c : shard->counters) c.store(0, std::memory_order_relaxed);
    for (auto& c : shard->timer_count) c.store(0, std::memory_order_relaxed);
    for (auto& c : shard->timer_ns) c.store(0, std::memory_order_relaxed);
  }
  state.gauges.clear();
}

std::uint64_t MonotonicNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

ScopedTimer::ScopedTimer(const Timer& timer)
    : id_(timer.id()), start_ns_(MonotonicNowNs()) {}

ScopedTimer::~ScopedTimer() {
  Metrics::Global().RecordTimeNs(id_, MonotonicNowNs() - start_ns_);
}

}  // namespace asppi::util
