// Process-wide metrics registry: named counters, gauges, and scoped timers
// for the simulation engines and the experiment harness.
//
// Design goals, in order:
//   1. Hot-path increments must be cheap and contention-free — propagation
//      decision/export counters fire millions of times per sweep. Each
//      thread owns a shard of relaxed atomics indexed by interned metric id;
//      an increment is one thread-local lookup plus one relaxed fetch_add,
//      with no shared cache line and no lock.
//   2. Reads must be deterministic. Snapshot() merges the shards (plus the
//      folded totals of exited threads) by summation, which is
//      order-independent for unsigned counters — so for any `--threads`
//      value a deterministic workload yields bit-identical counter values.
//      (Wall-clock timers and the thread-pool's own scheduling counters are
//      inherently execution-dependent; they are reported separately and
//      excluded from determinism guarantees — see DESIGN.md §4d.)
//   3. Exited threads must not lose counts: a shard folds itself into the
//      registry's retired totals on thread exit, so short-lived ThreadPool
//      workers account correctly.
//
// Naming convention: lowercase dotted paths, `layer.component.what`
// (e.g. "bgp.propagation.rounds", "attack.baseline_cache.hits").
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace asppi::util {

class Metrics {
 public:
  using Id = std::size_t;

  struct TimerStat {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
  };

  // Deterministically merged view of every metric (counter names sorted by
  // std::map; values are sums over all live and retired shards).
  struct Snapshot {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, TimerStat> timers;
    std::map<std::string, double> gauges;
  };

  // The process-wide registry (never destroyed: shards of exiting threads
  // unregister against it during static teardown).
  static Metrics& Global();

  // Interns `name`, returning a stable dense id. Cold path (mutex).
  // Registering the same name twice returns the same id.
  Id CounterId(const std::string& name);
  Id TimerId(const std::string& name);

  // Hot paths: lock-free, thread-local.
  void Add(Id counter, std::uint64_t delta = 1);
  void RecordTimeNs(Id timer, std::uint64_t ns);

  // Gauges are last-write-wins configuration-style values (thread counts,
  // topology sizes); set from coordinating code, not hot loops.
  void SetGauge(const std::string& name, double value);

  Snapshot TakeSnapshot() const;

  // Zeroes every counter/timer shard and drops all gauges. Names and ids
  // survive. Call only while no other thread is recording (tests, or
  // between experiment phases).
  void Reset();

 private:
  Metrics() = default;
  friend struct MetricsShard;
};

// Cached handle for a counter: resolve the name once (function-local static
// at the instrumentation site), then Add() at full speed.
class Counter {
 public:
  explicit Counter(const char* name)
      : id_(Metrics::Global().CounterId(name)) {}
  void Add(std::uint64_t delta = 1) const { Metrics::Global().Add(id_, delta); }

 private:
  Metrics::Id id_;
};

// Cached handle for a timer metric (count + total wall nanoseconds).
class Timer {
 public:
  explicit Timer(const char* name) : id_(Metrics::Global().TimerId(name)) {}
  void RecordNs(std::uint64_t ns) const {
    Metrics::Global().RecordTimeNs(id_, ns);
  }
  Metrics::Id id() const { return id_; }

 private:
  Metrics::Id id_;
};

// RAII wall-clock timer: records elapsed ns into `timer` on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(const Timer& timer);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Metrics::Id id_;
  std::uint64_t start_ns_;
};

// Monotonic clock in nanoseconds (exposed for queue-wait style timings).
std::uint64_t MonotonicNowNs();

}  // namespace asppi::util
