#include "attack/scenarios.h"

#include <algorithm>

#include "util/check.h"
#include "util/rng.h"

namespace asppi::attack {

using topo::AsGraph;
using topo::Relation;

std::vector<std::pair<Asn, Asn>> SampleTier1Pairs(const GeneratedTopology& topo,
                                                  std::size_t count,
                                                  std::uint64_t seed) {
  const auto& tier1 = topo.tier1;
  ASPPI_CHECK_GE(tier1.size(), 2u);
  std::vector<std::pair<Asn, Asn>> all;
  for (Asn a : tier1) {
    for (Asn v : tier1) {
      if (a != v) all.emplace_back(a, v);
    }
  }
  util::Rng rng(seed);
  rng.Shuffle(all);
  if (all.size() > count) all.resize(count);
  return all;
}

std::vector<std::pair<Asn, Asn>> SampleRandomPairs(const GeneratedTopology& topo,
                                                   std::size_t count,
                                                   std::uint64_t seed) {
  const auto& ases = topo.graph.Ases();
  ASPPI_CHECK_GE(ases.size(), 2u);
  util::Rng rng(seed);
  std::vector<std::pair<Asn, Asn>> out;
  out.reserve(count);
  while (out.size() < count) {
    Asn a = rng.Pick(ases);
    Asn v = rng.Pick(ases);
    if (a == v) continue;
    out.emplace_back(a, v);
  }
  return out;
}

namespace {

// Highest-degree member of `pool` (deterministic tie-break by ASN).
Asn HighestDegree(const AsGraph& graph, const std::vector<Asn>& pool) {
  ASPPI_CHECK(!pool.empty());
  Asn best = pool.front();
  for (Asn asn : pool) {
    if (graph.Degree(asn) > graph.Degree(best) ||
        (graph.Degree(asn) == graph.Degree(best) && asn < best)) {
      best = asn;
    }
  }
  return best;
}

// Member of `pool` with the most peer links.
Asn MostPeered(const AsGraph& graph, const std::vector<Asn>& pool) {
  ASPPI_CHECK(!pool.empty());
  Asn best = pool.front();
  std::size_t best_peers = graph.Peers(best).size();
  for (Asn asn : pool) {
    std::size_t peers = graph.Peers(asn).size();
    if (peers > best_peers || (peers == best_peers && asn < best)) {
      best = asn;
      best_peers = peers;
    }
  }
  return best;
}

}  // namespace

SweepScenario Tier1VsTier1(const GeneratedTopology& topo) {
  ASPPI_CHECK_GE(topo.tier1.size(), 2u);
  // Attacker: the best-connected tier-1 (Sprint). Victim: the tier-1 with
  // the smallest customer cone — the paper's Fig. 9 anchor (>95 % of the
  // Internet switching) requires the victim's loyal base (its cone plus the
  // cone's peers) to be small, which held for inferred 2011 cones.
  Asn attacker = HighestDegree(topo.graph, topo.tier1);
  Asn victim = 0;
  std::size_t best_cone = 0;
  for (Asn cand : topo.tier1) {
    if (cand == attacker) continue;
    std::size_t cone = topo.graph.CustomerConeSize(cand);
    if (victim == 0 || cone < best_cone) {
      victim = cand;
      best_cone = cone;
    }
  }
  return SweepScenario{"tier1-vs-tier1", attacker, victim};
}

SweepScenario Tier1VsContent(const GeneratedTopology& topo) {
  ASPPI_CHECK(!topo.tier1.empty());
  ASPPI_CHECK(!topo.tier3.empty());
  // Victim archetype: a typical tier-3 (the paper's Facebook — whose 2011
  // *visible* BGP footprint was a handful of providers, not today's rich
  // public peering). A heavily-peered victim resists the attack because
  // peer-learned legitimate routes outrank the provider-learned malicious
  // one, capping pollution far below the paper's >99 %.
  std::vector<Asn> sorted = topo.tier3;
  const AsGraph& g = topo.graph;
  std::sort(sorted.begin(), sorted.end(), [&g](Asn a, Asn b) {
    if (g.Degree(a) != g.Degree(b)) return g.Degree(a) < g.Degree(b);
    return a < b;
  });
  return SweepScenario{"tier1-vs-lowtier", HighestDegree(g, topo.tier1),
                       sorted[sorted.size() / 2]};
}

SweepScenario SmallVsSmall(const GeneratedTopology& topo) {
  ASPPI_CHECK_GE(topo.tier3.size(), 2u);
  // Median-degree tier-3 ASes: small regional transits with a few stub
  // customers, like the paper's AS30209/AS12734 pair.
  std::vector<Asn> sorted = topo.tier3;
  const AsGraph& g = topo.graph;
  std::sort(sorted.begin(), sorted.end(), [&g](Asn a, Asn b) {
    if (g.Degree(a) != g.Degree(b)) return g.Degree(a) < g.Degree(b);
    return a < b;
  });
  Asn attacker = sorted[sorted.size() / 2];
  Asn victim = sorted[sorted.size() / 2 + 1];
  return SweepScenario{"small-vs-small", attacker, victim};
}

SweepScenario EngineerContentVsTier1(GeneratedTopology& topo) {
  ASPPI_CHECK(!topo.tier1.empty());
  ASPPI_CHECK(!topo.content.empty());
  const AsGraph& g = topo.graph;
  // Prefer an (attacker, victim) combination where the victim's customer
  // cone does NOT contain the attacker: the sibling merge below then keeps
  // the provider→customer digraph acyclic and convergence guaranteed. When
  // every tier-1 cone covers every content AS (densely multihomed
  // topologies) we accept the cycle — that is exactly what the real
  // NTT/Limelight/Facebook chain looked like; receiver-side loop detection
  // still converges per destination and the round guard would catch a
  // pathological case loudly.
  Asn attacker = 0;
  Asn victim = 0;
  bool acyclic_pair = false;
  for (Asn a_cand : topo.content) {
    for (Asn v_cand : topo.tier1) {
      if (g.ReachesDownhill(v_cand, a_cand)) continue;
      if (attacker == 0 ||
          g.Peers(a_cand).size() > g.Peers(attacker).size() ||
          (g.Peers(a_cand).size() == g.Peers(attacker).size() &&
           g.Degree(v_cand) > g.Degree(victim))) {
        attacker = a_cand;
        victim = v_cand;
        acyclic_pair = true;
      }
    }
  }
  if (!acyclic_pair) {
    attacker = MostPeered(g, topo.content);
    victim = HighestDegree(g, topo.tier1);
  }

  // The "Limelight": a tier-3 AS adjacent to neither party becomes the
  // victim's sibling and the attacker's customer. The attacker then holds a
  // customer-learned (hence freely exportable) route to the victim's prefix.
  Asn limelight = 0;
  for (Asn cand : topo.tier3) {
    if (cand == victim || cand == attacker || g.HasLink(victim, cand) ||
        g.HasLink(attacker, cand)) {
      continue;
    }
    if (acyclic_pair && (topo::SiblingLinkCreatesCycle(g, victim, cand) ||
                         g.ReachesDownhill(cand, attacker))) {
      continue;
    }
    limelight = cand;
    break;
  }
  ASPPI_CHECK_NE(limelight, 0u) << "no tier-3 candidate for the sibling chain";
  // The graph is frozen; thaw it, engineer the chain, and freeze the result
  // back into the topology. Adjacency order shifts under the round-trip, but
  // simulator output never depends on slot order.
  topo::GraphBuilder builder = g.ToBuilder();
  builder.AddLink(victim, limelight, Relation::kSibling);
  builder.AddLink(attacker, limelight, Relation::kCustomer);
  // The paper's victim and attacker peer directly ("most other ASes
  // originally use providers' routes to reach the victim, except for the
  // victim's peers, including the attacker") — this is what the
  // policy-violating attacker strips down to the 2-hop [M V].
  if (!builder.HasLink(attacker, victim)) {
    builder.AddLink(attacker, victim, Relation::kPeer);
  }
  if (acyclic_pair) {
    ASPPI_CHECK(builder.Freeze().ProviderCustomerAcyclic())
        << "engineered Fig. 11 chain created a policy cycle";
  }

  // The "Akamai": make the most-peered tier-2 a provider of the attacker, so
  // the stripped customer route fans out through a rich peering mesh. (The
  // engineered links above touch no tier-2 peer counts, so selecting on the
  // pre-thaw graph is equivalent.)
  Asn akamai = MostPeered(g, topo.tier2);
  if (!builder.HasLink(akamai, attacker)) {
    builder.AddLink(akamai, attacker, Relation::kCustomer);
  }
  topo.graph = builder.Freeze();
  return SweepScenario{"content-vs-tier1", attacker, victim};
}

}  // namespace asppi::attack
