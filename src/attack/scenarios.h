// Attacker/victim scenario selection on generated topologies: the archetype
// pairs behind each of the paper's evaluation figures.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "topology/generator.h"

namespace asppi::attack {

using topo::Asn;
using topo::GeneratedTopology;

// Fig. 7: ordered (attacker, victim) pairs where both are tier-1 ASes.
// Deterministically enumerates distinct ordered pairs and keeps `count`
// (seed-shuffled when more are available than requested).
std::vector<std::pair<Asn, Asn>> SampleTier1Pairs(const GeneratedTopology& topo,
                                                  std::size_t count,
                                                  std::uint64_t seed);

// Fig. 8 / Figs. 13-14: random attacker/victim pairs over the whole AS
// population (stubs dominate by construction, matching the paper's "most of
// which are Tier-4 and Tier-5 ASes").
std::vector<std::pair<Asn, Asn>> SampleRandomPairs(const GeneratedTopology& topo,
                                                   std::size_t count,
                                                   std::uint64_t seed);

// A named λ-sweep scenario.
struct SweepScenario {
  std::string name;
  Asn attacker = 0;
  Asn victim = 0;
};

// Fig. 9 archetype: tier-1 attacker vs tier-1 victim ("Sprint hijacks AT&T").
SweepScenario Tier1VsTier1(const GeneratedTopology& topo);

// Fig. 10 archetype: tier-1 attacker vs content/tier-3 victim
// ("AT&T hijacks Facebook").
SweepScenario Tier1VsContent(const GeneratedTopology& topo);

// Fig. 12 archetype: small transit attacker vs small victim
// ("AS30209 hijacks AS12734").
SweepScenario SmallVsSmall(const GeneratedTopology& topo);

// Fig. 11 archetype: content attacker vs tier-1 victim ("Facebook hijacks
// NTT"). Reproduces the paper's surprising valley-free spread by engineering
// the chain it discovered in the wild: the victim gets a sibling AS that is
// a customer of the attacker (Limelight), and the attacker gets a
// richly-peered provider (Akamai). Mutates `topo` accordingly.
SweepScenario EngineerContentVsTier1(GeneratedTopology& topo);

}  // namespace asppi::attack
