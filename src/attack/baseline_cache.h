// BaselineCache: memoizes converged attack-free propagation states.
//
// Every attack experiment starts from the victim's attack-free converged
// routing state — and the sweeps behind Figs. 7–14 re-derive that same state
// over and over: every attacker against one victim/λ, every monitor-set size
// against one attack, every training attacker in the placement optimizer.
// The baseline depends only on (origin, prepend policy), never on the
// attacker, so it is memoized here and handed out as
// shared_ptr<const PropagationResult>; AttackSimulator then warm-starts each
// attack from it — via PropagationSimulator::Resume() (full engine) or
// bgp::DeltaPropagator::Propagate() (delta engine, the default).
//
// Alongside the converged state, each entry carries a bgp::TraversalIndex
// built once per baseline: it answers "how many ASes route through x?" in
// O(1), which the delta engine's pollution accounting consults per attack
// instead of re-scanning all n best paths.
//
// Thread-safe: concurrent GetEntry() calls for the same announcement compute
// the baseline exactly once (later callers block on the first caller's run);
// distinct announcements compute concurrently. Entries are never evicted or
// replaced, so GetRef()'s const reference stays valid for the cache's
// lifetime — the serve hot path reads the retained state in place with no
// per-query copy. Effectiveness is observable through the process-wide
// metrics registry — "attack.baseline_cache.hits" / ".misses" counters and
// the ".compute" timer (util/metrics.h); a same-victim λ-sweep must add
// exactly one miss per λ.
#pragma once

#include <cstddef>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "bgp/delta.h"
#include "bgp/propagation.h"
#include "topology/as_graph.h"

namespace asppi::attack {

// One memoized baseline: the converged state plus its traversal index.
// Both pointers are non-null and immutable once published.
struct BaselineEntry {
  std::shared_ptr<const bgp::PropagationResult> state;
  std::shared_ptr<const bgp::TraversalIndex> traversal;
};

class BaselineCache {
 public:
  explicit BaselineCache(const topo::AsGraph& graph);

  // The converged attack-free state (with traversal index) for
  // `announcement`, computed at most once per distinct (origin, prepend
  // policy).
  BaselineEntry GetEntry(const bgp::Announcement& announcement);

  // Convenience: just the converged state.
  std::shared_ptr<const bgp::PropagationResult> Get(
      const bgp::Announcement& announcement) {
    return GetEntry(announcement).state;
  }

  // The retained converged state by reference — no shared_ptr bump, no copy.
  // Valid for the cache's lifetime (entries are never evicted or replaced).
  const bgp::PropagationResult& GetRef(const bgp::Announcement& announcement) {
    return *GetEntry(announcement).state;
  }

  // Pre-seeds the entry for `baseline`'s announcement (snapshot warm-load:
  // data/snapshot.cc restores checkpointed baselines straight into the
  // cache), building its traversal index eagerly. A later lookup for the
  // same announcement is a hit; Put over an existing entry is a no-op so a
  // computed state is never replaced.
  void Put(std::shared_ptr<const bgp::PropagationResult> baseline);

  // Number of memoized baselines. Hit/miss accounting lives in the metrics
  // registry (see the header comment), not on the instance.
  std::size_t Size() const;

  const topo::AsGraph& Graph() const { return graph_; }

 private:
  const topo::AsGraph& graph_;
  bgp::PropagationSimulator engine_;

  mutable std::mutex mu_;
  // shared_future so every waiter (including the computing thread) can
  // retrieve the same baseline; the promise is fulfilled outside the lock.
  std::unordered_map<std::string, std::shared_future<BaselineEntry>> entries_;
};

}  // namespace asppi::attack
