// Attack impact analysis (paper §IV-B, §VI-B): run an attack against a
// converged baseline and quantify the pollution — the fraction of ASes whose
// best route to the victim now traverses the attacker.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "attack/baseline_cache.h"
#include "attack/interceptor.h"
#include "bgp/delta.h"
#include "bgp/propagation.h"
#include "topology/as_graph.h"
#include "util/thread_pool.h"

namespace asppi::attack {

// Which convergence engine computes the attacked state.
//   kFull:  PropagationSimulator::Resume — copies the baseline, scans all n
//           ASes per phase. The reference engine.
//   kDelta: bgp::DeltaPropagator — propagates only the attack wavefront over
//           the immutable baseline. Bit-identical results (enforced by
//           tests/delta_test.cc and the fuzzer's delta-vs-full leg), 10–100×
//           faster on sweeps. The default.
enum class EngineKind { kFull, kDelta };

// Everything measured for one attacker/victim instance.
struct AttackOutcome {
  Asn victim = 0;
  Asn attacker = 0;
  // Every AS executing the attack (sorted ascending; attacker is the first).
  // Size 1 for the classic single-attacker entry points; strategy::
  // AttackerProgram runs with k colluders fill all k.
  std::vector<Asn> colluders;
  // The victim's prepend count: the λ passed to the attack entry point, or,
  // for per-neighbor policies, the largest padding the victim announces to
  // any of its actual neighbors (PrependPolicy::MaxPadsToward — the strongest
  // padding an on-path attacker can strip). A per-neighbor policy that
  // overrides every neighbor below its default reports the real neighbor
  // maximum, not the dead-configuration default.
  int lambda = 1;

  // Converged, attack-free. Shared: when an AttackSimulator runs with a
  // BaselineCache, every outcome against the same victim/policy points at
  // one memoized state instead of owning a recomputed copy.
  std::shared_ptr<const bgp::PropagationResult> before;
  // Converged under the attack: a dense PropagationResult from the full
  // engine, or a sparse baseline+overlay from the delta engine. Query API is
  // identical either way; call .Full() where the dense RIB is truly needed.
  bgp::RoutingView after;

  // False when the attacked re-convergence hit the engine round cap instead
  // of a fixpoint — possible under adversarial strategy:: programs whose
  // forced exports oscillate (the paper-model transforms always converge).
  // `after` is then the deterministic cap snapshot, and the fractions /
  // pollution set below are measured against it; treat them as "no stable
  // interception", not as steady-state impact.
  bool converged = true;

  // Fraction of ASes (excluding the colluders and victim) whose best path
  // traverses any colluder — the paper's "% of paths traversing attacker",
  // generalized to attacker sets (single-colluder runs match the paper's
  // denominator of n−2 exactly).
  double fraction_before = 0.0;
  double fraction_after = 0.0;

  // ASes polluted by the attack: best path traverses a colluder after the
  // attack but did not before.
  std::vector<Asn> newly_polluted;
};

class AttackSimulator {
 public:
  // `baseline_cache` (optional, non-owning) memoizes the attack-free
  // baselines across runs; it must outlive the simulator and be built on the
  // same graph. Without a cache every run computes its own baseline.
  explicit AttackSimulator(const topo::AsGraph& graph,
                           BaselineCache* baseline_cache = nullptr,
                           EngineKind engine = EngineKind::kDelta);

  // The ASPP-based interception attack: victim announces with λ prepends
  // (uniformly to all neighbors), attacker strips the padding. `filter`
  // (optional, non-owning — typically a defense::PolicySet) gates every
  // import during the attacked re-convergence. The attack-free baseline is
  // always computed filterless: none of the shipped policies ever rejects a
  // legitimate route (origin matches, padding is exactly as configured), so
  // the defended and undefended baselines coincide and stay shareable
  // through one BaselineCache.
  AttackOutcome RunAsppInterception(Asn victim, Asn attacker, int lambda,
                                    bool violate_valley_free = false,
                                    bool export_stripped_to_peers = true,
                                    const bgp::ImportFilter* filter = nullptr) const;

  // Same, but with an arbitrary caller-supplied prepend policy for the
  // victim (per-neighbor λ) — used by the detection tests where legitimate
  // traffic engineering must be distinguishable from the attack.
  AttackOutcome RunAsppInterceptionWithPolicy(
      const bgp::Announcement& announcement, Asn attacker,
      bool violate_valley_free = false,
      bool export_stripped_to_peers = true,
      const bgp::ImportFilter* filter = nullptr) const;

  // Fully generalized entry point (the strategy:: subsystem's executor): run
  // an arbitrary RouteTransform for a set of colluding attackers. Every
  // colluder seeds the re-convergence wavefront, and pollution counts an AS
  // when its best path traverses *any* colluder. `colluders` must be
  // non-empty, sorted, and duplicate-free, and must not contain the origin.
  // λ is recorded from the announcement via MaxPadsToward. Single-colluder
  // calls are bit-identical to the classic entry points with the same
  // transform.
  AttackOutcome RunTransform(const bgp::Announcement& announcement,
                             std::span<const Asn> colluders,
                             bgp::RouteTransform& transform,
                             const bgp::ImportFilter* filter = nullptr) const;

  // Baselines.
  AttackOutcome RunOriginHijack(Asn victim, Asn attacker, int lambda,
                                const bgp::ImportFilter* filter = nullptr) const;
  AttackOutcome RunBallaniInterception(Asn victim, Asn attacker, int lambda,
                                       const bgp::ImportFilter* filter =
                                           nullptr) const;

  const bgp::PropagationSimulator& Engine() const { return engine_; }
  const topo::AsGraph& Graph() const { return graph_; }
  BaselineCache* GetBaselineCache() const { return baseline_cache_; }
  EngineKind GetEngineKind() const { return engine_kind_; }

 private:
  AttackOutcome RunWithTransform(const bgp::Announcement& announcement,
                                 std::span<const Asn> colluders,
                                 bgp::RouteTransform& transform, int lambda,
                                 const bgp::ImportFilter* filter) const;

  // λ the outcome reports for `announcement`: the strongest padding announced
  // to any actual neighbor of the origin (see AttackOutcome::lambda).
  int RecordedLambda(const bgp::Announcement& announcement) const;

  const topo::AsGraph& graph_;
  bgp::PropagationSimulator engine_;
  bgp::DeltaPropagator delta_engine_;
  BaselineCache* baseline_cache_ = nullptr;
  EngineKind engine_kind_ = EngineKind::kDelta;
};

// One row of the pair-sweep experiments (paper Figs. 7/8).
struct PairImpact {
  Asn attacker = 0;
  Asn victim = 0;
  double before = 0.0;
  double after = 0.0;
};

// Knobs for RunPairSweep.
struct PairSweepOptions {
  int lambda = 3;
  bool violate_valley_free = false;
  bool export_stripped_to_peers = true;
  // Parallelism (null = serial). Rows are computed into input-index slots and
  // sorted with a total order, so output is identical for any thread count.
  util::ThreadPool* pool = nullptr;
  // Baseline memoization (null = an internal cache private to this call —
  // repeated victims warm-start either way; pass one to share across calls).
  BaselineCache* baseline_cache = nullptr;
  // Convergence engine for the attacked states (see EngineKind).
  EngineKind engine = EngineKind::kDelta;
  // Import filter active during the attacked re-convergence (non-owning;
  // typically a defense::PolicySet). Baselines are computed filterless — see
  // AttackSimulator::RunAsppInterception.
  const bgp::ImportFilter* filter = nullptr;
};

// Runs the ASPP interception for every (attacker, victim) pair and returns
// results sorted by decreasing post-attack pollution — the ranking the
// paper's Figs. 7/8 plot.
std::vector<PairImpact> RunPairSweep(
    const topo::AsGraph& graph,
    const std::vector<std::pair<Asn, Asn>>& attacker_victim_pairs,
    const PairSweepOptions& options);

// Back-compat convenience overload.
std::vector<PairImpact> RunPairSweep(
    const topo::AsGraph& graph,
    const std::vector<std::pair<Asn, Asn>>& attacker_victim_pairs, int lambda,
    bool violate_valley_free = false, bool export_stripped_to_peers = true);

}  // namespace asppi::attack
