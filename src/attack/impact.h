// Attack impact analysis (paper §IV-B, §VI-B): run an attack against a
// converged baseline and quantify the pollution — the fraction of ASes whose
// best route to the victim now traverses the attacker.
#pragma once

#include <memory>
#include <vector>

#include "attack/interceptor.h"
#include "bgp/propagation.h"
#include "topology/as_graph.h"

namespace asppi::attack {

// Everything measured for one attacker/victim instance.
struct AttackOutcome {
  Asn victim = 0;
  Asn attacker = 0;
  int lambda = 1;  // victim's prepend count

  bgp::PropagationResult before;  // converged, attack-free
  bgp::PropagationResult after;   // converged under the attack

  // Fraction of ASes (excluding attacker and victim) whose best path
  // traverses the attacker — the paper's "% of paths traversing attacker".
  double fraction_before = 0.0;
  double fraction_after = 0.0;

  // ASes polluted by the attack: best path traverses the attacker after the
  // attack but did not before.
  std::vector<Asn> newly_polluted;
};

class AttackSimulator {
 public:
  explicit AttackSimulator(const topo::AsGraph& graph);

  // The ASPP-based interception attack: victim announces with λ prepends
  // (uniformly to all neighbors), attacker strips the padding.
  AttackOutcome RunAsppInterception(Asn victim, Asn attacker, int lambda,
                                    bool violate_valley_free = false,
                                    bool export_stripped_to_peers = true) const;

  // Same, but with an arbitrary caller-supplied prepend policy for the
  // victim (per-neighbor λ) — used by the detection tests where legitimate
  // traffic engineering must be distinguishable from the attack.
  AttackOutcome RunAsppInterceptionWithPolicy(
      const bgp::Announcement& announcement, Asn attacker,
      bool violate_valley_free = false,
      bool export_stripped_to_peers = true) const;

  // Baselines.
  AttackOutcome RunOriginHijack(Asn victim, Asn attacker, int lambda) const;
  AttackOutcome RunBallaniInterception(Asn victim, Asn attacker,
                                       int lambda) const;

  const bgp::PropagationSimulator& Engine() const { return engine_; }
  const topo::AsGraph& Graph() const { return graph_; }

 private:
  AttackOutcome RunWithTransform(const bgp::Announcement& announcement,
                                 Asn attacker,
                                 bgp::RouteTransform& transform) const;

  const topo::AsGraph& graph_;
  bgp::PropagationSimulator engine_;
};

// One row of the pair-sweep experiments (paper Figs. 7/8).
struct PairImpact {
  Asn attacker = 0;
  Asn victim = 0;
  double before = 0.0;
  double after = 0.0;
};

// Runs the ASPP interception for every (attacker, victim) pair and returns
// results sorted by decreasing post-attack pollution — the ranking the
// paper's Figs. 7/8 plot.
std::vector<PairImpact> RunPairSweep(
    const topo::AsGraph& graph,
    const std::vector<std::pair<Asn, Asn>>& attacker_victim_pairs, int lambda,
    bool violate_valley_free = false, bool export_stripped_to_peers = true);

}  // namespace asppi::attack
