#include "attack/impact.h"

#include <algorithm>
#include <unordered_set>

#include "util/check.h"

namespace asppi::attack {

AttackSimulator::AttackSimulator(const topo::AsGraph& graph,
                                 BaselineCache* baseline_cache,
                                 EngineKind engine)
    : graph_(graph),
      engine_(graph),
      delta_engine_(graph),
      baseline_cache_(baseline_cache),
      engine_kind_(engine) {
  if (baseline_cache_ != nullptr) {
    ASPPI_CHECK(&baseline_cache_->Graph() == &graph)
        << "baseline cache built on a different graph";
  }
}

AttackOutcome AttackSimulator::RunWithTransform(
    const bgp::Announcement& announcement, Asn attacker,
    bgp::RouteTransform& transform, int lambda,
    const bgp::ImportFilter* filter) const {
  ASPPI_CHECK(graph_.HasAs(attacker)) << "attacker AS" << attacker;
  AttackOutcome outcome;
  outcome.victim = announcement.origin;
  outcome.attacker = attacker;
  outcome.lambda = lambda;

  std::shared_ptr<const bgp::TraversalIndex> traversal;
  if (baseline_cache_ != nullptr) {
    BaselineEntry entry = baseline_cache_->GetEntry(announcement);
    outcome.before = std::move(entry.state);
    traversal = std::move(entry.traversal);
  } else {
    outcome.before = std::make_shared<const bgp::PropagationResult>(
        engine_.Run(announcement));
  }

  const std::size_t n = graph_.NumAses();
  const double denom = n > 2 ? static_cast<double>(n - 2) : 0.0;

  if (engine_kind_ == EngineKind::kDelta) {
    if (traversal == nullptr) {
      traversal = std::make_shared<const bgp::TraversalIndex>(*outcome.before);
    }
    bgp::DeltaResult delta =
        delta_engine_.Propagate(outcome.before, &transform, {attacker}, filter);

    // Incremental pollution accounting: only touched ASes can change
    // traversal membership, so adjust the baseline's indexed count over the
    // wavefront instead of re-scanning all n best paths. Touched indices are
    // ascending, matching the dense-scan order of AsesTraversing — so
    // newly_polluted comes out in the same order as the full engine's.
    const std::size_t before_count = traversal->TraversingCount(attacker);
    std::size_t after_count = before_count;
    const auto& base_best = outcome.before->BestRoutes();
    for (std::uint32_t index : delta.TouchedIndices()) {
      const Asn asn = graph_.AsnAt(index);
      if (asn == attacker || asn == announcement.origin) continue;
      const std::optional<bgp::Route>& was = base_best[index];
      const std::optional<bgp::Route>& now = delta.BestAtIndex(index);
      const bool was_p = was.has_value() && was->path.Contains(attacker);
      const bool now_p = now.has_value() && now->path.Contains(attacker);
      if (now_p && !was_p) {
        ++after_count;
        outcome.newly_polluted.push_back(asn);
      } else if (was_p && !now_p) {
        --after_count;
      }
    }
    if (denom > 0.0) {
      outcome.fraction_before = static_cast<double>(before_count) / denom;
      outcome.fraction_after = static_cast<double>(after_count) / denom;
    }
    outcome.after = std::move(delta);
    return outcome;
  }

  bgp::PropagationResult after =
      engine_.Resume(*outcome.before, &transform, {attacker}, filter);

  // One traversal scan per state; fractions and the pollution delta all
  // derive from these two sets (AsesTraversing is an O(n·pathlen) walk).
  const std::vector<Asn> before_set = outcome.before->AsesTraversing(attacker);
  const std::vector<Asn> after_set = after.AsesTraversing(attacker);
  if (denom > 0.0) {
    outcome.fraction_before = static_cast<double>(before_set.size()) / denom;
    outcome.fraction_after = static_cast<double>(after_set.size()) / denom;
  }

  std::unordered_set<Asn> before_lookup(before_set.begin(), before_set.end());
  for (Asn asn : after_set) {
    if (!before_lookup.contains(asn)) outcome.newly_polluted.push_back(asn);
  }
  outcome.after = std::move(after);
  return outcome;
}

AttackOutcome AttackSimulator::RunAsppInterception(
    Asn victim, Asn attacker, int lambda, bool violate_valley_free,
    bool export_stripped_to_peers, const bgp::ImportFilter* filter) const {
  ASPPI_CHECK_GE(lambda, 1);
  bgp::Announcement announcement;
  announcement.origin = victim;
  announcement.prepends.SetDefault(victim, lambda);
  return RunAsppInterceptionWithPolicy(announcement, attacker,
                                       violate_valley_free,
                                       export_stripped_to_peers, filter);
}

AttackOutcome AttackSimulator::RunAsppInterceptionWithPolicy(
    const bgp::Announcement& announcement, Asn attacker,
    bool violate_valley_free, bool export_stripped_to_peers,
    const bgp::ImportFilter* filter) const {
  AsppInterceptor::Config config;
  config.attacker = attacker;
  config.victim = announcement.origin;
  config.violate_valley_free = violate_valley_free;
  config.export_stripped_to_peers = export_stripped_to_peers;
  AsppInterceptor interceptor(config);
  return RunWithTransform(announcement, attacker, interceptor,
                          announcement.prepends.MaxPadsOf(announcement.origin),
                          filter);
}

AttackOutcome AttackSimulator::RunOriginHijack(
    Asn victim, Asn attacker, int lambda,
    const bgp::ImportFilter* filter) const {
  bgp::Announcement announcement;
  announcement.origin = victim;
  announcement.prepends.SetDefault(victim, lambda);
  OriginHijacker hijacker(attacker);
  return RunWithTransform(announcement, attacker, hijacker, lambda, filter);
}

AttackOutcome AttackSimulator::RunBallaniInterception(
    Asn victim, Asn attacker, int lambda,
    const bgp::ImportFilter* filter) const {
  bgp::Announcement announcement;
  announcement.origin = victim;
  announcement.prepends.SetDefault(victim, lambda);
  BallaniInterceptor interceptor(attacker, victim);
  return RunWithTransform(announcement, attacker, interceptor, lambda, filter);
}

std::vector<PairImpact> RunPairSweep(
    const topo::AsGraph& graph,
    const std::vector<std::pair<Asn, Asn>>& attacker_victim_pairs,
    const PairSweepOptions& options) {
  // Even a serial, cache-less call benefits from memoizing baselines within
  // the sweep: every attacker against a repeated victim reuses one Run().
  BaselineCache local_cache(graph);
  BaselineCache* cache = options.baseline_cache != nullptr
                             ? options.baseline_cache
                             : &local_cache;
  AttackSimulator simulator(graph, cache, options.engine);

  std::vector<PairImpact> results(attacker_victim_pairs.size());
  util::ParallelFor(
      options.pool, attacker_victim_pairs.size(), [&](std::size_t i) {
        const auto& [attacker, victim] = attacker_victim_pairs[i];
        AttackOutcome outcome = simulator.RunAsppInterception(
            victim, attacker, options.lambda, options.violate_valley_free,
            options.export_stripped_to_peers, options.filter);
        results[i] = PairImpact{attacker, victim, outcome.fraction_before,
                                outcome.fraction_after};
      });
  // Total order (pollution desc, then attacker, then victim): rows tied on
  // every key are identical, so the ranking is unique and thread-count- and
  // input-permutation-independent.
  std::sort(results.begin(), results.end(),
            [](const PairImpact& a, const PairImpact& b) {
              if (a.after != b.after) return a.after > b.after;
              if (a.attacker != b.attacker) return a.attacker < b.attacker;
              return a.victim < b.victim;
            });
  return results;
}

std::vector<PairImpact> RunPairSweep(
    const topo::AsGraph& graph,
    const std::vector<std::pair<Asn, Asn>>& attacker_victim_pairs, int lambda,
    bool violate_valley_free, bool export_stripped_to_peers) {
  PairSweepOptions options;
  options.lambda = lambda;
  options.violate_valley_free = violate_valley_free;
  options.export_stripped_to_peers = export_stripped_to_peers;
  return RunPairSweep(graph, attacker_victim_pairs, options);
}

}  // namespace asppi::attack
