#include "attack/impact.h"

#include <algorithm>
#include <unordered_set>

#include "util/check.h"

namespace asppi::attack {

AttackSimulator::AttackSimulator(const topo::AsGraph& graph)
    : graph_(graph), engine_(graph) {}

AttackOutcome AttackSimulator::RunWithTransform(
    const bgp::Announcement& announcement, Asn attacker,
    bgp::RouteTransform& transform) const {
  ASPPI_CHECK(graph_.HasAs(attacker)) << "attacker AS" << attacker;
  AttackOutcome outcome;
  outcome.victim = announcement.origin;
  outcome.attacker = attacker;
  outcome.lambda =
      announcement.prepends.PadsFor(announcement.origin, /*neighbor=*/0);

  outcome.before = engine_.Run(announcement);
  outcome.after = engine_.Resume(outcome.before, &transform, {attacker});

  outcome.fraction_before = outcome.before.FractionTraversing(attacker);
  outcome.fraction_after = outcome.after.FractionTraversing(attacker);

  std::vector<Asn> before_set = outcome.before.AsesTraversing(attacker);
  std::unordered_set<Asn> before_lookup(before_set.begin(), before_set.end());
  for (Asn asn : outcome.after.AsesTraversing(attacker)) {
    if (!before_lookup.contains(asn)) outcome.newly_polluted.push_back(asn);
  }
  return outcome;
}

AttackOutcome AttackSimulator::RunAsppInterception(
    Asn victim, Asn attacker, int lambda, bool violate_valley_free,
    bool export_stripped_to_peers) const {
  ASPPI_CHECK_GE(lambda, 1);
  bgp::Announcement announcement;
  announcement.origin = victim;
  announcement.prepends.SetDefault(victim, lambda);
  return RunAsppInterceptionWithPolicy(announcement, attacker,
                                       violate_valley_free,
                                       export_stripped_to_peers);
}

AttackOutcome AttackSimulator::RunAsppInterceptionWithPolicy(
    const bgp::Announcement& announcement, Asn attacker,
    bool violate_valley_free, bool export_stripped_to_peers) const {
  AsppInterceptor::Config config;
  config.attacker = attacker;
  config.victim = announcement.origin;
  config.violate_valley_free = violate_valley_free;
  config.export_stripped_to_peers = export_stripped_to_peers;
  AsppInterceptor interceptor(config);
  return RunWithTransform(announcement, attacker, interceptor);
}

AttackOutcome AttackSimulator::RunOriginHijack(Asn victim, Asn attacker,
                                               int lambda) const {
  bgp::Announcement announcement;
  announcement.origin = victim;
  announcement.prepends.SetDefault(victim, lambda);
  OriginHijacker hijacker(attacker);
  return RunWithTransform(announcement, attacker, hijacker);
}

AttackOutcome AttackSimulator::RunBallaniInterception(Asn victim, Asn attacker,
                                                      int lambda) const {
  bgp::Announcement announcement;
  announcement.origin = victim;
  announcement.prepends.SetDefault(victim, lambda);
  BallaniInterceptor interceptor(attacker, victim);
  return RunWithTransform(announcement, attacker, interceptor);
}

std::vector<PairImpact> RunPairSweep(
    const topo::AsGraph& graph,
    const std::vector<std::pair<Asn, Asn>>& attacker_victim_pairs, int lambda,
    bool violate_valley_free, bool export_stripped_to_peers) {
  AttackSimulator simulator(graph);
  std::vector<PairImpact> results;
  results.reserve(attacker_victim_pairs.size());
  for (const auto& [attacker, victim] : attacker_victim_pairs) {
    AttackOutcome outcome = simulator.RunAsppInterception(
        victim, attacker, lambda, violate_valley_free,
        export_stripped_to_peers);
    results.push_back(PairImpact{attacker, victim, outcome.fraction_before,
                                 outcome.fraction_after});
  }
  std::sort(results.begin(), results.end(),
            [](const PairImpact& a, const PairImpact& b) {
              if (a.after != b.after) return a.after > b.after;
              return a.attacker < b.attacker;
            });
  return results;
}

}  // namespace asppi::attack
