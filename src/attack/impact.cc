#include "attack/impact.h"

#include <algorithm>
#include <unordered_set>

#include "util/check.h"

namespace asppi::attack {

namespace {

// Pollution predicate generalized to attacker sets: a route counts when its
// path traverses any colluder.
bool TraversesAny(const std::optional<bgp::Route>& route,
                  std::span<const Asn> colluders) {
  if (!route.has_value()) return false;
  for (Asn asn : colluders) {
    if (route->path.Contains(asn)) return true;
  }
  return false;
}

bool IsColluder(Asn asn, std::span<const Asn> colluders) {
  return std::binary_search(colluders.begin(), colluders.end(), asn);
}

}  // namespace

AttackSimulator::AttackSimulator(const topo::AsGraph& graph,
                                 BaselineCache* baseline_cache,
                                 EngineKind engine)
    : graph_(graph),
      engine_(graph),
      delta_engine_(graph),
      baseline_cache_(baseline_cache),
      engine_kind_(engine) {
  if (baseline_cache_ != nullptr) {
    ASPPI_CHECK(&baseline_cache_->Graph() == &graph)
        << "baseline cache built on a different graph";
  }
}

AttackOutcome AttackSimulator::RunWithTransform(
    const bgp::Announcement& announcement, std::span<const Asn> colluders,
    bgp::RouteTransform& transform, int lambda,
    const bgp::ImportFilter* filter) const {
  ASPPI_CHECK(!colluders.empty()) << "attack needs at least one attacker";
  ASPPI_CHECK(std::is_sorted(colluders.begin(), colluders.end()));
  for (std::size_t i = 0; i < colluders.size(); ++i) {
    const Asn asn = colluders[i];
    ASPPI_CHECK(graph_.HasAs(asn)) << "attacker AS" << asn;
    ASPPI_CHECK_NE(asn, announcement.origin) << "origin cannot collude";
    if (i > 0) {
      ASPPI_CHECK_NE(asn, colluders[i - 1]) << "duplicate colluder";
    }
  }
  const Asn attacker = colluders.front();
  AttackOutcome outcome;
  outcome.victim = announcement.origin;
  outcome.attacker = attacker;
  outcome.colluders.assign(colluders.begin(), colluders.end());
  outcome.lambda = lambda;

  std::shared_ptr<const bgp::TraversalIndex> traversal;
  if (baseline_cache_ != nullptr) {
    BaselineEntry entry = baseline_cache_->GetEntry(announcement);
    outcome.before = std::move(entry.state);
    traversal = std::move(entry.traversal);
  } else {
    outcome.before = std::make_shared<const bgp::PropagationResult>(
        engine_.Run(announcement));
  }

  const std::size_t n = graph_.NumAses();
  // The paper's denominator excludes attacker and victim (n−2); a colluding
  // set excludes every colluder the same way.
  const std::size_t excluded = colluders.size() + 1;
  const double denom = n > excluded ? static_cast<double>(n - excluded) : 0.0;
  const std::vector<Asn> dirty(colluders.begin(), colluders.end());

  if (engine_kind_ == EngineKind::kDelta) {
    if (traversal == nullptr) {
      traversal = std::make_shared<const bgp::TraversalIndex>(*outcome.before);
    }
    bgp::DeltaResult delta =
        delta_engine_.Propagate(outcome.before, &transform, dirty, filter);
    outcome.converged = delta.Converged();

    // Incremental pollution accounting: only touched ASes can change
    // traversal membership, so adjust the baseline's indexed count over the
    // wavefront instead of re-scanning all n best paths. Touched indices are
    // ascending, matching the dense-scan order of AsesTraversing — so
    // newly_polluted comes out in the same order as the full engine's.
    const auto& base_best = outcome.before->BestRoutes();
    std::size_t before_count;
    if (colluders.size() == 1) {
      before_count = traversal->TraversingCount(attacker);
    } else {
      // The traversal index is single-ASN; a colluding set takes one dense
      // scan of the shared baseline (amortized across runs by the cache).
      before_count = 0;
      for (std::size_t index = 0; index < base_best.size(); ++index) {
        const Asn asn = graph_.AsnAt(static_cast<std::uint32_t>(index));
        if (asn == announcement.origin || IsColluder(asn, colluders)) continue;
        if (TraversesAny(base_best[index], colluders)) ++before_count;
      }
    }
    std::size_t after_count = before_count;
    for (std::uint32_t index : delta.TouchedIndices()) {
      const Asn asn = graph_.AsnAt(index);
      if (asn == announcement.origin || IsColluder(asn, colluders)) continue;
      const bool was_p = TraversesAny(base_best[index], colluders);
      const bool now_p = TraversesAny(delta.BestAtIndex(index), colluders);
      if (now_p && !was_p) {
        ++after_count;
        outcome.newly_polluted.push_back(asn);
      } else if (was_p && !now_p) {
        --after_count;
      }
    }
    if (denom > 0.0) {
      outcome.fraction_before = static_cast<double>(before_count) / denom;
      outcome.fraction_after = static_cast<double>(after_count) / denom;
    }
    outcome.after = std::move(delta);
    return outcome;
  }

  bgp::PropagationResult after =
      engine_.Resume(*outcome.before, &transform, dirty, filter);
  outcome.converged = after.Converged();

  if (colluders.size() == 1) {
    // One traversal scan per state; fractions and the pollution delta all
    // derive from these two sets (AsesTraversing is an O(n·pathlen) walk).
    const std::vector<Asn> before_set =
        outcome.before->AsesTraversing(attacker);
    const std::vector<Asn> after_set = after.AsesTraversing(attacker);
    if (denom > 0.0) {
      outcome.fraction_before = static_cast<double>(before_set.size()) / denom;
      outcome.fraction_after = static_cast<double>(after_set.size()) / denom;
    }
    std::unordered_set<Asn> before_lookup(before_set.begin(),
                                          before_set.end());
    for (Asn asn : after_set) {
      if (!before_lookup.contains(asn)) outcome.newly_polluted.push_back(asn);
    }
  } else {
    // Colluding set: dense scan of both states with the any-colluder
    // predicate, same index order as the delta engine's touched walk.
    const auto& base_best = outcome.before->BestRoutes();
    const auto& post_best = after.BestRoutes();
    std::size_t before_count = 0;
    std::size_t after_count = 0;
    for (std::size_t index = 0; index < base_best.size(); ++index) {
      const Asn asn = graph_.AsnAt(static_cast<std::uint32_t>(index));
      if (asn == announcement.origin || IsColluder(asn, colluders)) continue;
      const bool was_p = TraversesAny(base_best[index], colluders);
      const bool now_p = TraversesAny(post_best[index], colluders);
      if (was_p) ++before_count;
      if (now_p) ++after_count;
      if (now_p && !was_p) outcome.newly_polluted.push_back(asn);
    }
    if (denom > 0.0) {
      outcome.fraction_before = static_cast<double>(before_count) / denom;
      outcome.fraction_after = static_cast<double>(after_count) / denom;
    }
  }
  outcome.after = std::move(after);
  return outcome;
}

int AttackSimulator::RecordedLambda(
    const bgp::Announcement& announcement) const {
  const std::span<const topo::Edge> edges =
      graph_.NeighborsOf(announcement.origin);
  std::vector<Asn> neighbors;
  neighbors.reserve(edges.size());
  for (const topo::Edge& edge : edges) neighbors.push_back(edge.asn);
  return announcement.prepends.MaxPadsToward(announcement.origin, neighbors);
}

AttackOutcome AttackSimulator::RunTransform(
    const bgp::Announcement& announcement, std::span<const Asn> colluders,
    bgp::RouteTransform& transform, const bgp::ImportFilter* filter) const {
  return RunWithTransform(announcement, colluders, transform,
                          RecordedLambda(announcement), filter);
}

AttackOutcome AttackSimulator::RunAsppInterception(
    Asn victim, Asn attacker, int lambda, bool violate_valley_free,
    bool export_stripped_to_peers, const bgp::ImportFilter* filter) const {
  ASPPI_CHECK_GE(lambda, 1);
  bgp::Announcement announcement;
  announcement.origin = victim;
  announcement.prepends.SetDefault(victim, lambda);
  return RunAsppInterceptionWithPolicy(announcement, attacker,
                                       violate_valley_free,
                                       export_stripped_to_peers, filter);
}

AttackOutcome AttackSimulator::RunAsppInterceptionWithPolicy(
    const bgp::Announcement& announcement, Asn attacker,
    bool violate_valley_free, bool export_stripped_to_peers,
    const bgp::ImportFilter* filter) const {
  AsppInterceptor::Config config;
  config.attacker = attacker;
  config.victim = announcement.origin;
  config.violate_valley_free = violate_valley_free;
  config.export_stripped_to_peers = export_stripped_to_peers;
  AsppInterceptor interceptor(config);
  const Asn colluders[] = {attacker};
  return RunWithTransform(announcement, colluders, interceptor,
                          RecordedLambda(announcement), filter);
}

AttackOutcome AttackSimulator::RunOriginHijack(
    Asn victim, Asn attacker, int lambda,
    const bgp::ImportFilter* filter) const {
  bgp::Announcement announcement;
  announcement.origin = victim;
  announcement.prepends.SetDefault(victim, lambda);
  OriginHijacker hijacker(attacker);
  const Asn colluders[] = {attacker};
  return RunWithTransform(announcement, colluders, hijacker, lambda, filter);
}

AttackOutcome AttackSimulator::RunBallaniInterception(
    Asn victim, Asn attacker, int lambda,
    const bgp::ImportFilter* filter) const {
  bgp::Announcement announcement;
  announcement.origin = victim;
  announcement.prepends.SetDefault(victim, lambda);
  BallaniInterceptor interceptor(attacker, victim);
  const Asn colluders[] = {attacker};
  return RunWithTransform(announcement, colluders, interceptor, lambda,
                          filter);
}

std::vector<PairImpact> RunPairSweep(
    const topo::AsGraph& graph,
    const std::vector<std::pair<Asn, Asn>>& attacker_victim_pairs,
    const PairSweepOptions& options) {
  // Even a serial, cache-less call benefits from memoizing baselines within
  // the sweep: every attacker against a repeated victim reuses one Run().
  BaselineCache local_cache(graph);
  BaselineCache* cache = options.baseline_cache != nullptr
                             ? options.baseline_cache
                             : &local_cache;
  AttackSimulator simulator(graph, cache, options.engine);

  std::vector<PairImpact> results(attacker_victim_pairs.size());
  util::ParallelFor(
      options.pool, attacker_victim_pairs.size(), [&](std::size_t i) {
        const auto& [attacker, victim] = attacker_victim_pairs[i];
        AttackOutcome outcome = simulator.RunAsppInterception(
            victim, attacker, options.lambda, options.violate_valley_free,
            options.export_stripped_to_peers, options.filter);
        results[i] = PairImpact{attacker, victim, outcome.fraction_before,
                                outcome.fraction_after};
      });
  // Total order (pollution desc, then attacker, then victim): rows tied on
  // every key are identical, so the ranking is unique and thread-count- and
  // input-permutation-independent.
  std::sort(results.begin(), results.end(),
            [](const PairImpact& a, const PairImpact& b) {
              if (a.after != b.after) return a.after > b.after;
              if (a.attacker != b.attacker) return a.attacker < b.attacker;
              return a.victim < b.victim;
            });
  return results;
}

std::vector<PairImpact> RunPairSweep(
    const topo::AsGraph& graph,
    const std::vector<std::pair<Asn, Asn>>& attacker_victim_pairs, int lambda,
    bool violate_valley_free, bool export_stripped_to_peers) {
  PairSweepOptions options;
  options.lambda = lambda;
  options.violate_valley_free = violate_valley_free;
  options.export_stripped_to_peers = export_stripped_to_peers;
  return RunPairSweep(graph, attacker_victim_pairs, options);
}

}  // namespace asppi::attack
