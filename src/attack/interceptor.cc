#include "attack/interceptor.h"

#include <algorithm>

#include "util/check.h"

namespace asppi::attack {

AsppInterceptor::AsppInterceptor(const Config& config) : config_(config) {
  ASPPI_CHECK_NE(config.attacker, config.victim)
      << "attacker and victim must differ";
  ASPPI_CHECK_NE(config.attacker, 0u);
  ASPPI_CHECK_NE(config.victim, 0u);
}

ExportAction AsppInterceptor::OnExport(Asn exporter, Asn /*to*/,
                                       Relation to_rel,
                                       Relation /*learned_from*/,
                                       AsPath& path) {
  if (exporter != config_.attacker) return ExportAction::kDefault;
  if (!path.Contains(config_.victim)) return ExportAction::kDefault;
  const int removed = path.CollapseRunsOf(StripTarget());
  copies_removed_ += static_cast<std::size_t>(removed);
  // Nothing stripped (λ = 1): the attack gains nothing; behave normally.
  if (removed == 0) return ExportAction::kDefault;
  if (config_.violate_valley_free) return ExportAction::kForce;
  if (!config_.export_stripped_to_peers) return ExportAction::kDefault;
  // The stripped route masquerades as a customer route, so announcing it to
  // customers, siblings and peers raises no valley-free flag anywhere; the
  // restrained attacker only avoids announcing upward.
  return to_rel == Relation::kProvider ? ExportAction::kDefault
                                       : ExportAction::kForce;
}

std::optional<bgp::Route> AsppInterceptor::OverrideBest(
    Asn asn, std::span<const std::optional<bgp::Route>> candidates,
    const std::optional<bgp::Route>& policy_best) {
  if (!config_.violate_valley_free || asn != config_.attacker) {
    return std::nullopt;
  }
  // A policy-violating interceptor maximizes spread: among every received
  // route containing the victim, adopt the one whose stripped form is
  // shortest (ties broken by the normal decision order).
  const bgp::Route* chosen = nullptr;
  std::size_t chosen_len = 0;
  int strippable = 0;
  for (const auto& candidate : candidates) {
    if (!candidate.has_value() || !candidate->path.Contains(config_.victim)) {
      continue;
    }
    AsPath stripped = candidate->path;
    strippable = std::max(strippable,
                          stripped.CollapseRunsOf(StripTarget()));
    const std::size_t len = stripped.Length();
    if (chosen == nullptr || len < chosen_len ||
        (len == chosen_len && bgp::BetterRoute(*candidate, *chosen))) {
      chosen = &*candidate;
      chosen_len = len;
    }
  }
  // No padding anywhere (λ = 1): the attack is a no-op; keep normal routing.
  if (chosen == nullptr || strippable == 0) return std::nullopt;
  if (policy_best.has_value() && *policy_best == *chosen) return std::nullopt;
  return *chosen;
}

OriginHijacker::OriginHijacker(Asn attacker, int pads)
    : attacker_(attacker), pads_(pads) {
  ASPPI_CHECK_GE(pads, 1);
}

ExportAction OriginHijacker::OnExport(Asn exporter, Asn /*to*/,
                                      Relation /*to_rel*/,
                                      Relation /*learned_from*/,
                                      AsPath& path) {
  if (exporter != attacker_) return ExportAction::kDefault;
  path = AsPath::Origin(attacker_, pads_);
  // The hijacker announces "its own" prefix to everyone.
  return ExportAction::kForce;
}

BallaniInterceptor::BallaniInterceptor(Asn attacker, Asn victim)
    : attacker_(attacker), victim_(victim) {
  ASPPI_CHECK_NE(attacker, victim);
}

ExportAction BallaniInterceptor::OnExport(Asn exporter, Asn /*to*/,
                                          Relation /*to_rel*/,
                                          Relation /*learned_from*/,
                                          AsPath& path) {
  if (exporter != attacker_) return ExportAction::kDefault;
  path = AsPath({attacker_, victim_});
  return ExportAction::kForce;
}

}  // namespace asppi::attack
