// Attacker models, implemented as bgp::RouteTransform hooks.
//
// AsppInterceptor is the paper's contribution: the attacker M receives the
// victim's route [* V…V] (λ prepended copies) and re-exports [M * V] with the
// duplicate Vs removed, making the malicious route λ−1 hops shorter than any
// legitimate one — without introducing a bogus origin (MOAS) or a
// non-existent AS link (paper §II-B).
//
// The two classic hijack models are provided as baselines: OriginHijacker
// (bogus origin: [M…M]) and BallaniInterceptor (invalid next hop: [M V],
// fabricating an M–V adjacency). Both are detectable by prior tools; the
// ASPP attack is not, which is the paper's point.
#pragma once

#include "bgp/transform.h"

namespace asppi::attack {

using bgp::Asn;
using bgp::AsPath;
using bgp::ExportAction;
using bgp::Relation;

// The ASPP-based interception attacker.
class AsppInterceptor final : public bgp::RouteTransform {
 public:
  struct Config {
    Asn attacker = 0;
    Asn victim = 0;
    // Export behaviour (paper §VI-B). The stripped route [M * V] is
    // indistinguishable from a customer route to its receivers, so the
    // "follow valley-free" attacker announces it to customers, siblings AND
    // peers — the resulting paths still look valley-free to everyone — and
    // only refrains from announcing upward ("the attacker can only pollute
    // its customers, peers, and peers' customers"). With
    // violate_valley_free=true the attacker drops even that restraint: it
    // adopts the received route whose *stripped* form is shortest (not the
    // policy-preferred one) and announces it to providers as well — the
    // "violate routing policy" series of Figs. 11/12.
    bool violate_valley_free = false;
    // If false, a cautious attacker re-exports the stripped route strictly
    // per its own valley-free class (peer-/provider-learned stripped routes
    // reach only its customers — pollution bounded by the attacker's
    // customer cone). Default true per the paper's model ("the attacker can
    // pollute its customers, peers, and peers' customers").
    bool export_stripped_to_peers = true;
    // The AS whose prepended copies are stripped. 0 (default) strips the
    // victim's own padding; the paper notes the target "is not limited to
    // the origin AS. It can be any ASes who perform AS path prepending
    // before the attacker" — set this to strip an intermediary prepender.
    Asn padded_as = 0;
  };

  // The ASN whose runs this attacker collapses.
  Asn StripTarget() const {
    return config_.padded_as == 0 ? config_.victim : config_.padded_as;
  }

  explicit AsppInterceptor(const Config& config);

  ExportAction OnExport(Asn exporter, Asn to, Relation to_rel,
                        Relation learned_from, AsPath& path) override;

  std::optional<bgp::Route> OverrideBest(
      Asn asn, std::span<const std::optional<bgp::Route>> candidates,
      const std::optional<bgp::Route>& policy_best) override;

  // OverrideBest only ever acts at the attacker, and only in violate mode.
  bool MightOverride(Asn asn) const override {
    return config_.violate_valley_free && asn == config_.attacker;
  }

  // Total prepended copies removed across all exports so far (diagnostics).
  std::size_t CopiesRemoved() const { return copies_removed_; }

  const Config& GetConfig() const { return config_; }

 private:
  Config config_;
  std::size_t copies_removed_ = 0;
};

// Baseline: prefix ownership hijack (origin AS attack). The attacker
// announces the prefix as its own: every export becomes [M…M] (λ copies).
// Traffic to polluted ASes is blackholed.
class OriginHijacker final : public bgp::RouteTransform {
 public:
  OriginHijacker(Asn attacker, int pads = 1);

  ExportAction OnExport(Asn exporter, Asn to, Relation to_rel,
                        Relation learned_from, AsPath& path) override;

  bool MightOverride(Asn) const override { return false; }

 private:
  Asn attacker_;
  int pads_;
};

// Baseline: Ballani-style interception (invalid next hop). The attacker
// announces [M V], dropping every intermediate AS and fabricating a direct
// M–V link.
class BallaniInterceptor final : public bgp::RouteTransform {
 public:
  BallaniInterceptor(Asn attacker, Asn victim);

  ExportAction OnExport(Asn exporter, Asn to, Relation to_rel,
                        Relation learned_from, AsPath& path) override;

  bool MightOverride(Asn) const override { return false; }

 private:
  Asn attacker_;
  Asn victim_;
};

}  // namespace asppi::attack
