#include "attack/baseline_cache.h"

#include <exception>
#include <utility>

namespace asppi::attack {

namespace {

std::string KeyOf(const bgp::Announcement& announcement) {
  return std::to_string(announcement.origin) + '|' +
         announcement.prepends.KeyString();
}

}  // namespace

BaselineCache::BaselineCache(const topo::AsGraph& graph)
    : graph_(graph), engine_(graph) {}

std::shared_ptr<const bgp::PropagationResult> BaselineCache::Get(
    const bgp::Announcement& announcement) {
  const std::string key = KeyOf(announcement);
  std::promise<std::shared_ptr<const bgp::PropagationResult>> promise;
  std::shared_future<std::shared_ptr<const bgp::PropagationResult>> future;
  bool compute = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      future = it->second;
    } else {
      misses_.fetch_add(1, std::memory_order_relaxed);
      future = promise.get_future().share();
      entries_.emplace(key, future);
      compute = true;
    }
  }
  if (compute) {
    // Run outside the lock so distinct announcements converge concurrently;
    // waiters for *this* key block on the future instead of the mutex.
    try {
      promise.set_value(std::make_shared<const bgp::PropagationResult>(
          engine_.Run(announcement)));
    } catch (...) {
      promise.set_exception(std::current_exception());
    }
  }
  return future.get();
}

std::size_t BaselineCache::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace asppi::attack
