#include "attack/baseline_cache.h"

#include <exception>
#include <utility>

#include "util/metrics.h"

namespace asppi::attack {

namespace {

std::string KeyOf(const bgp::Announcement& announcement) {
  return std::to_string(announcement.origin) + '|' +
         announcement.prepends.KeyString();
}

// Hit/miss totals are deterministic for any thread count: the per-key
// shared_future guarantees exactly one miss per distinct announcement, and
// every other Get is a hit, however the lookups interleave.
struct CacheMetrics {
  util::Counter hits{"attack.baseline_cache.hits"};
  util::Counter misses{"attack.baseline_cache.misses"};
  util::Timer compute{"attack.baseline_cache.compute"};
};

CacheMetrics& Instr() {
  static CacheMetrics* m = new CacheMetrics();
  return *m;
}

}  // namespace

BaselineCache::BaselineCache(const topo::AsGraph& graph)
    : graph_(graph), engine_(graph) {}

BaselineEntry BaselineCache::GetEntry(const bgp::Announcement& announcement) {
  const std::string key = KeyOf(announcement);
  std::promise<BaselineEntry> promise;
  std::shared_future<BaselineEntry> future;
  bool compute = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      Instr().hits.Add();
      future = it->second;
    } else {
      Instr().misses.Add();
      future = promise.get_future().share();
      entries_.emplace(key, future);
      compute = true;
    }
  }
  if (compute) {
    // Run outside the lock so distinct announcements converge concurrently;
    // waiters for *this* key block on the future instead of the mutex.
    util::ScopedTimer compute_timer(Instr().compute);
    try {
      BaselineEntry entry;
      entry.state = std::make_shared<const bgp::PropagationResult>(
          engine_.Run(announcement));
      entry.traversal =
          std::make_shared<const bgp::TraversalIndex>(*entry.state);
      promise.set_value(std::move(entry));
    } catch (...) {
      promise.set_exception(std::current_exception());
    }
  }
  return future.get();
}

void BaselineCache::Put(
    std::shared_ptr<const bgp::PropagationResult> baseline) {
  const std::string key = KeyOf(baseline->GetAnnouncement());
  std::promise<BaselineEntry> promise;
  auto future = promise.get_future().share();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!entries_.emplace(key, future).second) return;  // already present
  }
  BaselineEntry entry;
  entry.traversal = std::make_shared<const bgp::TraversalIndex>(*baseline);
  entry.state = std::move(baseline);
  promise.set_value(std::move(entry));
}

std::size_t BaselineCache::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace asppi::attack
