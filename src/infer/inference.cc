#include "infer/inference.h"

#include <algorithm>
#include <set>

#include "bgp/routing_tree.h"
#include "util/check.h"

namespace asppi::infer {

namespace {

using PairKey = std::pair<Asn, Asn>;

PairKey Key(Asn a, Asn b) { return {std::min(a, b), std::max(a, b)}; }

// Degree of each AS as seen in the path set.
std::map<Asn, std::size_t> PathDegrees(
    const std::vector<std::vector<Asn>>& sequences) {
  std::map<Asn, std::set<Asn>> neighbors;
  for (const auto& seq : sequences) {
    for (std::size_t i = 0; i + 1 < seq.size(); ++i) {
      neighbors[seq[i]].insert(seq[i + 1]);
      neighbors[seq[i + 1]].insert(seq[i]);
    }
  }
  std::map<Asn, std::size_t> degrees;
  for (const auto& [asn, set] : neighbors) degrees[asn] = set.size();
  return degrees;
}

std::vector<std::vector<Asn>> CollapsePaths(const std::vector<AsPath>& paths) {
  std::vector<std::vector<Asn>> sequences;
  sequences.reserve(paths.size());
  for (const AsPath& path : paths) {
    std::vector<Asn> seq = path.DistinctSequence();
    if (seq.size() >= 2) sequences.push_back(std::move(seq));
  }
  return sequences;
}

// Directed transit votes: votes[{p, c}] = times p was observed providing
// transit toward c, plus peer-candidate counts at path tops.
struct Votes {
  std::map<PairKey, std::pair<std::size_t, std::size_t>> transit;
  // first = votes for "min-ASN side is the provider", second = other side
  std::map<PairKey, std::size_t> peer_candidates;
};

Votes CountVotes(const std::vector<std::vector<Asn>>& sequences,
                 const std::map<Asn, std::size_t>& degrees,
                 double peer_degree_ratio) {
  Votes votes;
  auto add_transit = [&votes](Asn provider, Asn customer) {
    auto key = Key(provider, customer);
    auto& [low_is_provider, high_is_provider] = votes.transit[key];
    if (provider == key.first) {
      ++low_is_provider;
    } else {
      ++high_is_provider;
    }
  };
  for (const auto& seq : sequences) {
    // Top provider: the highest-degree AS on the path.
    std::size_t top = 0;
    for (std::size_t i = 1; i < seq.size(); ++i) {
      if (degrees.at(seq[i]) > degrees.at(seq[top])) top = i;
    }
    // Uphill before the top (each next hop is the previous one's provider),
    // downhill after it.
    for (std::size_t i = 0; i + 1 < seq.size(); ++i) {
      if (i + 1 <= top) {
        add_transit(/*provider=*/seq[i + 1], /*customer=*/seq[i]);
      } else {
        add_transit(/*provider=*/seq[i], /*customer=*/seq[i + 1]);
      }
    }
    // Peering heuristic: the edge between the top provider and its
    // similar-degree neighbor is a peer candidate.
    auto consider_peer = [&](std::size_t i, std::size_t j) {
      double da = static_cast<double>(degrees.at(seq[i]));
      double db = static_cast<double>(degrees.at(seq[j]));
      double ratio = da > db ? da / db : db / da;
      if (ratio <= peer_degree_ratio) {
        ++votes.peer_candidates[Key(seq[i], seq[j])];
      }
    };
    if (top > 0) consider_peer(top - 1, top);
    if (top + 1 < seq.size()) consider_peer(top, top + 1);
  }
  return votes;
}

}  // namespace

void InferredRelationships::Set(Asn a, Asn b, Relation rel_of_b) {
  ASPPI_CHECK_NE(a, b);
  if (a < b) {
    links_[{a, b}] = rel_of_b;
  } else {
    links_[{b, a}] = topo::Reverse(rel_of_b);
  }
}

std::optional<Relation> InferredRelationships::Get(Asn a, Asn b) const {
  auto it = links_.find(Key(a, b));
  if (it == links_.end()) return std::nullopt;
  return a < b ? it->second : topo::Reverse(it->second);
}

topo::AsGraph InferredRelationships::ToGraph() const {
  topo::GraphBuilder builder;
  for (const auto& [pair, rel] : links_) {
    builder.AddLink(pair.first, pair.second, rel);
  }
  return builder.Freeze();
}

InferredRelationships InferGao(const std::vector<AsPath>& paths,
                               const GaoParams& params) {
  InferredRelationships result;
  std::vector<std::vector<Asn>> sequences = CollapsePaths(paths);
  if (sequences.empty()) return result;
  std::map<Asn, std::size_t> degrees = PathDegrees(sequences);
  Votes votes = CountVotes(sequences, degrees, params.peer_degree_ratio);

  std::set<PairKey> seeded;
  for (const auto& [a, b, rel] : params.seeds) {
    result.Set(a, b, rel);
    seeded.insert(Key(a, b));
  }

  for (const auto& [key, counts] : votes.transit) {
    if (seeded.contains(key)) continue;
    const auto [low_votes, high_votes] = counts;
    const Asn low = key.first;
    const Asn high = key.second;
    if (low_votes > 0 && high_votes > 0) {
      const double hi = static_cast<double>(std::max(low_votes, high_votes));
      const double lo = static_cast<double>(std::min(low_votes, high_votes));
      if (hi <= params.sibling_ratio * lo) {
        result.Set(low, high, Relation::kSibling);
        continue;
      }
    }
    // Peer heuristic: classify as peering when the peer-candidate votes
    // dominate the oriented transit votes.
    auto peer_it = votes.peer_candidates.find(key);
    const std::size_t peer_votes =
        peer_it == votes.peer_candidates.end() ? 0 : peer_it->second;
    const std::size_t oriented = std::max(low_votes, high_votes);
    if (peer_votes >= oriented && peer_votes > 0) {
      result.Set(low, high, Relation::kPeer);
      continue;
    }
    if (low_votes >= high_votes) {
      result.Set(low, high, Relation::kCustomer);  // low provides for high
    } else {
      result.Set(high, low, Relation::kCustomer);
    }
  }
  return result;
}

InferredRelationships InferCaidaLike(const std::vector<AsPath>& paths) {
  InferredRelationships result;
  std::vector<std::vector<Asn>> sequences = CollapsePaths(paths);
  if (sequences.empty()) return result;
  std::map<Asn, std::size_t> degrees = PathDegrees(sequences);

  // Adjacency as observed.
  std::set<PairKey> edges;
  for (const auto& seq : sequences) {
    for (std::size_t i = 0; i + 1 < seq.size(); ++i) {
      edges.insert(Key(seq[i], seq[i + 1]));
    }
  }
  auto adjacent = [&edges](Asn a, Asn b) { return edges.contains(Key(a, b)); };

  // Transit degree (AS-Rank style): distinct neighbors an AS is observed
  // *between*. Raw degree would crown richly-peered content ASes; transit
  // degree finds the true core.
  std::map<Asn, std::set<Asn>> transit_partners;
  for (const auto& seq : sequences) {
    for (std::size_t i = 1; i + 1 < seq.size(); ++i) {
      transit_partners[seq[i]].insert(seq[i - 1]);
      transit_partners[seq[i]].insert(seq[i + 1]);
    }
  }

  // Clique inference: greedily grow from the highest-transit-degree AS,
  // adding the next candidate adjacent to every current member.
  std::vector<std::pair<std::size_t, Asn>> by_degree;
  for (const auto& [asn, partners] : transit_partners) {
    by_degree.push_back({partners.size(), asn});
  }
  std::sort(by_degree.rbegin(), by_degree.rend());
  std::vector<Asn> clique;
  for (const auto& [degree, asn] : by_degree) {
    bool all_adjacent = true;
    for (Asn member : clique) {
      if (!adjacent(asn, member)) {
        all_adjacent = false;
        break;
      }
    }
    if (all_adjacent) clique.push_back(asn);
  }
  std::set<Asn> clique_set(clique.begin(), clique.end());

  // Orientation: votes with the path "top" = first clique member if present,
  // else the highest-degree AS.
  Votes votes;
  auto add_transit = [&votes](Asn provider, Asn customer) {
    auto key = Key(provider, customer);
    auto& counts = votes.transit[key];
    if (provider == key.first) {
      ++counts.first;
    } else {
      ++counts.second;
    }
  };
  auto transit_degree_of = [&transit_partners](Asn asn) {
    auto it = transit_partners.find(asn);
    return it == transit_partners.end() ? std::size_t{0} : it->second.size();
  };
  constexpr double kPeerTransitRatio = 4.0;
  for (const auto& seq : sequences) {
    std::size_t top = sequences.size();  // sentinel
    for (std::size_t i = 0; i < seq.size(); ++i) {
      if (clique_set.contains(seq[i])) {
        top = i;
        break;
      }
    }
    if (top >= seq.size()) {
      top = 0;
      for (std::size_t i = 1; i < seq.size(); ++i) {
        if (degrees.at(seq[i]) > degrees.at(seq[top])) top = i;
      }
    }
    for (std::size_t i = 0; i + 1 < seq.size(); ++i) {
      if (i + 1 <= top) {
        add_transit(seq[i + 1], seq[i]);
      } else {
        add_transit(seq[i], seq[i + 1]);
      }
    }
    // Peer heuristic (AS-Rank flavored): the edge at the path's apex between
    // ASes of comparable transit degree is likely settlement-free peering.
    auto consider_peer = [&](std::size_t i, std::size_t j) {
      double da = static_cast<double>(std::max<std::size_t>(
          transit_degree_of(seq[i]), 1));
      double db = static_cast<double>(std::max<std::size_t>(
          transit_degree_of(seq[j]), 1));
      double ratio = da > db ? da / db : db / da;
      if (ratio <= kPeerTransitRatio) {
        ++votes.peer_candidates[Key(seq[i], seq[j])];
      }
    };
    if (top > 0) consider_peer(top - 1, top);
    if (top + 1 < seq.size()) consider_peer(top, top + 1);
  }
  for (const auto& [key, counts] : votes.transit) {
    if (clique_set.contains(key.first) && clique_set.contains(key.second)) {
      result.Set(key.first, key.second, Relation::kPeer);
      continue;
    }
    auto peer_it = votes.peer_candidates.find(key);
    const std::size_t peer_votes =
        peer_it == votes.peer_candidates.end() ? 0 : peer_it->second;
    if (peer_votes >= std::max(counts.first, counts.second) &&
        peer_votes > 0) {
      result.Set(key.first, key.second, Relation::kPeer);
      continue;
    }
    if (counts.first >= counts.second) {
      result.Set(key.first, key.second, Relation::kCustomer);
    } else {
      result.Set(key.second, key.first, Relation::kCustomer);
    }
  }
  return result;
}

InferredRelationships InferConsensus(const std::vector<AsPath>& paths,
                                     const GaoParams& params) {
  InferredRelationships gao = InferGao(paths, params);
  InferredRelationships caida = InferCaidaLike(paths);
  GaoParams seeded = params;
  for (const auto& [pair, rel] : gao.Links()) {
    auto other = caida.Get(pair.first, pair.second);
    if (other.has_value() && *other == rel) {
      seeded.seeds.emplace_back(pair.first, pair.second, rel);
    }
  }
  return InferGao(paths, seeded);
}

InferenceScore Score(const InferredRelationships& inferred,
                     const topo::AsGraph& truth) {
  InferenceScore score;
  for (const auto& [pair, rel] : inferred.Links()) {
    if (!truth.HasAs(pair.first) || !truth.HasAs(pair.second)) {
      ++score.spurious;
      continue;
    }
    auto true_rel = truth.RelationOf(pair.first, pair.second);
    if (!true_rel.has_value()) {
      ++score.spurious;
      continue;
    }
    ++score.evaluated;
    if (*true_rel == rel) ++score.correct;
  }
  for (topo::AsId id = 0; id < truth.NumAses(); ++id) {
    const Asn a = truth.AsnAt(id);
    for (const topo::AsGraph::Neighbor& n : truth.NeighborsAt(id)) {
      if (a < n.asn && !inferred.Get(a, n.asn).has_value()) ++score.missed;
    }
  }
  return score;
}

std::vector<AsPath> CollectPaths(const topo::AsGraph& graph,
                                 std::span<const Asn> monitors,
                                 std::span<const Asn> origins) {
  std::vector<AsPath> paths;
  for (Asn origin : origins) {
    bgp::Announcement announcement;
    announcement.origin = origin;
    bgp::RoutingTree tree(graph, announcement);
    for (Asn monitor : monitors) {
      if (monitor == origin) continue;
      AsPath path = tree.PathFrom(monitor);
      if (path.Empty()) continue;
      // A collector peering with the monitor sees the monitor's own ASN at
      // the front of the exported path (RouteViews convention) — and without
      // it, core peering links (e.g. tier-1 meshes) never appear in the data.
      path.Prepend(monitor);
      paths.push_back(std::move(path));
    }
  }
  return paths;
}

}  // namespace asppi::infer
