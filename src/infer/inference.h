// AS business-relationship inference from observed AS paths (paper §IV-A).
//
// The paper builds its topology by (1) running Gao's classic degree/transit
// voting algorithm seeded with tier-1 peering links, (2) running a
// CAIDA-style clique-based inference, (3) taking the links both agree on and
// re-running Gao seeded with that agreement set. We implement the same
// pipeline and — because our generator provides ground truth — can score it.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "bgp/as_path.h"
#include "topology/as_graph.h"

namespace asppi::infer {

using bgp::AsPath;
using topo::Asn;
using topo::Relation;

// Inferred relationship for the unordered link {a, b} with a < b:
// the stored Relation is b's role relative to a (kCustomer = "a provides for
// b"), matching AsGraph::AddLink(a, b, rel).
class InferredRelationships {
 public:
  void Set(Asn a, Asn b, Relation rel_of_b);
  // nullopt if the link was never classified.
  std::optional<Relation> Get(Asn a, Asn b) const;
  std::size_t Size() const { return links_.size(); }
  const std::map<std::pair<Asn, Asn>, Relation>& Links() const {
    return links_;
  }

  // Materializes an AsGraph (useful to feed the simulator with an inferred
  // topology, as the paper does).
  topo::AsGraph ToGraph() const;

 private:
  std::map<std::pair<Asn, Asn>, Relation> links_;
};

struct GaoParams {
  // Vote-ratio bound under which opposing transit votes mean "sibling".
  double sibling_ratio = 1.0;
  // Degree-ratio bound for the peering heuristic at the path's top provider.
  double peer_degree_ratio = 10.0;
  // Seed relationships forced into the result (e.g. tier-1 peering links, or
  // the consensus agreement set).
  std::vector<std::tuple<Asn, Asn, Relation>> seeds;
};

// Gao's algorithm over observed (prepend-collapsed) AS paths.
InferredRelationships InferGao(const std::vector<AsPath>& paths,
                               const GaoParams& params);

// CAIDA-like inference: infer the clique of top ASes first, classify
// clique-internal links as peering, and orient the rest by position relative
// to the clique (falling back to degree voting).
InferredRelationships InferCaidaLike(const std::vector<AsPath>& paths);

// The paper's consensus pipeline: links where Gao and CAIDA-like agree seed
// a Gao re-run.
InferredRelationships InferConsensus(const std::vector<AsPath>& paths,
                                     const GaoParams& params);

// Accuracy of an inference against the generator's ground truth.
struct InferenceScore {
  std::size_t evaluated = 0;  // inferred links that exist in the truth
  std::size_t correct = 0;
  std::size_t spurious = 0;  // inferred links absent from the truth
  std::size_t missed = 0;    // true links never inferred (not on any path)
  double Accuracy() const {
    return evaluated == 0
               ? 0.0
               : static_cast<double>(correct) / static_cast<double>(evaluated);
  }
};

InferenceScore Score(const InferredRelationships& inferred,
                     const topo::AsGraph& truth);

// Collects observation paths: the best route from every monitor to every
// origin on a (sibling-free) topology, computed with the RoutingTree engine.
std::vector<AsPath> CollectPaths(const topo::AsGraph& graph,
                                 std::span<const Asn> monitors,
                                 std::span<const Asn> origins);

}  // namespace asppi::infer
