#include "data/measurement.h"

#include "bgp/routing_tree.h"
#include "util/check.h"
#include "util/rng.h"

namespace asppi::data {

MeasurementGenerator::MeasurementGenerator(const topo::AsGraph& graph,
                                           const MeasurementParams& params)
    : graph_(graph), params_(params) {
  AsppBehaviorModel model(params.behavior, params.seed);
  util::Rng rng(util::DeriveSeed(params.seed, 0xdeadbeef));
  plans_.reserve(params.num_prefixes);
  const auto& ases = graph.Ases();
  for (std::size_t i = 0; i < params.num_prefixes; ++i) {
    PrefixPlan plan;
    plan.prefix = SyntheticPrefix(i);
    plan.origin = ases[rng.Below(ases.size())];
    plan.lambda = model.BuildPolicy(graph, plan.origin, rng, plan.primary);
    model.BuildBackupPolicy(graph, plan.origin, plan.lambda, plan.backup);
    plans_.push_back(std::move(plan));
  }
}

Asn MeasurementGenerator::OriginOf(std::size_t prefix_index) const {
  ASPPI_CHECK_LT(prefix_index, plans_.size());
  return plans_[prefix_index].origin;
}

RibSnapshot MeasurementGenerator::GenerateRib(
    const std::vector<Asn>& monitors) const {
  RibSnapshot snapshot;
  for (Asn monitor : monitors) snapshot.tables[monitor];  // ensure presence
  for (const PrefixPlan& plan : plans_) {
    bgp::Announcement announcement;
    announcement.origin = plan.origin;
    announcement.prepends = plan.primary;
    bgp::RoutingTree tree(graph_, announcement);
    for (Asn monitor : monitors) {
      if (monitor == plan.origin) continue;
      AsPath path = tree.PathFrom(monitor);
      if (!path.Empty()) snapshot.tables[monitor][plan.prefix] = std::move(path);
    }
  }
  return snapshot;
}

std::vector<Update> MeasurementGenerator::GenerateUpdates(
    const std::vector<Asn>& monitors) const {
  std::vector<Update> updates;
  util::Rng rng(util::DeriveSeed(params_.seed, 0xca11));
  std::uint64_t sequence = 0;
  for (std::size_t event = 0; event < params_.num_churn_events; ++event) {
    const PrefixPlan& plan = plans_[rng.Below(plans_.size())];
    // Failure of the primary: re-announce under the backup policy (more
    // padding). With probability ½ the event is instead a restoration,
    // re-announcing the primary.
    const bool failover = rng.Chance(0.5);
    bgp::Announcement announcement;
    announcement.origin = plan.origin;
    announcement.prepends = failover ? plan.backup : plan.primary;
    bgp::RoutingTree tree(graph_, announcement);
    for (Asn monitor : monitors) {
      if (monitor == plan.origin) continue;
      AsPath path = tree.PathFrom(monitor);
      Update update;
      update.sequence = sequence++;
      update.monitor = monitor;
      update.prefix = plan.prefix;
      if (path.Empty()) {
        update.withdraw = true;
      } else {
        update.path = std::move(path);
      }
      updates.push_back(std::move(update));
    }
  }
  return updates;
}

}  // namespace asppi::data
