#include "data/characterize.h"

#include <algorithm>
#include <map>

namespace asppi::data {

int LongestRun(const bgp::AsPath& path) {
  int best = 0;
  int run = 0;
  Asn prev = 0;
  bool first = true;
  for (Asn hop : path.Hops()) {
    if (!first && hop == prev) {
      ++run;
    } else {
      run = 1;
    }
    best = std::max(best, run);
    prev = hop;
    first = false;
  }
  return best;
}

std::vector<double> PrependFractionPerMonitor(const RibSnapshot& snapshot) {
  std::vector<double> fractions;
  for (const auto& [monitor, table] : snapshot.tables) {
    if (table.empty()) continue;
    std::size_t prepended = 0;
    for (const auto& [prefix, path] : table) {
      if (path.HasPrepending()) ++prepended;
    }
    fractions.push_back(static_cast<double>(prepended) /
                        static_cast<double>(table.size()));
  }
  return fractions;
}

std::vector<double> PrependFractionPerMonitor(const RibSnapshot& snapshot,
                                              const std::vector<Asn>& subset) {
  RibSnapshot filtered;
  for (Asn monitor : subset) {
    auto it = snapshot.tables.find(monitor);
    if (it != snapshot.tables.end()) filtered.tables.insert(*it);
  }
  return PrependFractionPerMonitor(filtered);
}

std::vector<double> PrependFractionPerMonitorUpdates(
    const std::vector<Update>& updates) {
  std::map<Asn, std::pair<std::size_t, std::size_t>> counts;  // total, padded
  for (const Update& update : updates) {
    if (update.withdraw) continue;
    auto& [total, padded] = counts[update.monitor];
    ++total;
    if (update.path.HasPrepending()) ++padded;
  }
  std::vector<double> fractions;
  for (const auto& [monitor, pair] : counts) {
    if (pair.first == 0) continue;
    fractions.push_back(static_cast<double>(pair.second) /
                        static_cast<double>(pair.first));
  }
  return fractions;
}

util::Histogram PrependRunHistogram(const RibSnapshot& snapshot) {
  util::Histogram histogram;
  for (const auto& [monitor, table] : snapshot.tables) {
    for (const auto& [prefix, path] : table) {
      if (path.HasPrepending()) histogram.Add(LongestRun(path));
    }
  }
  return histogram;
}

util::Histogram PrependRunHistogram(const std::vector<Update>& updates) {
  util::Histogram histogram;
  for (const Update& update : updates) {
    if (update.withdraw) continue;
    if (update.path.HasPrepending()) histogram.Add(LongestRun(update.path));
  }
  return histogram;
}

}  // namespace asppi::data
