// IPv4 prefix type used by the measurement layer.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace asppi::data {

struct Prefix {
  std::uint32_t ip = 0;  // network byte-significance: 69.171.224.0 = 0x45ABE000
  std::uint8_t length = 24;

  // "69.171.224.0/20"
  std::string ToString() const;
  static std::optional<Prefix> Parse(const std::string& text);

  // Canonicalized: host bits below `length` cleared.
  Prefix Canonical() const;
  bool ContainsAddress(std::uint32_t address) const;

  auto operator<=>(const Prefix&) const = default;
};

// Deterministic synthetic prefix for an index (distinct, canonical, /16–/24).
Prefix SyntheticPrefix(std::size_t index);

}  // namespace asppi::data
