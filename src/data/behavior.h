// The ASPP behaviour model: which origins prepend, how much, and to whom.
//
// The paper measures (RouteViews/RIPE, Mar 2011): ~13 % of table routes carry
// prepending on the average monitor; among prepended routes ~34 % have λ=2,
// ~22 % λ=3, ~1 % λ>10; update streams are heavier in both dimensions. We
// substitute the measurement corpus with prefixes whose origins draw their
// prepend policies from a distribution calibrated to those anchors, so the
// characterization pipeline (Figs. 5–6) exercises the same computation and
// reproduces the same shapes.
#pragma once

#include <cstdint>

#include "bgp/policy.h"
#include "topology/as_graph.h"
#include "util/rng.h"

namespace asppi::data {

using bgp::Asn;

struct BehaviorParams {
  // Probability an origin AS applies ASPP to a given prefix at all.
  // Calibrated so the per-monitor observed fraction lands near the paper's
  // ~13 % table anchor (the decision process biases what monitors *see*
  // relative to what origins configure — paper §VI-A notes the same bias).
  double prepend_prob = 0.15;
  // Among prepending origins, P(λ = 2) and P(λ = 3); the rest of the mass is
  // a geometric tail over λ ≥ 4 with the parameter below. Selection bias
  // inflates small-λ routes at monitors, so the observed histogram peaks at
  // the paper's 34 %/22 % with ~1 % above 10.
  double lambda2_mass = 0.30;
  double lambda3_mass = 0.24;
  double tail_continue = 0.80;  // P(λ = k+1 | λ ≥ k ≥ 4)
  int max_lambda = 38;          // paper Fig. 6 x-range
  // Probability a prepending origin differentiates per neighbor (sends a
  // less-padded announcement to one preferred provider).
  double per_neighbor_prob = 0.5;
  // Probability an AS on the path performs intermediary prepending.
  double intermediary_prob = 0.01;
  int intermediary_pads = 2;
  // Backup announcements (visible in update streams) pad this much more.
  int backup_extra_pads = 4;
};

// Draws per-prefix prepend policies.
class AsppBehaviorModel {
 public:
  AsppBehaviorModel(const BehaviorParams& params, std::uint64_t seed);

  // Samples the origin's prepend count for one prefix (1 = no prepending).
  int SampleLambda(util::Rng& rng) const;

  // Builds the primary announcement policy for `origin` on `graph`:
  // the sampled λ as default, possibly a smaller λ toward one neighbor, and
  // occasional intermediary prepending by transit ASes. Returns the λ used
  // (1 if the origin does not prepend).
  int BuildPolicy(const topo::AsGraph& graph, Asn origin, util::Rng& rng,
                  bgp::PrependPolicy& out) const;

  // The matching backup policy: same shape, `backup_extra_pads` more copies
  // everywhere (provisioning a route that only wins after failures —
  // paper §V-A's "extreme case").
  void BuildBackupPolicy(const topo::AsGraph& graph, Asn origin,
                         int primary_lambda, bgp::PrependPolicy& out) const;

  const BehaviorParams& Params() const { return params_; }

 private:
  BehaviorParams params_;
  std::uint64_t seed_;
};

}  // namespace asppi::data
