#include "data/traceroute.h"

#include <sstream>

#include "util/rng.h"
#include "util/strings.h"

namespace asppi::data {

void TracerouteSimulator::SetHopCount(Asn asn, int hops) {
  hop_counts_[asn] = hops;
}

void TracerouteSimulator::SetLinkDelay(Asn a, Asn b, double ms) {
  link_ms_[{a, b}] = ms;
  link_ms_[{b, a}] = ms;
}

std::vector<TracerouteHop> TracerouteSimulator::Run(const AsPath& path,
                                                    std::uint64_t seed) const {
  std::vector<TracerouteHop> hops;
  util::Rng rng(seed);
  int hop_number = 1;
  double clock_ms = local_ms_;

  // Local gateway.
  TracerouteHop local;
  local.hop = hop_number++;
  local.delay_ms = clock_ms;
  local.ip = "192.168.1.1";
  hops.push_back(local);

  std::vector<Asn> sequence = path.DistinctSequence();
  Asn previous = 0;
  for (Asn asn : sequence) {
    // Inter-AS link crossing.
    double link = default_link_ms_;
    if (previous != 0) {
      auto it = link_ms_.find({previous, asn});
      if (it != link_ms_.end()) link = it->second;
    }
    clock_ms += link;

    int routers = 2;
    if (auto it = hop_counts_.find(asn); it != hop_counts_.end()) {
      routers = it->second;
    }
    for (int r = 0; r < routers; ++r) {
      if (r > 0) clock_ms += intra_as_ms_;
      TracerouteHop hop;
      hop.hop = hop_number++;
      // Small jitter so repeated hops inside an AS look like real captures.
      hop.delay_ms = clock_ms + rng.Uniform() * 2.0;
      hop.asn = asn;
      hop.ip = util::Format("%u.%u.%u.%u", 10 + (asn % 200),
                            static_cast<unsigned>((asn >> 8) & 0xff),
                            static_cast<unsigned>(asn & 0xff),
                            static_cast<unsigned>(r + 1));
      hops.push_back(hop);
    }
    previous = asn;
  }
  return hops;
}

std::string TracerouteSimulator::FormatTable(
    const std::vector<TracerouteHop>& hops) {
  std::ostringstream os;
  os << util::Format("%-4s %-9s %-18s %s\n", "Hop", "Delay", "IP", "ASN");
  for (const TracerouteHop& hop : hops) {
    std::string asn_text =
        hop.asn == 0 ? "" : util::Format("AS%u", static_cast<unsigned>(hop.asn));
    os << util::Format("%-4d %-9s %-18s %s\n", hop.hop,
                       util::Format("%.0f ms", hop.delay_ms).c_str(),
                       hop.ip.c_str(), asn_text.c_str());
  }
  return os.str();
}

}  // namespace asppi::data
