#include "data/behavior.h"

#include <algorithm>

#include "util/check.h"

namespace asppi::data {

AsppBehaviorModel::AsppBehaviorModel(const BehaviorParams& params,
                                     std::uint64_t seed)
    : params_(params), seed_(seed) {
  ASPPI_CHECK_GE(params.lambda2_mass + params.lambda3_mass, 0.0);
  ASPPI_CHECK_LE(params.lambda2_mass + params.lambda3_mass, 1.0);
}

int AsppBehaviorModel::SampleLambda(util::Rng& rng) const {
  if (!rng.Chance(params_.prepend_prob)) return 1;
  const double roll = rng.Uniform();
  if (roll < params_.lambda2_mass) return 2;
  if (roll < params_.lambda2_mass + params_.lambda3_mass) return 3;
  int lambda = 4;
  while (lambda < params_.max_lambda && rng.Chance(params_.tail_continue)) {
    ++lambda;
  }
  return lambda;
}

int AsppBehaviorModel::BuildPolicy(const topo::AsGraph& graph, Asn origin,
                                   util::Rng& rng,
                                   bgp::PrependPolicy& out) const {
  const int lambda = SampleLambda(rng);
  if (lambda > 1) {
    out.SetDefault(origin, lambda);
    // Per-neighbor differentiation: one preferred provider receives fewer
    // copies so it attracts the traffic (the legitimate pattern the detector
    // must not flag).
    if (rng.Chance(params_.per_neighbor_prob)) {
      std::span<const Asn> providers = graph.Providers(origin);
      if (!providers.empty()) {
        Asn preferred = rng.Pick(providers);
        out.SetForNeighbor(origin, preferred,
                           1 + static_cast<int>(rng.Below(
                                   static_cast<std::uint64_t>(lambda))));
      }
    }
  }
  // Sparse intermediary prepending by transit ASes.
  if (params_.intermediary_prob > 0.0) {
    // Sampling every AS per prefix is wasteful; sample a handful.
    const std::size_t n = graph.NumAses();
    const double expected = params_.intermediary_prob * static_cast<double>(n);
    std::size_t count = static_cast<std::size_t>(expected);
    if (rng.Chance(expected - static_cast<double>(count))) ++count;
    for (std::size_t i = 0; i < count; ++i) {
      Asn padder = graph.AsnAt(rng.Below(n));
      if (padder == origin) continue;
      out.SetDefault(padder, params_.intermediary_pads);
    }
  }
  return lambda;
}

void AsppBehaviorModel::BuildBackupPolicy(const topo::AsGraph& graph,
                                          Asn origin, int primary_lambda,
                                          bgp::PrependPolicy& out) const {
  (void)graph;
  out.SetDefault(origin,
                 std::min(params_.max_lambda,
                          primary_lambda + params_.backup_extra_pads));
}

}  // namespace asppi::data
