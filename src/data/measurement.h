// Synthetic measurement corpus: RIB snapshots at monitors plus an update
// stream, standing in for the RouteViews/RIPE data of the paper (2010–2011).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "bgp/as_path.h"
#include "data/behavior.h"
#include "data/prefix.h"
#include "topology/as_graph.h"

namespace asppi::data {

using bgp::AsPath;

// One monitor's table: prefix → best AS path.
using MonitorRib = std::map<Prefix, AsPath>;

// A full RIB snapshot across monitors.
struct RibSnapshot {
  std::map<Asn, MonitorRib> tables;
};

// One BGP update as seen by a collector.
struct Update {
  std::uint64_t sequence = 0;
  Asn monitor = 0;
  Prefix prefix;
  bool withdraw = false;
  AsPath path;  // empty for withdrawals
};

struct MeasurementParams {
  std::size_t num_prefixes = 1500;
  std::size_t num_churn_events = 600;
  std::uint64_t seed = 2011;
  BehaviorParams behavior;
};

// Generates the corpus on a sibling-free topology (the fast RoutingTree
// engine computes per-prefix tables).
//
// RIB model: each prefix originates at a random AS whose prepend policy is
// drawn from the behaviour model; monitors record their converged best paths.
//
// Update model: a churn event re-announces a prefix under its *backup*
// policy (failure of the primary) or back — monitors whose route changed emit
// updates. Backup routes carry more padding, which is exactly why the paper
// sees heavier prepending in update files than in tables (§VI-A).
class MeasurementGenerator {
 public:
  MeasurementGenerator(const topo::AsGraph& graph,
                       const MeasurementParams& params);

  // Converged tables for `monitors`.
  RibSnapshot GenerateRib(const std::vector<Asn>& monitors) const;

  // Update stream for the same corpus.
  std::vector<Update> GenerateUpdates(const std::vector<Asn>& monitors) const;

  // Origin chosen for prefix index i (deterministic).
  Asn OriginOf(std::size_t prefix_index) const;

 private:
  struct PrefixPlan {
    Prefix prefix;
    Asn origin = 0;
    int lambda = 1;
    bgp::PrependPolicy primary;
    bgp::PrependPolicy backup;
  };

  const topo::AsGraph& graph_;
  MeasurementParams params_;
  std::vector<PrefixPlan> plans_;
};

}  // namespace asppi::data
