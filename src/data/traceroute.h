// Data-plane traceroute simulation over an AS-level path (paper Table I).
//
// The paper verifies the control-plane anomaly in the data plane with a
// traceroute from a US AT&T customer to Facebook: hops inside each AS share
// that AS's cumulative delay, and the Pacific crossing into AS9318/AS4134
// shows up as a ~90 ms jump. We reproduce the same computation: an AS-level
// path is expanded into router hops using per-AS hop counts and per-link
// latencies.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "bgp/as_path.h"

namespace asppi::data {

using bgp::Asn;
using bgp::AsPath;

struct TracerouteHop {
  int hop = 0;            // 1-based hop number
  double delay_ms = 0.0;  // round-trip estimate at this hop
  std::string ip;         // synthetic router address
  Asn asn = 0;            // 0 = unmapped (the paper's private first hop)
};

class TracerouteSimulator {
 public:
  // Per-AS internal router hop count (default 2) and per-link one-way
  // propagation delay in ms (default 5).
  void SetHopCount(Asn asn, int hops);
  void SetLinkDelay(Asn a, Asn b, double ms);
  void SetDefaultLinkDelay(double ms) { default_link_ms_ = ms; }
  void SetIntraAsDelay(double ms) { intra_as_ms_ = ms; }
  // First-hop local gateway (192.168.1.1-style) latency.
  void SetLocalDelay(double ms) { local_ms_ = ms; }

  // Expands [src-local-net, distinct ASes of `path` ...] into router hops.
  // `path` is given monitor-side first (prepends are collapsed — duplicated
  // ASNs are a control-plane artifact, not extra routers).
  std::vector<TracerouteHop> Run(const AsPath& path,
                                 std::uint64_t seed = 1) const;

  static std::string FormatTable(const std::vector<TracerouteHop>& hops);

 private:
  std::map<Asn, int> hop_counts_;
  std::map<std::pair<Asn, Asn>, double> link_ms_;
  double default_link_ms_ = 5.0;
  double intra_as_ms_ = 1.0;
  double local_ms_ = 1.0;
};

}  // namespace asppi::data
