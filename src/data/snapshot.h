// Binary topology snapshots: a versioned, checksummed, mmap-able compilation
// of an AS graph, a prepend policy, and (optionally) precomputed attack-free
// baseline routing states.
//
// Every batch tool re-reads the as-rel text format and re-converges the
// victim's baseline on each invocation; the serve subsystem (and the
// --snapshot fast path of the batch tools) loads this format instead — fixed
// width binary records read straight out of an mmap'ed region, no line
// splitting, no strtol, and optionally no propagation at all when the
// snapshot carries checkpointed baselines (restored via
// bgp::PropagationResult::Restore and pre-seeded into attack::BaselineCache).
//
// Layout (all integers little-endian, byte-packed):
//
//   header:  magic "ASPPISNP" | u32 version | u32 section_count | u64 file_size
//   table:   section_count × { u32 type | u32 crc32 | u64 offset | u64 size }
//   payload: the sections, back to back
//
// Section types:
//   kInfo     (1): creator string + entity counts (printed by --info)
//   kTopology (2): v1 only — ASN list + link triples, rebuilt through
//                  GraphBuilder on load. Deprecated: v2 writers emit
//                  kCsrGraph instead and the rebuild path exists solely so
//                  old snapshot files keep loading.
//   kPolicy   (3): PrependPolicy defaults + per-neighbor overrides
//   kBaselines(4): checkpointed converged PropagationResults
//   kCsrGraph (5): the frozen AsGraph's CSR arrays verbatim, every array
//                  8-byte aligned relative to the file start. Loading is
//                  zero-copy: the graph's spans alias the mmap'ed region
//                  (validated by AsGraph::FromCsr) and the mapping is held
//                  alive by the graph's keepalive for the snapshot's
//                  lifetime. Written first so its file offset is the fixed,
//                  8-aligned end of the section table.
//   kDefense  (6): optional — one defense-policy tag byte per AS, dense in
//                  AsId order (defense::PolicySet::RawTags). Stored as raw
//                  bytes so the data layer stays independent of the defense
//                  library; consumers rehydrate via the PolicySet tag
//                  constructor. Omitted entirely for an empty deployment,
//                  keeping undefended snapshots byte-identical to pre-kDefense
//                  writers. Loaders that predate the section ignore it.
//
// Loading validates the magic, version, declared file size, section bounds,
// and each section's CRC32 before touching its payload; a truncated file,
// flipped bit, or version skew yields a clean error string, never UB. The
// CSR section additionally passes AsGraph::FromCsr's structural validation
// (extents, id ranges, back slots, grouping, interning table, ranks), so a
// CRC collision still cannot smuggle an out-of-bounds index into the
// engines. The graph a Snapshot owns lives on the heap so restored
// baselines (which hold a pointer to it) survive moves of the Snapshot.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bgp/propagation.h"
#include "topology/as_graph.h"

namespace asppi::data {

inline constexpr char kSnapshotMagic[8] = {'A', 'S', 'P', 'P',
                                           'I', 'S', 'N', 'P'};
inline constexpr std::uint32_t kSnapshotVersion = 2;

struct SnapshotInfo {
  std::uint32_t version = kSnapshotVersion;
  std::string creator;
  std::uint64_t num_ases = 0;
  std::uint64_t num_links = 0;
  std::uint64_t num_baselines = 0;
  // ASes with a non-empty defense tag (0 when the file has no kDefense
  // section); counted from the payload at load, not trusted from the file.
  std::uint64_t num_defense_tagged = 0;
  // True when the graph was rebuilt from a v1 kTopology section instead of
  // mapped zero-copy from a kCsrGraph section. Re-write such snapshots with a
  // current tool to drop the deprecated format.
  bool legacy_topology = false;
};

// Compiles `graph` + `policy` (+ optional checkpointed `baselines`, each of
// which must have been produced over `graph`) into `path`. `creator`
// identifies the producing tool in the info section. `defense_tags`, when
// non-empty, must hold exactly graph.NumAses() per-AsId policy-tag bytes
// (defense::PolicySet::RawTags) and becomes the kDefense section. Returns ""
// on success, else an error message.
std::string WriteSnapshotFile(
    const std::string& path, const topo::AsGraph& graph,
    const bgp::PrependPolicy& policy,
    const std::vector<std::shared_ptr<const bgp::PropagationResult>>&
        baselines,
    const std::string& creator,
    const std::vector<std::uint8_t>& defense_tags = {});

// A loaded snapshot: owns the graph, the policy, and the restored baselines.
class Snapshot {
 public:
  Snapshot();
  Snapshot(Snapshot&&) noexcept = default;
  Snapshot& operator=(Snapshot&&) noexcept = default;

  // mmap + validate + materialize. Returns "" on success, else an error
  // message ("<path>: section 2: CRC mismatch"). `out` is only modified on
  // success.
  static std::string Load(const std::string& path, Snapshot& out);

  // True if `path` starts with the snapshot magic (the tools use this to
  // route a file to the binary or the text loader).
  static bool SniffFile(const std::string& path);

  const SnapshotInfo& Info() const { return info_; }
  const topo::AsGraph& Graph() const { return *graph_; }
  const bgp::PrependPolicy& Policy() const { return policy_; }
  const std::vector<std::shared_ptr<const bgp::PropagationResult>>&
  Baselines() const {
    return baselines_;
  }
  // Per-AsId defense-policy tag bytes; empty when the file carries no
  // kDefense section, else exactly Graph().NumAses() entries.
  const std::vector<std::uint8_t>& DefenseTags() const { return defense_tags_; }

 private:
  SnapshotInfo info_;
  std::unique_ptr<topo::AsGraph> graph_;
  bgp::PrependPolicy policy_;
  std::vector<std::shared_ptr<const bgp::PropagationResult>> baselines_;
  std::vector<std::uint8_t> defense_tags_;
};

}  // namespace asppi::data
