#include "data/formats.h"

#include <fstream>
#include <ostream>

#include "util/strings.h"

namespace asppi::data {

void WriteRib(const RibSnapshot& snapshot, std::ostream& os) {
  os << "# asppi rib format: monitor|prefix|as-path\n";
  for (const auto& [monitor, table] : snapshot.tables) {
    for (const auto& [prefix, path] : table) {
      os << monitor << "|" << prefix.ToString() << "|" << path.ToString()
         << "\n";
    }
  }
}

void WriteRibFile(const RibSnapshot& snapshot, const std::string& path) {
  std::ofstream os(path);
  WriteRib(snapshot, os);
}

std::string ReadRib(std::istream& is, RibSnapshot& out) {
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    std::string_view trimmed = util::Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::vector<std::string> parts = util::Split(std::string(trimmed), '|');
    if (parts.size() != 3) {
      return util::Format("line %zu: expected 3 fields", lineno);
    }
    auto monitor = util::ParseUint(parts[0]);
    if (!monitor || *monitor == 0 || *monitor > 0xffffffffULL) {
      return util::Format("line %zu: bad monitor ASN '%s'", lineno,
                          parts[0].c_str());
    }
    auto prefix = Prefix::Parse(parts[1]);
    if (!prefix) {
      return util::Format("line %zu: bad prefix '%s'", lineno,
                          parts[1].c_str());
    }
    auto path = bgp::AsPath::FromString(parts[2]);
    if (!path || path->Empty()) {
      return util::Format("line %zu: bad as-path '%s'", lineno,
                          parts[2].c_str());
    }
    out.tables[static_cast<Asn>(*monitor)][*prefix] = std::move(*path);
  }
  return "";
}

std::string ReadRibFile(const std::string& path, RibSnapshot& out) {
  std::ifstream is(path);
  if (!is) return util::Format("cannot open '%s'", path.c_str());
  return ReadRib(is, out);
}

void WriteUpdates(const std::vector<Update>& updates, std::ostream& os) {
  os << "# asppi update format: seq|monitor|A|prefix|as-path or "
        "seq|monitor|W|prefix\n";
  for (const Update& update : updates) {
    os << update.sequence << "|" << update.monitor << "|"
       << (update.withdraw ? "W" : "A") << "|" << update.prefix.ToString();
    if (!update.withdraw) os << "|" << update.path.ToString();
    os << "\n";
  }
}

void WriteUpdatesFile(const std::vector<Update>& updates,
                      const std::string& path) {
  std::ofstream os(path);
  WriteUpdates(updates, os);
}

std::string ReadUpdates(std::istream& is, std::vector<Update>& out) {
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    std::string_view trimmed = util::Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::vector<std::string> parts = util::Split(std::string(trimmed), '|');
    if (parts.size() < 4) {
      return util::Format("line %zu: expected >= 4 fields", lineno);
    }
    auto seq = util::ParseUint(parts[0]);
    if (!seq) {
      return util::Format("line %zu: bad sequence '%s'", lineno,
                          parts[0].c_str());
    }
    auto monitor = util::ParseUint(parts[1]);
    if (!monitor || *monitor == 0 || *monitor > 0xffffffffULL) {
      return util::Format("line %zu: bad monitor ASN '%s'", lineno,
                          parts[1].c_str());
    }
    auto prefix = Prefix::Parse(parts[3]);
    if (!prefix) {
      return util::Format("line %zu: bad prefix '%s'", lineno,
                          parts[3].c_str());
    }
    Update update;
    update.sequence = *seq;
    update.monitor = static_cast<Asn>(*monitor);
    update.prefix = *prefix;
    if (parts[2] == "W") {
      if (parts.size() != 4) {
        return util::Format("line %zu: withdrawal has a path", lineno);
      }
      update.withdraw = true;
    } else if (parts[2] == "A") {
      if (parts.size() != 5) {
        return util::Format("line %zu: announcement needs a path", lineno);
      }
      auto path = bgp::AsPath::FromString(parts[4]);
      if (!path || path->Empty()) {
        return util::Format("line %zu: bad as-path '%s'", lineno,
                            parts[4].c_str());
      }
      update.path = std::move(*path);
    } else {
      return util::Format("line %zu: unknown update type '%s'", lineno,
                          parts[2].c_str());
    }
    out.push_back(std::move(update));
  }
  return "";
}

std::string ReadUpdatesFile(const std::string& path, std::vector<Update>& out) {
  std::ifstream is(path);
  if (!is) return util::Format("cannot open '%s'", path.c_str());
  return ReadUpdates(is, out);
}

}  // namespace asppi::data
