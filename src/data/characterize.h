// Characterization of ASPP usage in routing data (paper §VI-A, Figs. 5–6).
#pragma once

#include <vector>

#include "data/measurement.h"
#include "util/stats.h"

namespace asppi::data {

// Per-monitor fraction of prefixes whose best route carries prepending —
// the samples behind the paper's Fig. 5 CDF.
std::vector<double> PrependFractionPerMonitor(const RibSnapshot& snapshot);
// Same restricted to a subset of monitors (e.g. tier-1 only).
std::vector<double> PrependFractionPerMonitor(const RibSnapshot& snapshot,
                                              const std::vector<Asn>& subset);

// Fraction of updates (announcements) carrying prepending, per monitor.
std::vector<double> PrependFractionPerMonitorUpdates(
    const std::vector<Update>& updates);

// Histogram of the prepend run length (number of duplicated ASN copies) over
// all prepended routes in the snapshot / update stream — paper Fig. 6. Keyed
// by the longest consecutive run of a single ASN in the path (λ for
// source-prepended routes).
util::Histogram PrependRunHistogram(const RibSnapshot& snapshot);
util::Histogram PrependRunHistogram(const std::vector<Update>& updates);

// Longest consecutive run of any single ASN in a path.
int LongestRun(const bgp::AsPath& path);

}  // namespace asppi::data
