// Text formats for RIB snapshots and update streams.
//
//   .rib:  monitor|prefix|as-path       (one best route per line)
//   .upd:  seq|monitor|A|prefix|as-path (announcement)
//          seq|monitor|W|prefix         (withdrawal)
//
// '#' lines are comments. AS paths are space-separated ASNs, prepends
// included, most-recent hop first (RouteViews convention).
#pragma once

#include <iosfwd>
#include <string>

#include "data/measurement.h"

namespace asppi::data {

void WriteRib(const RibSnapshot& snapshot, std::ostream& os);
void WriteRibFile(const RibSnapshot& snapshot, const std::string& path);
// Returns "" on success, else an error message.
std::string ReadRib(std::istream& is, RibSnapshot& out);
std::string ReadRibFile(const std::string& path, RibSnapshot& out);

void WriteUpdates(const std::vector<Update>& updates, std::ostream& os);
void WriteUpdatesFile(const std::vector<Update>& updates,
                      const std::string& path);
std::string ReadUpdates(std::istream& is, std::vector<Update>& out);
std::string ReadUpdatesFile(const std::string& path, std::vector<Update>& out);

}  // namespace asppi::data
