#include "data/snapshot.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cstring>
#include <fstream>
#include <memory>
#include <utility>

#include "util/crc32.h"
#include "util/metrics.h"
#include "util/strings.h"

namespace asppi::data {

namespace {

struct SnapshotMetrics {
  util::Counter writes{"data.snapshot.writes"};
  util::Counter loads{"data.snapshot.loads"};
  util::Counter load_errors{"data.snapshot.load_errors"};
  util::Timer load_time{"data.snapshot.load"};
};

SnapshotMetrics& Instr() {
  static SnapshotMetrics* m = new SnapshotMetrics();
  return *m;
}

enum SectionType : std::uint32_t {
  kInfo = 1,
  kTopology = 2,  // v1 only; loads through the GraphBuilder rebuild path
  kPolicy = 3,
  kBaselines = 4,
  kCsrGraph = 5,  // v2: frozen CSR arrays, mapped zero-copy
  kDefense = 6,   // optional: per-AsId defense-policy tag bytes
};

constexpr std::size_t kHeaderSize = 8 + 4 + 4 + 8;
constexpr std::size_t kSectionEntrySize = 4 + 4 + 8 + 8;
// n | edge count | link count | rank count | connected | acyclic | reserved.
constexpr std::size_t kCsrHeaderSize = 8 + 8 + 8 + 4 + 1 + 1 + 2;
static_assert(kCsrHeaderSize % 8 == 0,
              "CSR arrays must start 8-aligned after the section header");
constexpr std::size_t AlignUp8(std::size_t x) { return (x + 7) & ~std::size_t{7}; }
// Relations are stored as their enum byte; anything above kSibling is
// corruption the CRC missed (or a crafted file) and must not reach a cast.
constexpr std::uint8_t kMaxRelationByte = 3;
// Defense tags are a defense::PolicyKind bit mask; bits above kAllPolicies
// (rov | pathval | detector = 7) only exist in corrupted or future files,
// and future files bump the snapshot version.
constexpr std::uint8_t kMaxDefenseTagByte = 7;

// --- byte-packed little-endian encoding -----------------------------------

class ByteWriter {
 public:
  void U8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(static_cast<char>(v >> (8 * i)));
  }
  void I32(std::int32_t v) { U32(static_cast<std::uint32_t>(v)); }
  void U64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<char>(v >> (8 * i)));
  }
  void Str(const std::string& s) {
    U32(static_cast<std::uint32_t>(s.size()));
    out_.append(s);
  }
  void Raw(const void* data, std::size_t bytes) {
    if (bytes != 0) out_.append(static_cast<const char*>(data), bytes);
  }
  void PadTo8() { out_.append(AlignUp8(out_.size()) - out_.size(), '\0'); }

  const std::string& Bytes() const { return out_; }

 private:
  std::string out_;
};

class ByteReader {
 public:
  ByteReader(const unsigned char* data, std::size_t size)
      : data_(data), size_(size) {}

  bool U8(std::uint8_t* v) {
    if (pos_ + 1 > size_) return false;
    *v = data_[pos_++];
    return true;
  }
  bool U32(std::uint32_t* v) {
    if (pos_ + 4 > size_) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return true;
  }
  bool I32(std::int32_t* v) {
    std::uint32_t u;
    if (!U32(&u)) return false;
    std::memcpy(v, &u, sizeof(*v));
    return true;
  }
  bool U64(std::uint64_t* v) {
    if (pos_ + 8 > size_) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    return true;
  }
  bool Str(std::string* s) {
    std::uint32_t len;
    if (!U32(&len) || pos_ + len > size_) return false;
    s->assign(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return true;
  }

  bool AtEnd() const { return pos_ == size_; }

 private:
  const unsigned char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// --- route / policy / state encodings --------------------------------------

void WriteRoute(ByteWriter& w, const bgp::Route& route) {
  w.U32(static_cast<std::uint32_t>(route.path.Hops().size()));
  for (topo::Asn hop : route.path.Hops()) w.U32(hop);
  w.U32(route.learned_from);
  w.U8(static_cast<std::uint8_t>(route.rel));
  w.U8(static_cast<std::uint8_t>(route.effective));
}

bool ReadRoute(ByteReader& r, bgp::Route* route) {
  std::uint32_t len;
  if (!r.U32(&len)) return false;
  std::vector<topo::Asn> hops(len);
  for (std::uint32_t i = 0; i < len; ++i) {
    if (!r.U32(&hops[i])) return false;
  }
  route->path = bgp::AsPath(std::move(hops));
  std::uint8_t rel, effective;
  if (!r.U32(&route->learned_from) || !r.U8(&rel) || !r.U8(&effective)) {
    return false;
  }
  if (rel > kMaxRelationByte || effective > kMaxRelationByte) return false;
  route->rel = static_cast<topo::Relation>(rel);
  route->effective = static_cast<topo::Relation>(effective);
  return true;
}

void WritePolicy(ByteWriter& w, const bgp::PrependPolicy& policy) {
  w.U64(policy.Defaults().size());
  for (const auto& [asn, pads] : policy.Defaults()) {
    w.U32(asn);
    w.I32(pads);
  }
  w.U64(policy.Overrides().size());
  for (const auto& [key, pads] : policy.Overrides()) {
    w.U32(key.first);
    w.U32(key.second);
    w.I32(pads);
  }
}

bool ReadPolicy(ByteReader& r, bgp::PrependPolicy* policy) {
  std::uint64_t num_defaults;
  if (!r.U64(&num_defaults)) return false;
  for (std::uint64_t i = 0; i < num_defaults; ++i) {
    std::uint32_t asn;
    std::int32_t pads;
    if (!r.U32(&asn) || !r.I32(&pads)) return false;
    policy->SetDefault(asn, pads);
  }
  std::uint64_t num_overrides;
  if (!r.U64(&num_overrides)) return false;
  for (std::uint64_t i = 0; i < num_overrides; ++i) {
    std::uint32_t exporter, neighbor;
    std::int32_t pads;
    if (!r.U32(&exporter) || !r.U32(&neighbor) || !r.I32(&pads)) return false;
    policy->SetForNeighbor(exporter, neighbor, pads);
  }
  return true;
}

// v1 rebuild path: links re-enter a GraphBuilder and the graph is re-frozen
// on every load (re-interning, re-ranking — work the kCsrGraph section makes
// unnecessary). Kept only so pre-v2 snapshot files stay loadable.
std::string ParseTopologySection(ByteReader r, topo::GraphBuilder* builder) {
  std::uint64_t num_ases;
  if (!r.U64(&num_ases)) return "truncated AS count";
  for (std::uint64_t i = 0; i < num_ases; ++i) {
    std::uint32_t asn;
    if (!r.U32(&asn)) return "truncated AS list";
    builder->AddAs(asn);
  }
  if (builder->NumAses() != num_ases) return "duplicate ASN in AS list";
  std::uint64_t num_links;
  if (!r.U64(&num_links)) return "truncated link count";
  for (std::uint64_t i = 0; i < num_links; ++i) {
    std::uint32_t a, b;
    std::uint8_t rel;
    if (!r.U32(&a) || !r.U32(&b) || !r.U8(&rel)) return "truncated link list";
    if (rel > kMaxRelationByte) return "invalid relation code";
    if (rel == static_cast<std::uint8_t>(topo::Relation::kProvider)) {
      return "link stored from the customer side";
    }
    if (a == b) return "self-link";
    if (!builder->HasAs(a) || !builder->HasAs(b)) return "link to unknown AS";
    if (builder->RelationOf(a, b).has_value()) return "duplicate link";
    builder->AddLink(a, b, static_cast<topo::Relation>(rel));
  }
  if (!r.AtEnd()) return "trailing bytes";
  return "";
}

// The CSR section copies the frozen arrays verbatim, so the on-disk byte
// order is the host's — fine everywhere this code builds (the explicit
// little-endian framing around it keeps the rest of the format portable).
static_assert(std::endian::native == std::endian::little,
              "kCsrGraph serialization assumes a little-endian host");

std::string BuildCsrSection(const topo::AsGraph& graph) {
  const topo::AsGraph::CsrArrays csr = graph.Csr();
  ByteWriter w;
  w.U64(csr.asn_of.size());
  w.U64(csr.edges.size());
  w.U64(csr.num_links);
  w.U32(csr.num_ranks);
  w.U8(csr.connected ? 1 : 0);
  w.U8(csr.acyclic ? 1 : 0);
  w.U8(0);
  w.U8(0);
  // Every array padded to the next 8-byte boundary (the trailing pad keeps
  // the section itself 8-aligned in case a later section wants alignment
  // too). Pad bytes are covered by the section CRC like any payload byte.
  auto emit = [&w](const void* data, std::size_t bytes) {
    w.Raw(data, bytes);
    w.PadTo8();
  };
  emit(csr.asn_of.data(), csr.asn_of.size_bytes());
  emit(csr.lookup_asn.data(), csr.lookup_asn.size_bytes());
  emit(csr.lookup_id.data(), csr.lookup_id.size_bytes());
  emit(csr.offsets.data(), csr.offsets.size_bytes());
  emit(csr.seg_ends.data(), csr.seg_ends.size_bytes());
  emit(csr.ranks.data(), csr.ranks.size_bytes());
  emit(csr.ids_by_rank.data(), csr.ids_by_rank.size_bytes());
  emit(csr.rank_pos.data(), csr.rank_pos.size_bytes());
  emit(csr.edge_asns.data(), csr.edge_asns.size_bytes());
  emit(csr.edges.data(), csr.edges.size_bytes());
  return w.Bytes();
}

// Builds the graph's spans directly over the mapped section bytes; `keepalive`
// (the whole mapping) is held by the graph. AsGraph::FromCsr re-validates
// every structural invariant, so nothing a CRC collision lets through can
// reach the engines as an out-of-bounds index.
std::string ParseCsrSection(const unsigned char* base, std::size_t size,
                            std::shared_ptr<const void> keepalive,
                            topo::AsGraph* out) {
  if (reinterpret_cast<std::uintptr_t>(base) % 8 != 0) {
    return "section not on an 8-aligned file offset";
  }
  ByteReader header(base, std::min(size, kCsrHeaderSize));
  std::uint64_t n64, m64, num_links;
  std::uint32_t num_ranks;
  std::uint8_t connected, acyclic, reserved0, reserved1;
  if (!header.U64(&n64) || !header.U64(&m64) || !header.U64(&num_links) ||
      !header.U32(&num_ranks) || !header.U8(&connected) ||
      !header.U8(&acyclic) || !header.U8(&reserved0) ||
      !header.U8(&reserved1)) {
    return "truncated header";
  }
  // AsId and the offsets array are 32-bit, so plausible counts fit easily;
  // this also keeps every byte-size computation below overflow-free.
  if (n64 >= 0xFFFFFFFFull || m64 > 0xFFFFFFFFull) {
    return "implausible entity counts";
  }
  const std::size_t n = static_cast<std::size_t>(n64);
  const std::size_t m = static_cast<std::size_t>(m64);
  std::size_t pos = kCsrHeaderSize;
  bool truncated = false;
  auto take = [&](std::size_t bytes) -> const unsigned char* {
    if (bytes > size || pos > size - bytes) {
      truncated = true;
      return nullptr;
    }
    const unsigned char* p = base + pos;
    pos = AlignUp8(pos + bytes);
    return p;
  };
  const unsigned char* asn_of = take(n * 4);
  const unsigned char* lookup_asn = take(n * 4);
  const unsigned char* lookup_id = take(n * 4);
  const unsigned char* offsets = take((n + 1) * 4);
  const unsigned char* seg_ends = take(3 * n * 4);
  const unsigned char* ranks = take(n * 4);
  const unsigned char* ids_by_rank = take(n * 4);
  const unsigned char* rank_pos = take(n * 4);
  const unsigned char* edge_asns = take(m * 4);
  const unsigned char* edges = take(m * sizeof(topo::Edge));
  if (truncated) return "truncated arrays";
  if (pos != size) return "trailing bytes";

  topo::AsGraph::CsrArrays arrays;
  arrays.asn_of = {reinterpret_cast<const topo::Asn*>(asn_of), n};
  arrays.lookup_asn = {reinterpret_cast<const topo::Asn*>(lookup_asn), n};
  arrays.lookup_id = {reinterpret_cast<const topo::AsId*>(lookup_id), n};
  arrays.offsets = {reinterpret_cast<const std::uint32_t*>(offsets), n + 1};
  arrays.seg_ends = {reinterpret_cast<const std::uint32_t*>(seg_ends), 3 * n};
  arrays.ranks = {reinterpret_cast<const std::uint32_t*>(ranks), n};
  arrays.ids_by_rank = {reinterpret_cast<const topo::AsId*>(ids_by_rank), n};
  arrays.rank_pos = {reinterpret_cast<const std::uint32_t*>(rank_pos), n};
  arrays.edge_asns = {reinterpret_cast<const topo::Asn*>(edge_asns), m};
  arrays.edges = {reinterpret_cast<const topo::Edge*>(edges), m};
  arrays.num_links = num_links;
  arrays.num_ranks = num_ranks;
  arrays.connected = connected != 0;
  arrays.acyclic = acyclic != 0;

  std::string err;
  std::optional<topo::AsGraph> graph =
      topo::AsGraph::FromCsr(arrays, std::move(keepalive), &err);
  if (!graph.has_value()) return err;
  *out = std::move(*graph);
  return "";
}

// One checkpointed baseline: the announcement plus the full converged state.
// Adj-RIB-In and sent entries are keyed by neighbor ASN (not by raw slot
// index) so a state restores correctly into any graph with the same link
// set, regardless of adjacency-list insertion order.
void WriteBaseline(ByteWriter& w, const topo::AsGraph& graph,
                   const bgp::PropagationResult& state) {
  w.U32(state.GetAnnouncement().origin);
  WritePolicy(w, state.GetAnnouncement().prepends);
  w.I32(state.Rounds());
  const std::size_t n = graph.NumAses();
  for (std::size_t i = 0; i < n; ++i) {
    const auto& best = state.BestRoutes()[i];
    w.U8(best.has_value() ? 1 : 0);
    if (best.has_value()) WriteRoute(w, *best);
    w.I32(state.FirstChangeRounds()[i]);
    const auto neighbors = graph.NeighborsOf(graph.AsnAt(i));
    w.U32(static_cast<std::uint32_t>(neighbors.size()));
    for (std::size_t slot = 0; slot < neighbors.size(); ++slot) {
      w.U32(neighbors[slot].asn);
      w.U8(state.Sent()[i][slot]);
      const auto& route = state.RibIn()[i][slot];
      w.U8(route.has_value() ? 1 : 0);
      if (route.has_value()) WriteRoute(w, *route);
    }
  }
}

std::string ReadBaseline(
    ByteReader& r, const topo::AsGraph& graph,
    std::shared_ptr<const bgp::PropagationResult>* out) {
  bgp::Announcement announcement;
  if (!r.U32(&announcement.origin)) return "truncated origin";
  if (!graph.HasAs(announcement.origin)) return "unknown origin AS";
  if (!ReadPolicy(r, &announcement.prepends)) return "truncated policy";
  std::int32_t rounds;
  if (!r.I32(&rounds)) return "truncated round count";

  const std::size_t n = graph.NumAses();
  std::vector<std::optional<bgp::Route>> best(n);
  std::vector<int> first_change(n);
  std::vector<std::vector<std::optional<bgp::Route>>> rib_in(n);
  std::vector<std::vector<std::uint8_t>> sent(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint8_t has_best;
    if (!r.U8(&has_best)) return "truncated best route";
    if (has_best != 0) {
      bgp::Route route;
      if (!ReadRoute(r, &route)) return "malformed best route";
      best[i] = std::move(route);
    }
    std::int32_t round;
    if (!r.I32(&round)) return "truncated change round";
    first_change[i] = round;

    const topo::Asn asn = graph.AsnAt(i);
    const auto neighbors = graph.NeighborsOf(asn);
    std::uint32_t num_slots;
    if (!r.U32(&num_slots)) return "truncated slot count";
    if (num_slots != neighbors.size()) return "slot count mismatch";
    rib_in[i].resize(neighbors.size());
    sent[i].assign(neighbors.size(), 0);
    for (std::uint32_t k = 0; k < num_slots; ++k) {
      std::uint32_t neighbor;
      std::uint8_t sent_flag, has_route;
      if (!r.U32(&neighbor) || !r.U8(&sent_flag) || !r.U8(&has_route)) {
        return "truncated RIB entry";
      }
      // Resolve the neighbor to this graph's slot.
      std::size_t slot = neighbors.size();
      for (std::size_t s = 0; s < neighbors.size(); ++s) {
        if (neighbors[s].asn == neighbor) {
          slot = s;
          break;
        }
      }
      if (slot == neighbors.size()) return "RIB entry for non-neighbor";
      sent[i][slot] = sent_flag != 0 ? 1 : 0;
      if (has_route != 0) {
        bgp::Route route;
        if (!ReadRoute(r, &route)) return "malformed RIB route";
        rib_in[i][slot] = std::move(route);
      }
    }
  }
  *out = std::make_shared<const bgp::PropagationResult>(
      bgp::PropagationResult::Restore(graph, std::move(announcement), rounds,
                                      std::move(best), std::move(first_change),
                                      std::move(rib_in), std::move(sent)));
  return "";
}

// Read-only mmap of a whole file; falls back to nothing (Load reports the
// error) when the file cannot be opened or mapped.
class MappedFile {
 public:
  ~MappedFile() {
    if (data_ != nullptr && data_ != MAP_FAILED) munmap(data_, size_);
    if (fd_ >= 0) close(fd_);
  }

  std::string Open(const std::string& path) {
    fd_ = ::open(path.c_str(), O_RDONLY);
    if (fd_ < 0) return "cannot open file";
    struct stat st{};
    if (fstat(fd_, &st) != 0) return "cannot stat file";
    size_ = static_cast<std::size_t>(st.st_size);
    if (size_ == 0) return "empty file";
    data_ = mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd_, 0);
    if (data_ == MAP_FAILED) {
      data_ = nullptr;
      return "mmap failed";
    }
    return "";
  }

  const unsigned char* Data() const {
    return static_cast<const unsigned char*>(data_);
  }
  std::size_t Size() const { return size_; }

 private:
  int fd_ = -1;
  void* data_ = nullptr;
  std::size_t size_ = 0;
};

struct SectionEntry {
  std::uint32_t type = 0;
  std::uint32_t crc = 0;
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
};

}  // namespace

std::string WriteSnapshotFile(
    const std::string& path, const topo::AsGraph& graph,
    const bgp::PrependPolicy& policy,
    const std::vector<std::shared_ptr<const bgp::PropagationResult>>&
        baselines,
    const std::string& creator,
    const std::vector<std::uint8_t>& defense_tags) {
  ByteWriter info;
  info.Str(creator);
  info.U64(graph.NumAses());
  info.U64(graph.NumLinks());
  info.U64(baselines.size());

  ByteWriter policy_section;
  WritePolicy(policy_section, policy);

  ByteWriter baseline_section;
  baseline_section.U64(baselines.size());
  for (const auto& baseline : baselines) {
    if (baseline == nullptr || &baseline->Graph() != &graph) {
      return "baseline was not computed over the snapshot graph";
    }
    WriteBaseline(baseline_section, graph, *baseline);
  }

  ByteWriter defense_section;
  if (!defense_tags.empty()) {
    if (defense_tags.size() != graph.NumAses()) {
      return "defense tags must cover every AS exactly once";
    }
    for (std::uint8_t tag : defense_tags) {
      if (tag > kMaxDefenseTagByte) return "invalid defense tag byte";
    }
    defense_section.U64(defense_tags.size());
    defense_section.Raw(defense_tags.data(), defense_tags.size());
  }

  // kCsrGraph first: the payload begins right after the fixed-size table, so
  // the CSR section always lands on the 8-aligned file offset its arrays
  // assume — each table entry is itself 8-aligned, so the property holds for
  // any section count (later sections are byte-packed and indifferent to
  // alignment).
  static_assert(kHeaderSize % 8 == 0 && kSectionEntrySize % 8 == 0);
  const std::string csr = BuildCsrSection(graph);
  std::vector<std::pair<std::uint32_t, const std::string*>> sections = {
      {kCsrGraph, &csr},
      {kInfo, &info.Bytes()},
      {kPolicy, &policy_section.Bytes()},
      {kBaselines, &baseline_section.Bytes()},
  };
  // Omitted when empty so undefended snapshots keep their historical bytes.
  if (!defense_tags.empty()) {
    sections.emplace_back(kDefense, &defense_section.Bytes());
  }

  ByteWriter header;
  header.U8(kSnapshotMagic[0]);
  for (int i = 1; i < 8; ++i) header.U8(kSnapshotMagic[i]);
  header.U32(kSnapshotVersion);
  header.U32(static_cast<std::uint32_t>(sections.size()));

  std::uint64_t offset = kHeaderSize + sections.size() * kSectionEntrySize;
  ByteWriter table;
  std::uint64_t total = offset;
  for (const auto& [type, bytes] : sections) {
    table.U32(type);
    table.U32(util::Crc32(bytes->data(), bytes->size()));
    table.U64(offset);
    table.U64(bytes->size());
    offset += bytes->size();
    total += bytes->size();
  }
  header.U64(total);  // declared file size

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return "cannot open " + path + " for writing";
  out << header.Bytes() << table.Bytes();
  for (const auto& [type, bytes] : sections) out << *bytes;
  out.flush();
  if (!out) return "short write to " + path;
  Instr().writes.Add();
  return "";
}

Snapshot::Snapshot() : graph_(std::make_unique<topo::AsGraph>()) {}

bool Snapshot::SniffFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  char magic[8] = {};
  in.read(magic, sizeof(magic));
  return in.gcount() == sizeof(magic) &&
         std::memcmp(magic, kSnapshotMagic, sizeof(magic)) == 0;
}

std::string Snapshot::Load(const std::string& path, Snapshot& out) {
  util::ScopedTimer load_timer(Instr().load_time);
  auto fail = [&path](const std::string& message) {
    Instr().load_errors.Add();
    return path + ": " + message;
  };

  // Shared so the graph can keep the mapping alive past Load (the zero-copy
  // CSR path); a v1 rebuild load drops the mapping when Load returns.
  auto file = std::make_shared<MappedFile>();
  if (std::string err = file->Open(path); !err.empty()) return fail(err);

  ByteReader header(file->Data(), file->Size());
  char magic[8];
  for (char& c : magic) {
    std::uint8_t byte;
    if (!header.U8(&byte)) return fail("truncated header");
    c = static_cast<char>(byte);
  }
  if (std::memcmp(magic, kSnapshotMagic, sizeof(magic)) != 0) {
    return fail("bad magic (not a snapshot file)");
  }
  std::uint32_t version, section_count;
  std::uint64_t declared_size;
  if (!header.U32(&version) || !header.U32(&section_count) ||
      !header.U64(&declared_size)) {
    return fail("truncated header");
  }
  if (version == 0 || version > kSnapshotVersion) {
    return fail("version skew: file has version " + std::to_string(version) +
                ", loader supports up to " + std::to_string(kSnapshotVersion));
  }
  if (declared_size != file->Size()) {
    return fail("truncated file: header declares " +
                std::to_string(declared_size) + " bytes, file has " +
                std::to_string(file->Size()));
  }
  if (kHeaderSize + section_count * kSectionEntrySize > file->Size()) {
    return fail("truncated section table");
  }

  ByteReader table(file->Data() + kHeaderSize,
                   section_count * kSectionEntrySize);
  std::vector<SectionEntry> entries(section_count);
  for (SectionEntry& entry : entries) {
    table.U32(&entry.type);
    table.U32(&entry.crc);
    table.U64(&entry.offset);
    table.U64(&entry.size);
    if (entry.offset > file->Size() ||
        entry.size > file->Size() - entry.offset) {
      return fail("section " + std::to_string(entry.type) +
                  ": out-of-bounds extent");
    }
    // CRC the mapped bytes in place before any section is parsed.
    const std::uint32_t crc =
        util::Crc32(file->Data() + entry.offset, entry.size);
    if (crc != entry.crc) {
      return fail("section " + std::to_string(entry.type) + ": CRC mismatch");
    }
  }

  Snapshot loaded;
  bool have_graph = false;
  for (const SectionEntry& entry : entries) {
    ByteReader r(file->Data() + entry.offset, entry.size);
    switch (entry.type) {
      case kInfo: {
        if (!r.Str(&loaded.info_.creator) || !r.U64(&loaded.info_.num_ases) ||
            !r.U64(&loaded.info_.num_links) ||
            !r.U64(&loaded.info_.num_baselines)) {
          return fail("info section: truncated");
        }
        loaded.info_.version = version;
        break;
      }
      case kTopology: {
        if (have_graph) return fail("duplicate graph section");
        topo::GraphBuilder builder;
        if (std::string err = ParseTopologySection(r, &builder);
            !err.empty()) {
          return fail("topology section: " + err);
        }
        *loaded.graph_ = builder.Freeze();
        loaded.info_.legacy_topology = true;
        have_graph = true;
        break;
      }
      case kCsrGraph: {
        if (have_graph) return fail("duplicate graph section");
        if (std::string err =
                ParseCsrSection(file->Data() + entry.offset, entry.size, file,
                                loaded.graph_.get());
            !err.empty()) {
          return fail("csr graph section: " + err);
        }
        have_graph = true;
        break;
      }
      case kPolicy: {
        if (!ReadPolicy(r, &loaded.policy_) || !r.AtEnd()) {
          return fail("policy section: truncated");
        }
        break;
      }
      case kBaselines: {
        if (!have_graph) return fail("baselines section before the graph");
        std::uint64_t count;
        if (!r.U64(&count)) return fail("baselines section: truncated");
        for (std::uint64_t i = 0; i < count; ++i) {
          std::shared_ptr<const bgp::PropagationResult> baseline;
          if (std::string err = ReadBaseline(r, *loaded.graph_, &baseline);
              !err.empty()) {
            return fail("baseline " + std::to_string(i) + ": " + err);
          }
          loaded.baselines_.push_back(std::move(baseline));
        }
        if (!r.AtEnd()) return fail("baselines section: trailing bytes");
        break;
      }
      case kDefense: {
        if (!have_graph) return fail("defense section before the graph");
        if (!loaded.defense_tags_.empty()) {
          return fail("duplicate defense section");
        }
        std::uint64_t count;
        if (!r.U64(&count)) return fail("defense section: truncated");
        if (count != loaded.graph_->NumAses()) {
          return fail("defense section: tag count disagrees with the graph");
        }
        if (entry.size != 8 + count) {
          return fail("defense section: size disagrees with tag count");
        }
        const unsigned char* tags = file->Data() + entry.offset + 8;
        loaded.defense_tags_.assign(tags, tags + count);
        for (std::uint8_t tag : loaded.defense_tags_) {
          if (tag > kMaxDefenseTagByte) {
            return fail("defense section: invalid tag byte");
          }
          if (tag != 0) ++loaded.info_.num_defense_tagged;
        }
        break;
      }
      default:
        // Unknown section types are ignored (forward-compatible additions).
        break;
    }
  }
  if (!have_graph) return fail("missing graph section");
  if (loaded.info_.num_ases != loaded.graph_->NumAses() ||
      loaded.info_.num_links != loaded.graph_->NumLinks() ||
      loaded.info_.num_baselines != loaded.baselines_.size()) {
    return fail("info section disagrees with payload");
  }

  out = std::move(loaded);
  Instr().loads.Add();
  return "";
}

}  // namespace asppi::data
