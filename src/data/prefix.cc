#include "data/prefix.h"

#include "util/check.h"
#include "util/strings.h"

namespace asppi::data {

std::string Prefix::ToString() const {
  return util::Format("%u.%u.%u.%u/%u", (ip >> 24) & 0xff, (ip >> 16) & 0xff,
                      (ip >> 8) & 0xff, ip & 0xff, length);
}

std::optional<Prefix> Prefix::Parse(const std::string& text) {
  auto slash = text.find('/');
  if (slash == std::string::npos) return std::nullopt;
  auto len = util::ParseUint(text.substr(slash + 1));
  if (!len || *len > 32) return std::nullopt;
  std::vector<std::string> octets = util::Split(text.substr(0, slash), '.');
  if (octets.size() != 4) return std::nullopt;
  std::uint32_t ip = 0;
  for (const std::string& octet : octets) {
    auto v = util::ParseUint(octet);
    if (!v || *v > 255) return std::nullopt;
    ip = (ip << 8) | static_cast<std::uint32_t>(*v);
  }
  Prefix p{ip, static_cast<std::uint8_t>(*len)};
  if (p.Canonical().ip != p.ip) return std::nullopt;
  return p;
}

Prefix Prefix::Canonical() const {
  Prefix out = *this;
  if (length == 0) {
    out.ip = 0;
  } else {
    out.ip &= ~((1u << (32 - length)) - 1u) | 0u;
    if (length == 32) out.ip = ip;
  }
  return out;
}

bool Prefix::ContainsAddress(std::uint32_t address) const {
  if (length == 0) return true;
  std::uint32_t mask = length == 32 ? 0xffffffffu : ~((1u << (32 - length)) - 1u);
  return (address & mask) == (ip & mask);
}

Prefix SyntheticPrefix(std::size_t index) {
  // Distinct /16-aligned networks starting at 10.0.0.0, with prefix lengths
  // varying 16..24 (length ≥ 16 keeps them disjoint).
  std::uint8_t length = static_cast<std::uint8_t>(16 + (index % 9));
  std::uint32_t ip = 0x0A000000u + (static_cast<std::uint32_t>(index) << 16);
  Prefix p{ip, length};
  return p.Canonical();
}

}  // namespace asppi::data
