// load::LoadGen — an open-loop NDJSON load generator for asppi_serve.
//
// Open-loop means the send schedule is independent of the server: request i
// is dispatched at a time drawn from a Poisson process of the target rate,
// whether or not earlier requests have been answered. A closed-loop client
// (send, wait, send) self-throttles when the server slows down and therefore
// under-reports tail latency; the open-loop schedule keeps queueing delay in
// the measurement, which is the delay real clients feel. Latency is measured
// from the SCHEDULED send instant — if the generator itself falls behind
// (blocking write into a full socket), that backlog is server-induced and
// belongs in the number.
//
// Mechanics: one sender thread walks the exponential-gap schedule and
// round-robins request lines over C blocking connections, pushing the
// scheduled timestamp into the connection's FIFO before the bytes leave; one
// reader thread per connection splits response lines (net::LineSplitter),
// pops the matching timestamp — per-connection responses arrive in request
// order on both servers — and records the latency plus an ok/overloaded/
// error classification. After the send window closes the readers drain until
// every request is answered or the drain timeout expires.
//
// FindMaxSustainableRps sweeps rates (geometric ladder, then bisection)
// until the highest rate still meeting the SLO is bracketed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "load/workload.h"

namespace asppi::load {

struct LoadGenOptions {
  std::uint16_t port = 0;
  int connections = 8;
  double rate_rps = 500.0;
  int duration_ms = 2000;
  // How long to wait for in-flight responses after the send window closes.
  int drain_timeout_ms = 5000;
  WorkloadOptions workload;
};

struct LoadReport {
  std::uint64_t sent = 0;
  std::uint64_t answered = 0;
  std::uint64_t ok = 0;
  std::uint64_t overloaded = 0;
  std::uint64_t errors = 0;  // answered but not ok/overloaded
  std::uint64_t unanswered = 0;
  int connect_failures = 0;
  double target_rps = 0.0;
  double achieved_rps = 0.0;
  double duration_s = 0.0;
  std::uint64_t p50_us = 0;
  std::uint64_t p99_us = 0;
  std::uint64_t p999_us = 0;
  std::uint64_t max_us = 0;

  // Every request connected, was answered, and answered ok.
  bool Healthy() const {
    return connect_failures == 0 && unanswered == 0 && errors == 0 &&
           overloaded == 0 && sent > 0;
  }
  std::string ToString() const;
};

// Runs one open-loop measurement against 127.0.0.1:options.port.
LoadReport RunLoad(const LoadGenOptions& options);

struct SloTarget {
  double p99_ms = 50.0;  // SLO: p99 latency bound
};

struct SweepPoint {
  double rate_rps = 0.0;
  LoadReport report;
  bool meets_slo = false;
};

struct SweepResult {
  std::vector<SweepPoint> points;
  double max_sustainable_rps = 0.0;  // highest swept rate meeting the SLO
};

// Doubles the rate from `start_rps` until the SLO breaks (or `max_rps` is
// reached), then bisects the bracket `refine_steps` times. Each point reuses
// `base` with only rate_rps replaced.
SweepResult FindMaxSustainableRps(const LoadGenOptions& base,
                                  const SloTarget& slo, double start_rps,
                                  double max_rps, int refine_steps = 3);

}  // namespace asppi::load
