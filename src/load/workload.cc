#include "load/workload.h"

#include "util/check.h"
#include "util/metrics.h"
#include "util/rng.h"

namespace asppi::load {

namespace {

struct WorkloadMetrics {
  util::Counter lines{"load.workload.lines"};
};

WorkloadMetrics& Instr() {
  static WorkloadMetrics* m = new WorkloadMetrics();
  return *m;
}

bool KnownOp(const std::string& op) {
  return op == "impact" || op == "detect" || op == "route" ||
         op == "defense" || op == "strategy" || op == "stats" ||
         op == "health";
}

}  // namespace

bool Workload::ParseMix(const std::string& text, std::vector<MixEntry>* out) {
  out->clear();
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string part = text.substr(pos, comma - pos);
    pos = comma + 1;
    const std::size_t colon = part.find(':');
    if (colon == std::string::npos || colon == 0) return false;
    MixEntry entry;
    entry.op = part.substr(0, colon);
    if (!KnownOp(entry.op)) return false;
    const std::string weight = part.substr(colon + 1);
    if (weight.empty()) return false;
    for (char c : weight) {
      if (c < '0' || c > '9') return false;
    }
    entry.weight = std::stoi(weight);
    if (entry.weight <= 0) return false;
    out->push_back(std::move(entry));
  }
  return !out->empty();
}

Workload::Workload(const WorkloadOptions& options) : options_(options) {
  ASPPI_CHECK(Workload::ParseMix(options.mix, &mix_))
      << "bad op mix: " << options.mix;
  ASPPI_CHECK_GE(options_.as_count, 2u) << "need at least 2 ASes";
  for (const MixEntry& entry : mix_) total_weight_ += entry.weight;
}

std::string Workload::Line(std::uint64_t i) const {
  // Per-line generator: determinism in (seed, i) alone is what makes
  // parallel generation bit-identical to serial.
  util::Rng rng(util::DeriveSeed(options_.seed, i));

  std::uint64_t draw = rng.Below(static_cast<std::uint64_t>(total_weight_));
  const MixEntry* pick = &mix_.front();
  for (const MixEntry& entry : mix_) {
    if (draw < static_cast<std::uint64_t>(entry.weight)) {
      pick = &entry;
      break;
    }
    draw -= static_cast<std::uint64_t>(entry.weight);
  }

  Instr().lines.Add();
  if (pick->op == "stats" || pick->op == "health") {
    return std::string("{\"op\":\"") + pick->op + "\"}";
  }

  // Hot-set redirection keeps a cache-hittable head on the distribution.
  // ASNs are 1-based: generated topologies number their ASes 1..as_count.
  std::uint32_t first = static_cast<std::uint32_t>(
      1 + (rng.Chance(options_.hot_fraction) && options_.hot_set > 0
               ? rng.Below(options_.hot_set)
               : rng.Below(options_.as_count)));
  std::uint32_t second =
      static_cast<std::uint32_t>(1 + rng.Below(options_.as_count - 1));
  if (second >= first) ++second;  // distinct pair, still uniform

  std::string line = "{\"op\":\"";
  line += pick->op;
  line += "\",";
  if (pick->op == "route") {
    line += "\"origin\":" + std::to_string(first) +
            ",\"observer\":" + std::to_string(second);
  } else {
    line += "\"victim\":" + std::to_string(first) +
            ",\"attacker\":" + std::to_string(second);
  }
  if (pick->op == "strategy") {
    // Bound the beam so a load stream never turns one line into a
    // minutes-long search.
    line += ",\"beam\":2,\"rounds\":1";
  }
  if (pick->op == "defense") {
    line += ",\"frac\":0.5";
  }
  line += "}";
  return line;
}

std::string Workload::Script(std::uint64_t n) const {
  std::string script;
  for (std::uint64_t i = 0; i < n; ++i) {
    script += Line(i);
    script += '\n';
  }
  return script;
}

}  // namespace asppi::load
