// load::Workload — deterministic scripted request streams for asppi_serve.
//
// A workload is (seed, AS count, op mix); request line i is a pure function
// of those three, derived through util::DeriveSeed(seed, i). That gives two
// properties the load and equivalence tooling lean on:
//
//   * bit-determinism at any parallelism: generating lines 0..n-1 with
//     ParallelFor at any --threads yields the same bytes as a serial loop,
//     so workload generation sits inside the metrics determinism guarantee;
//   * replayability across servers: the byte-equivalence gate feeds the SAME
//     line sequence to the threaded server and the reactor (batched and
//     unbatched) and demands identical response bytes.
//
// The op mix is a scripted weight string, e.g. "impact:6,route:3,detect:1".
// Weights are integers; ops absent from the mix are never generated. The
// default mix approximates a production read-heavy query stream: mostly
// what-if impact queries with a tail of route lookups and detector runs.
//
// Generated ASN pairs draw from [1, as_count] — generated topologies number
// their ASes 1..N; a small hot set (Zipf-ish:
// 1/8 of draws hit `hot_set` victims) makes the cache ablation meaningful —
// a pure-uniform stream at 100k ASes would never hit the result cache.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace asppi::load {

struct MixEntry {
  std::string op;  // wire op name: impact|detect|route|defense|strategy|stats|health
  int weight = 0;
};

struct WorkloadOptions {
  std::uint64_t seed = 1;
  // ASN space to draw victims/attackers/origins/observers from.
  std::uint32_t as_count = 64;
  // Fraction of draws redirected to a small hot set of victims (cache hits).
  double hot_fraction = 0.125;
  std::size_t hot_set = 4;
  std::string mix = "impact:60,route:25,detect:10,stats:4,health:1";
};

class Workload {
 public:
  // Dies (ASPPI_CHECK) on a malformed mix string or unknown op name; use
  // ParseMix first when the string is user-supplied.
  explicit Workload(const WorkloadOptions& options);

  // The i-th request line (no trailing newline). Pure in (options, i).
  std::string Line(std::uint64_t i) const;

  // First n lines, newline-terminated each, in one buffer.
  std::string Script(std::uint64_t n) const;

  const std::vector<MixEntry>& mix() const { return mix_; }
  const WorkloadOptions& options() const { return options_; }

  // Parses "op:weight,op:weight,..."; returns false on malformed input or an
  // unknown op name.
  static bool ParseMix(const std::string& text, std::vector<MixEntry>* out);

 private:
  WorkloadOptions options_;
  std::vector<MixEntry> mix_;
  int total_weight_ = 0;
};

}  // namespace asppi::load
