#include "load/loadgen.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>

#include "net/fd.h"
#include "net/frames.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/strings.h"

namespace asppi::load {

namespace {

using Clock = std::chrono::steady_clock;

struct LoadMetrics {
  util::Counter sent{"load.gen.sent"};
  util::Counter answered{"load.gen.answered"};
  util::Counter overloaded{"load.gen.overloaded"};
  util::Counter errors{"load.gen.errors"};
};

LoadMetrics& Instr() {
  static LoadMetrics* m = new LoadMetrics();
  return *m;
}

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count());
}

net::ScopedFd ConnectLoopback(std::uint16_t port) {
  net::ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return net::ScopedFd();
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  const int rc = static_cast<int>(net::RetryOnEintr([&] {
    return ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
  }));
  if (rc < 0) return net::ScopedFd();
  net::SetTcpNoDelay(fd.get());
  return fd;
}

// One generator connection: the sender pushes scheduled timestamps, the
// reader pops them as responses arrive (per-connection FIFO order holds on
// both server implementations).
struct GenConn {
  net::ScopedFd fd;
  std::mutex mu;
  std::deque<std::uint64_t> scheduled_ns;
  std::uint64_t sent = 0;
  std::uint64_t answered = 0;
};

bool SendAll(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = net::RetryOnEintr([&] {
      return ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    });
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

std::string LoadReport::ToString() const {
  return util::Format(
      "rate=%.0frps achieved=%.0frps sent=%llu ok=%llu overloaded=%llu "
      "errors=%llu unanswered=%llu p50=%lluus p99=%lluus p999=%lluus",
      target_rps, achieved_rps, static_cast<unsigned long long>(sent),
      static_cast<unsigned long long>(ok),
      static_cast<unsigned long long>(overloaded),
      static_cast<unsigned long long>(errors),
      static_cast<unsigned long long>(unanswered),
      static_cast<unsigned long long>(p50_us),
      static_cast<unsigned long long>(p99_us),
      static_cast<unsigned long long>(p999_us));
}

LoadReport RunLoad(const LoadGenOptions& options) {
  LoadReport report;
  report.target_rps = options.rate_rps;

  const int conn_count = options.connections > 0 ? options.connections : 1;
  std::vector<std::unique_ptr<GenConn>> conns;
  for (int i = 0; i < conn_count; ++i) {
    auto conn = std::make_unique<GenConn>();
    conn->fd = ConnectLoopback(options.port);
    if (!conn->fd.valid()) {
      ++report.connect_failures;
      continue;
    }
    conns.push_back(std::move(conn));
  }
  if (conns.empty()) return report;

  util::LatencyHistogram latency;
  std::atomic<std::uint64_t> max_ns{0};
  std::atomic<std::uint64_t> ok{0}, overloaded{0}, errors{0};
  std::atomic<bool> sender_done{false};

  // Reader per connection: split response lines, pop the scheduled send
  // instant, classify by body. Readers exit on EOF (server closed) or once
  // the sender is done and every sent request on this conn is answered.
  std::vector<std::thread> readers;
  readers.reserve(conns.size());
  for (auto& conn_ptr : conns) {
    GenConn* conn = conn_ptr.get();
    readers.push_back(std::thread([&, conn] {
      net::LineSplitter splitter(1 << 20);
      std::vector<std::string> lines;
      char buf[16 * 1024];
      for (;;) {
        {
          std::lock_guard<std::mutex> lock(conn->mu);
          if (sender_done.load(std::memory_order_acquire) &&
              conn->answered >= conn->sent) {
            return;
          }
        }
        const ssize_t n = net::RetryOnEintr(
            [&] { return ::recv(conn->fd.get(), buf, sizeof(buf), 0); });
        if (n <= 0) return;  // EOF/reset (or drain shutdown closed the fd)
        lines.clear();
        splitter.Feed(std::string_view(buf, static_cast<std::size_t>(n)),
                      &lines);
        const std::uint64_t now = NowNs();
        for (const std::string& line : lines) {
          std::uint64_t scheduled = 0;
          {
            std::lock_guard<std::mutex> lock(conn->mu);
            if (conn->scheduled_ns.empty()) continue;  // unsolicited line
            scheduled = conn->scheduled_ns.front();
            conn->scheduled_ns.pop_front();
            ++conn->answered;
          }
          const std::uint64_t ns = now > scheduled ? now - scheduled : 0;
          latency.RecordNs(ns);
          std::uint64_t prev = max_ns.load(std::memory_order_relaxed);
          while (ns > prev &&
                 !max_ns.compare_exchange_weak(prev, ns,
                                               std::memory_order_relaxed)) {
          }
          Instr().answered.Add();
          if (line.find("\"ok\":true") != std::string::npos) {
            ok.fetch_add(1, std::memory_order_relaxed);
          } else if (line.find("overloaded") != std::string::npos) {
            overloaded.fetch_add(1, std::memory_order_relaxed);
            Instr().overloaded.Add();
          } else {
            errors.fetch_add(1, std::memory_order_relaxed);
            Instr().errors.Add();
          }
        }
      }
    }));
  }

  // Open-loop sender: the schedule is drawn up front from the Poisson
  // process; lateness (slow server → blocking send) shifts actual sends but
  // never the timestamps latency is measured against.
  const Workload workload(options.workload);
  util::Rng gap_rng(util::DeriveSeed(options.workload.seed, 0x10adu));
  const auto start = Clock::now();
  const auto window_end =
      start + std::chrono::milliseconds(options.duration_ms);
  double next_send_s = 0.0;
  std::uint64_t sent = 0;
  std::size_t round_robin = 0;
  for (;;) {
    const auto scheduled =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(next_send_s));
    if (scheduled >= window_end) break;
    std::this_thread::sleep_until(scheduled);

    GenConn* conn = conns[round_robin++ % conns.size()].get();
    const std::string line = workload.Line(sent) + "\n";
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->scheduled_ns.push_back(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              scheduled.time_since_epoch())
              .count()));
      ++conn->sent;
    }
    if (!SendAll(conn->fd.get(), line)) {
      // Connection died mid-run: roll back the queued timestamp so it is not
      // matched against a response that will never come. The reader may have
      // raced us and popped it already (an unsolicited line pairs with the
      // front entry — ours, if it was the only one queued); it pushes last
      // and pops happen at the front, so if the deque is non-empty the back
      // entry is still ours. If it is empty the reader consumed and counted
      // the entry; rolling back then would pop_back an empty deque (UB) and
      // skew sent below answered.
      std::lock_guard<std::mutex> lock(conn->mu);
      if (!conn->scheduled_ns.empty()) {
        --conn->sent;
        conn->scheduled_ns.pop_back();
      }
      ++sent;  // count the attempt so achieved_rps reflects reality
      Instr().sent.Add();
      continue;
    }
    ++sent;
    Instr().sent.Add();
    // Exponential inter-arrival gap: a Poisson stream at rate_rps.
    next_send_s += -std::log(1.0 - gap_rng.Uniform()) / options.rate_rps;
  }
  sender_done.store(true, std::memory_order_release);

  // Drain: give in-flight responses a bounded window, then cut the sockets
  // out from under any still-blocked reader.
  const auto drain_deadline =
      Clock::now() + std::chrono::milliseconds(options.drain_timeout_ms);
  for (;;) {
    bool all_answered = true;
    for (auto& conn : conns) {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (conn->answered < conn->sent) {
        all_answered = false;
        break;
      }
    }
    if (all_answered || Clock::now() >= drain_deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (auto& conn : conns) ::shutdown(conn->fd.get(), SHUT_RDWR);
  for (auto& reader : readers) reader.join();

  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  report.sent = sent;
  report.ok = ok.load();
  report.overloaded = overloaded.load();
  report.errors = errors.load();
  report.answered = report.ok + report.overloaded + report.errors;
  report.unanswered = report.sent - report.answered;
  report.duration_s = elapsed_s;
  report.achieved_rps = elapsed_s > 0 ? static_cast<double>(sent) / elapsed_s
                                      : 0.0;
  report.p50_us = static_cast<std::uint64_t>(latency.QuantileNs(0.50) / 1000.0);
  report.p99_us = static_cast<std::uint64_t>(latency.QuantileNs(0.99) / 1000.0);
  report.p999_us =
      static_cast<std::uint64_t>(latency.QuantileNs(0.999) / 1000.0);
  report.max_us = max_ns.load() / 1000;
  return report;
}

SweepResult FindMaxSustainableRps(const LoadGenOptions& base,
                                  const SloTarget& slo, double start_rps,
                                  double max_rps, int refine_steps) {
  SweepResult result;
  const auto meets = [&](const LoadReport& r) {
    return r.connect_failures == 0 && r.unanswered == 0 && r.errors == 0 &&
           r.overloaded == 0 &&
           static_cast<double>(r.p99_us) / 1000.0 <= slo.p99_ms;
  };
  const auto probe = [&](double rate) {
    LoadGenOptions options = base;
    options.rate_rps = rate;
    SweepPoint point;
    point.rate_rps = rate;
    point.report = RunLoad(options);
    point.meets_slo = meets(point.report);
    result.points.push_back(point);
    return point.meets_slo;
  };

  // Geometric climb until the SLO breaks (or the cap holds).
  double good = 0.0;
  double bad = 0.0;
  for (double rate = start_rps; rate <= max_rps; rate *= 2.0) {
    if (probe(rate)) {
      good = rate;
    } else {
      bad = rate;
      break;
    }
  }
  if (good == 0.0) {
    result.max_sustainable_rps = 0.0;
    return result;
  }
  if (bad == 0.0) {
    // Never broke within the cap; the cap is the answer.
    result.max_sustainable_rps = good;
    return result;
  }
  // Bisect the [good, bad] bracket.
  for (int i = 0; i < refine_steps; ++i) {
    const double mid = (good + bad) / 2.0;
    if (probe(mid)) {
      good = mid;
    } else {
      bad = mid;
    }
  }
  result.max_sustainable_rps = good;
  return result;
}

}  // namespace asppi::load
