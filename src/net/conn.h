// net::Conn — one non-blocking NDJSON connection on one event-loop shard.
//
// Lifecycle and threading:
//
//   * every field is owned by the shard's loop thread; the only cross-thread
//     entry points are Reply() and Close(), which Post() onto the loop. That
//     single-writer discipline is what lets a Conn carry kilobytes of
//     buffered state with zero locks;
//   * reads are level-triggered and batch-drained: each readiness event pulls
//     bytes until EAGAIN, splits complete lines, and hands them to the batch
//     callback — at most ONE batch in flight per connection, so responses
//     come back in request order without any sequencing protocol;
//   * lines arriving while a batch is in flight queue in `pending_`; when the
//     queue passes `max_pending_lines` the conn drops read interest, letting
//     TCP flow control push back on the client instead of buffering
//     unboundedly;
//   * writes buffer in `out_` and flush opportunistically; a peer that stops
//     reading while responses accumulate past `max_write_backlog` is shed
//     (closed + counted) — a slow reader must not pin server memory;
//   * oversized request lines never buffer: the LineSplitter skips them and
//     the conn answers each with the configured `oversize_response`;
//   * EOF from the peer stops reads but drains in-flight work and buffered
//     responses before closing, so "send requests, shutdown(WR), read all
//     responses" clients see every answer.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/event_loop.h"
#include "net/fd.h"
#include "net/frames.h"

namespace asppi::net {

class Conn;

// Invoked on the loop thread with >= 1 complete request lines. The handler
// must eventually call conn->Reply() with exactly one response per line (in
// order); until then no further batch is dispatched on this connection.
using BatchCallback =
    std::function<void(const std::shared_ptr<Conn>&, std::vector<std::string>)>;

// Invoked once on the loop thread when the connection is torn down.
using CloseCallback = std::function<void(std::uint64_t conn_id)>;

struct ConnOptions {
  std::size_t max_line_bytes = 64 * 1024;
  // Response bytes buffered for a slow reader before the conn is shed.
  std::size_t max_write_backlog = 4 * 1024 * 1024;
  // Parsed-but-undispatched lines before read interest is dropped.
  std::size_t max_pending_lines = 256;
  // Sent verbatim (newline appended) for each oversized line; "" = silent.
  std::string oversize_response;
  // Optional owner-side counter bumped once per backlog shed (the serving
  // layer surfaces it through the stats op).
  std::atomic<std::uint64_t>* backlog_shed_counter = nullptr;
};

class Conn : public std::enable_shared_from_this<Conn> {
 public:
  Conn(ScopedFd fd, EventLoop* loop, const ConnOptions& options,
       std::uint64_t id);
  ~Conn();

  // Loop thread: registers with the loop and starts reading.
  void Start(BatchCallback on_batch, CloseCallback on_close);

  // Any thread: completes the in-flight batch with one response per request
  // line. Missing trailing newlines are added. Safe after close (no-op).
  void Reply(std::vector<std::string> responses);

  // Any thread: close as soon as buffered responses are flushed and no batch
  // is in flight (the drain path Stop() uses).
  void CloseWhenIdle();
  // Any thread: close now, dropping buffered data.
  void CloseNow();

  std::uint64_t id() const { return id_; }
  int fd() const { return fd_.get(); }

 private:
  void HandleEvent(bool readable, bool writable, bool error);
  void HandleReadable();
  void MaybeDispatch();
  void FlushWrites();
  void UpdateInterest();
  void TearDown();
  bool Idle() const { return !busy_ && pending_.empty() && out_.empty(); }

  ScopedFd fd_;
  EventLoop* loop_;
  ConnOptions options_;
  std::uint64_t id_;

  LineSplitter splitter_;
  std::deque<std::string> pending_;
  bool busy_ = false;      // a batch is out with the handler
  bool eof_ = false;       // peer half-closed; drain then close
  bool closing_ = false;   // CloseWhenIdle requested
  bool closed_ = false;    // torn down; every entry point no-ops

  std::string out_;        // unflushed response bytes
  std::size_t out_offset_ = 0;

  bool want_read_ = true;
  bool want_write_ = false;

  BatchCallback on_batch_;
  CloseCallback on_close_;
};

}  // namespace asppi::net
