#include "net/frames.h"

#include "util/metrics.h"

namespace asppi::net {

namespace {

struct FrameMetrics {
  util::Counter lines{"net.frames.lines"};
  util::Counter oversized{"net.frames.oversized"};
};

FrameMetrics& Instr() {
  static FrameMetrics* m = new FrameMetrics();
  return *m;
}

}  // namespace

std::size_t LineSplitter::Feed(std::string_view data,
                               std::vector<std::string>* lines) {
  std::size_t rejected = 0;
  std::size_t pos = 0;
  while (pos < data.size()) {
    const std::size_t nl = data.find('\n', pos);
    if (skipping_) {
      // Mid-oversized-line: discard up to and including the next terminator.
      if (nl == std::string_view::npos) return rejected;
      skipping_ = false;
      pos = nl + 1;
      continue;
    }
    if (nl == std::string_view::npos) {
      // Torn frame: buffer the tail, unless it already blows the line cap.
      const std::size_t tail = data.size() - pos;
      if (buffer_.size() + tail > max_line_bytes_) {
        buffer_.clear();
        skipping_ = true;
        ++oversized_;
        ++rejected;
        Instr().oversized.Add();
        return rejected;
      }
      buffer_.append(data.data() + pos, tail);
      return rejected;
    }
    const std::size_t frame = nl - pos;
    if (buffer_.size() + frame > max_line_bytes_) {
      buffer_.clear();
      ++oversized_;
      ++rejected;
      Instr().oversized.Add();
      pos = nl + 1;
      continue;
    }
    std::string line = std::move(buffer_);
    buffer_.clear();
    line.append(data.data() + pos, frame);
    pos = nl + 1;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;  // keep-alive blank line
    ++lines_emitted_;
    Instr().lines.Add();
    lines->push_back(std::move(line));
  }
  return rejected;
}

}  // namespace asppi::net
