#include "net/listener.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>

#include <cstring>

#include "util/metrics.h"

namespace asppi::net {

namespace {

struct ListenerMetrics {
  util::Counter accepted{"net.listener.accepted"};
  util::Counter aborted{"net.listener.aborted"};
};

ListenerMetrics& Instr() {
  static ListenerMetrics* m = new ListenerMetrics();
  return *m;
}

}  // namespace

std::string Listener::Open(std::uint16_t port, int backlog) {
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return std::string("socket: ") + std::strerror(errno);

  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    return std::string("bind: ") + std::strerror(errno);
  }
  if (::listen(fd.get(), backlog) < 0) {
    return std::string("listen: ") + std::strerror(errno);
  }
  if (!SetNonBlocking(fd.get())) {
    return std::string("fcntl(O_NONBLOCK): ") + std::strerror(errno);
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    return std::string("getsockname: ") + std::strerror(errno);
  }
  port_ = ntohs(bound.sin_port);
  fd_ = std::move(fd);
  return "";
}

int Listener::AcceptReady(const std::function<void(ScopedFd)>& on_accept) {
  if (!fd_.valid()) return -1;
  int accepted = 0;
  for (;;) {
    const int raw = static_cast<int>(
        RetryOnEintr([this] { return ::accept(fd_.get(), nullptr, nullptr); }));
    if (raw < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return accepted;
      if (errno == ECONNABORTED || errno == EMFILE || errno == ENFILE) {
        // Peer gave up mid-handshake or we are out of fds; neither kills the
        // listener. EMFILE self-heals once a connection closes — level
        // triggering re-delivers the pending accept.
        Instr().aborted.Add();
        return accepted;
      }
      return -1;
    }
    ScopedFd conn(raw);
    SetNonBlocking(conn.get());
    SetTcpNoDelay(conn.get());
    Instr().accepted.Add();
    ++accepted;
    on_accept(std::move(conn));
  }
}

}  // namespace asppi::net
