// net::Listener — a non-blocking accepting socket bound to 127.0.0.1.
//
// The listener itself does no event-loop wiring: the owning net::Server
// watches its fd on the accept loop and calls AcceptReady() when it fires,
// which drains every pending connection (level-triggered accept can batch).
// Accepted fds come back non-blocking with TCP_NODELAY already applied.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/fd.h"

namespace asppi::net {

class Listener {
 public:
  Listener() = default;

  // Binds and listens on 127.0.0.1:`port` (0 = ephemeral). Returns "" on
  // success; on failure the listener stays closed and the error describes
  // the failing syscall.
  std::string Open(std::uint16_t port, int backlog = 128);

  // Accepts every connection currently queued, invoking `on_accept` with an
  // owned, non-blocking fd per connection. Stops on EAGAIN. Returns the
  // number accepted; transient per-connection failures (ECONNABORTED) are
  // skipped, a dead listener fd reports -1.
  int AcceptReady(const std::function<void(ScopedFd)>& on_accept);

  void Close() { fd_.Reset(); }

  int fd() const { return fd_.get(); }
  bool valid() const { return fd_.valid(); }
  // The bound port (resolved after Open, useful with port 0).
  std::uint16_t port() const { return port_; }

 private:
  ScopedFd fd_;
  std::uint16_t port_ = 0;
};

}  // namespace asppi::net
