#include "net/server.h"

#include <chrono>
#include <future>
#include <utility>

#include "util/check.h"
#include "util/metrics.h"

namespace asppi::net {

namespace {

struct ServerMetrics {
  util::Counter accepted{"net.server.accepted"};
  util::Counter rejected{"net.server.rejected"};
  util::Counter force_closed{"net.server.force_closed"};
};

ServerMetrics& Instr() {
  static ServerMetrics* m = new ServerMetrics();
  return *m;
}

}  // namespace

Server::Server(BatchCallback on_batch, const NetServerOptions& options)
    : on_batch_(std::move(on_batch)), options_(options) {
  if (options_.shards < 1) options_.shards = 1;
}

Server::~Server() { Stop(); }

PollerBackend Server::backend() const {
  return shards_.empty() ? options_.backend : shards_[0]->loop->backend();
}

std::string Server::Start() {
  ASPPI_CHECK(!started_.load()) << "net::Server is not restartable";
  const std::string err = listener_.Open(options_.port);
  if (!err.empty()) return err;

  shards_.reserve(static_cast<std::size_t>(options_.shards));
  for (int i = 0; i < options_.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->loop = std::make_unique<EventLoop>(options_.backend);
    shards_.push_back(std::move(shard));
  }
  for (auto& shard : shards_) {
    EventLoop* loop = shard->loop.get();
    shard->thread = std::thread([loop] { loop->Run(); });
  }
  // The accept watch lands on shard 0's loop thread via Post so Watch() is
  // called under the loop-thread-only contract.
  shards_[0]->loop->Post([this] {
    const std::string err = shards_[0]->loop->Watch(
        listener_.fd(),
        [this](bool readable, bool /*writable*/, bool error) {
          if (readable && !error) HandleAccept();
        },
        /*want_read=*/true, /*want_write=*/false);
    // Unlike a per-connection Watch (where failure closes one conn), losing
    // the accept watch means the server can never serve — fatal.
    ASPPI_CHECK(err.empty()) << "accept watch: " << err;
  });
  started_.store(true);
  return "";
}

void Server::HandleAccept() {
  listener_.AcceptReady([this](ScopedFd fd) {
    if (open_.load(std::memory_order_relaxed) >= options_.max_connections) {
      // Admission control: close without a response, exactly like the
      // threaded server's cap — clients treat it as a refused connection.
      rejected_.fetch_add(1, std::memory_order_relaxed);
      Instr().rejected.Add();
      return;  // ScopedFd closes on scope exit
    }
    open_.fetch_add(1, std::memory_order_relaxed);
    accepted_.fetch_add(1, std::memory_order_relaxed);
    Instr().accepted.Add();
    PlaceConnection(std::move(fd));
  });
}

void Server::PlaceConnection(ScopedFd fd) {
  const std::size_t shard_index =
      static_cast<std::size_t>(next_shard_++ % shards_.size());
  Shard* shard = shards_[shard_index].get();
  const std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  // Hand the fd to the owning shard; from here on only that loop thread
  // touches the connection.
  auto raw_fd = std::make_shared<ScopedFd>(std::move(fd));
  shard->loop->Post([this, shard, id, raw_fd] {
    auto conn = std::make_shared<Conn>(std::move(*raw_fd), shard->loop.get(),
                                       options_.conn, id);
    shard->conns[id] = conn;
    conn->Start(on_batch_, [this, shard](std::uint64_t conn_id) {
      shard->conns.erase(conn_id);
      open_.fetch_sub(1, std::memory_order_relaxed);
    });
  });
}

void Server::Stop() {
  if (!started_.load() || stopped_.exchange(true)) return;

  // 1. Stop accepting. The unwatch+close must run on shard 0's loop thread —
  // and Stop must WAIT for it: a post racing the loop's own Stop() can be
  // retained-but-never-run, which would leave the listening socket open and
  // park late connects in the accept backlog forever.
  {
    std::promise<void> closed;
    shards_[0]->loop->Post([this, &closed] {
      shards_[0]->loop->Unwatch(listener_.fd());
      listener_.Close();
      closed.set_value();
    });
    closed.get_future().wait();
  }

  // 2. Ask every connection to finish what it has and close. Waited for the
  // same reason: once these have run, every conn is draining toward open_==0
  // and no teardown work can be dropped by the loop stop below.
  {
    std::vector<std::promise<void>> asked(shards_.size());
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      Shard* s = shards_[i].get();
      std::promise<void>* done = &asked[i];
      s->loop->Post([s, done] {
        for (auto& [id, conn] : s->conns) conn->CloseWhenIdle();
        done->set_value();
      });
    }
    for (auto& done : asked) done.get_future().wait();
  }

  // 3. Bounded graceful drain.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.drain_timeout_ms);
  while (open_.load(std::memory_order_relaxed) > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // 4. Force-close stragglers (a wedged peer must not block shutdown).
  if (open_.load(std::memory_order_relaxed) > 0) {
    for (auto& shard : shards_) {
      Shard* s = shard.get();
      s->loop->Post([s] {
        for (auto& [id, conn] : s->conns) {
          Instr().force_closed.Add();
          conn->CloseNow();
        }
      });
    }
    while (open_.load(std::memory_order_relaxed) > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  // 5. Stop the loops and join.
  for (auto& shard : shards_) shard->loop->Stop();
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
}

}  // namespace asppi::net
