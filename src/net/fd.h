// File-descriptor plumbing shared by every socket path in the repo: a
// move-only RAII wrapper (no descriptor is ever leaked on an early return),
// an EINTR retry helper (a signal landing mid-syscall — SIGHUP reload under
// load is the canonical case — must never look like an I/O error), and the
// non-blocking/wakeup primitives the reactor is built from.
#pragma once

#include <unistd.h>

#include <cerrno>
#include <string>
#include <utility>

namespace asppi::net {

// Retries `fn` (a syscall-shaped callable returning < 0 with errno on
// failure) while it fails with EINTR. Returns the first non-EINTR result.
// Both the threaded serve::Server and the reactor route every accept/read/
// write/poll through this so a delivered signal can never tear a connection.
template <typename Fn>
auto RetryOnEintr(Fn&& fn) -> decltype(fn()) {
  decltype(fn()) result;
  do {
    result = fn();
  } while (result < 0 && errno == EINTR);
  return result;
}

// Owning file descriptor: closes on destruction (retrying EINTR per POSIX
// close semantics on Linux — the fd is gone either way), move-only, and
// explicit about handing ownership away.
class ScopedFd {
 public:
  ScopedFd() = default;
  explicit ScopedFd(int fd) : fd_(fd) {}
  ~ScopedFd() { Reset(); }

  ScopedFd(const ScopedFd&) = delete;
  ScopedFd& operator=(const ScopedFd&) = delete;

  ScopedFd(ScopedFd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  ScopedFd& operator=(ScopedFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  // Releases ownership without closing; returns the raw fd.
  int Release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

  // Closes now (idempotent).
  void Reset(int fd = -1) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = fd;
  }

 private:
  int fd_ = -1;
};

// O_NONBLOCK on/off. Returns false (errno set) on failure.
bool SetNonBlocking(int fd, bool non_blocking = true);

// TCP_NODELAY — NDJSON request/response lines are latency-sensitive and tiny.
void SetTcpNoDelay(int fd);

// A self-wakeup channel for event loops: eventfd on Linux (read_fd ==
// write_fd), a non-blocking pipe elsewhere. Returns "" on success.
struct WakeupPair {
  ScopedFd read_fd;
  ScopedFd write_fd;  // invalid when eventfd-backed; write to read_fd then
  int WriteEnd() const { return write_fd.valid() ? write_fd.get() : read_fd.get(); }
};
std::string OpenWakeupPair(WakeupPair* out);

// Post one wakeup token (non-blocking; a full pipe already wakes the peer).
void SignalWakeup(int write_end);

// Drain every pending wakeup token (called from the loop after poll).
void DrainWakeup(int read_end);

}  // namespace asppi::net
