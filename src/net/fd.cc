#include "net/fd.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>

#include <cstdint>
#include <cstring>

#if defined(__linux__)
#include <sys/eventfd.h>
#endif

namespace asppi::net {

bool SetNonBlocking(int fd, bool non_blocking) {
  const int flags = RetryOnEintr([&] { return ::fcntl(fd, F_GETFL, 0); });
  if (flags < 0) return false;
  const int wanted =
      non_blocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (wanted == flags) return true;
  return RetryOnEintr([&] { return ::fcntl(fd, F_SETFL, wanted); }) >= 0;
}

void SetTcpNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

std::string OpenWakeupPair(WakeupPair* out) {
#if defined(__linux__)
  const int efd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (efd < 0) return std::string("eventfd: ") + std::strerror(errno);
  out->read_fd.Reset(efd);
  out->write_fd.Reset();
  return "";
#else
  int fds[2];
  if (::pipe(fds) < 0) return std::string("pipe: ") + std::strerror(errno);
  out->read_fd.Reset(fds[0]);
  out->write_fd.Reset(fds[1]);
  SetNonBlocking(fds[0]);
  SetNonBlocking(fds[1]);
  return "";
#endif
}

void SignalWakeup(int write_end) {
  const std::uint64_t token = 1;
  // EAGAIN means the counter/pipe is already pending — the peer will wake.
  (void)RetryOnEintr(
      [&] { return ::write(write_end, &token, sizeof(token)); });
}

void DrainWakeup(int read_end) {
  std::uint64_t buf[16];
  while (RetryOnEintr([&] { return ::read(read_end, buf, sizeof(buf)); }) > 0) {
  }
}

}  // namespace asppi::net
