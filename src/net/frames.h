// Incremental NDJSON frame splitting for non-blocking sockets.
//
// A LineSplitter is fed whatever bytes recv() produced — torn frames, many
// frames at once, or a single byte — and yields complete newline-terminated
// lines. The contract the framing tests pin:
//
//   * splitting is byte-boundary-independent: feeding a stream one byte at a
//     time yields exactly the lines of feeding it in one call;
//   * '\r' before the terminator is stripped (telnet/nc friendliness), blank
//     lines are swallowed (keep-alive probes), matching the threaded server;
//   * a line longer than `max_line_bytes` is rejected without buffering it:
//     the splitter drops into a skip state that discards bytes until the
//     next '\n' (bounded memory under a hostile or broken writer) and
//     reports the rejection so the transport can answer with an error line;
//   * bytes buffered for an incomplete frame are capped by max_line_bytes,
//     so per-connection memory is bounded regardless of peer behavior.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace asppi::net {

class LineSplitter {
 public:
  explicit LineSplitter(std::size_t max_line_bytes = 64 * 1024)
      : max_line_bytes_(max_line_bytes) {}

  // Appends `data` and moves every now-complete line into `lines`
  // (oversized lines are skipped and counted instead). Returns how many
  // oversized lines were rejected during this call.
  std::size_t Feed(std::string_view data, std::vector<std::string>* lines);

  // Total complete lines emitted / oversized lines rejected so far.
  std::uint64_t LinesEmitted() const { return lines_emitted_; }
  std::uint64_t Oversized() const { return oversized_; }

  // Bytes currently buffered for an incomplete frame (bounded by
  // max_line_bytes).
  std::size_t Buffered() const { return buffer_.size(); }

  std::size_t MaxLineBytes() const { return max_line_bytes_; }

 private:
  std::size_t max_line_bytes_;
  std::string buffer_;
  bool skipping_ = false;  // discarding an oversized line until '\n'
  std::uint64_t lines_emitted_ = 0;
  std::uint64_t oversized_ = 0;
};

}  // namespace asppi::net
