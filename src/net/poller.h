// Readiness polling behind one interface, two backends:
//
//   * kEpoll — Linux epoll in level-triggered mode. Level-triggered (not
//     edge) because the reactor deliberately stops reading a connection
//     while a batch is in flight (flow control); with edge triggering the
//     un-consumed readable state would need manual re-arming on every
//     resume. O(ready) dispatch, fd count far beyond FD_SETSIZE.
//   * kPoll — portable poll(2) over a dense pollfd array. O(watched) per
//     wait, but correct everywhere; it is what macOS/CI-sanitizer builds and
//     the fallback tests run. Behaviorally identical to the epoll backend —
//     net_test parameterizes every suite over both.
//
// kAuto resolves to epoll where compiled in, else poll. Both backends are
// single-threaded by contract: all calls from the owning loop thread.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/fd.h"

namespace asppi::net {

enum class PollerBackend { kAuto, kEpoll, kPoll };

const char* PollerBackendName(PollerBackend backend);
// Parses "auto" | "epoll" | "poll"; returns false on unknown spelling.
bool ParsePollerBackend(const std::string& name, PollerBackend* out);

struct PollerEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  bool error = false;  // HUP/ERR — the owner should read-to-EOF then close
};

class Poller {
 public:
  explicit Poller(PollerBackend backend = PollerBackend::kAuto);
  ~Poller();

  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  // The backend actually in use (kAuto resolved).
  PollerBackend backend() const { return backend_; }

  // Registers `fd`. Returns "" on success. Watching neither direction is
  // legal (the fd stays registered for error events).
  std::string Add(int fd, bool want_read, bool want_write);
  // Updates interest for a registered fd (no-op for unknown fds).
  void Set(int fd, bool want_read, bool want_write);
  void Remove(int fd);

  std::size_t WatchedCount() const { return interest_.size(); }

  // Blocks up to `timeout_ms` (-1 = no timeout) and appends ready events to
  // `out` (cleared first). Returns the event count; EINTR reads as 0.
  int Wait(int timeout_ms, std::vector<PollerEvent>* out);

 private:
  struct Interest {
    bool read = false;
    bool write = false;
  };

  PollerBackend backend_;
  std::unordered_map<int, Interest> interest_;

  // kEpoll state.
  ScopedFd epoll_fd_;

  // kPoll state: dense pollfd array kept in sync with interest_.
  std::vector<int> poll_fds_;  // fd per dense slot
  std::unordered_map<int, std::size_t> poll_index_;
};

}  // namespace asppi::net
