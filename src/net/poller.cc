#include "net/poller.h"

#include <poll.h>

#include <cstring>

#include "util/check.h"

#if defined(__linux__)
#include <sys/epoll.h>
#define ASPPI_NET_HAS_EPOLL 1
#else
#define ASPPI_NET_HAS_EPOLL 0
#endif

namespace asppi::net {

const char* PollerBackendName(PollerBackend backend) {
  switch (backend) {
    case PollerBackend::kAuto:
      return "auto";
    case PollerBackend::kEpoll:
      return "epoll";
    case PollerBackend::kPoll:
      return "poll";
  }
  return "unknown";
}

bool ParsePollerBackend(const std::string& name, PollerBackend* out) {
  if (name == "auto") {
    *out = PollerBackend::kAuto;
  } else if (name == "epoll") {
    *out = PollerBackend::kEpoll;
  } else if (name == "poll") {
    *out = PollerBackend::kPoll;
  } else {
    return false;
  }
  return true;
}

Poller::Poller(PollerBackend backend) : backend_(backend) {
  if (backend_ == PollerBackend::kAuto) {
    backend_ =
        ASPPI_NET_HAS_EPOLL ? PollerBackend::kEpoll : PollerBackend::kPoll;
  }
#if ASPPI_NET_HAS_EPOLL
  if (backend_ == PollerBackend::kEpoll) {
    epoll_fd_.Reset(::epoll_create1(EPOLL_CLOEXEC));
    ASPPI_CHECK(epoll_fd_.valid()) << "epoll_create1: " << std::strerror(errno);
  }
#else
  // epoll asked for on a platform without it: fall back rather than fail —
  // the caller's backend knob is a preference, portability is the contract.
  backend_ = PollerBackend::kPoll;
#endif
}

Poller::~Poller() = default;

std::string Poller::Add(int fd, bool want_read, bool want_write) {
  if (interest_.count(fd) != 0) return "fd already registered";
  interest_[fd] = Interest{want_read, want_write};
#if ASPPI_NET_HAS_EPOLL
  if (backend_ == PollerBackend::kEpoll) {
    epoll_event ev{};
    ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, fd, &ev) < 0) {
      interest_.erase(fd);
      return std::string("epoll_ctl(ADD): ") + std::strerror(errno);
    }
    return "";
  }
#endif
  poll_index_[fd] = poll_fds_.size();
  poll_fds_.push_back(fd);
  return "";
}

void Poller::Set(int fd, bool want_read, bool want_write) {
  auto it = interest_.find(fd);
  if (it == interest_.end()) return;
  it->second = Interest{want_read, want_write};
#if ASPPI_NET_HAS_EPOLL
  if (backend_ == PollerBackend::kEpoll) {
    epoll_event ev{};
    ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, fd, &ev);
  }
#endif
}

void Poller::Remove(int fd) {
  if (interest_.erase(fd) == 0) return;
#if ASPPI_NET_HAS_EPOLL
  if (backend_ == PollerBackend::kEpoll) {
    ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, fd, nullptr);
    return;
  }
#endif
  const auto it = poll_index_.find(fd);
  const std::size_t slot = it->second;
  poll_index_.erase(it);
  // Swap-erase keeps the dense array compact; re-home the moved fd's index.
  const int moved = poll_fds_.back();
  poll_fds_[slot] = moved;
  poll_fds_.pop_back();
  if (moved != fd) poll_index_[moved] = slot;
}

int Poller::Wait(int timeout_ms, std::vector<PollerEvent>* out) {
  out->clear();
#if ASPPI_NET_HAS_EPOLL
  if (backend_ == PollerBackend::kEpoll) {
    epoll_event events[128];
    const int n = ::epoll_wait(epoll_fd_.get(), events,
                               static_cast<int>(std::size(events)), timeout_ms);
    if (n < 0) return errno == EINTR ? 0 : -1;
    out->reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      PollerEvent event;
      event.fd = events[i].data.fd;
      event.readable = (events[i].events & (EPOLLIN | EPOLLHUP)) != 0;
      event.writable = (events[i].events & EPOLLOUT) != 0;
      event.error = (events[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      out->push_back(event);
    }
    return n;
  }
#endif
  std::vector<pollfd> pfds;
  pfds.reserve(poll_fds_.size());
  for (int fd : poll_fds_) {
    const Interest& interest = interest_[fd];
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = static_cast<short>((interest.read ? POLLIN : 0) |
                                    (interest.write ? POLLOUT : 0));
    pfds.push_back(pfd);
  }
  const int n = ::poll(pfds.data(), pfds.size(), timeout_ms);
  if (n < 0) return errno == EINTR ? 0 : -1;
  for (const pollfd& pfd : pfds) {
    if (pfd.revents == 0) continue;
    PollerEvent event;
    event.fd = pfd.fd;
    event.readable = (pfd.revents & (POLLIN | POLLHUP)) != 0;
    event.writable = (pfd.revents & POLLOUT) != 0;
    event.error = (pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
    out->push_back(event);
  }
  return static_cast<int>(out->size());
}

}  // namespace asppi::net
