// net::Server — N event-loop shards behind one accepting socket.
//
// Topology: shard 0's loop watches the listener; each accept is handed to a
// shard round-robin via Post(), so connection state never migrates between
// threads after placement. Each shard runs one EventLoop on one thread and
// owns its connections outright — the only shared mutable state is the
// atomic open-connection count used for admission.
//
// The server is protocol-agnostic: it delivers request-line batches to the
// installed BatchCallback (on the shard's loop thread — the callback should
// hand real work to a thread pool and return) and writes back whatever
// Reply() provides. serve::ReactorServer supplies the BGP query semantics.
//
// Stop() drains: the listener closes first, every connection is asked to
// close-when-idle (in-flight batches finish, buffered responses flush), and
// only after the open count hits zero — or a bounded grace period expires —
// are survivors force-closed and the loops joined.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/conn.h"
#include "net/event_loop.h"
#include "net/listener.h"

namespace asppi::net {

struct NetServerOptions {
  std::uint16_t port = 0;  // 0 = ephemeral
  int shards = 2;
  PollerBackend backend = PollerBackend::kAuto;
  // Admission cap across all shards; connections beyond it are closed at
  // accept time without a response (same contract as the threaded server).
  std::size_t max_connections = 1024;
  // Milliseconds Stop() waits for a graceful drain before force-closing.
  int drain_timeout_ms = 5000;
  ConnOptions conn;
};

class Server {
 public:
  Server(BatchCallback on_batch, const NetServerOptions& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds, spawns shard threads, and begins accepting. Returns "" on
  // success. Not restartable after Stop().
  std::string Start();
  void Stop();

  std::uint16_t port() const { return listener_.port(); }
  PollerBackend backend() const;

  std::size_t OpenConnections() const {
    return open_.load(std::memory_order_relaxed);
  }
  std::uint64_t Accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }
  std::uint64_t Rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }

 private:
  struct Shard {
    std::unique_ptr<EventLoop> loop;
    std::thread thread;
    // Loop-thread-owned: every touch happens via Post to this shard's loop.
    std::unordered_map<std::uint64_t, std::shared_ptr<Conn>> conns;
  };

  void HandleAccept();
  void PlaceConnection(ScopedFd fd);

  BatchCallback on_batch_;
  NetServerOptions options_;
  Listener listener_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<std::size_t> open_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> next_id_{1};
  std::uint64_t next_shard_ = 0;  // shard 0's loop thread only
};

}  // namespace asppi::net
