// net::EventLoop — one thread, one Poller, three inputs:
//
//   * fd readiness: Watch(fd, cb) registers a level-triggered callback;
//     SetWants flips read/write interest (the reactor's flow control);
//   * cross-thread work: Post(fn) enqueues `fn` and wakes the loop through
//     its eventfd/self-pipe, so any thread (a ThreadPool worker finishing a
//     query batch, the signal-observing main thread) can hand work to the
//     loop thread without touching loop-owned state;
//   * timers: RunAfter(delay_ms, fn) arms a min-heap entry; the earliest
//     deadline bounds the poll timeout (a timer-fd with extra steps, minus
//     the extra fd — identical wakeup semantics on both backends).
//
// Threading contract: Watch/SetWants/Unwatch are loop-thread-only; Post,
// RunAfter, and Stop are safe from any thread. Everything a callback touches
// is therefore single-threaded, which is what keeps Conn lock-free.
//
// Stop() wakes the loop and Run() returns after the current dispatch round.
// Posts arriving after Run() returned are retained until destruction but
// never executed (the reactor drains connections before stopping its loops,
// so in practice nothing user-visible lands there).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/poller.h"

namespace asppi::net {

class EventLoop {
 public:
  // Invoked with the fd's readiness; `error` means HUP/ERR was raised.
  using FdCallback = std::function<void(bool readable, bool writable, bool error)>;

  explicit EventLoop(PollerBackend backend = PollerBackend::kAuto);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Runs until Stop(). Adopts the calling thread as the loop thread.
  void Run();
  // Any thread; idempotent.
  void Stop();

  // Any thread: runs `fn` on the loop thread, FIFO with other posts. If
  // called from the loop thread it still queues (never reentrant).
  void Post(std::function<void()> fn);

  // Any thread: runs `fn` on the loop thread no earlier than `delay_ms`.
  void RunAfter(int delay_ms, std::function<void()> fn);

  // Loop thread only (callers Post() in from outside). Watch returns "" on
  // success; a non-empty error (transient epoll_ctl ENOMEM/ENOSPC, duplicate
  // fd) means the fd was NOT registered and the caller should close it —
  // one failed registration must not take the process down.
  std::string Watch(int fd, FdCallback cb, bool want_read, bool want_write);
  void SetWants(int fd, bool want_read, bool want_write);
  void Unwatch(int fd);

  bool IsLoopThread() const {
    return std::this_thread::get_id() == loop_thread_;
  }
  PollerBackend backend() const { return poller_.backend(); }
  std::size_t WatchedCount() const { return poller_.WatchedCount(); }

 private:
  struct TimerEntry {
    std::uint64_t deadline_ns;
    std::uint64_t seq;  // FIFO tie-break for equal deadlines
    std::function<void()> fn;
    bool operator>(const TimerEntry& other) const {
      return deadline_ns != other.deadline_ns
                 ? deadline_ns > other.deadline_ns
                 : seq > other.seq;
    }
  };

  int NextTimeoutMs() const;
  void FireDueTimers();
  void DrainPosted();

  Poller poller_;
  WakeupPair wakeup_;
  std::atomic<bool> stopping_{false};
  std::thread::id loop_thread_;

  std::mutex post_mu_;
  std::vector<std::function<void()>> posted_;

  mutable std::mutex timer_mu_;
  std::priority_queue<TimerEntry, std::vector<TimerEntry>,
                      std::greater<TimerEntry>>
      timers_;
  std::uint64_t timer_seq_ = 0;

  std::unordered_map<int, FdCallback> watches_;
  std::vector<PollerEvent> events_;  // reused across rounds
};

}  // namespace asppi::net
