#include "net/conn.h"

#include <sys/socket.h>

#include <utility>

#include "util/metrics.h"

namespace asppi::net {

namespace {

struct ConnMetrics {
  util::Counter opened{"net.conn.opened"};
  util::Counter closed{"net.conn.closed"};
  util::Counter backlog_shed{"net.conn.backlog_shed"};
  util::Counter read_paused{"net.conn.read_paused"};
  util::Counter bytes_in{"net.conn.bytes_in"};
  util::Counter bytes_out{"net.conn.bytes_out"};
};

ConnMetrics& Instr() {
  static ConnMetrics* m = new ConnMetrics();
  return *m;
}

}  // namespace

Conn::Conn(ScopedFd fd, EventLoop* loop, const ConnOptions& options,
           std::uint64_t id)
    : fd_(std::move(fd)),
      loop_(loop),
      options_(options),
      id_(id),
      splitter_(options.max_line_bytes) {}

Conn::~Conn() = default;

void Conn::Start(BatchCallback on_batch, CloseCallback on_close) {
  on_batch_ = std::move(on_batch);
  on_close_ = std::move(on_close);
  Instr().opened.Add();
  auto self = shared_from_this();
  const std::string err = loop_->Watch(
      fd_.get(),
      [self](bool readable, bool writable, bool error) {
        self->HandleEvent(readable, writable, error);
      },
      want_read_, want_write_);
  if (!err.empty()) {
    // Registration failed (e.g. transient epoll_ctl ENOMEM): this connection
    // never becomes readable, so close it — TearDown's Unwatch is a no-op on
    // the unregistered fd and on_close_ keeps the server's open count right.
    TearDown();
  }
}

void Conn::Reply(std::vector<std::string> responses) {
  auto self = shared_from_this();
  loop_->Post([self, responses = std::move(responses)]() mutable {
    if (self->closed_) return;
    self->busy_ = false;
    for (std::string& response : responses) {
      if (response.empty() || response.back() != '\n') response.push_back('\n');
      self->out_.append(response);
    }
    self->FlushWrites();
    if (self->closed_) return;
    if (self->out_.size() - self->out_offset_ >
        self->options_.max_write_backlog) {
      // Judged AFTER flushing: a big batch bound for a prompt reader drains
      // into the socket right here and never trips the cap. What is left is
      // bytes the kernel would not take — the peer is not reading and
      // responses are piling up, so shed rather than let one slow reader
      // hold megabytes hostage.
      Instr().backlog_shed.Add();
      if (self->options_.backlog_shed_counter != nullptr) {
        self->options_.backlog_shed_counter->fetch_add(
            1, std::memory_order_relaxed);
      }
      self->TearDown();
      return;
    }
    self->MaybeDispatch();
    if (self->closed_) return;
    if (self->closing_ || self->eof_) {
      if (self->Idle()) {
        self->TearDown();
        return;
      }
    }
    self->UpdateInterest();
  });
}

void Conn::CloseWhenIdle() {
  auto self = shared_from_this();
  loop_->Post([self] {
    if (self->closed_) return;
    self->closing_ = true;
    if (self->Idle()) {
      self->TearDown();
    } else {
      self->UpdateInterest();
    }
  });
}

void Conn::CloseNow() {
  auto self = shared_from_this();
  loop_->Post([self] { self->TearDown(); });
}

void Conn::HandleEvent(bool readable, bool writable, bool error) {
  if (closed_) return;
  if (error) {
    // RST or HUP with error — nothing sensible left to write.
    TearDown();
    return;
  }
  if (writable) {
    FlushWrites();
    if (closed_) return;
  }
  if (readable && want_read_) {
    HandleReadable();
    if (closed_) return;
  }
  MaybeDispatch();
  if (closed_) return;
  if ((closing_ || eof_) && Idle()) {
    TearDown();
    return;
  }
  UpdateInterest();
}

void Conn::HandleReadable() {
  char buf[16 * 1024];
  std::vector<std::string> lines;
  for (;;) {
    const ssize_t n = RetryOnEintr(
        [&] { return ::recv(fd_.get(), buf, sizeof(buf), 0); });
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      TearDown();
      return;
    }
    if (n == 0) {
      eof_ = true;
      break;
    }
    Instr().bytes_in.Add(static_cast<std::uint64_t>(n));
    const std::size_t rejected = splitter_.Feed(
        std::string_view(buf, static_cast<std::size_t>(n)), &lines);
    for (std::size_t i = 0; i < rejected; ++i) {
      if (options_.oversize_response.empty()) continue;
      out_.append(options_.oversize_response);
      out_.push_back('\n');
    }
    // Backpressure: stop pulling once enough lines are parked. Level
    // triggering re-delivers the readable state when we resume.
    if (pending_.size() + lines.size() >= options_.max_pending_lines) break;
  }
  for (std::string& line : lines) pending_.push_back(std::move(line));
  if (!out_.empty()) FlushWrites();
}

void Conn::MaybeDispatch() {
  if (busy_ || pending_.empty() || closed_) return;
  std::vector<std::string> batch;
  batch.reserve(pending_.size());
  while (!pending_.empty()) {
    batch.push_back(std::move(pending_.front()));
    pending_.pop_front();
  }
  busy_ = true;
  on_batch_(shared_from_this(), std::move(batch));
}

void Conn::FlushWrites() {
  while (out_offset_ < out_.size()) {
    const ssize_t n = RetryOnEintr([&] {
      return ::send(fd_.get(), out_.data() + out_offset_,
                    out_.size() - out_offset_, MSG_NOSIGNAL);
    });
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      TearDown();
      return;
    }
    Instr().bytes_out.Add(static_cast<std::uint64_t>(n));
    out_offset_ += static_cast<std::size_t>(n);
  }
  if (out_offset_ == out_.size()) {
    out_.clear();
    out_offset_ = 0;
  } else if (out_offset_ > options_.max_line_bytes) {
    // Compact occasionally so a long-lived conn doesn't grow a dead prefix.
    out_.erase(0, out_offset_);
    out_offset_ = 0;
  }
}

void Conn::UpdateInterest() {
  const bool want_read =
      !eof_ && !closing_ && pending_.size() < options_.max_pending_lines;
  const bool want_write = out_offset_ < out_.size();
  if (want_read == want_read_ && want_write == want_write_) return;
  if (want_read_ && !want_read && !eof_ && !closing_) {
    Instr().read_paused.Add();
  }
  want_read_ = want_read;
  want_write_ = want_write;
  loop_->SetWants(fd_.get(), want_read_, want_write_);
}

void Conn::TearDown() {
  if (closed_) return;
  closed_ = true;
  loop_->Unwatch(fd_.get());
  fd_.Reset();
  pending_.clear();
  out_.clear();
  out_offset_ = 0;
  Instr().closed.Add();
  if (on_close_) on_close_(id_);
  on_close_ = nullptr;
  on_batch_ = nullptr;
}

}  // namespace asppi::net
