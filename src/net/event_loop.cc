#include "net/event_loop.h"

#include <chrono>
#include <cstring>
#include <utility>

#include "util/check.h"
#include "util/metrics.h"

namespace asppi::net {

namespace {

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct LoopMetrics {
  util::Counter wakeups{"net.loop.wakeups"};
  util::Counter dispatches{"net.loop.dispatches"};
  util::Counter posts{"net.loop.posts"};
  util::Counter timers{"net.loop.timers_fired"};
};

LoopMetrics& Instr() {
  static LoopMetrics* m = new LoopMetrics();
  return *m;
}

}  // namespace

EventLoop::EventLoop(PollerBackend backend) : poller_(backend) {
  std::string err = OpenWakeupPair(&wakeup_);
  ASPPI_CHECK(err.empty()) << "wakeup pipe: " << err;
  err = poller_.Add(wakeup_.read_fd.get(), /*want_read=*/true,
                    /*want_write=*/false);
  ASPPI_CHECK(err.empty()) << "wakeup pipe registration: " << err;
  // Constructed-on thread is a placeholder; Run() re-adopts its caller.
  loop_thread_ = std::this_thread::get_id();
}

EventLoop::~EventLoop() = default;

void EventLoop::Run() {
  loop_thread_ = std::this_thread::get_id();
  while (!stopping_.load(std::memory_order_acquire)) {
    const int n = poller_.Wait(NextTimeoutMs(), &events_);
    ASPPI_CHECK(n >= 0) << "poller wait: " << std::strerror(errno);
    Instr().wakeups.Add();
    for (const PollerEvent& event : events_) {
      if (event.fd == wakeup_.read_fd.get()) {
        DrainWakeup(wakeup_.read_fd.get());
        continue;
      }
      // Fresh lookup per event: a callback earlier in this round may have
      // Unwatch()ed this fd. Copy the callback so an Unwatch from inside it
      // (connection closing itself) cannot free the std::function mid-call.
      const auto it = watches_.find(event.fd);
      if (it == watches_.end()) continue;
      FdCallback cb = it->second;
      Instr().dispatches.Add();
      cb(event.readable, event.writable, event.error);
    }
    FireDueTimers();
    DrainPosted();
  }
}

void EventLoop::Stop() {
  stopping_.store(true, std::memory_order_release);
  SignalWakeup(wakeup_.WriteEnd());
}

void EventLoop::Post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    posted_.push_back(std::move(fn));
  }
  Instr().posts.Add();
  SignalWakeup(wakeup_.WriteEnd());
}

void EventLoop::RunAfter(int delay_ms, std::function<void()> fn) {
  if (delay_ms < 0) delay_ms = 0;
  {
    std::lock_guard<std::mutex> lock(timer_mu_);
    timers_.push(TimerEntry{
        NowNs() + static_cast<std::uint64_t>(delay_ms) * 1'000'000ull,
        timer_seq_++, std::move(fn)});
  }
  // Wake so the loop recomputes its poll timeout against the new deadline.
  SignalWakeup(wakeup_.WriteEnd());
}

std::string EventLoop::Watch(int fd, FdCallback cb, bool want_read,
                             bool want_write) {
  std::string err = poller_.Add(fd, want_read, want_write);
  if (!err.empty()) return err;
  watches_[fd] = std::move(cb);
  return "";
}

void EventLoop::SetWants(int fd, bool want_read, bool want_write) {
  poller_.Set(fd, want_read, want_write);
}

void EventLoop::Unwatch(int fd) {
  poller_.Remove(fd);
  watches_.erase(fd);
}

int EventLoop::NextTimeoutMs() const {
  std::lock_guard<std::mutex> lock(timer_mu_);
  if (timers_.empty()) return -1;
  const std::uint64_t now = NowNs();
  const std::uint64_t deadline = timers_.top().deadline_ns;
  if (deadline <= now) return 0;
  // Round up so a timer never fires early off a truncated timeout.
  return static_cast<int>((deadline - now + 999'999ull) / 1'000'000ull);
}

void EventLoop::FireDueTimers() {
  const std::uint64_t now = NowNs();
  for (;;) {
    std::function<void()> fn;
    {
      std::lock_guard<std::mutex> lock(timer_mu_);
      if (timers_.empty() || timers_.top().deadline_ns > now) return;
      fn = std::move(const_cast<TimerEntry&>(timers_.top()).fn);
      timers_.pop();
    }
    Instr().timers.Add();
    fn();
  }
}

void EventLoop::DrainPosted() {
  std::vector<std::function<void()>> batch;
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    batch.swap(posted_);
  }
  for (auto& fn : batch) fn();
}

}  // namespace asppi::net
