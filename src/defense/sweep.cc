#include "defense/sweep.h"

#include <algorithm>
#include <utility>

#include "util/check.h"
#include "util/metrics.h"
#include "util/rng.h"

namespace asppi::defense {

namespace {

struct SweepMetrics {
  util::Counter points{"defense.sweep.points"};
  util::Counter attacks{"defense.sweep.attacks"};
  util::Timer sweep_time{"defense.sweep.run"};
};

SweepMetrics& Instr() {
  static SweepMetrics* m = new SweepMetrics();
  return *m;
}

// Bit-exact attacked-state equality across engines: derived accounting AND
// the full converged state (the delta outcome materializes its overlay).
bool SameOutcome(const attack::AttackOutcome& a,
                 const attack::AttackOutcome& b) {
  if (a.fraction_before != b.fraction_before ||
      a.fraction_after != b.fraction_after ||
      a.newly_polluted != b.newly_polluted) {
    return false;
  }
  const bgp::PropagationResult& fa = a.after.Full();
  const bgp::PropagationResult& fb = b.after.Full();
  return fa.Rounds() == fb.Rounds() && fa.BestRoutes() == fb.BestRoutes() &&
         fa.FirstChangeRounds() == fb.FirstChangeRounds() &&
         fa.RibIn() == fb.RibIn() && fa.Sent() == fb.Sent();
}

}  // namespace

std::vector<std::pair<Asn, Asn>> PickSweepPairs(const topo::AsGraph& graph,
                                                std::size_t count,
                                                std::uint64_t seed) {
  ASPPI_CHECK_GE(graph.NumAses(), 2u) << "need at least two ASes";
  util::Rng rng(util::DeriveSeed(seed, 0xA115));
  // Sample among the transit heavyweights (see header): top-degree pool of
  // max(32, n/200) ASes, never fewer than two.
  std::vector<Asn> ases = graph.AsesByDegreeDesc();
  const std::size_t pool_size =
      std::min(ases.size(),
               std::max<std::size_t>(32, graph.NumAses() / 200));
  ases.resize(std::max<std::size_t>(pool_size, 2));
  std::vector<std::pair<Asn, Asn>> pairs;
  pairs.reserve(count);
  // Deterministic rejection loop; duplicates allowed only after the distinct
  // pair space is plausibly exhausted.
  const std::size_t max_tries = count * 64 + 64;
  std::size_t tries = 0;
  while (pairs.size() < count && tries < max_tries) {
    ++tries;
    const Asn victim = rng.Pick(ases);
    const Asn attacker = rng.Pick(ases);
    if (victim == attacker) continue;
    bool duplicate = false;
    for (const auto& [v, a] : pairs) {
      if (v == victim && a == attacker) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) pairs.emplace_back(victim, attacker);
  }
  while (pairs.size() < count && !pairs.empty()) pairs.push_back(pairs[0]);
  return pairs;
}

std::vector<DefenseSweepPoint> RunDefenseSweep(
    const topo::AsGraph& graph, const DefenseSweepOptions& options) {
  util::ScopedTimer sweep_timer(Instr().sweep_time);

  const std::vector<std::pair<Asn, Asn>> pairs =
      options.pairs.empty()
          ? PickSweepPairs(graph, options.num_pairs, options.seed)
          : options.pairs;
  ASPPI_CHECK(!pairs.empty()) << "defense sweep needs at least one pair";

  attack::BaselineCache local_cache(graph);
  attack::BaselineCache* cache = options.baseline_cache != nullptr
                                     ? options.baseline_cache
                                     : &local_cache;
  const attack::AttackSimulator simulator(graph, cache, options.engine);
  // For the equivalence gate: the other engine, sharing the same baselines.
  const attack::AttackSimulator full_sim(graph, cache,
                                         attack::EngineKind::kFull);
  const attack::AttackSimulator delta_sim(graph, cache,
                                          attack::EngineKind::kDelta);

  const std::size_t num_strategies = options.strategies.size();
  const std::size_t num_fractions = options.fractions.size();
  const std::size_t num_pairs = pairs.size();

  // One deployment ordering per (strategy, pair); every fraction of that
  // pair's sweep is a nested prefix of it.
  std::vector<DeploymentPlan> plans(num_strategies * num_pairs);
  util::ParallelFor(options.pool, plans.size(), [&](std::size_t i) {
    const std::size_t s = i / num_pairs;
    const std::size_t j = i % num_pairs;
    plans[i] = DeploymentPlan::Make(graph, options.strategies[s],
                                    pairs[j].first, pairs[j].second,
                                    util::DeriveSeed(options.seed, j));
  });

  struct TaskResult {
    double before = 0.0;
    double after = 0.0;
    std::size_t deployed = 0;
    bool agree = true;
  };
  const std::size_t num_tasks = num_strategies * num_fractions * num_pairs;
  std::vector<TaskResult> results(num_tasks);

  util::ParallelFor(options.pool, num_tasks, [&](std::size_t t) {
    const std::size_t s = t / (num_fractions * num_pairs);
    const std::size_t f = (t / num_pairs) % num_fractions;
    const std::size_t j = t % num_pairs;
    const auto& [victim, attacker] = pairs[j];

    const DeploymentPlan& plan = plans[s * num_pairs + j];
    const PolicySet set =
        plan.AtFraction(options.fractions[f], options.kinds);

    Instr().attacks.Add();
    TaskResult& out = results[t];
    out.deployed = set.DeployedCount();
    attack::AttackOutcome outcome = simulator.RunAsppInterception(
        victim, attacker, options.lambda, options.violate_valley_free,
        options.export_stripped_to_peers, &set);
    if (options.verify_engines) {
      attack::AttackOutcome full = full_sim.RunAsppInterception(
          victim, attacker, options.lambda, options.violate_valley_free,
          options.export_stripped_to_peers, &set);
      attack::AttackOutcome delta = delta_sim.RunAsppInterception(
          victim, attacker, options.lambda, options.violate_valley_free,
          options.export_stripped_to_peers, &set);
      out.agree = SameOutcome(full, delta);
    }
    out.before = outcome.fraction_before;
    out.after = outcome.fraction_after;
  });

  // Fixed-order reduction: (strategy, fraction) points, pairs in j order —
  // identical totals for any thread count.
  std::vector<DefenseSweepPoint> points;
  points.reserve(num_strategies * num_fractions);
  for (std::size_t s = 0; s < num_strategies; ++s) {
    for (std::size_t f = 0; f < num_fractions; ++f) {
      DefenseSweepPoint point;
      point.strategy = options.strategies[s];
      point.fraction = options.fractions[f];
      for (std::size_t j = 0; j < num_pairs; ++j) {
        const TaskResult& r =
            results[(s * num_fractions + f) * num_pairs + j];
        point.mean_deployed += static_cast<double>(r.deployed);
        point.mean_fraction_before += r.before;
        point.mean_fraction_after += r.after;
        point.engines_agree = point.engines_agree && r.agree;
      }
      const double denom = static_cast<double>(num_pairs);
      point.mean_deployed /= denom;
      point.mean_fraction_before /= denom;
      point.mean_fraction_after /= denom;
      Instr().points.Add();
      points.push_back(point);
    }
  }
  return points;
}

}  // namespace asppi::defense
