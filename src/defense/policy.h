// Per-AS defense policies evaluated inside the propagation engines.
//
// A PolicySet assigns each AS a (possibly empty) set of defensive policies
// and implements bgp::ImportFilter over them, so both the full
// PropagationSimulator and the DeltaPropagator honor the deployment
// identically through the shared engine_detail::AcceptDelivery kernel
// (DESIGN.md §4j). Three policies ship:
//
//   kRov            ROV-style origin filtering: drop any announcement whose
//                   origin AS differs from the prefix's registered origin
//                   (the victim). Stops origin hijacks outright; blind to
//                   ASPP interception, which keeps the true origin — the
//                   paper's core point, now measurable.
//   kPathValidation Path validation: additionally reject paths carrying the
//                   §II-B prepend-strip signature — any maximal run of some
//                   AS X that is shorter than the padding X is configured to
//                   announce toward its successor on the path. Catches the
//                   ASPP interceptor (and Ballani-style stripping) for λ≥2.
//   kInlineDetector The Fig. 4 victim-aware detection rule run inline on the
//                   Adj-RIB-In (detect/rules.h VictimAwareAlarm): reject a
//                   route whose observed λ toward the victim's first neighbor
//                   is below what the victim's policy announces there.
//
// Evaluation order is fixed — ROV, then path validation, then the inline
// detector — and the first rejecting policy wins; the defense.* counters
// attribute each filtered route to that policy. None of the three ever
// rejects a legitimate route (the origin matches and every run carries
// exactly its configured padding), so defended and undefended attack-free
// baselines are bit-identical — AttackSimulator exploits this by keeping its
// BaselineCache filterless.
//
// Thread-safety: a frozen PolicySet is safe to share across sweep threads
// (Accept is const and counts only through util::Metrics).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bgp/policy.h"
#include "bgp/transform.h"
#include "topology/as_graph.h"

namespace asppi::defense {

using topo::Asn;

// Bit flags; an AS may run several policies at once.
enum PolicyKind : std::uint8_t {
  kNoPolicy = 0,
  kRov = 1,
  kPathValidation = 2,
  kInlineDetector = 4,
  kAllPolicies = kRov | kPathValidation | kInlineDetector,
};

// "rov", "pathval", "detector", "all", or '+'-joined combinations
// ("rov+detector"); nullopt on unknown names. "none" parses to kNoPolicy.
std::optional<std::uint8_t> ParsePolicyKinds(const std::string& text);
// Canonical rendering of a kind mask ("rov+pathval+detector", "none").
std::string PolicyKindsName(std::uint8_t kinds);

class PolicySet final : public bgp::ImportFilter {
 public:
  // An empty deployment over `graph` (accepts everything, zero cost).
  explicit PolicySet(const topo::AsGraph& graph);
  // Rehydrates from dense per-AsId tag bytes (snapshot load); `tags` must
  // have exactly graph.NumAses() entries.
  PolicySet(const topo::AsGraph& graph, std::vector<std::uint8_t> tags);

  // ORs `kinds` into the AS's tag. The ASN must exist in the graph.
  void Assign(Asn asn, std::uint8_t kinds);
  void AssignAt(topo::AsId id, std::uint8_t kinds);

  std::uint8_t TagsAt(topo::AsId id) const { return tags_[id]; }
  std::uint8_t TagsOf(Asn asn) const { return tags_[graph_->IndexOf(asn)]; }

  bool Empty() const { return deployed_ == 0; }
  // Number of ASes with at least one policy assigned.
  std::size_t DeployedCount() const { return deployed_; }

  // Dense per-AsId tag bytes, parallel to the graph's AS order — the
  // snapshot wire form (data/snapshot.cc kDefense section).
  const std::vector<std::uint8_t>& RawTags() const { return tags_; }

  // CRC-32 over the dense tag bytes: equal digests over the same graph ⇒
  // identical filtering behaviour.
  std::uint32_t Digest() const;
  // Cache-key component for serve::QueryService: empty string for an empty
  // deployment (so undefended results keep their historical keys), else a
  // short digest token. Appended to CanonicalKey so defended and undefended
  // what-if results can never alias in the result cache.
  std::string CacheKey() const;

  const topo::AsGraph& Graph() const { return *graph_; }

  // --- bgp::ImportFilter ----------------------------------------------------
  bool Accept(topo::AsId receiver, Asn receiver_asn, const bgp::Route& route,
              Asn origin, const bgp::PrependPolicy& prepends) const override;
  bool MightFilter(topo::AsId receiver) const override {
    return tags_[receiver] != 0;
  }

 private:
  const topo::AsGraph* graph_;
  std::vector<std::uint8_t> tags_;  // dense, indexed by AsId
  std::size_t deployed_ = 0;
};

}  // namespace asppi::defense
