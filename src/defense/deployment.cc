#include "defense/deployment.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace asppi::defense {

std::optional<Strategy> ParseStrategy(const std::string& text) {
  if (text == "top-degree") return Strategy::kTopDegree;
  if (text == "random") return Strategy::kRandom;
  if (text == "victim-cone") return Strategy::kVictimCone;
  return std::nullopt;
}

const char* StrategyName(Strategy strategy) {
  switch (strategy) {
    case Strategy::kTopDegree:
      return "top-degree";
    case Strategy::kRandom:
      return "random";
    case Strategy::kVictimCone:
      return "victim-cone";
  }
  return "?";
}

namespace {

// BFS hop distance from the victim, levels in ascending-ASN order within a
// level (the frontier is rebuilt and sorted per level, so the ordering is a
// pure function of the graph and the victim). Unreachable ASes go last, in
// ascending ASN order, so fraction 1.0 always means "everyone".
std::vector<Asn> VictimConeOrder(const topo::AsGraph& graph, Asn victim) {
  const std::size_t n = graph.NumAses();
  std::vector<std::uint8_t> seen(n, 0);
  std::vector<Asn> order;
  order.reserve(n);
  std::vector<topo::AsId> frontier{graph.IndexOf(victim)};
  seen[frontier[0]] = 1;
  while (!frontier.empty()) {
    std::vector<topo::AsId> next;
    for (topo::AsId id : frontier) {
      for (const topo::AsGraph::Neighbor& nb : graph.NeighborsAt(id)) {
        if (seen[nb.id]) continue;
        seen[nb.id] = 1;
        next.push_back(nb.id);
      }
    }
    std::sort(next.begin(), next.end(),
              [&graph](topo::AsId a, topo::AsId b) {
                return graph.AsnAt(a) < graph.AsnAt(b);
              });
    for (topo::AsId id : next) order.push_back(graph.AsnAt(id));
    frontier = std::move(next);
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!seen[i]) order.push_back(graph.AsnAt(static_cast<topo::AsId>(i)));
  }
  return order;
}

}  // namespace

DeploymentPlan DeploymentPlan::Make(const topo::AsGraph& graph,
                                    Strategy strategy, Asn victim,
                                    Asn attacker, std::uint64_t seed) {
  // Victim-agnostic strategies accept victim == 0 (corpus-wide plans, e.g.
  // the snapshot tool's); victim-cone needs the BFS root to exist.
  ASPPI_CHECK(strategy != Strategy::kVictimCone || graph.HasAs(victim))
      << "victim AS" << victim << " not in graph";
  DeploymentPlan plan;
  plan.graph_ = &graph;
  plan.strategy_ = strategy;

  std::vector<Asn> candidates;
  switch (strategy) {
    case Strategy::kTopDegree:
      candidates = graph.AsesByDegreeDesc();
      break;
    case Strategy::kRandom: {
      const std::span<const Asn> ases = graph.Ases();
      candidates.assign(ases.begin(), ases.end());
      util::Rng rng(util::DeriveSeed(seed, 0xdef));
      rng.Shuffle(candidates);
      break;
    }
    case Strategy::kVictimCone:
      candidates = VictimConeOrder(graph, victim);
      break;
  }

  plan.order_.reserve(candidates.size());
  for (Asn asn : candidates) {
    if (asn == victim || asn == attacker) continue;
    plan.order_.push_back(asn);
  }
  return plan;
}

std::size_t DeploymentPlan::CountAtFraction(double fraction) const {
  if (fraction <= 0.0 || order_.empty()) return 0;
  if (fraction >= 1.0) return order_.size();
  const double want = std::ceil(fraction * static_cast<double>(order_.size()));
  return std::min(order_.size(), static_cast<std::size_t>(want));
}

PolicySet DeploymentPlan::AtFraction(double fraction,
                                     std::uint8_t kinds) const {
  PolicySet set(*graph_);
  const std::size_t count = CountAtFraction(fraction);
  for (std::size_t i = 0; i < count; ++i) {
    set.Assign(order_[i], kinds);
  }
  return set;
}

}  // namespace asppi::defense
