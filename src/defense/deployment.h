// Deployment planning: which ASes adopt a defense policy, and in what order.
//
// "Ain't How You Deploy" (PAPERS.md) shows that partial-deployment efficacy
// depends critically on placement. A DeploymentPlan fixes ONE deterministic
// adoption ordering per (strategy, victim, attacker, seed); the deployment at
// fraction f is the first ⌈f·n⌉ ASes of that ordering. Nested prefixes mean
// a larger fraction strictly contains every smaller one — the property that
// makes interception-vs-fraction curves monotone and comparable across
// strategies (fig_defense_sweep's acceptance gate).
//
// The victim and the attacker are excluded from every plan: the victim is
// the origin (its own prefix never passes through its import filter), and a
// defended attacker would be a contradiction.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "defense/policy.h"
#include "topology/as_graph.h"

namespace asppi::defense {

enum class Strategy {
  kTopDegree,   // highest-degree ASes first (the big transit providers)
  kRandom,      // uniformly random order, seeded
  kVictimCone,  // BFS distance from the victim, closest first
};

inline constexpr Strategy kAllStrategies[] = {
    Strategy::kTopDegree, Strategy::kRandom, Strategy::kVictimCone};

// "top-degree" / "random" / "victim-cone"; nullopt on unknown names.
std::optional<Strategy> ParseStrategy(const std::string& text);
const char* StrategyName(Strategy strategy);

class DeploymentPlan {
 public:
  // Builds the full adoption ordering for `strategy`. `seed` only matters
  // for kRandom; `victim` and `attacker` may equal 0 for corpus-wide plans
  // (0 is not a valid ASN and excludes nothing), except that victim-cone
  // requires a real victim as its BFS root.
  static DeploymentPlan Make(const topo::AsGraph& graph, Strategy strategy,
                             Asn victim, Asn attacker, std::uint64_t seed);

  Strategy GetStrategy() const { return strategy_; }
  // The full adoption ordering (victim and attacker excluded).
  const std::vector<Asn>& Order() const { return order_; }
  // ⌈fraction · Order().size()⌉ clamped to [0, Order().size()].
  std::size_t CountAtFraction(double fraction) const;

  // The deployment at `fraction`: the first CountAtFraction(fraction) ASes
  // of the ordering, each tagged with `kinds`.
  PolicySet AtFraction(double fraction, std::uint8_t kinds) const;

 private:
  const topo::AsGraph* graph_ = nullptr;
  Strategy strategy_ = Strategy::kTopDegree;
  std::vector<Asn> order_;
};

}  // namespace asppi::defense
