// Deployment-sweep experiments: interception success vs deployment fraction
// per placement strategy — the paper's missing "how do we stop it" figures.
//
// For every (strategy, fraction, pair) point the sweep builds the nested
// deployment (DeploymentPlan::AtFraction), runs the ASPP interception with
// the PolicySet active as the engines' import filter, and averages the
// post-attack pollution over the pairs. Results are bit-identical for any
// --threads: tasks compute into index-addressed slots and are reduced in a
// fixed order.
#pragma once

#include <cstdint>
#include <vector>

#include "attack/impact.h"
#include "defense/deployment.h"
#include "defense/policy.h"
#include "topology/as_graph.h"
#include "util/thread_pool.h"

namespace asppi::defense {

struct DefenseSweepOptions {
  // Deployment fractions to probe, in [0, 1]. Probed in the given order;
  // fig_defense_sweep passes them ascending and gates monotonicity.
  std::vector<double> fractions = {0.0, 0.2, 0.4, 0.6, 0.8, 1.0};
  // Placement strategies to compare.
  std::vector<Strategy> strategies = {kAllStrategies[0], kAllStrategies[1],
                                      kAllStrategies[2]};
  // Policies every deployed AS runs.
  std::uint8_t kinds = kAllPolicies;
  // Attack shape (paper §II-B defaults).
  int lambda = 4;
  bool violate_valley_free = false;
  bool export_stripped_to_peers = true;
  // Number of random (victim, attacker) pairs averaged per point (ignored
  // when `pairs` is non-empty).
  std::size_t num_pairs = 8;
  std::uint64_t seed = 1;
  // Explicit (victim, attacker) pairs; overrides num_pairs when non-empty.
  std::vector<std::pair<Asn, Asn>> pairs;
  // Parallelism (null = serial) and baseline memoization (null = a cache
  // internal to the call). Baselines are always computed filterless — the
  // shipped policies never reject a legitimate route — so one cache serves
  // every deployment point.
  util::ThreadPool* pool = nullptr;
  attack::BaselineCache* baseline_cache = nullptr;
  attack::EngineKind engine = attack::EngineKind::kDelta;
  // Run every point on BOTH engines and require bit-identical attacked
  // states (fractions, pollution sets, best routes, Adj-RIB-In, sent flags,
  // round counts). The in-bench equivalence gate of fig_defense_sweep.
  bool verify_engines = false;
};

// One (strategy, fraction) point, averaged over the pairs.
struct DefenseSweepPoint {
  Strategy strategy = Strategy::kTopDegree;
  double fraction = 0.0;
  // Mean deployed-AS count (plans exclude each pair's victim and attacker,
  // so the count varies by at most 2 across pairs).
  double mean_deployed = 0.0;
  double mean_fraction_before = 0.0;
  // Mean post-attack pollution — the interception-success metric.
  double mean_fraction_after = 0.0;
  // False iff verify_engines found any full-vs-delta divergence here.
  bool engines_agree = true;
};

// Deterministic (victim, attacker) pair selection: `count` distinct pairs
// with victim != attacker, a pure function of (graph, count, seed). Pairs are
// drawn from the highest-degree ASes (top max(32, n/200)) — transit players,
// where the paper shows ASPP interception bites; uniform sampling at Internet
// scale yields stub-vs-stub pairs whose interception is ~0 even undefended,
// making every defense curve a flat zero.
std::vector<std::pair<Asn, Asn>> PickSweepPairs(const topo::AsGraph& graph,
                                                std::size_t count,
                                                std::uint64_t seed);

// Points ordered by (strategy list order, fraction list order).
std::vector<DefenseSweepPoint> RunDefenseSweep(
    const topo::AsGraph& graph, const DefenseSweepOptions& options);

}  // namespace asppi::defense
