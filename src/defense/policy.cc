#include "defense/policy.h"

#include "detect/rules.h"
#include "util/check.h"
#include "util/crc32.h"
#include "util/metrics.h"
#include "util/strings.h"

namespace asppi::defense {

namespace {

// Defense counters (DESIGN.md §4j). Work counters only: a deterministic
// workload filters the same routes regardless of thread count, so totals are
// bit-identical for any --threads (asserted by tests/metrics_test.cc).
struct DefenseMetrics {
  util::Counter evaluations{"defense.accept.evaluations"};
  util::Counter rov_filtered{"defense.rov.filtered"};
  util::Counter pathval_filtered{"defense.pathval.filtered"};
  util::Counter detector_filtered{"defense.detector.filtered"};
  util::Counter detector_alarms{"defense.detector.alarms"};
};

DefenseMetrics& Instr() {
  static DefenseMetrics* m = new DefenseMetrics();
  return *m;
}

// Does `path` carry the §II-B prepend-strip signature under `prepends`?
// Every maximal run of an AS X on a legitimate path has exactly
// PadsFor(X, successor) copies, where the successor is the AS that X
// exported to — the hop adjacent to the run on the receiver side
// (`receiver_asn` for the first run). A shorter run proves someone removed
// copies. Runs can never merge on loop-free paths (the engines discard
// looped deliveries before the filter runs), so the per-run check is exact.
bool PathLooksStripped(Asn receiver_asn, const bgp::AsPath& path,
                       const bgp::PrependPolicy& prepends) {
  const std::vector<Asn>& hops = path.Hops();
  Asn successor = receiver_asn;
  std::size_t i = 0;
  while (i < hops.size()) {
    const Asn run_asn = hops[i];
    std::size_t run = 0;
    while (i < hops.size() && hops[i] == run_asn) {
      ++run;
      ++i;
    }
    if (static_cast<int>(run) < prepends.PadsFor(run_asn, successor)) {
      return true;
    }
    successor = run_asn;
  }
  return false;
}

}  // namespace

std::optional<std::uint8_t> ParsePolicyKinds(const std::string& text) {
  std::uint8_t kinds = kNoPolicy;
  for (const std::string& part : util::Split(text, '+')) {
    if (part == "rov") {
      kinds |= kRov;
    } else if (part == "pathval") {
      kinds |= kPathValidation;
    } else if (part == "detector") {
      kinds |= kInlineDetector;
    } else if (part == "all") {
      kinds |= kAllPolicies;
    } else if (part == "none" || part.empty()) {
      // no-op
    } else {
      return std::nullopt;
    }
  }
  return kinds;
}

std::string PolicyKindsName(std::uint8_t kinds) {
  if ((kinds & kAllPolicies) == 0) return "none";
  std::string out;
  const auto append = [&out](const char* name) {
    if (!out.empty()) out += '+';
    out += name;
  };
  if (kinds & kRov) append("rov");
  if (kinds & kPathValidation) append("pathval");
  if (kinds & kInlineDetector) append("detector");
  return out;
}

PolicySet::PolicySet(const topo::AsGraph& graph)
    : graph_(&graph), tags_(graph.NumAses(), 0) {}

PolicySet::PolicySet(const topo::AsGraph& graph, std::vector<std::uint8_t> tags)
    : graph_(&graph), tags_(std::move(tags)) {
  ASPPI_CHECK_EQ(tags_.size(), graph.NumAses())
      << "defense tags do not match the graph";
  for (std::uint8_t tag : tags_) {
    if (tag != 0) ++deployed_;
  }
}

void PolicySet::Assign(Asn asn, std::uint8_t kinds) {
  AssignAt(graph_->IndexOf(asn), kinds);
}

void PolicySet::AssignAt(topo::AsId id, std::uint8_t kinds) {
  if (kinds == 0) return;
  if (tags_[id] == 0) ++deployed_;
  tags_[id] |= kinds;
}

std::uint32_t PolicySet::Digest() const {
  return util::Crc32(tags_.data(), tags_.size());
}

std::string PolicySet::CacheKey() const {
  if (Empty()) return "";
  return util::Format("|defense=%08x", Digest());
}

bool PolicySet::Accept(topo::AsId receiver, Asn receiver_asn,
                       const bgp::Route& route, Asn origin,
                       const bgp::PrependPolicy& prepends) const {
  const std::uint8_t tags = tags_[receiver];
  Instr().evaluations.Add();

  if (tags & kRov) {
    if (route.path.OriginAs() != origin) {
      Instr().rov_filtered.Add();
      return false;
    }
  }
  if (tags & kPathValidation) {
    // Path validation subsumes origin validation (a signed path attests the
    // origin too) and additionally proves per-hop padding integrity.
    if (route.path.OriginAs() != origin ||
        PathLooksStripped(receiver_asn, route.path, prepends)) {
      Instr().pathval_filtered.Add();
      return false;
    }
  }
  if (tags & kInlineDetector) {
    // The victim-aware Fig. 4 rule on this single Adj-RIB-In entry. Routes
    // the rule cannot strip (foreign origin, victim mid-path) are not its
    // business — it never claims them.
    const std::optional<detect::StrippedRoute> stripped =
        detect::StripVictimPadding(route.path, origin);
    if (stripped.has_value()) {
      const std::optional<detect::Alarm> alarm =
          detect::VictimAwareAlarm(origin, receiver_asn, *stripped, prepends);
      if (alarm.has_value()) {
        Instr().detector_alarms.Add();
        Instr().detector_filtered.Add();
        return false;
      }
    }
  }
  return true;
}

}  // namespace asppi::defense
