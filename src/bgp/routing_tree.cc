#include "bgp/routing_tree.h"

#include <queue>

#include "util/check.h"
#include "util/metrics.h"

namespace asppi::bgp {

namespace {

using topo::AsGraph;
using topo::Relation;

// Per-phase BFS/Dijkstra visit counts (settled queue pops / relaxation
// scans), plus builds — the routing tree's share of a sweep's work.
struct TreeMetrics {
  util::Counter builds{"bgp.routing_tree.builds"};
  util::Counter phase1{"bgp.routing_tree.phase1_visits"};
  util::Counter phase2{"bgp.routing_tree.phase2_visits"};
  util::Counter phase3{"bgp.routing_tree.phase3_visits"};
};

TreeMetrics& Instr() {
  static TreeMetrics* m = new TreeMetrics();
  return *m;
}

struct QueueItem {
  std::size_t dist;
  std::size_t node;
  bool operator>(const QueueItem& other) const {
    if (dist != other.dist) return dist > other.dist;
    return node > other.node;
  }
};

using MinQueue =
    std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>>;

}  // namespace

const char* RoutingTree::ViaName(Via via) {
  switch (via) {
    case Via::kNone:
      return "none";
    case Via::kSelf:
      return "self";
    case Via::kCustomer:
      return "customer";
    case Via::kPeer:
      return "peer";
    case Via::kProvider:
      return "provider";
  }
  return "?";
}

RoutingTree::RoutingTree(const topo::AsGraph& graph,
                         const Announcement& announcement)
    : graph_(graph), announcement_(announcement) {
  ASPPI_CHECK(graph.HasAs(announcement.origin));
  const std::size_t n = graph.NumAses();
  for (topo::AsId id = 0; id < n; ++id) {
    ASPPI_CHECK(graph.SiblingsAt(id).empty())
        << "RoutingTree does not support sibling links";
  }
  Instr().builds.Add();
  entries_.resize(n);
  const std::size_t origin = graph.IndexOf(announcement.origin);
  std::uint64_t phase1_visits = 0, phase2_visits = 0, phase3_visits = 0;

  auto pads = [&](Asn exporter, Asn neighbor) {
    return static_cast<std::size_t>(
        announcement_.prepends.PadsFor(exporter, neighbor));
  };

  // --- Phase 1: customer routes (shortest uphill distances) ---------------
  // dist_c[u] = length of the shortest customer-learned path at u.
  std::vector<std::size_t> dist_c(n, kInf);
  std::vector<Asn> parent_c(n, 0);
  {
    MinQueue queue;
    // The origin exports its own prefix (with per-neighbor prepending) to its
    // providers; conceptually dist_c[origin] = 0.
    dist_c[origin] = 0;
    queue.push({0, origin});
    while (!queue.empty()) {
      auto [d, u] = queue.top();
      queue.pop();
      if (d != dist_c[u]) continue;  // stale entry
      ++phase1_visits;
      const Asn u_asn = graph.AsnAt(static_cast<topo::AsId>(u));
      // Uphill: u exports to its providers (the provider segment of its row).
      for (const AsGraph::Neighbor& nb :
           graph.EdgeSegmentAt(static_cast<topo::AsId>(u),
                               Relation::kProvider)) {
        const std::size_t v = nb.id;
        const std::size_t nd = d + pads(u_asn, nb.asn);
        if (nd < dist_c[v]) {
          dist_c[v] = nd;
          parent_c[v] = u_asn;
          queue.push({nd, v});
        }
      }
    }
  }

  // --- Phase 2: peer routes (one peer edge from a customer-route AS) ------
  std::vector<std::size_t> dist_p(n, kInf);
  std::vector<Asn> parent_p(n, 0);
  for (std::size_t w = 0; w < n; ++w) {
    if (dist_c[w] == kInf) continue;  // w's best is not a customer route
    ++phase2_visits;
    const Asn w_asn = graph.AsnAt(static_cast<topo::AsId>(w));
    for (const AsGraph::Neighbor& nb :
         graph.EdgeSegmentAt(static_cast<topo::AsId>(w), Relation::kPeer)) {
      const std::size_t v = nb.id;
      const std::size_t nd = dist_c[w] + pads(w_asn, nb.asn);
      if (nd < dist_p[v] || (nd == dist_p[v] && w_asn < parent_p[v])) {
        dist_p[v] = nd;
        parent_p[v] = w_asn;
      }
    }
  }

  // Fold phases 1-2 into provisional best entries.
  for (std::size_t u = 0; u < n; ++u) {
    if (u == origin) {
      entries_[u] = {Via::kSelf, 0, 0};
    } else if (dist_c[u] != kInf) {
      entries_[u] = {Via::kCustomer, dist_c[u], parent_c[u]};
    } else if (dist_p[u] != kInf) {
      entries_[u] = {Via::kPeer, dist_p[u], parent_p[u]};
    }
  }

  // --- Phase 3: provider routes (downhill propagation of best routes) -----
  // Multi-source Dijkstra over provider→customer edges. Sources: every AS
  // already covered (it exports its best to its customers). Relaxation may
  // chain through provider-route-only ASes (Provider-Customer* suffix).
  {
    std::vector<std::size_t> dist_d(n, kInf);
    std::vector<Asn> parent_d(n, 0);
    MinQueue queue;
    auto export_dist = [&](std::size_t u) -> std::size_t {
      // What u's best looks like to its customers.
      if (entries_[u].via == Via::kSelf) return 0;
      if (entries_[u].via != Via::kNone) return entries_[u].length;
      return dist_d[u];
    };
    for (std::size_t u = 0; u < n; ++u) {
      if (entries_[u].via != Via::kNone) queue.push({export_dist(u), u});
    }
    while (!queue.empty()) {
      auto [d, u] = queue.top();
      queue.pop();
      if (d != export_dist(u)) continue;  // stale
      ++phase3_visits;
      const Asn u_asn = graph.AsnAt(static_cast<topo::AsId>(u));
      for (const AsGraph::Neighbor& nb :
           graph.EdgeSegmentAt(static_cast<topo::AsId>(u),
                               Relation::kCustomer)) {
        const std::size_t v = nb.id;
        const std::size_t nd = d + pads(u_asn, nb.asn);
        // Only ASes without customer/peer routes use provider routes.
        if (entries_[v].via != Via::kNone) continue;
        if (nd < dist_d[v]) {
          dist_d[v] = nd;
          parent_d[v] = u_asn;
          queue.push({nd, v});
        }
      }
    }
    for (std::size_t u = 0; u < n; ++u) {
      if (entries_[u].via == Via::kNone && dist_d[u] != kInf) {
        entries_[u] = {Via::kProvider, dist_d[u], parent_d[u]};
      }
    }
  }
  Instr().phase1.Add(phase1_visits);
  Instr().phase2.Add(phase2_visits);
  Instr().phase3.Add(phase3_visits);
}

const RoutingTree::Entry& RoutingTree::At(Asn asn) const {
  return entries_[graph_.IndexOf(asn)];
}

AsPath RoutingTree::PathFrom(Asn asn) const {
  const Entry& entry = At(asn);
  if (entry.via == Via::kNone || entry.via == Via::kSelf) return AsPath{};
  // Walk the parent chain down to the origin, then assemble with prepends.
  std::vector<Asn> chain;  // [parent(asn), parent(parent), ..., origin]
  Asn cur = entry.parent;
  while (true) {
    chain.push_back(cur);
    const Entry& e = At(cur);
    if (e.via == Via::kSelf) break;
    ASPPI_CHECK(e.via != Via::kNone);
    cur = e.parent;
    ASPPI_CHECK_LE(chain.size(), graph_.NumAses()) << "parent cycle";
  }
  // chain.front() is asn's direct neighbor; chain.back() is the origin.
  // Build from the far end (origin) toward asn, applying each exporter's
  // prepend count toward its receiver.
  AsPath path;
  for (std::size_t i = chain.size(); i-- > 0;) {
    Asn hop = chain[i];
    Asn receiver = (i == 0) ? asn : chain[i - 1];
    path.Prepend(hop, announcement_.prepends.PadsFor(hop, receiver));
  }
  return path;
}

std::size_t RoutingTree::ReachableCount() const {
  std::size_t count = 0;
  for (const Entry& e : entries_) {
    if (e.via == Via::kCustomer || e.via == Via::kPeer ||
        e.via == Via::kProvider) {
      ++count;
    }
  }
  return count;
}

}  // namespace asppi::bgp
