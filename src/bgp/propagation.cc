#include "bgp/propagation.h"

#include <algorithm>

#include "util/check.h"
#include "util/metrics.h"

namespace asppi::bgp {

namespace {

// Engine counters (DESIGN.md §4d). All are work counters, not scheduling
// counters: a deterministic workload produces identical totals for any
// thread count.
struct EngineMetrics {
  util::Counter runs{"bgp.propagation.runs"};
  util::Counter resumes{"bgp.propagation.resumes"};
  util::Counter rounds{"bgp.propagation.rounds"};
  util::Counter decisions{"bgp.propagation.decisions"};
  util::Counter announced{"bgp.propagation.routes_announced"};
  util::Counter withdrawn{"bgp.propagation.routes_withdrawn"};
  util::Timer converge_time{"bgp.propagation.converge"};
};

EngineMetrics& Instr() {
  static EngineMetrics* m = new EngineMetrics();
  return *m;
}

}  // namespace

namespace engine_detail {

WireExport BuildExport(const Announcement& announcement, Asn u_asn,
                       bool is_origin, const std::optional<Route>& best,
                       Asn v_asn, Relation v_rel, RouteTransform* transform) {
  WireExport out;
  bool have_route = false;
  if (is_origin) {
    out.path =
        AsPath::Origin(u_asn, announcement.prepends.PadsFor(u_asn, v_asn));
    have_route = true;
  } else if (best.has_value()) {
    // Never send a route back through an AS already on it (sender-side loop
    // avoidance; the receiver would discard it anyway).
    if (!best->path.Contains(v_asn)) {
      out.path = best->path;
      out.path.Prepend(u_asn, announcement.prepends.PadsFor(u_asn, v_asn));
      out.out_class = best->effective;
      have_route = true;
    }
  }
  if (!have_route) return out;

  const bool policy_ok =
      is_origin ? MayExportOwn(v_rel) : MayExport(out.out_class, v_rel);
  ExportAction action = ExportAction::kDefault;
  if (transform != nullptr) {
    action = transform->OnExport(u_asn, v_asn, v_rel, out.out_class, out.path);
  }
  out.send = (action == ExportAction::kForce) ||
             (action == ExportAction::kDefault && policy_ok);
  return out;
}

bool AcceptDelivery(const ImportFilter* filter, topo::AsId v, Asn v_asn,
                    const Route& route, const Announcement& announcement) {
  if (filter == nullptr || !filter->MightFilter(v)) return true;
  return filter->Accept(v, v_asn, route, announcement.origin,
                        announcement.prepends);
}

Route DeliverRoute(WireExport&& wire, Asn u_asn, Relation v_rel) {
  Route route;
  route.path = std::move(wire.path);
  route.learned_from = u_asn;
  route.rel = topo::Reverse(v_rel);  // u's role relative to v
  // Sibling links transport the underlying class; real boundaries
  // re-classify by the business relationship.
  route.effective =
      (route.rel == Relation::kSibling) ? wire.out_class : route.rel;
  return route;
}

std::optional<Route> ChooseBest(Asn u_asn,
                                std::span<const std::optional<Route>> rib,
                                RouteTransform* transform) {
  const std::optional<Route>* best = nullptr;
  for (const auto& candidate : rib) {
    if (!candidate.has_value()) continue;
    if (best == nullptr || BetterRoute(*candidate, **best)) {
      best = &candidate;
    }
  }
  std::optional<Route> chosen = best ? *best : std::optional<Route>{};
  if (transform != nullptr && transform->MightOverride(u_asn)) {
    if (auto overridden = transform->OverrideBest(u_asn, rib, chosen)) {
      chosen = std::move(overridden);
    }
  }
  return chosen;
}

}  // namespace engine_detail

const std::optional<Route>& PropagationResult::BestAt(Asn asn) const {
  return best_[graph_->IndexOf(asn)];
}

int PropagationResult::FirstChangeRound(Asn asn) const {
  return first_change_round_[graph_->IndexOf(asn)];
}

std::vector<Asn> PropagationResult::AsesTraversing(Asn x) const {
  std::vector<Asn> out;
  for (std::size_t i = 0; i < best_.size(); ++i) {
    Asn asn = graph_->AsnAt(i);
    if (asn == x || asn == announcement_.origin) continue;
    if (best_[i] && best_[i]->path.Contains(x)) out.push_back(asn);
  }
  return out;
}

double PropagationResult::FractionTraversing(Asn x) const {
  const std::size_t n = graph_->NumAses();
  if (n <= 2) return 0.0;
  return static_cast<double>(AsesTraversing(x).size()) /
         static_cast<double>(n - 2);
}

PropagationResult PropagationResult::Restore(
    const topo::AsGraph& graph, Announcement announcement, int rounds,
    std::vector<std::optional<Route>> best, std::vector<int> first_change_round,
    std::vector<std::vector<std::optional<Route>>> rib_in,
    std::vector<std::vector<std::uint8_t>> sent) {
  const std::size_t n = graph.NumAses();
  ASPPI_CHECK(best.size() == n && first_change_round.size() == n &&
              rib_in.size() == n && sent.size() == n)
      << "checkpoint shape does not match the graph";
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t degree = graph.DegreeAt(static_cast<topo::AsId>(i));
    ASPPI_CHECK(rib_in[i].size() == degree && sent[i].size() == degree)
        << "checkpoint adjacency shape does not match the graph";
  }
  PropagationResult result;
  result.graph_ = &graph;
  result.announcement_ = std::move(announcement);
  result.rounds_ = rounds;
  result.best_ = std::move(best);
  result.first_change_round_ = std::move(first_change_round);
  result.rib_in_ = std::move(rib_in);
  result.sent_ = std::move(sent);
  return result;
}

std::size_t PropagationResult::ReachableCount() const {
  std::size_t count = 0;
  for (std::size_t i = 0; i < best_.size(); ++i) {
    if (graph_->AsnAt(i) == announcement_.origin) continue;
    if (best_[i]) ++count;
  }
  return count;
}

PropagationSimulator::PropagationSimulator(const topo::AsGraph& graph)
    : graph_(graph) {}

PropagationResult PropagationSimulator::Run(const Announcement& announcement,
                                            RouteTransform* transform,
                                            const ImportFilter* filter) const {
  ASPPI_CHECK(graph_.HasAs(announcement.origin))
      << "origin AS" << announcement.origin << " not in graph";
  PropagationResult state;
  state.graph_ = &graph_;
  state.announcement_ = announcement;
  const std::size_t n = graph_.NumAses();
  state.best_.resize(n);
  state.first_change_round_.assign(n, -1);
  state.rib_in_.resize(n);
  state.sent_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t degree = graph_.DegreeAt(static_cast<topo::AsId>(i));
    state.rib_in_[i].resize(degree);
    state.sent_[i].assign(degree, 0);
  }

  std::vector<std::uint8_t> need_export(n, 0);
  need_export[graph_.IndexOf(announcement.origin)] = 1;
  Instr().runs.Add();
  RunLoop(state, transform, filter, need_export);
  return state;
}

PropagationResult PropagationSimulator::Resume(const PropagationResult& prior,
                                               RouteTransform* transform,
                                               const std::vector<Asn>& dirty,
                                               const ImportFilter* filter) const {
  ASPPI_CHECK(prior.graph_ == &graph_) << "state from a different graph";
  PropagationResult state = prior;
  state.rounds_ = 0;
  state.converged_ = true;
  std::fill(state.first_change_round_.begin(), state.first_change_round_.end(),
            -1);
  std::vector<std::uint8_t> need_export(graph_.NumAses(), 0);
  for (Asn asn : dirty) {
    const std::size_t idx = graph_.IndexOf(asn);
    need_export[idx] = 1;
    // The transform may change what this AS *chooses*, not only what it
    // exports (OverrideBest) — refresh its decision before re-announcing.
    Decide(state, idx, transform);
  }
  Instr().resumes.Add();
  RunLoop(state, transform, filter, need_export);
  return state;
}

void PropagationSimulator::RunLoop(PropagationResult& state,
                                   RouteTransform* transform,
                                   const ImportFilter* filter,
                                   std::vector<std::uint8_t>& need_export) const {
  util::ScopedTimer converge_timer(Instr().converge_time);
  const std::size_t n = graph_.NumAses();
  std::vector<std::uint8_t> dirty(n, 0);
#ifndef NDEBUG
  // Satellite invariant: every edge carries its target's dense id and back
  // slot, so the converged loop must never translate an ASN (all IndexOf
  // calls happen at seeding, before this point).
  const std::uint64_t lookups_before = topo::detail::AsnLookupCount();
#endif

  // Synchronous rounds: all round-r exports are decided upon in round r+1,
  // so FirstChangeRound() measures hop-waves from the event source. This
  // schedule is convergent because the policy system is Gao-Rexford-safe by
  // construction: sibling links transport the underlying route class (see
  // Route::effective) and every topology is provider-customer acyclic.
  //
  // Both phase scans walk IdsByRank() — customer-cone tier order, lowest
  // first — instead of raw id order, so announcement waves sweep up the
  // hierarchy the way they propagate. The phases are read/write disjoint
  // (exports read best_, decisions write it), so any within-phase permutation
  // converges to the identical state; rank order just reaches that state
  // with better flag locality on generated topologies.
  const std::span<const topo::AsId> by_rank = graph_.IdsByRank();
  int round = 0;
  while (true) {
    // Export phase: everything flagged sends its current view.
    bool any_export = false;
    for (topo::AsId u : by_rank) {
      if (!need_export[u]) continue;
      any_export = true;
      need_export[u] = 0;
      ExportFrom(state, u, transform, filter, dirty);
    }
    if (!any_export) break;
    ++round;
    // Adversarial transforms can force valley-violating exports whose
    // preference cycles never settle (Griffin's dispute wheels). Stop at the
    // cap and flag the state instead of aborting: the cap snapshot is still
    // deterministic, and the delta engine stops at the identical point.
    if (round >= kMaxRounds) {
      state.converged_ = false;
      break;
    }

    // Decision phase: receivers of changed slots re-run the decision process.
    bool any_change = false;
    for (topo::AsId v : by_rank) {
      if (!dirty[v]) continue;
      dirty[v] = 0;
      if (Decide(state, v, transform)) {
#ifdef ASPPI_DEBUG_OSCILLATION
        if (round > 9990) {
          std::fprintf(stderr, "round %d: AS%u -> %s (rel=%d)\n", round,
                       graph_.AsnAt(v),
                       state.best_[v] ? state.best_[v]->path.ToString().c_str()
                                      : "<none>",
                       state.best_[v] ? static_cast<int>(state.best_[v]->rel)
                                      : -1);
        }
#endif
        any_change = true;
        if (state.first_change_round_[v] < 0) {
          state.first_change_round_[v] = round;
        }
        need_export[v] = 1;
      }
    }
    if (!any_change) break;
  }
  state.rounds_ = round;
  Instr().rounds.Add(static_cast<std::uint64_t>(round));
#ifndef NDEBUG
  ASPPI_CHECK_EQ(topo::detail::AsnLookupCount(), lookups_before)
      << "ASN hash/interning lookup inside the propagation loop";
#endif
}

void PropagationSimulator::ExportFrom(PropagationResult& state, std::size_t u,
                                      RouteTransform* transform,
                                      const ImportFilter* filter,
                                      std::vector<std::uint8_t>& dirty) const {
  const Asn u_asn = graph_.AsnAt(u);
  const bool is_origin = (u_asn == state.announcement_.origin);
  const auto neighbors = graph_.NeighborsAt(static_cast<topo::AsId>(u));
  const std::optional<Route>& best = state.best_[u];
  std::uint64_t announced = 0, withdrawn = 0;

  for (std::uint32_t slot = 0; slot < neighbors.size(); ++slot) {
    const Asn v_asn = neighbors[slot].asn;
    const Relation v_rel = neighbors[slot].rel;
    const topo::AsId v = neighbors[slot].id;
    const std::uint32_t back_slot = neighbors[slot].back_slot;

    engine_detail::WireExport wire = engine_detail::BuildExport(
        state.announcement_, u_asn, is_origin, best, v_asn, v_rel, transform);

    auto& slot_route = state.rib_in_[v][back_slot];
    if (wire.send) {
      ++announced;
      // Receiver-side loop detection: a path containing the receiver is
      // discarded and invalidates any previous route from this neighbor.
      if (wire.path.Contains(v_asn)) {
        if (slot_route.has_value()) {
          slot_route.reset();
          dirty[v] = 1;
        }
        state.sent_[u][slot] = 1;
        continue;
      }
      Route route = engine_detail::DeliverRoute(std::move(wire), u_asn, v_rel);
      // Import policy (defense/): a filtered route behaves like a looped one —
      // it crossed the wire but never enters the receiver's Adj-RIB-In.
      if (!engine_detail::AcceptDelivery(filter, v, v_asn, route,
                                         state.announcement_)) {
        if (slot_route.has_value()) {
          slot_route.reset();
          dirty[v] = 1;
        }
        state.sent_[u][slot] = 1;
        continue;
      }
      if (!slot_route.has_value() || !(*slot_route == route)) {
        slot_route = std::move(route);
        dirty[v] = 1;
      }
      state.sent_[u][slot] = 1;
    } else {
      // Withdraw if we previously advertised.
      if (state.sent_[u][slot]) {
        ++withdrawn;
        state.sent_[u][slot] = 0;
        if (slot_route.has_value()) {
          slot_route.reset();
          dirty[v] = 1;
        }
      }
    }
  }
  // One shard update per exporter, not per neighbor.
  if (announced != 0) Instr().announced.Add(announced);
  if (withdrawn != 0) Instr().withdrawn.Add(withdrawn);
}

bool PropagationSimulator::Decide(PropagationResult& state, std::size_t u,
                                  RouteTransform* transform) const {
  Instr().decisions.Add();
  const Asn u_asn = graph_.AsnAt(u);
  // The origin always prefers its own prefix; learned routes for it are
  // loop-discarded at delivery anyway.
  if (u_asn == state.announcement_.origin) return false;

  std::optional<Route> chosen =
      engine_detail::ChooseBest(u_asn, state.rib_in_[u], transform);
  if (chosen == state.best_[u]) return false;
  state.best_[u] = std::move(chosen);
  return true;
}

}  // namespace asppi::bgp
