// Gao-Rexford routing policy: local preference classes, valley-free export
// rules, and per-neighbor prepending configuration.
#pragma once

#include <map>
#include <span>
#include <string>
#include <utility>

#include "topology/types.h"

namespace asppi::bgp {

using topo::Asn;
using topo::Relation;

// Local-preference class of a route by the relationship of the neighbor it
// was learned from. Higher is preferred. An AS pays for provider traffic and
// is paid for customer traffic, so: customer > sibling > peer > provider
// (paper §IV-B; sibling routes are intra-organization and slot between
// customer and peer).
int LocalPrefOf(Relation learned_from);

// Local-pref class of the origin's own prefix (beats everything).
inline constexpr int kSelfLocalPref = 1000;

// Valley-free export rule: may a route learned from a neighbor with
// relationship `learned_from` be exported to a neighbor with relationship
// `to`? Customer- and sibling-learned routes are exported to everyone;
// peer-/provider-learned routes only to customers and siblings. The origin's
// own prefix (no learned_from) is exported to everyone.
bool MayExport(Relation learned_from, Relation to);
bool MayExportOwn(Relation to);

// Per-exporter, per-neighbor AS-path prepending configuration.
//
// PadsFor(exporter, neighbor) is the number of copies of `exporter`'s ASN
// prepended when exporting to `neighbor` (>= 1; 1 = ordinary BGP, no ASPP).
// Source prepending is configured on the origin AS; intermediary prepending
// on any transit AS (paper §II-A distinguishes both).
class PrependPolicy {
 public:
  // Sets the default pad count for every export by `exporter`.
  void SetDefault(Asn exporter, int pads);
  // Overrides the pad count for a specific neighbor of `exporter`.
  void SetForNeighbor(Asn exporter, Asn neighbor, int pads);

  int PadsFor(Asn exporter, Asn neighbor) const;

  // Largest pad count `exporter` announces to any neighbor under this policy
  // (its default, or the biggest per-neighbor override). Note this is a pure
  // configuration maximum: when every actual neighbor carries an override,
  // the default is dead configuration and this overstates what any receiver
  // ever sees — use MaxPadsToward with the real neighbor set in that case.
  int MaxPadsOf(Asn exporter) const;

  // Largest pad count `exporter` announces to any neighbor in `neighbors` —
  // the λ an AttackOutcome reports: the strongest padding an on-path attacker
  // can actually strip. Unlike MaxPadsOf, a default that no listed neighbor
  // falls back to (every one overridden) does not inflate the answer. Empty
  // `neighbors` degrades to MaxPadsOf.
  int MaxPadsToward(Asn exporter, std::span<const Asn> neighbors) const;

  // Canonical text encoding of the whole policy (defaults and overrides in
  // sorted order) — the cache key component for baseline memoization. Two
  // policies with equal keys produce identical propagation.
  std::string KeyString() const;

  bool Empty() const { return defaults_.empty() && overrides_.empty(); }

  // Raw configuration, for serializers (data/snapshot.cc).
  const std::map<Asn, int>& Defaults() const { return defaults_; }
  const std::map<std::pair<Asn, Asn>, int>& Overrides() const {
    return overrides_;
  }

 private:
  std::map<Asn, int> defaults_;
  std::map<std::pair<Asn, Asn>, int> overrides_;
};

}  // namespace asppi::bgp
