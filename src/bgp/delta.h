// DeltaPropagator: incremental re-convergence from a converged baseline,
// propagating only the attack wavefront (DESIGN.md §4h).
//
// PropagationSimulator::Resume already re-announces from the attacker only,
// but it still *copies* the entire converged state first (every Adj-RIB-In
// row of every AS) and scans all n ASes per phase. For a sweep that probes
// thousands of (attacker, victim, λ) points against one shared baseline, that
// copy dominates: an ASPP interception typically flips the best route of a
// small frontier of ASes, and everything else is dead weight.
//
// DeltaPropagator keeps the baseline immutable and accumulates a *sparse
// overlay* (DeltaResult) of only what changed:
//   * worklists (export list / dirty list) instead of O(n) phase scans,
//   * per-AS overlay rows created on first touch, addressed through an O(1)
//     dense-index table (no hashing on the hot path),
//   * inside a row, the Adj-RIB-In and sent vectors are copied from the
//     baseline on the row's *first write* and then indexed directly — so
//     per-slot access costs exactly what the full engine pays, and the only
//     extra work over Resume() is copying the touched rows instead of all n.
//
// Equivalence: both engines build every wire-visible action from the shared
// kernels in bgp::engine_detail (propagation.h), process worklists in the
// graph's precomputed rank order (matching the full engine's IdsByRank
// scans), and within a phase write disjoint state per worklist entry — so
// the overlay composed over the baseline is bit-identical to Resume()'s
// output, a claim enforced by tests/delta_test.cc and the fuzzer's
// delta-vs-full leg.
//
// Termination: identical argument to the full engine (same synchronous
// schedule, same Gao-Rexford-safe policy system), plus the same kMaxRounds
// backstop for attacker-perturbed runs.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "bgp/propagation.h"
#include "bgp/route.h"
#include "bgp/transform.h"
#include "topology/as_graph.h"

namespace asppi::bgp {

// Per-baseline index answering "how many ASes' best path traverses x?" in
// O(1) per query. Building it is one O(n·L) pass — the same cost as a single
// PropagationResult::AsesTraversing call, which sweeps otherwise pay twice
// per (attacker, victim, λ) point. BaselineCache builds one per cached
// baseline; the delta engine then derives post-attack pollution by adjusting
// the baseline count over touched ASes only.
class TraversalIndex {
 public:
  explicit TraversalIndex(const PropagationResult& baseline);

  // |{a : a != x, a != origin, best(a) traverses x}| in the baseline.
  std::size_t TraversingCount(Asn x) const;
  // Number of ASes with any route at all (origin excluded).
  std::size_t ReachableCount() const { return reachable_; }

 private:
  const topo::AsGraph* graph_;
  std::size_t reachable_ = 0;
  // counts_[i]: number of ASes (excluding AsnAt(i) itself and the origin)
  // whose baseline best path contains AsnAt(i).
  std::vector<std::size_t> counts_;
};

// Overlay state of one touched AS. Absent fields fall through to the
// baseline.
struct DeltaRow {
  // Overlay of the best route. `best_set == false` means "unchanged from
  // baseline"; `best_set == true` with `best == nullopt` means the AS lost
  // its route.
  bool best_set = false;
  std::optional<Route> best;
  // Round of the first best-route change since the resume point (-1: never
  // changed; matches Resume()'s reset semantics).
  int first_change_round = -1;
  // Adj-RIB-In slot overrides. Bit s of `rib_mask` set ⇒ slot s reads from
  // `rib[s]`; clear ⇒ the baseline's slot is still current. Both vectors are
  // sized to the row's degree on the first slot write — default-constructed
  // slots only, so creating a row never copies (or heap-allocates paths for)
  // the baseline's unchanged routes, and every read/write after that is one
  // bit test plus a direct index — the same cost the full engine pays.
  // Empty ⇒ no slot of this row ever changed.
  std::vector<std::uint64_t> rib_mask;
  std::vector<std::optional<Route>> rib;
  // Sent flags, copied from the baseline on first write (a byte memcpy, too
  // cheap to mask) and mutated in place. Empty ⇒ unchanged.
  std::vector<std::uint8_t> sent;

  bool HasRibOverride(std::uint32_t slot) const {
    return !rib_mask.empty() &&
           ((rib_mask[slot >> 6] >> (slot & 63)) & std::uint64_t{1}) != 0;
  }
};

// The converged post-attack state as (immutable baseline + sparse overlay).
// Query API mirrors PropagationResult; Materialize() produces the equivalent
// dense PropagationResult (used by equivalence tests and anything that needs
// the full RIB).
class DeltaResult {
 public:
  // --- PropagationResult-compatible queries --------------------------------
  const std::optional<Route>& BestAt(Asn asn) const;
  int FirstChangeRound(Asn asn) const;
  int Rounds() const { return rounds_; }
  // False when the run hit the kMaxRounds cap before a fixpoint (persistent
  // policy oscillation under an adversarial transform). Mirrors
  // PropagationResult::Converged(): the cap snapshot is deterministic and
  // bit-identical to the full engine's, but not a fixpoint.
  bool Converged() const { return converged_; }
  const Announcement& GetAnnouncement() const {
    return base_->GetAnnouncement();
  }
  const topo::AsGraph& Graph() const { return base_->Graph(); }
  std::vector<Asn> AsesTraversing(Asn x) const;
  double FractionTraversing(Asn x) const;
  std::size_t ReachableCount() const;

  // --- delta-specific ------------------------------------------------------
  // Dense index variant (no hash lookup) for overlay-aware consumers.
  const std::optional<Route>& BestAtIndex(std::size_t index) const;
  // Ascending dense indices of every AS the propagation touched (overlay
  // rows exist exactly for these).
  const std::vector<std::uint32_t>& TouchedIndices() const { return touched_; }
  const DeltaRow& RowAt(std::size_t pos) const { return rows_[pos]; }
  const PropagationResult& Base() const { return *base_; }
  std::shared_ptr<const PropagationResult> BasePtr() const { return base_; }

  // Dense state equivalent to running the full engine's Resume() with the
  // same inputs: baseline copied, overlay applied, change rounds reset to
  // the overlay's. O(E) — for tests and full-RIB consumers, not hot paths.
  PropagationResult Materialize() const;

 private:
  friend class DeltaPropagator;

  // Overlay row of the AS at dense `index`, or nullptr if untouched.
  const DeltaRow* RowOf(std::size_t index) const;

  std::shared_ptr<const PropagationResult> base_;
  int rounds_ = 0;
  bool converged_ = true;
  std::vector<std::uint32_t> touched_;  // ascending dense indices
  std::vector<DeltaRow> rows_;          // parallel to touched_
};

// The incremental engine. Construction is free (edge addressing lives in the
// frozen graph); Propagate() is safe to call concurrently from many threads
// against shared baselines.
class DeltaPropagator {
 public:
  explicit DeltaPropagator(const topo::AsGraph& graph);

  // Re-converges from `base` with `transform` in effect, seeding the
  // wavefront from `dirty` (typically just the attacker) — the incremental
  // equivalent of PropagationSimulator::Resume, bit-identical by
  // construction. `base` must be converged state over the same graph; the
  // result holds a reference to it (shared_ptr keeps it alive). `filter`
  // gates imports through the shared engine_detail::AcceptDelivery kernel,
  // exactly as in the full engine.
  DeltaResult Propagate(std::shared_ptr<const PropagationResult> base,
                        RouteTransform* transform,
                        const std::vector<Asn>& dirty,
                        const ImportFilter* filter = nullptr) const;

  const topo::AsGraph& Graph() const { return graph_; }

 private:
  struct Work;

  void ExportFromDelta(Work& work, std::size_t u, RouteTransform* transform,
                       const ImportFilter* filter) const;
  bool DecideDelta(Work& work, std::size_t u, RouteTransform* transform) const;

  static constexpr int kMaxRounds = 10000;

  const topo::AsGraph& graph_;
};

// Either a dense PropagationResult or a sparse DeltaResult, with the common
// query API dispatched. AttackOutcome::after is one of these so every
// consumer (detect/, serve/, benches, examples) works with both engines.
// Full() returns the dense form, materializing lazily from a delta — cheap
// for full-engine results, O(E) once for delta results. The lazy cache is
// NOT thread-safe; share RoutingViews across threads only after Full() has
// been called (or avoid Full() entirely on shared views).
class RoutingView {
 public:
  RoutingView() = default;
  /*implicit*/ RoutingView(PropagationResult full) : full_(std::move(full)) {}
  /*implicit*/ RoutingView(DeltaResult delta) : delta_(std::move(delta)) {}

  RoutingView(const RoutingView& other)
      : full_(other.full_), delta_(other.delta_) {}
  RoutingView& operator=(const RoutingView& other) {
    full_ = other.full_;
    delta_ = other.delta_;
    materialized_.reset();
    return *this;
  }
  RoutingView(RoutingView&&) = default;
  RoutingView& operator=(RoutingView&&) = default;

  bool IsDelta() const { return delta_.has_value(); }
  // The sparse result, or nullptr for a full-engine view.
  const DeltaResult* Delta() const {
    return delta_ ? &*delta_ : nullptr;
  }
  // Dense state (materializes a delta on first call; see class comment).
  const PropagationResult& Full() const;

  // --- dispatched queries --------------------------------------------------
  const std::optional<Route>& BestAt(Asn asn) const {
    return delta_ ? delta_->BestAt(asn) : full_->BestAt(asn);
  }
  int FirstChangeRound(Asn asn) const {
    return delta_ ? delta_->FirstChangeRound(asn) : full_->FirstChangeRound(asn);
  }
  int Rounds() const { return delta_ ? delta_->Rounds() : full_->Rounds(); }
  const Announcement& GetAnnouncement() const {
    return delta_ ? delta_->GetAnnouncement() : full_->GetAnnouncement();
  }
  const topo::AsGraph& Graph() const {
    return delta_ ? delta_->Graph() : full_->Graph();
  }
  std::vector<Asn> AsesTraversing(Asn x) const {
    return delta_ ? delta_->AsesTraversing(x) : full_->AsesTraversing(x);
  }
  double FractionTraversing(Asn x) const {
    return delta_ ? delta_->FractionTraversing(x) : full_->FractionTraversing(x);
  }
  std::size_t ReachableCount() const {
    return delta_ ? delta_->ReachableCount() : full_->ReachableCount();
  }

 private:
  std::optional<PropagationResult> full_;
  std::optional<DeltaResult> delta_;
  mutable std::unique_ptr<PropagationResult> materialized_;
};

}  // namespace asppi::bgp
