// RoutingTree: the paper's Figure 2 algorithm — fast computation of every
// AS's best route class and path length toward one origin under Gao-Rexford
// policies, via three phases:
//
//   1. customer routes: shortest uphill (customer→provider) distances from
//      the origin (Dijkstra; prepend counts are the edge weights),
//   2. peer routes: one peer edge from any AS whose best is a customer route,
//   3. provider routes: shortest downhill propagation of each covered AS's
//      best route to its customers.
//
// This engine is ~an order of magnitude faster than the full path-vector
// PropagationSimulator but cannot express mid-path attacker transforms; the
// library uses it for attack-free baselines and as a cross-check oracle
// (tests assert both engines agree on class and length). Sibling links are
// not supported here — use PropagationSimulator for graphs containing them.
#pragma once

#include <limits>
#include <vector>

#include "bgp/propagation.h"
#include "topology/as_graph.h"

namespace asppi::bgp {

class RoutingTree {
 public:
  enum class Via : std::uint8_t { kNone, kSelf, kCustomer, kPeer, kProvider };

  struct Entry {
    Via via = Via::kNone;
    // Length of the AS path as stored at this AS (prepends included).
    std::size_t length = 0;
    // Neighbor the route was learned from (0 for kSelf/kNone).
    Asn parent = 0;
  };

  // Computes routes for `announcement` on `graph`. Aborts if the graph
  // contains sibling links (unsupported by the three-phase decomposition).
  RoutingTree(const topo::AsGraph& graph, const Announcement& announcement);

  const Entry& At(Asn asn) const;
  // Reconstructs the full AS path (with prepends) as stored at `asn`;
  // empty path if the AS has no route or is the origin.
  AsPath PathFrom(Asn asn) const;

  // Number of ASes with a route (origin excluded).
  std::size_t ReachableCount() const;

  static const char* ViaName(Via via);

 private:
  static constexpr std::size_t kInf = std::numeric_limits<std::size_t>::max();

  const topo::AsGraph& graph_;
  Announcement announcement_;
  std::vector<Entry> entries_;
};

}  // namespace asppi::bgp
