// Export-time route manipulation hooks.
//
// A RouteTransform sees every (exporter → neighbor) announcement just before
// it leaves the exporter, after the exporter's own prepending has been
// applied. This is exactly the power a malicious BGP speaker has: it can
// rewrite the AS-PATH it sends and choose whom to send to — and nothing more.
// The ASPP-interception attacker (attack/) is implemented as one of these.
#pragma once

#include <optional>
#include <span>

#include "bgp/as_path.h"
#include "bgp/policy.h"
#include "bgp/route.h"
#include "topology/types.h"

namespace asppi::bgp {

enum class ExportAction {
  kDefault,   // follow the normal valley-free export policy
  kForce,     // export even if policy would suppress (policy violation)
  kSuppress,  // do not export even if policy would allow
};

class RouteTransform {
 public:
  virtual ~RouteTransform() = default;

  // Called for each potential export. `learned_from` is the relationship
  // class the route was learned through (kCustomer for the origin's own
  // prefix), `to` is the neighbor being exported to. `path` already carries
  // the exporter's own prepends and may be modified in place.
  virtual ExportAction OnExport(Asn exporter, Asn to, Relation to_rel,
                                Relation learned_from, AsPath& path) = 0;

  // Optional hook into the decision process at `asn`: `candidates` is the
  // Adj-RIB-In (one optional slot per neighbor) and `policy_best` what the
  // normal decision process chose. Return a different route to adopt it
  // instead; nullopt keeps the default. A policy-violating interceptor uses
  // this to pick the received route whose *stripped* form is shortest rather
  // than the policy-preferred one.
  virtual std::optional<Route> OverrideBest(
      Asn /*asn*/, std::span<const std::optional<Route>> /*candidates*/,
      const std::optional<Route>& /*policy_best*/) {
    return std::nullopt;
  }

  // Contract: must return true for every `asn` where OverrideBest may return
  // a value. The engines only invoke OverrideBest (and, in the delta engine,
  // only materialize the contiguous Adj-RIB-In view it needs) where this says
  // so; the conservative default keeps unknown transforms correct at the cost
  // of per-decision work. Transforms that never override — or override at one
  // known AS, like the policy-violating interceptor — should narrow it.
  virtual bool MightOverride(Asn /*asn*/) const { return true; }
};

// A transform that does nothing (base case / control runs).
class IdentityTransform final : public RouteTransform {
 public:
  ExportAction OnExport(Asn, Asn, Relation, Relation, AsPath&) override {
    return ExportAction::kDefault;
  }
  bool MightOverride(Asn) const override { return false; }
};

// Import-time route acceptance hook — the defensive mirror of
// RouteTransform. Where a RouteTransform models what a malicious *sender*
// can do, an ImportFilter models what a defensive *receiver* can do: inspect
// every route as it arrives in its Adj-RIB-In and refuse to install it. A
// refused delivery behaves exactly like the receiver-side loop check — the
// announcement crossed the wire (the sender's advertisement stays
// outstanding) but the receiver's slot for that neighbor is invalidated.
//
// Both engines evaluate the filter inside the shared engine_detail delivery
// kernel (engine_detail::AcceptDelivery), so full and delta runs honor
// policies bit-identically by construction. defense::PolicySet (defense/) is
// the production implementation.
//
// Threading: Accept is called concurrently from sweep threads; implementations
// must be const-thread-safe (count through util::Metrics, never members).
class ImportFilter {
 public:
  virtual ~ImportFilter() = default;

  // Should the receiver (dense index `receiver`, ASN `receiver_asn`) install
  // `route` — already in post-delivery Adj-RIB-In form — for the prefix
  // announced by `origin` under prepend policy `prepends`? Called inside the
  // propagation loops: implementations must not intern ASNs through the
  // graph (debug builds assert via topo::detail::AsnLookupCount).
  virtual bool Accept(topo::AsId receiver, Asn receiver_asn, const Route& route,
                      Asn origin, const PrependPolicy& prepends) const = 0;

  // Contract: must return true for every receiver where Accept may return
  // false. The engines skip the Accept call entirely where this says no —
  // with sparse deployments that is almost everywhere.
  virtual bool MightFilter(topo::AsId /*receiver*/) const { return true; }
};

}  // namespace asppi::bgp
