#include "bgp/delta.h"

#include <algorithm>
#include <deque>

#include "util/check.h"
#include "util/metrics.h"

namespace asppi::bgp {

namespace {

// Delta-engine counters (DESIGN.md §4h). Work counters only — deterministic
// for any thread count, like the full engine's bgp.propagation.* family.
struct DeltaMetrics {
  util::Counter propagations{"engine.delta.propagations"};
  util::Counter rounds{"engine.delta.rounds"};
  util::Counter decisions{"engine.delta.decisions"};
  util::Counter announced{"engine.delta.routes_announced"};
  util::Counter withdrawn{"engine.delta.routes_withdrawn"};
  // Total ASes with an overlay row at convergence, summed over runs.
  util::Counter wavefront_total{"engine.delta.wavefront_total"};
  // Largest single-round export worklist, summed over runs.
  util::Counter wavefront_peak{"engine.delta.wavefront_peak"};
  // Rounds the baseline needed beyond what the delta run did, summed over
  // runs — how much convergence work warm-starting skipped.
  util::Counter early_exit_rounds{"engine.delta.early_exit_rounds"};
  util::Timer converge_time{"engine.delta.converge"};
};

DeltaMetrics& Instr() {
  static DeltaMetrics* m = new DeltaMetrics();
  return *m;
}

}  // namespace

// --- TraversalIndex ---------------------------------------------------------

TraversalIndex::TraversalIndex(const PropagationResult& baseline)
    : graph_(&baseline.Graph()) {
  const std::size_t n = graph_->NumAses();
  counts_.assign(n, 0);
  const auto& best = baseline.BestRoutes();
  const Asn origin = baseline.GetAnnouncement().origin;
  std::vector<Asn> seen;  // per-path hop dedup (paths are short)
  for (std::size_t j = 0; j < n; ++j) {
    const Asn asn_j = graph_->AsnAt(j);
    if (asn_j == origin) continue;
    if (!best[j].has_value()) continue;
    ++reachable_;
    seen.clear();
    for (Asn hop : best[j]->path.Hops()) {
      if (hop == asn_j) continue;  // AsesTraversing excludes x itself
      if (std::find(seen.begin(), seen.end(), hop) != seen.end()) continue;
      seen.push_back(hop);
      ++counts_[graph_->IndexOf(hop)];
    }
  }
}

std::size_t TraversalIndex::TraversingCount(Asn x) const {
  return counts_[graph_->IndexOf(x)];
}

// --- DeltaResult ------------------------------------------------------------

const DeltaRow* DeltaResult::RowOf(std::size_t index) const {
  auto it = std::lower_bound(touched_.begin(), touched_.end(),
                             static_cast<std::uint32_t>(index));
  if (it != touched_.end() && *it == index) {
    return &rows_[static_cast<std::size_t>(it - touched_.begin())];
  }
  return nullptr;
}

const std::optional<Route>& DeltaResult::BestAtIndex(std::size_t index) const {
  const DeltaRow* row = RowOf(index);
  if (row != nullptr && row->best_set) return row->best;
  return base_->BestRoutes()[index];
}

const std::optional<Route>& DeltaResult::BestAt(Asn asn) const {
  return BestAtIndex(Graph().IndexOf(asn));
}

int DeltaResult::FirstChangeRound(Asn asn) const {
  const DeltaRow* row = RowOf(Graph().IndexOf(asn));
  // Untouched ASes never changed since the resume point — matches the full
  // engine's Resume(), which resets every change round to -1 first.
  return row != nullptr ? row->first_change_round : -1;
}

std::vector<Asn> DeltaResult::AsesTraversing(Asn x) const {
  std::vector<Asn> out;
  const topo::AsGraph& graph = Graph();
  const Asn origin = GetAnnouncement().origin;
  const std::size_t n = graph.NumAses();
  for (std::size_t i = 0; i < n; ++i) {
    Asn asn = graph.AsnAt(i);
    if (asn == x || asn == origin) continue;
    const std::optional<Route>& best = BestAtIndex(i);
    if (best && best->path.Contains(x)) out.push_back(asn);
  }
  return out;
}

double DeltaResult::FractionTraversing(Asn x) const {
  const std::size_t n = Graph().NumAses();
  if (n <= 2) return 0.0;
  return static_cast<double>(AsesTraversing(x).size()) /
         static_cast<double>(n - 2);
}

std::size_t DeltaResult::ReachableCount() const {
  // Baseline count corrected by overlay rows that gained or lost a route.
  std::size_t count = base_->ReachableCount();
  const auto& base_best = base_->BestRoutes();
  const topo::AsGraph& graph = Graph();
  const Asn origin = GetAnnouncement().origin;
  for (std::size_t p = 0; p < touched_.size(); ++p) {
    const DeltaRow& row = rows_[p];
    if (!row.best_set) continue;
    const std::size_t i = touched_[p];
    if (graph.AsnAt(i) == origin) continue;
    const bool was = base_best[i].has_value();
    const bool now = row.best.has_value();
    if (now && !was) ++count;
    if (!now && was) --count;
  }
  return count;
}

PropagationResult DeltaResult::Materialize() const {
  std::vector<std::optional<Route>> best = base_->BestRoutes();
  std::vector<int> first_change(best.size(), -1);
  std::vector<std::vector<std::optional<Route>>> rib_in = base_->RibIn();
  std::vector<std::vector<std::uint8_t>> sent = base_->Sent();
  for (std::size_t p = 0; p < touched_.size(); ++p) {
    const std::size_t i = touched_[p];
    const DeltaRow& row = rows_[p];
    if (row.best_set) best[i] = row.best;
    first_change[i] = row.first_change_round;
    for (std::uint32_t slot = 0;
         slot < static_cast<std::uint32_t>(row.rib.size()); ++slot) {
      if (row.HasRibOverride(slot)) rib_in[i][slot] = row.rib[slot];
    }
    if (!row.sent.empty()) sent[i] = row.sent;
  }
  PropagationResult out = PropagationResult::Restore(
      Graph(), GetAnnouncement(), rounds_, std::move(best),
      std::move(first_change), std::move(rib_in), std::move(sent));
  out.converged_ = converged_;
  return out;
}

// --- DeltaPropagator --------------------------------------------------------

// Mutable propagation state: the baseline plus an overlay row per touched AS
// and the two phase worklists. `row_of` maps dense AS index → overlay row in
// O(1) with no hashing; rows live in a deque, so references to one row stay
// valid while other rows are created. Rib slot overrides are bitmask-gated
// (see DeltaRow): row creation allocates but never copies baseline routes,
// and per-slot access is one bit test plus a direct index.
struct DeltaPropagator::Work {
  std::shared_ptr<const PropagationResult> base;
  std::vector<std::int32_t> row_of;  // dense index → rows position, or -1
  std::deque<DeltaRow> rows;
  std::vector<std::uint32_t> touched;  // rows creation order (unsorted)
  std::vector<std::uint8_t> in_export;
  std::vector<std::uint8_t> in_dirty;
  std::vector<std::uint32_t> export_list;
  std::vector<std::uint32_t> dirty_list;
  std::uint64_t decisions = 0;
  std::uint64_t announced = 0;
  std::uint64_t withdrawn = 0;

  DeltaRow& MutableRow(std::size_t index) {
    std::int32_t pos = row_of[index];
    if (pos < 0) {
      pos = static_cast<std::int32_t>(rows.size());
      row_of[index] = pos;
      rows.emplace_back();
      touched.push_back(static_cast<std::uint32_t>(index));
    }
    return rows[static_cast<std::size_t>(pos)];
  }
  const DeltaRow* FindRow(std::size_t index) const {
    const std::int32_t pos = row_of[index];
    return pos >= 0 ? &rows[static_cast<std::size_t>(pos)] : nullptr;
  }
  const std::optional<Route>& BestOfIdx(std::size_t index) const {
    const DeltaRow* row = FindRow(index);
    if (row != nullptr && row->best_set) return row->best;
    return base->BestRoutes()[index];
  }
  const std::optional<Route>& RibAt(std::size_t index,
                                    std::uint32_t slot) const {
    if (const DeltaRow* row = FindRow(index)) {
      if (row->HasRibOverride(slot)) return row->rib[slot];
    }
    return base->RibIn()[index][slot];
  }
  std::uint8_t SentAt(std::size_t index, std::uint32_t slot) const {
    if (const DeltaRow* row = FindRow(index)) {
      if (!row->sent.empty()) return row->sent[slot];
    }
    return base->Sent()[index][slot];
  }
  void SetRib(std::size_t index, std::uint32_t slot,
              std::optional<Route> value) {
    DeltaRow& row = MutableRow(index);
    if (row.rib.empty()) {
      const std::size_t degree = base->RibIn()[index].size();
      row.rib.resize(degree);
      row.rib_mask.assign((degree + 63) / 64, 0);
    }
    row.rib_mask[slot >> 6] |= std::uint64_t{1} << (slot & 63);
    row.rib[slot] = std::move(value);
  }
  void SetSent(std::size_t index, std::uint32_t slot, std::uint8_t value) {
    DeltaRow& row = MutableRow(index);
    if (row.sent.empty()) {
      const auto& base_row = base->Sent()[index];
      row.sent.assign(base_row.begin(), base_row.end());
    }
    row.sent[slot] = value;
  }
  void MarkDirty(std::size_t index) {
    if (!in_dirty[index]) {
      in_dirty[index] = 1;
      dirty_list.push_back(static_cast<std::uint32_t>(index));
    }
  }
};

DeltaPropagator::DeltaPropagator(const topo::AsGraph& graph)
    : graph_(graph) {}

DeltaResult DeltaPropagator::Propagate(
    std::shared_ptr<const PropagationResult> base, RouteTransform* transform,
    const std::vector<Asn>& dirty, const ImportFilter* filter) const {
  ASPPI_CHECK(base != nullptr && &base->Graph() == &graph_)
      << "baseline from a different graph";
  util::ScopedTimer converge_timer(Instr().converge_time);
  Instr().propagations.Add();

  const std::size_t n = graph_.NumAses();
  Work work;
  work.base = base;
  work.row_of.assign(n, -1);
  work.in_export.assign(n, 0);
  work.in_dirty.assign(n, 0);

  // Seed exactly like Resume(): flag the dirty ASes for export and refresh
  // their decisions (the transform may change what they *choose*, not only
  // what they export) — without recording a change round.
  for (Asn asn : dirty) {
    const std::size_t idx = graph_.IndexOf(asn);
    if (!work.in_export[idx]) {
      work.in_export[idx] = 1;
      work.export_list.push_back(static_cast<std::uint32_t>(idx));
    }
    DecideDelta(work, idx, transform);
  }
#ifndef NDEBUG
  // All ASN translations happen at seeding; the wavefront below speaks dense
  // ids only (edge targets and back slots come off the frozen graph).
  const std::uint64_t lookups_before = topo::detail::AsnLookupCount();
#endif

  // Same synchronous schedule as PropagationSimulator::RunLoop, driven by
  // worklists. Each phase visits its worklist in the graph's precomputed
  // rank order (the full engine's IdsByRank scans): for small worklists a
  // rank-position sort is cheapest, but once the wavefront covers a sizeable
  // share of the graph a scan over IdsByRank — exactly what the full engine
  // does — beats the sort. Either way the visit order, and hence every wire
  // action, is identical.
  const std::span<const topo::AsId> by_rank = graph_.IdsByRank();
  const auto for_each_rank_ordered = [&](std::vector<std::uint32_t>& list,
                                         std::vector<std::uint8_t>& flags,
                                         auto&& body) {
    if (list.size() >= n / 8) {
      for (topo::AsId idx : by_rank) {
        if (!flags[idx]) continue;
        flags[idx] = 0;
        body(idx);
      }
    } else {
      std::sort(list.begin(), list.end(),
                [this](std::uint32_t a, std::uint32_t b) {
                  return graph_.RankPosAt(a) < graph_.RankPosAt(b);
                });
      for (std::uint32_t idx : list) {
        flags[idx] = 0;
        body(idx);
      }
    }
    list.clear();
  };

  std::size_t peak_wavefront = 0;
  int round = 0;
  bool converged = true;
  while (true) {
    if (work.export_list.empty()) break;
    peak_wavefront = std::max(peak_wavefront, work.export_list.size());
    for_each_rank_ordered(work.export_list, work.in_export,
                          [&](std::uint32_t u) {
      ExportFromDelta(work, u, transform, filter);
    });
    ++round;
    // Same cap and same stop point as the full engine's RunLoop: a
    // persistently oscillating adversarial policy yields a flagged,
    // deterministic round-cap snapshot instead of an abort.
    if (round >= kMaxRounds) {
      converged = false;
      break;
    }

    bool any_change = false;
    for_each_rank_ordered(work.dirty_list, work.in_dirty,
                          [&](std::uint32_t v) {
      if (DecideDelta(work, v, transform)) {
        any_change = true;
        DeltaRow& row = work.MutableRow(v);  // exists: best was just written
        if (row.first_change_round < 0) row.first_change_round = round;
        if (!work.in_export[v]) {
          work.in_export[v] = 1;
          work.export_list.push_back(v);
        }
      }
    });
    if (!any_change) break;
  }
#ifndef NDEBUG
  ASPPI_CHECK_EQ(topo::detail::AsnLookupCount(), lookups_before)
      << "ASN hash/interning lookup inside the delta propagation loop";
#endif

  DeltaResult result;
  result.base_ = std::move(base);
  result.rounds_ = round;
  result.converged_ = converged;
  result.touched_ = std::move(work.touched);
  std::sort(result.touched_.begin(), result.touched_.end());
  result.rows_.reserve(result.touched_.size());
  for (std::uint32_t index : result.touched_) {
    result.rows_.push_back(
        std::move(work.rows[static_cast<std::size_t>(work.row_of[index])]));
  }

  Instr().rounds.Add(static_cast<std::uint64_t>(round));
  Instr().decisions.Add(work.decisions);
  if (work.announced != 0) Instr().announced.Add(work.announced);
  if (work.withdrawn != 0) Instr().withdrawn.Add(work.withdrawn);
  Instr().wavefront_total.Add(result.touched_.size());
  Instr().wavefront_peak.Add(peak_wavefront);
  const int base_rounds = result.base_->Rounds();
  if (base_rounds > round) {
    Instr().early_exit_rounds.Add(
        static_cast<std::uint64_t>(base_rounds - round));
  }
  return result;
}

void DeltaPropagator::ExportFromDelta(Work& work, std::size_t u,
                                      RouteTransform* transform,
                                      const ImportFilter* filter) const {
  const Announcement& announcement = work.base->GetAnnouncement();
  const Asn u_asn = graph_.AsnAt(u);
  const bool is_origin = (u_asn == announcement.origin);
  const auto neighbors = graph_.NeighborsAt(static_cast<topo::AsId>(u));
  // Safe as a reference: it aims into the immutable baseline or into a deque
  // row, and nothing below mutates any row's `best`.
  const std::optional<Route>& best = work.BestOfIdx(u);

  for (std::uint32_t slot = 0; slot < neighbors.size(); ++slot) {
    const Asn v_asn = neighbors[slot].asn;
    const Relation v_rel = neighbors[slot].rel;
    const topo::AsId v = neighbors[slot].id;
    const std::uint32_t back_slot = neighbors[slot].back_slot;

    engine_detail::WireExport wire = engine_detail::BuildExport(
        announcement, u_asn, is_origin, best, v_asn, v_rel, transform);

    if (wire.send) {
      ++work.announced;
      // Receiver-side loop detection, as in the full engine.
      if (wire.path.Contains(v_asn)) {
        if (work.RibAt(v, back_slot).has_value()) {
          work.SetRib(v, back_slot, std::nullopt);
          work.MarkDirty(v);
        }
        if (work.SentAt(u, slot) != 1) work.SetSent(u, slot, 1);
        continue;
      }
      Route route = engine_detail::DeliverRoute(std::move(wire), u_asn, v_rel);
      // Import policy (defense/), same kernel and same point as the full
      // engine: a filtered route invalidates the slot like a looped one.
      if (!engine_detail::AcceptDelivery(filter, v, v_asn, route,
                                         announcement)) {
        if (work.RibAt(v, back_slot).has_value()) {
          work.SetRib(v, back_slot, std::nullopt);
          work.MarkDirty(v);
        }
        if (work.SentAt(u, slot) != 1) work.SetSent(u, slot, 1);
        continue;
      }
      const std::optional<Route>& current = work.RibAt(v, back_slot);
      if (!current.has_value() || !(*current == route)) {
        work.SetRib(v, back_slot, std::move(route));
        work.MarkDirty(v);
      }
      if (work.SentAt(u, slot) != 1) work.SetSent(u, slot, 1);
    } else {
      if (work.SentAt(u, slot)) {
        ++work.withdrawn;
        work.SetSent(u, slot, 0);
        if (work.RibAt(v, back_slot).has_value()) {
          work.SetRib(v, back_slot, std::nullopt);
          work.MarkDirty(v);
        }
      }
    }
  }
}

bool DeltaPropagator::DecideDelta(Work& work, std::size_t u,
                                  RouteTransform* transform) const {
  ++work.decisions;
  const Asn u_asn = graph_.AsnAt(u);
  if (u_asn == work.base->GetAnnouncement().origin) return false;

  const auto& base_rib = work.base->RibIn()[u];
  const DeltaRow* row = work.FindRow(u);
  const bool has_overrides = row != nullptr && !row->rib.empty();

  std::optional<Route> chosen;
  if (transform != nullptr && transform->MightOverride(u_asn)) {
    // OverrideBest needs a contiguous Adj-RIB-In view; materialize the
    // merged row. MightOverride keeps this off every AS but the attacker.
    if (!has_overrides) {
      chosen = engine_detail::ChooseBest(u_asn, base_rib, transform);
    } else {
      std::vector<std::optional<Route>> merged(base_rib.begin(),
                                               base_rib.end());
      for (std::uint32_t slot = 0;
           slot < static_cast<std::uint32_t>(merged.size()); ++slot) {
        if (row->HasRibOverride(slot)) merged[slot] = row->rib[slot];
      }
      chosen = engine_detail::ChooseBest(u_asn, merged, transform);
    }
  } else if (!has_overrides) {
    chosen = engine_detail::ChooseBest(u_asn, base_rib, transform);
  } else {
    // Merged fold without materialization: same ascending slot order and
    // same strict-BetterRoute fold as ChooseBest, so the pick is identical.
    const std::optional<Route>* folded = nullptr;
    for (std::uint32_t slot = 0;
         slot < static_cast<std::uint32_t>(base_rib.size()); ++slot) {
      const std::optional<Route>* candidate =
          row->HasRibOverride(slot) ? &row->rib[slot] : &base_rib[slot];
      if (!candidate->has_value()) continue;
      if (folded == nullptr || BetterRoute(**candidate, **folded)) {
        folded = candidate;
      }
    }
    if (folded != nullptr) chosen = *folded;
  }

  if (chosen == work.BestOfIdx(u)) return false;
  DeltaRow& mutable_row = work.MutableRow(u);
  mutable_row.best_set = true;
  mutable_row.best = std::move(chosen);
  return true;
}

// --- RoutingView ------------------------------------------------------------

const PropagationResult& RoutingView::Full() const {
  if (full_) return *full_;
  ASPPI_CHECK(delta_.has_value()) << "empty RoutingView";
  if (!materialized_) {
    materialized_ = std::make_unique<PropagationResult>(delta_->Materialize());
  }
  return *materialized_;
}

}  // namespace asppi::bgp
