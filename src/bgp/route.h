// A candidate route in an AS's Adj-RIB-In, and the BGP decision process over
// candidates.
#pragma once

#include <optional>

#include "bgp/as_path.h"
#include "bgp/policy.h"

namespace asppi::bgp {

struct Route {
  AsPath path;          // as received: front() is the neighbor's ASN
  Asn learned_from = 0;  // the neighbor that sent it
  Relation rel = Relation::kPeer;  // role of learned_from relative to self

  // Effective routing class. Equal to `rel` for routes that crossed a real
  // inter-domain boundary; for sibling-learned routes it is the class the
  // *sibling* holds the route under (siblings act as one composite AS —
  // Gao 2000). Blanket-preferring sibling routes instead creates dispute
  // wheels and divergence; class transport keeps the system equivalent to
  // Gao-Rexford on the sibling-merged quotient graph, which converges.
  Relation effective = Relation::kPeer;

  int LocalPref() const { return LocalPrefOf(effective); }

  bool operator==(const Route&) const = default;
};

// The decision process (paper §IV-B): highest local-pref class first
// (customer > sibling > peer > provider), then shortest AS-path *including
// prepended copies*, then lowest neighbor ASN as a deterministic tiebreak.
// Returns true if `a` is strictly better than `b`.
bool BetterRoute(const Route& a, const Route& b);

// Best of an optional pair (used when folding over candidates).
const std::optional<Route>& BestOf(const std::optional<Route>& a,
                                   const std::optional<Route>& b);

}  // namespace asppi::bgp
