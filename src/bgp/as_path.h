// AS-PATH attribute with first-class support for AS-path prepending (ASPP).
//
// Hops are stored most-recent-first: front() is the neighbor the route was
// learned from, back() is the origin AS. Prepended paths contain consecutive
// duplicates, e.g. "7018 3356 32934 32934 32934" (paper Section III).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "topology/types.h"

namespace asppi::bgp {

using topo::Asn;

class AsPath {
 public:
  AsPath() = default;
  explicit AsPath(std::vector<Asn> hops) : hops_(std::move(hops)) {}

  // Origin announcement: `copies` occurrences of the origin ASN (λ in the
  // paper; copies >= 1).
  static AsPath Origin(Asn origin, int copies = 1);

  // Prepends `asn` `times` times at the front (what a BGP speaker does on
  // export; times > 1 is AS-path prepending).
  void Prepend(Asn asn, int times = 1);

  bool Empty() const { return hops_.empty(); }
  // Total number of ASN occurrences including duplicates — the length BGP's
  // decision process compares.
  std::size_t Length() const { return hops_.size(); }
  // Number of distinct ASes on the path.
  std::size_t UniqueCount() const;

  Asn First() const;   // most recent hop (the sender)
  Asn OriginAs() const;  // last hop

  bool Contains(Asn asn) const;

  // Number of consecutive occurrences of the origin ASN at the tail — the
  // origin's prepend count λ (1 if no prepending).
  int OriginPadding() const;
  // Total duplicate occurrences anywhere (source + intermediary prepending):
  // Length() - UniqueCount().
  std::size_t TotalPadding() const { return Length() - UniqueCount(); }
  bool HasPrepending() const { return TotalPadding() > 0; }
  // Longest run of `asn` anywhere in the path (0 if absent).
  int MaxRunOf(Asn asn) const;

  // The ASPP-interception primitive: collapse every consecutive run of `asn`
  // to a single occurrence. Returns the number of copies removed. This is
  // exactly the attacker's modification: [M * V…V] → [M * V] (paper §II-B).
  int CollapseRunsOf(Asn asn);
  // Partial-strip generalization: trim every consecutive run of `asn` down to
  // at most `keep` occurrences (keep >= 1; runs already <= keep are
  // untouched). Returns copies removed. TrimRunsOf(asn, 1) is exactly
  // CollapseRunsOf(asn); keep = λ−1 is the stealthy attacker that shaves one
  // pad per run instead of all of them.
  int TrimRunsOf(Asn asn, int keep);
  // Collapse *all* consecutive duplicate runs (of any ASN) to length 1.
  // Returns copies removed. Used to compute "the path without any ASPP".
  int CollapseAllRuns();

  // Sequence of distinct ASes in path order (duplicates collapsed) — the
  // AS-level route the traffic actually takes.
  std::vector<Asn> DistinctSequence() const;

  // True if the path visits some distinct AS twice non-consecutively — a
  // routing loop (consecutive duplicates are legitimate prepending, not
  // loops).
  bool HasLoop() const;

  const std::vector<Asn>& Hops() const { return hops_; }

  // "7018 3356 32934 32934" — the RouteViews-style rendering.
  std::string ToString() const;
  // Parses the rendering above; nullopt on malformed input.
  static std::optional<AsPath> FromString(const std::string& text);

  bool operator==(const AsPath&) const = default;

 private:
  std::vector<Asn> hops_;
};

}  // namespace asppi::bgp
