#include "bgp/route.h"

namespace asppi::bgp {

bool BetterRoute(const Route& a, const Route& b) {
  if (a.LocalPref() != b.LocalPref()) return a.LocalPref() > b.LocalPref();
  if (a.path.Length() != b.path.Length()) {
    return a.path.Length() < b.path.Length();
  }
  return a.learned_from < b.learned_from;
}

const std::optional<Route>& BestOf(const std::optional<Route>& a,
                                   const std::optional<Route>& b) {
  if (!a) return b;
  if (!b) return a;
  return BetterRoute(*a, *b) ? a : b;
}

}  // namespace asppi::bgp
