#include "bgp/as_path.h"

#include <algorithm>
#include <unordered_set>

#include "util/check.h"
#include "util/strings.h"

namespace asppi::bgp {

AsPath AsPath::Origin(Asn origin, int copies) {
  ASPPI_CHECK_GE(copies, 1);
  AsPath p;
  p.hops_.assign(static_cast<std::size_t>(copies), origin);
  return p;
}

void AsPath::Prepend(Asn asn, int times) {
  ASPPI_CHECK_GE(times, 1);
  hops_.insert(hops_.begin(), static_cast<std::size_t>(times), asn);
}

std::size_t AsPath::UniqueCount() const {
  std::unordered_set<Asn> distinct(hops_.begin(), hops_.end());
  return distinct.size();
}

Asn AsPath::First() const {
  ASPPI_CHECK(!hops_.empty());
  return hops_.front();
}

Asn AsPath::OriginAs() const {
  ASPPI_CHECK(!hops_.empty());
  return hops_.back();
}

bool AsPath::Contains(Asn asn) const {
  return std::find(hops_.begin(), hops_.end(), asn) != hops_.end();
}

int AsPath::OriginPadding() const {
  if (hops_.empty()) return 0;
  const Asn origin = hops_.back();
  int count = 0;
  for (auto it = hops_.rbegin(); it != hops_.rend() && *it == origin; ++it) {
    ++count;
  }
  return count;
}

int AsPath::MaxRunOf(Asn asn) const {
  int best = 0;
  int run = 0;
  for (Asn hop : hops_) {
    run = (hop == asn) ? run + 1 : 0;
    best = std::max(best, run);
  }
  return best;
}

int AsPath::CollapseRunsOf(Asn asn) {
  std::vector<Asn> kept;
  kept.reserve(hops_.size());
  int removed = 0;
  for (Asn hop : hops_) {
    if (hop == asn && !kept.empty() && kept.back() == asn) {
      ++removed;
    } else {
      kept.push_back(hop);
    }
  }
  hops_ = std::move(kept);
  return removed;
}

int AsPath::TrimRunsOf(Asn asn, int keep) {
  ASPPI_CHECK_GE(keep, 1);
  std::vector<Asn> kept;
  kept.reserve(hops_.size());
  int removed = 0;
  int run = 0;
  for (Asn hop : hops_) {
    run = (hop == asn) ? run + 1 : 0;
    if (run > keep) {
      ++removed;
    } else {
      kept.push_back(hop);
    }
  }
  hops_ = std::move(kept);
  return removed;
}

int AsPath::CollapseAllRuns() {
  std::vector<Asn> kept;
  kept.reserve(hops_.size());
  int removed = 0;
  for (Asn hop : hops_) {
    if (!kept.empty() && kept.back() == hop) {
      ++removed;
    } else {
      kept.push_back(hop);
    }
  }
  hops_ = std::move(kept);
  return removed;
}

std::vector<Asn> AsPath::DistinctSequence() const {
  std::vector<Asn> out;
  for (Asn hop : hops_) {
    if (out.empty() || out.back() != hop) out.push_back(hop);
  }
  return out;
}

bool AsPath::HasLoop() const {
  std::vector<Asn> seq = DistinctSequence();
  std::unordered_set<Asn> seen;
  for (Asn asn : seq) {
    if (!seen.insert(asn).second) return true;
  }
  return false;
}

std::string AsPath::ToString() const {
  return util::Join(hops_, " ");
}

std::optional<AsPath> AsPath::FromString(const std::string& text) {
  std::vector<Asn> hops;
  for (const std::string& token : util::SplitWhitespace(text)) {
    auto asn = util::ParseUint(token);
    if (!asn || *asn > 0xffffffffULL) return std::nullopt;
    hops.push_back(static_cast<Asn>(*asn));
  }
  return AsPath(std::move(hops));
}

}  // namespace asppi::bgp
