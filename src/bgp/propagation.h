// PropagationSimulator: synchronous-round path-vector simulation of BGP
// update propagation and the decision process over a relationship-annotated
// AS graph (paper §IV-B).
//
// Semantics:
//   * One prefix per run, announced by `Announcement::origin` with
//     per-neighbor prepending (λ copies of its own ASN).
//   * Each AS keeps an Adj-RIB-In slot per neighbor; its best route is chosen
//     by the decision process in route.h (local-pref class, then path length
//     including prepends, then lowest neighbor ASN).
//   * Exports follow the valley-free rule in policy.h, with each exporter
//     prepending its own ASN PadsFor(exporter, neighbor) times. An optional
//     RouteTransform can rewrite or force/suppress any export — this is the
//     attacker hook.
//   * Receiver-side loop detection: a delivered path containing the
//     receiver's ASN invalidates that neighbor's slot.
//   * Withdrawals are explicit: when an AS's best route change makes a
//     previous export no longer policy-legal (or no longer existent), the
//     neighbor's slot is cleared.
//
// Rounds advance synchronously (all round-r exports are decided upon in
// round r+1), so an AS's recorded change round is its hop-time from the event
// source. Gao-Rexford policies guarantee convergence; a generous round bound
// guards the attacker-perturbed runs.
//
// Results are resumable: Resume() continues from a converged state after the
// attacker's export behaviour changes, re-announcing from the attacker only.
// This both matches reality (the victim's announcement is long stable when
// the attack starts) and yields per-AS pollution times for the detection-
// latency analysis (paper Fig. 14).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "bgp/route.h"
#include "bgp/transform.h"
#include "topology/as_graph.h"

namespace asppi::bgp {

struct Announcement {
  Asn origin = 0;
  // Prepending behaviour for every AS (origin λ and intermediary prepending).
  PrependPolicy prepends;
};

// Shared per-edge kernels of the synchronous engines. PropagationSimulator
// (full state) and DeltaPropagator (sparse overlay, bgp/delta.h) both build
// their exports and decisions from these, so the two engines agree bit for
// bit on every wire-visible action by construction — the equivalence the
// delta engine's correctness proof (DESIGN.md §4h) and the differential
// fuzzer's delta-vs-full leg rest on.
namespace engine_detail {

// One candidate export from `u_asn` to the neighbor (v_asn, v_rel):
// `send == false` means nothing crosses the wire this round (either no route
// to offer after sender-side loop avoidance, or policy/transform suppressed
// it) — the caller withdraws if a previous advertisement is outstanding.
struct WireExport {
  bool send = false;
  AsPath path;
  Relation out_class = Relation::kCustomer;
};

// Builds the export exactly as ExportFrom always has: the origin announces
// its own prefix (ranked like a customer route), everyone else re-exports
// its best route with its own prepends applied, and the transform's OnExport
// hook may rewrite the path or force/suppress the send.
WireExport BuildExport(const Announcement& announcement, Asn u_asn,
                       bool is_origin, const std::optional<Route>& best,
                       Asn v_asn, Relation v_rel, RouteTransform* transform);

// The Adj-RIB-In entry a delivered `wire` becomes at the receiver (after the
// receiver-side loop check, which the caller performs).
Route DeliverRoute(WireExport&& wire, Asn u_asn, Relation v_rel);

// Import-policy gate at the receiver (dense id `v`, ASN `v_asn`): does the
// delivered `route` pass `filter`? Evaluated by BOTH engines at the same
// point — after the receiver-side loop check, before the Adj-RIB-In write —
// so defended runs stay bit-identical across engines. A rejected delivery
// mirrors the loop-check branch: the wire crossed (sender keeps its
// advertisement outstanding), the receiver's slot is invalidated. Null filter
// accepts everything; MightFilter narrows the per-delivery cost to deployed
// receivers.
bool AcceptDelivery(const ImportFilter* filter, topo::AsId v, Asn v_asn,
                    const Route& route, const Announcement& announcement);

// The decision process over a contiguous Adj-RIB-In, including the
// transform's OverrideBest hook (consulted only where MightOverride allows).
std::optional<Route> ChooseBest(Asn u_asn,
                                std::span<const std::optional<Route>> rib,
                                RouteTransform* transform);

// Directed-edge addressing lives in the frozen graph itself: every
// topo::Edge carries the neighbor's dense id and the exporter's slot in the
// neighbor's Adj-RIB-In (back_slot), precomputed once at Freeze(). What used
// to be a separate per-engine EdgeMap is now two fields of the adjacency
// entry both engines already read, so their delivery targets stay identical
// by construction and no per-delivery ASN translation ever happens — debug
// builds assert it (topo::detail::AsnLookupCount around the engine loops).

}  // namespace engine_detail

class PropagationSimulator;

// Converged routing state for one announcement. Also the warm-start input to
// PropagationSimulator::Resume().
class PropagationResult {
 public:
  // Best route of `asn` (nullopt for the origin itself and for ASes with no
  // route).
  const std::optional<Route>& BestAt(Asn asn) const;
  // Round of the *first* best-route change of `asn` during the run that
  // produced this result (-1 if its best never changed in that run).
  int FirstChangeRound(Asn asn) const;
  // Total rounds until convergence of the producing run.
  int Rounds() const { return rounds_; }
  // False when the producing run hit the kMaxRounds cap before reaching a
  // fixpoint: a persistently oscillating policy (possible once adversarial
  // transforms force valley-violating exports — Griffin's dispute wheels).
  // The state is then the deterministic round-cap snapshot, bit-identical
  // between the full and delta engines, but NOT a routing fixpoint;
  // fixpoint-only invariants must not be asserted against it.
  bool Converged() const { return converged_; }

  const Announcement& GetAnnouncement() const { return announcement_; }
  const topo::AsGraph& Graph() const { return *graph_; }

  // --- checkpoint access (data/snapshot.cc) -------------------------------
  // The full converged state, exposed so a snapshot can persist it and
  // Restore() can rebuild a result that Resume() continues from
  // bit-identically to the original. All vectors are indexed by the graph's
  // dense AS index; rib_in/sent are indexed [as][adjacency slot].
  const std::vector<std::optional<Route>>& BestRoutes() const { return best_; }
  const std::vector<int>& FirstChangeRounds() const {
    return first_change_round_;
  }
  const std::vector<std::vector<std::optional<Route>>>& RibIn() const {
    return rib_in_;
  }
  const std::vector<std::vector<std::uint8_t>>& Sent() const { return sent_; }

  // Rebuilds a result from checkpointed state. Aborts if the vector shapes
  // do not match `graph` (snapshot loaders validate sizes first).
  static PropagationResult Restore(
      const topo::AsGraph& graph, Announcement announcement, int rounds,
      std::vector<std::optional<Route>> best, std::vector<int> first_change_round,
      std::vector<std::vector<std::optional<Route>>> rib_in,
      std::vector<std::vector<std::uint8_t>> sent);

  // ASes (other than `x` and the origin) whose best path traverses AS `x`.
  std::vector<Asn> AsesTraversing(Asn x) const;
  // |AsesTraversing(x)| / (NumAses - 2): the paper's pollution metric
  // ("% of paths traversing attacker").
  double FractionTraversing(Asn x) const;
  // Number of ASes that have any route at all (origin excluded).
  std::size_t ReachableCount() const;

 private:
  friend class PropagationSimulator;
  friend class DeltaResult;  // Materialize() stamps converged_

  const topo::AsGraph* graph_ = nullptr;
  Announcement announcement_;
  int rounds_ = 0;
  bool converged_ = true;
  // All vectors indexed by the graph's dense AS index.
  std::vector<std::optional<Route>> best_;
  std::vector<int> first_change_round_;
  // Full Adj-RIB-In: rib_in_[as][slot] is the route last received from the
  // neighbor at `slot` of that AS's adjacency list.
  std::vector<std::vector<std::optional<Route>>> rib_in_;
  // sent_[as][slot]: does `as` currently have an active advertisement to the
  // neighbor at `slot`?
  std::vector<std::vector<std::uint8_t>> sent_;
};

class PropagationSimulator {
 public:
  explicit PropagationSimulator(const topo::AsGraph& graph);

  // Full propagation from scratch. `transform` (optional, non-owning) hooks
  // every export; `filter` (optional, non-owning) gates every import.
  PropagationResult Run(const Announcement& announcement,
                        RouteTransform* transform = nullptr,
                        const ImportFilter* filter = nullptr) const;

  // Continues from `prior` (typically an attack-free converged state) with a
  // new transform in effect; only `dirty` ASes re-evaluate their exports
  // initially. Change rounds are counted from the resume point.
  PropagationResult Resume(const PropagationResult& prior,
                           RouteTransform* transform,
                           const std::vector<Asn>& dirty,
                           const ImportFilter* filter = nullptr) const;

  const topo::AsGraph& Graph() const { return graph_; }

 private:
  void RunLoop(PropagationResult& state, RouteTransform* transform,
               const ImportFilter* filter,
               std::vector<std::uint8_t>& need_export) const;
  // Exports u's best (or origin announcement) to all neighbors; marks
  // receivers whose slots changed in `dirty`.
  void ExportFrom(PropagationResult& state, std::size_t u,
                  RouteTransform* transform, const ImportFilter* filter,
                  std::vector<std::uint8_t>& dirty) const;
  // Recomputes u's best from its Adj-RIB-In. Returns true if it changed.
  bool Decide(PropagationResult& state, std::size_t u,
              RouteTransform* transform) const;

  static constexpr int kMaxRounds = 10000;

  const topo::AsGraph& graph_;
};

}  // namespace asppi::bgp
