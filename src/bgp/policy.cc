#include "bgp/policy.h"

#include <algorithm>
#include <string>

#include "util/check.h"

namespace asppi::bgp {

int LocalPrefOf(Relation learned_from) {
  switch (learned_from) {
    case Relation::kCustomer:
      return 300;
    case Relation::kSibling:
      return 250;
    case Relation::kPeer:
      return 200;
    case Relation::kProvider:
      return 100;
  }
  return 0;
}

bool MayExport(Relation learned_from, Relation to) {
  // Routes from customers/siblings: export to everyone (they pay us, or are
  // us). Routes from peers/providers: only downhill (customers) or to
  // siblings.
  switch (learned_from) {
    case Relation::kCustomer:
    case Relation::kSibling:
      return true;
    case Relation::kPeer:
    case Relation::kProvider:
      return to == Relation::kCustomer || to == Relation::kSibling;
  }
  return false;
}

bool MayExportOwn(Relation /*to*/) { return true; }

void PrependPolicy::SetDefault(Asn exporter, int pads) {
  ASPPI_CHECK_GE(pads, 1);
  defaults_[exporter] = pads;
}

void PrependPolicy::SetForNeighbor(Asn exporter, Asn neighbor, int pads) {
  ASPPI_CHECK_GE(pads, 1);
  overrides_[{exporter, neighbor}] = pads;
}

int PrependPolicy::MaxPadsOf(Asn exporter) const {
  int max_pads = 1;
  if (auto it = defaults_.find(exporter); it != defaults_.end()) {
    max_pads = it->second;
  }
  // Overrides for `exporter` are contiguous in the (exporter, neighbor) map.
  for (auto it = overrides_.lower_bound({exporter, 0});
       it != overrides_.end() && it->first.first == exporter; ++it) {
    max_pads = std::max(max_pads, it->second);
  }
  return max_pads;
}

int PrependPolicy::MaxPadsToward(Asn exporter,
                                 std::span<const Asn> neighbors) const {
  if (neighbors.empty()) return MaxPadsOf(exporter);
  int max_pads = 1;
  for (Asn neighbor : neighbors) {
    max_pads = std::max(max_pads, PadsFor(exporter, neighbor));
  }
  return max_pads;
}

std::string PrependPolicy::KeyString() const {
  std::string key;
  for (const auto& [exporter, pads] : defaults_) {
    key += 'd' + std::to_string(exporter) + ':' + std::to_string(pads) + ';';
  }
  for (const auto& [edge, pads] : overrides_) {
    key += 'o' + std::to_string(edge.first) + ',' +
           std::to_string(edge.second) + ':' + std::to_string(pads) + ';';
  }
  return key;
}

int PrependPolicy::PadsFor(Asn exporter, Asn neighbor) const {
  if (auto it = overrides_.find({exporter, neighbor}); it != overrides_.end()) {
    return it->second;
  }
  if (auto it = defaults_.find(exporter); it != defaults_.end()) {
    return it->second;
  }
  return 1;
}

}  // namespace asppi::bgp
