#include "strategy/model.h"

#include <algorithm>

#include "util/thread_pool.h"

namespace asppi::strategy {

std::optional<AttackerModel> ParseAttackerModel(std::string_view text) {
  if (text == "paper") return AttackerModel::kPaper;
  if (text == "stealth") return AttackerModel::kStealth;
  if (text == "search") return AttackerModel::kSearch;
  return std::nullopt;
}

const char* AttackerModelName(AttackerModel model) {
  switch (model) {
    case AttackerModel::kPaper:
      return "paper";
    case AttackerModel::kStealth:
      return "stealth";
    case AttackerModel::kSearch:
      return "search";
  }
  return "?";
}

namespace {

// The same unique ranking attack::RunPairSweep applies.
void SortRows(std::vector<attack::PairImpact>& rows) {
  std::sort(rows.begin(), rows.end(),
            [](const attack::PairImpact& a, const attack::PairImpact& b) {
              if (a.after != b.after) return a.after > b.after;
              if (a.attacker != b.attacker) return a.attacker < b.attacker;
              return a.victim < b.victim;
            });
}

}  // namespace

std::vector<attack::PairImpact> RunModelPairSweep(
    const topo::AsGraph& graph,
    const std::vector<std::pair<Asn, Asn>>& attacker_victim_pairs,
    AttackerModel model, const attack::PairSweepOptions& options,
    const SearchOptions* search) {
  if (model == AttackerModel::kPaper) {
    return attack::RunPairSweep(graph, attacker_victim_pairs, options);
  }

  attack::BaselineCache local_cache(graph);
  attack::BaselineCache* cache = options.baseline_cache != nullptr
                                     ? options.baseline_cache
                                     : &local_cache;
  std::vector<attack::PairImpact> rows(attacker_victim_pairs.size());

  if (model == AttackerModel::kStealth) {
    const attack::AttackSimulator simulator(graph, cache, options.engine);
    util::ParallelFor(
        options.pool, attacker_victim_pairs.size(), [&](std::size_t i) {
          const auto& [attacker, victim] = attacker_victim_pairs[i];
          AttackerProgram program = AttackerProgram::PaperModel(
              victim, attacker, options.violate_valley_free,
              options.export_stripped_to_peers);
          // λ−1 keeps one extra pad per run: the observed drop is a single
          // copy, below every witness threshold that expects the full strip.
          Directive directive = program.DirectiveFor(attacker, 0);
          directive.strip_to = std::max(1, options.lambda - 1);
          program.SetDefault(attacker, directive);
          ProgramTransform transform(program);
          bgp::Announcement local;
          local.origin = victim;
          local.prepends.SetDefault(victim, options.lambda);
          const attack::AttackOutcome outcome = simulator.RunTransform(
              local, program.Colluders(), transform, options.filter);
          rows[i] = attack::PairImpact{attacker, victim,
                                       outcome.fraction_before,
                                       outcome.fraction_after};
        });
    SortRows(rows);
    return rows;
  }

  // kSearch: one beam search per pair. The pool parallelizes across pairs,
  // so each inner search runs serially (nested fan-out would oversubscribe
  // and gains nothing — pair counts dominate).
  SearchOptions search_options = search != nullptr ? *search : SearchOptions{};
  search_options.lambda = options.lambda;
  search_options.pool = nullptr;
  search_options.baseline_cache = cache;
  search_options.engine = options.engine;
  search_options.filter = options.filter;
  const Search searcher(graph, search_options);
  util::ParallelFor(
      options.pool, attacker_victim_pairs.size(), [&](std::size_t i) {
        const auto& [attacker, victim] = attacker_victim_pairs[i];
        const SearchResult result = searcher.Run(victim, attacker);
        rows[i] = attack::PairImpact{attacker, victim,
                                     result.best.fraction_before,
                                     result.best.fraction_after};
      });
  SortRows(rows);
  return rows;
}

}  // namespace asppi::strategy
