#include "strategy/search.h"

#include <algorithm>
#include <set>
#include <utility>

#include "util/check.h"

namespace asppi::strategy {

namespace {

// One beam mutation: replace a colluder's default directive, one per-edge
// override, or toggle the adopt-best-stripped decision override.
struct Move {
  enum class Kind { kDefault, kOverride, kAdopt };
  Kind kind = Kind::kDefault;
  Asn colluder = 0;
  Asn neighbor = 0;
  Directive directive;
};

AttackerProgram Apply(const AttackerProgram& base, const Move& move) {
  AttackerProgram next = base;
  switch (move.kind) {
    case Move::Kind::kDefault:
      next.SetDefault(move.colluder, move.directive);
      break;
    case Move::Kind::kOverride:
      next.SetForNeighbor(move.colluder, move.neighbor, move.directive);
      break;
    case Move::Kind::kAdopt:
      next.SetAdoptBestStripped(!base.AdoptBestStripped());
      break;
  }
  return next;
}

// States bit-identical? Fractions, pollution set, and every per-AS best
// route must agree between the two engines.
bool SameOutcome(const topo::AsGraph& graph,
                 const attack::AttackOutcome& lhs,
                 const attack::AttackOutcome& rhs) {
  if (lhs.fraction_before != rhs.fraction_before ||
      lhs.fraction_after != rhs.fraction_after ||
      lhs.converged != rhs.converged ||
      lhs.newly_polluted != rhs.newly_polluted) {
    return false;
  }
  for (Asn asn : graph.Ases()) {
    if (lhs.after.BestAt(asn) != rhs.after.BestAt(asn)) return false;
  }
  return true;
}

}  // namespace

Search::Search(const topo::AsGraph& graph, const SearchOptions& options)
    : graph_(graph), options_(options) {
  ASPPI_CHECK_GE(options.lambda, 1);
  ASPPI_CHECK_GE(options.beam_width, 1u);
}

SearchResult Search::Run(Asn victim, Asn attacker) const {
  const Asn colluders[] = {attacker};
  return Run(victim, colluders);
}

SearchResult Search::Run(Asn victim, std::span<const Asn> colluders) const {
  bgp::Announcement announcement;
  announcement.origin = victim;
  announcement.prepends.SetDefault(victim, options_.lambda);

  attack::BaselineCache local_cache(graph_);
  attack::BaselineCache* cache = options_.baseline_cache != nullptr
                                     ? options_.baseline_cache
                                     : &local_cache;
  const attack::AttackSimulator scorer(graph_, cache, options_.engine);
  const attack::AttackSimulator mirror(
      graph_, cache,
      options_.engine == attack::EngineKind::kDelta
          ? attack::EngineKind::kFull
          : attack::EngineKind::kDelta);

  SearchResult result;
  std::size_t mismatches = 0;
  const auto score = [&](const AttackerProgram& program) {
    ProgramTransform transform(program);
    attack::AttackOutcome outcome = scorer.RunTransform(
        announcement, program.Colluders(), transform, options_.filter);
    if (options_.verify_engines) {
      ProgramTransform retransform(program);
      const attack::AttackOutcome check = mirror.RunTransform(
          announcement, program.Colluders(), retransform, options_.filter);
      if (!SameOutcome(graph_, outcome, check)) {
        // Caller-side accumulation: scoring runs under ParallelFor, so the
        // mismatch count is summed from per-slot flags, not incremented here.
        return ScoredProgram{program, outcome.fraction_before, -1.0};
      }
    }
    // An oscillating program never establishes a stable interception — its
    // round-cap fractions are not steady-state impact. Score it zero so the
    // optimizer discards it (the paper-model seed always converges, so the
    // dominance guarantee is unaffected).
    if (!outcome.converged) {
      return ScoredProgram{program, outcome.fraction_before, 0.0};
    }
    return ScoredProgram{program, outcome.fraction_before,
                         outcome.fraction_after};
  };

  // The paper model seeds the beam: every colluder starts with the
  // strip-everything customer-masquerade directive, so the search result can
  // never fall below the paper attacker (beam merges always retain the
  // incumbents).
  const AttackerProgram paper(
      victim, std::vector<Asn>(colluders.begin(), colluders.end()));
  std::set<std::string> seen;
  seen.insert(paper.KeyString());
  ScoredProgram paper_scored = score(paper);
  ++result.programs_scored;
  if (paper_scored.fraction_after < 0.0) {
    ++mismatches;
    paper_scored.fraction_after = 0.0;
  }
  result.paper_after = paper_scored.fraction_after;

  // Deterministic move set, built once: default-directive variants per
  // colluder, per-edge overrides toward the highest-degree neighbors, poison
  // picks from the top-degree ASes, and the adopt toggle.
  std::vector<int> strips;
  for (int candidate : {0, 1, options_.lambda - 1, options_.lambda}) {
    if (candidate >= 0 &&
        std::find(strips.begin(), strips.end(), candidate) == strips.end()) {
      strips.push_back(candidate);
    }
  }
  std::vector<Asn> poison_pool;
  if (options_.poison_candidates > 0) {
    for (Asn asn : graph_.AsesByDegreeDesc()) {
      if (asn == victim || paper.IsColluder(asn)) continue;
      poison_pool.push_back(asn);
      if (poison_pool.size() >= options_.poison_candidates) break;
    }
  }

  std::vector<Move> moves;
  for (Asn colluder : paper.Colluders()) {
    for (int strip : strips) {
      Move move;
      move.kind = Move::Kind::kDefault;
      move.colluder = colluder;
      move.directive.send = Send::kAsCustomer;
      move.directive.strip_to = strip;
      moves.push_back(move);
      if (options_.allow_violate) {
        move.directive.send = Send::kForce;
        moves.push_back(move);
      }
    }
    {
      Move move;
      move.kind = Move::Kind::kDefault;
      move.colluder = colluder;
      move.directive.send = Send::kPolicy;
      move.directive.strip_to = 1;
      moves.push_back(move);
    }

    // Highest-degree neighbors first: that is where one export decision
    // steers the most downstream pollution. Ties break on ASN for a stable
    // move order.
    std::vector<topo::Edge> ranked(graph_.NeighborsOf(colluder).begin(),
                                   graph_.NeighborsOf(colluder).end());
    std::sort(ranked.begin(), ranked.end(),
              [this](const topo::Edge& a, const topo::Edge& b) {
                const std::size_t da = graph_.NeighborsOf(a.asn).size();
                const std::size_t db = graph_.NeighborsOf(b.asn).size();
                if (da != db) return da > db;
                return a.asn < b.asn;
              });
    if (ranked.size() > options_.max_neighbors) {
      ranked.resize(options_.max_neighbors);
    }
    for (const topo::Edge& edge : ranked) {
      if (options_.allow_withhold) {
        Move move;
        move.kind = Move::Kind::kOverride;
        move.colluder = colluder;
        move.neighbor = edge.asn;
        move.directive.send = Send::kWithhold;
        moves.push_back(move);
      }
      for (int strip : strips) {
        Move move;
        move.kind = Move::Kind::kOverride;
        move.colluder = colluder;
        move.neighbor = edge.asn;
        move.directive.send = Send::kAsCustomer;
        move.directive.strip_to = strip;
        moves.push_back(move);
      }
      for (Asn poison : poison_pool) {
        if (poison == edge.asn) continue;
        Move move;
        move.kind = Move::Kind::kOverride;
        move.colluder = colluder;
        move.neighbor = edge.asn;
        move.directive.send = Send::kAsCustomer;
        move.directive.strip_to = 1;
        move.directive.poison.push_back(poison);
        moves.push_back(move);
      }
    }
  }
  if (options_.allow_violate) {
    Move move;
    move.kind = Move::Kind::kAdopt;
    moves.push_back(move);
  }

  std::vector<ScoredProgram> beam;
  beam.push_back(paper_scored);

  for (std::size_t round = 0; round < options_.rounds; ++round) {
    std::vector<AttackerProgram> candidates;
    for (const ScoredProgram& survivor : beam) {
      for (const Move& move : moves) {
        AttackerProgram candidate = Apply(survivor.program, move);
        if (seen.insert(candidate.KeyString()).second) {
          candidates.push_back(std::move(candidate));
        }
      }
    }
    if (candidates.empty()) break;

    // Slot-indexed scoring: identical output for any thread count.
    std::vector<ScoredProgram> scored(candidates.size());
    util::ParallelFor(options_.pool, candidates.size(), [&](std::size_t i) {
      scored[i] = score(candidates[i]);
    });
    result.programs_scored += candidates.size();
    for (ScoredProgram& entry : scored) {
      if (entry.fraction_after < 0.0) {
        ++mismatches;
        entry.fraction_after = 0.0;
      }
      beam.push_back(std::move(entry));
    }

    // Total order: pollution descending, canonical key ascending. Keys are
    // unique (the `seen` dedup), so the ranking — and therefore the chosen
    // beam and the final best program — is unambiguous.
    std::sort(beam.begin(), beam.end(),
              [](const ScoredProgram& a, const ScoredProgram& b) {
                if (a.fraction_after != b.fraction_after) {
                  return a.fraction_after > b.fraction_after;
                }
                return a.program.KeyString() < b.program.KeyString();
              });
    if (beam.size() > options_.beam_width) beam.resize(options_.beam_width);
  }

  result.best = beam.front();
  result.gap = result.best.fraction_after - result.paper_after;
  result.engine_mismatches = mismatches;
  return result;
}

}  // namespace asppi::strategy
