// Adaptive interception strategies: the attacker model behind the paper's
// §II-B attack, generalized into a small program the attacker (or a colluding
// set of attackers) executes at export time.
//
// The paper's attacker does exactly one thing: collapse the victim's
// prepended runs to a single copy and re-export the stripped route downhill
// and sideways. An AttackerProgram widens that to the full power a malicious
// BGP speaker set actually has, per (colluder, neighbor) edge:
//
//   * announce or withhold the route entirely (Send::kWithhold),
//   * strip partially — trim every victim run to any λ' ≤ λ (strip_to),
//     including the stealthy λ−1 attacker that shaves one pad per run,
//   * poison — splice real ASNs into the exported path so chosen networks
//     drop it at their receiver-side loop check,
//   * follow, stretch (customer-masquerade), or outright violate the
//     valley-free export rule (Send::kPolicy / kAsCustomer / kForce).
//
// ProgramTransform compiles a program into a bgp::RouteTransform, executed
// bit-identically by both convergence engines; the paper's attacker is the
// PaperModel() point of this space (tests assert state-level equivalence
// with attack::AsppInterceptor).
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "bgp/transform.h"
#include "topology/as_graph.h"
#include "util/rng.h"

namespace asppi::strategy {

using topo::Asn;

// What a colluder does with the (possibly rewritten) route on one edge.
enum class Send : std::uint8_t {
  kPolicy,      // export per the normal valley-free rules
  kAsCustomer,  // export to customers, siblings and peers (paper §VI-B:
                // the stripped route masquerades as a customer route)
  kForce,       // export to everyone, providers included (policy violation)
  kWithhold,    // do not announce on this edge at all
};

const char* SendName(Send send);

// Per-edge instruction. strip_to = 0 leaves the victim's padding untouched;
// k >= 1 trims every victim run to at most k copies (1 = the paper's full
// strip). `poison` ASNs are spliced into the exported path right after the
// colluder's own leading run — any AS on the poison list drops the route at
// its receiver-side loop check, steering pollution around it.
struct Directive {
  Send send = Send::kAsCustomer;
  int strip_to = 1;
  std::vector<Asn> poison;

  bool operator==(const Directive&) const = default;
};

// A complete strategy for one victim: the colluding attacker set, a default
// directive per colluder, and per-(colluder, neighbor) overrides — the same
// default/override shape as bgp::PrependPolicy, with the same canonical
// KeyString() so search can deduplicate candidates.
class AttackerProgram {
 public:
  AttackerProgram() = default;
  // `colluders` is sorted and deduplicated; must be non-empty and must not
  // contain the victim. Every colluder starts with the paper directive
  // (kAsCustomer, strip to 1, no poison).
  AttackerProgram(Asn victim, std::vector<Asn> colluders);

  // The paper's §II-B attacker as a point in this space. Mirrors
  // attack::AsppInterceptor's three export modes exactly:
  // violate_valley_free → kForce + adopt-best-stripped; otherwise
  // export_stripped_to_peers selects kAsCustomer vs kPolicy.
  static AttackerProgram PaperModel(Asn victim, Asn attacker,
                                    bool violate_valley_free = false,
                                    bool export_stripped_to_peers = true);

  Asn Victim() const { return victim_; }
  const std::vector<Asn>& Colluders() const { return colluders_; }
  bool IsColluder(Asn asn) const;

  // Violate-mode decision override: each colluder adopts the received route
  // whose stripped form is shortest instead of the policy-preferred one
  // (attack::AsppInterceptor's OverrideBest, applied at every colluder).
  bool AdoptBestStripped() const { return adopt_best_stripped_; }
  void SetAdoptBestStripped(bool adopt) { adopt_best_stripped_ = adopt; }

  // `colluder` must be in Colluders(); poison lists must not contain the
  // victim or any colluder (checked).
  void SetDefault(Asn colluder, Directive directive);
  void SetForNeighbor(Asn colluder, Asn neighbor, Directive directive);

  // Override for (colluder, neighbor), else the colluder's default.
  const Directive& DirectiveFor(Asn colluder, Asn neighbor) const;

  // True when every colluder applies one strip_to on every edge (withhold,
  // poison and send may still vary per neighbor). In this subspace observed
  // padding is a deterministic function of the announcement chain, so —
  // absent poison — the detector's witness rule provably never accuses
  // outside the colluding set; the precondition for CheckStrategicAttack's
  // accusation oracle. Per-neighbor differential stripping breaks this: it
  // can frame the innocent first hop of a differently-stripped branch.
  bool UniformStripPerColluder() const;

  // True when any directive (default or override) poisons. Poisoning splices
  // an innocent ASN into exported paths, so the witness rule blames the
  // stuffed AS — framing is the *point* of path stuffing, and the accusation
  // oracle does not apply to poisoning programs.
  bool UsesPoison() const;

  // Canonical encoding (victim, colluders, adopt flag, defaults and
  // overrides in sorted order). Equal keys ⇒ identical attack behaviour.
  std::string KeyString() const;

  const std::map<Asn, Directive>& Defaults() const { return defaults_; }
  const std::map<std::pair<Asn, Asn>, Directive>& Overrides() const {
    return overrides_;
  }

 private:
  void CheckDirective(Asn colluder, const Directive& directive) const;

  Asn victim_ = 0;
  std::vector<Asn> colluders_;
  bool adopt_best_stripped_ = false;
  std::map<Asn, Directive> defaults_;
  std::map<std::pair<Asn, Asn>, Directive> overrides_;
};

// Compiles a program into the export hook both engines execute. Non-owning:
// `program` must outlive the transform.
class ProgramTransform final : public bgp::RouteTransform {
 public:
  explicit ProgramTransform(const AttackerProgram& program);

  bgp::ExportAction OnExport(Asn exporter, Asn to, topo::Relation to_rel,
                             topo::Relation learned_from,
                             bgp::AsPath& path) override;

  std::optional<bgp::Route> OverrideBest(
      Asn asn, std::span<const std::optional<bgp::Route>> candidates,
      const std::optional<bgp::Route>& policy_best) override;

  bool MightOverride(Asn asn) const override;

  // Total prepended copies removed across all exports so far (diagnostics).
  std::size_t CopiesRemoved() const { return copies_removed_; }

 private:
  const AttackerProgram& program_;
  std::size_t copies_removed_ = 0;
};

// Human-readable one-line-per-directive rendering for reports and CLIs.
std::string Describe(const AttackerProgram& program);

// Knobs for DrawProgram (the fuzzer's strategy generator).
struct DrawLimits {
  // Per-colluder cap on per-neighbor overrides.
  std::size_t max_overrides = 3;
  bool allow_withhold = true;
  bool allow_poison = true;
  // Policy-violating sends and the adopt-best-stripped override.
  bool allow_violate = true;
};

// Draws a random program for `victim` executed by `colluders` against a
// victim announcing up to `lambda` pads. Deterministic in the rng state.
// Drawn programs always satisfy UniformStripPerColluder() — overrides vary
// send/withhold/poison but share the colluder's strip_to — so the fuzzer's
// accusation oracle applies whenever the draw happens to be poison-free.
// Poison ASNs are real ASes of `graph`, never the victim or a colluder.
AttackerProgram DrawProgram(const topo::AsGraph& graph, Asn victim,
                            std::span<const Asn> colluders, int lambda,
                            const DrawLimits& limits, util::Rng& rng);

}  // namespace asppi::strategy
