// Deterministic beam search over the AttackerProgram space: what is the
// worst interception a strategic attacker (or colluding set) can actually
// mount against a prepending victim, and how far short of it does the
// paper's fixed strip-everything attacker fall?
//
// The search scores thousands of candidate programs per (attacker, victim)
// pair, each through the production attack machinery — shared
// attack::BaselineCache, delta wavefront propagation, ThreadPool fan-out —
// and is bit-deterministic: the same seed-free candidate enumeration, slot-
// indexed parallel scoring, and total-order selection produce the same best
// program for any --threads value. The paper model is the beam's seed and
// survivors only ever improve on it, so SearchResult.best never scores below
// the paper attacker (optimizer dominance — property-tested across every
// fixture).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "attack/baseline_cache.h"
#include "attack/impact.h"
#include "bgp/transform.h"
#include "strategy/program.h"
#include "topology/as_graph.h"
#include "util/thread_pool.h"

namespace asppi::strategy {

struct SearchOptions {
  // The victim's uniform prepend count.
  int lambda = 4;
  // Beam survivors per round / mutation rounds.
  std::size_t beam_width = 4;
  std::size_t rounds = 2;
  // Per-colluder cap on neighbors considered for per-edge overrides (the
  // highest-degree neighbors — where an export decision moves the most
  // pollution).
  std::size_t max_neighbors = 12;
  // Number of top-degree ASes offered as poison targets (0 disables).
  std::size_t poison_candidates = 2;
  bool allow_withhold = true;
  // Policy-violating sends (kForce) and the adopt-best-stripped override.
  bool allow_violate = true;

  // Parallel candidate scoring (null = serial; output identical either way).
  util::ThreadPool* pool = nullptr;
  // Shared baseline memoization (null = one cache private to each Run).
  attack::BaselineCache* baseline_cache = nullptr;
  // Engine scoring the candidates.
  attack::EngineKind engine = attack::EngineKind::kDelta;
  // Import filter (defense) active during every attacked re-convergence.
  const bgp::ImportFilter* filter = nullptr;
  // Score every candidate on BOTH engines and count any state divergence in
  // SearchResult.engine_mismatches — the bench gate's full-vs-delta check.
  bool verify_engines = false;
};

struct ScoredProgram {
  AttackerProgram program;
  double fraction_before = 0.0;
  double fraction_after = 0.0;
};

struct SearchResult {
  ScoredProgram best;
  // The paper-model attacker's pollution on the same pair (the beam's seed).
  double paper_after = 0.0;
  // best.fraction_after − paper_after; ≥ 0 by construction.
  double gap = 0.0;
  std::size_t programs_scored = 0;
  // Candidates whose full- and delta-engine runs disagreed (verify_engines
  // only; anything but 0 is an engine bug).
  std::size_t engine_mismatches = 0;
};

class Search {
 public:
  Search(const topo::AsGraph& graph, const SearchOptions& options);

  // Single attacker / colluding set against `victim`. Colluders must be real
  // ASes distinct from the victim.
  SearchResult Run(Asn victim, Asn attacker) const;
  SearchResult Run(Asn victim, std::span<const Asn> colluders) const;

 private:
  const topo::AsGraph& graph_;
  SearchOptions options_;
};

}  // namespace asppi::strategy
