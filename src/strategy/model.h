// Attacker-model selection for the sweep experiments (--attacker-model=):
//   paper    — the §II-B strip-everything interceptor (the default; delegates
//              to attack::RunPairSweep bit-identically),
//   stealth  — the strip-to-λ−1 attacker that shaves one pad per run, much
//              harder to witness against,
//   search   — strategy::Search per pair; rows report the worst program the
//              beam finds, i.e. an upper envelope over the paper model.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "attack/impact.h"
#include "strategy/search.h"
#include "topology/as_graph.h"

namespace asppi::strategy {

enum class AttackerModel { kPaper, kStealth, kSearch };

std::optional<AttackerModel> ParseAttackerModel(std::string_view text);
const char* AttackerModelName(AttackerModel model);

// RunPairSweep under the chosen model. kPaper is exactly
// attack::RunPairSweep(graph, pairs, options); the other models score each
// pair through strategy machinery with the same cache/pool/engine/filter
// options and the same total-order row ranking. `search` tunes the kSearch
// model (ignored otherwise; null = SearchOptions defaults).
std::vector<attack::PairImpact> RunModelPairSweep(
    const topo::AsGraph& graph,
    const std::vector<std::pair<Asn, Asn>>& attacker_victim_pairs,
    AttackerModel model, const attack::PairSweepOptions& options,
    const SearchOptions* search = nullptr);

}  // namespace asppi::strategy
