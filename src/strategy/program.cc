#include "strategy/program.h"

#include <algorithm>

#include "util/check.h"

namespace asppi::strategy {

const char* SendName(Send send) {
  switch (send) {
    case Send::kPolicy:
      return "policy";
    case Send::kAsCustomer:
      return "as-customer";
    case Send::kForce:
      return "force";
    case Send::kWithhold:
      return "withhold";
  }
  return "?";
}

namespace {

// Canonical directive rendering for KeyString: "s<send>t<strip>[p1,2,...]".
std::string EncodeDirective(const Directive& directive) {
  std::string out = "s" + std::to_string(static_cast<int>(directive.send)) +
                    "t" + std::to_string(directive.strip_to);
  if (!directive.poison.empty()) {
    out += 'p';
    for (std::size_t i = 0; i < directive.poison.size(); ++i) {
      if (i > 0) out += ',';
      out += std::to_string(directive.poison[i]);
    }
  }
  return out;
}

}  // namespace

AttackerProgram::AttackerProgram(Asn victim, std::vector<Asn> colluders)
    : victim_(victim), colluders_(std::move(colluders)) {
  ASPPI_CHECK_NE(victim, 0u);
  ASPPI_CHECK(!colluders_.empty()) << "program needs at least one attacker";
  std::sort(colluders_.begin(), colluders_.end());
  colluders_.erase(std::unique(colluders_.begin(), colluders_.end()),
                   colluders_.end());
  for (Asn colluder : colluders_) {
    ASPPI_CHECK_NE(colluder, 0u);
    ASPPI_CHECK_NE(colluder, victim) << "victim cannot collude against itself";
    defaults_[colluder] = Directive{};
  }
}

AttackerProgram AttackerProgram::PaperModel(Asn victim, Asn attacker,
                                            bool violate_valley_free,
                                            bool export_stripped_to_peers) {
  AttackerProgram program(victim, {attacker});
  Directive directive;
  directive.strip_to = 1;
  if (violate_valley_free) {
    directive.send = Send::kForce;
    program.SetAdoptBestStripped(true);
  } else if (export_stripped_to_peers) {
    directive.send = Send::kAsCustomer;
  } else {
    directive.send = Send::kPolicy;
  }
  program.SetDefault(attacker, directive);
  return program;
}

bool AttackerProgram::IsColluder(Asn asn) const {
  return std::binary_search(colluders_.begin(), colluders_.end(), asn);
}

void AttackerProgram::CheckDirective(Asn colluder,
                                     const Directive& directive) const {
  ASPPI_CHECK(IsColluder(colluder)) << "AS" << colluder << " not a colluder";
  ASPPI_CHECK_GE(directive.strip_to, 0);
  for (Asn poison : directive.poison) {
    ASPPI_CHECK_NE(poison, 0u);
    ASPPI_CHECK_NE(poison, victim_) << "cannot poison with the victim";
    ASPPI_CHECK(!IsColluder(poison)) << "cannot poison with a colluder";
  }
}

void AttackerProgram::SetDefault(Asn colluder, Directive directive) {
  CheckDirective(colluder, directive);
  defaults_[colluder] = std::move(directive);
}

void AttackerProgram::SetForNeighbor(Asn colluder, Asn neighbor,
                                     Directive directive) {
  CheckDirective(colluder, directive);
  overrides_[{colluder, neighbor}] = std::move(directive);
}

const Directive& AttackerProgram::DirectiveFor(Asn colluder,
                                               Asn neighbor) const {
  if (auto it = overrides_.find({colluder, neighbor});
      it != overrides_.end()) {
    return it->second;
  }
  auto it = defaults_.find(colluder);
  ASPPI_CHECK(it != defaults_.end()) << "AS" << colluder << " not a colluder";
  return it->second;
}

bool AttackerProgram::UniformStripPerColluder() const {
  for (const auto& [edge, directive] : overrides_) {
    if (directive.strip_to != defaults_.at(edge.first).strip_to) return false;
  }
  return true;
}

bool AttackerProgram::UsesPoison() const {
  for (const auto& [colluder, directive] : defaults_) {
    if (!directive.poison.empty()) return true;
  }
  for (const auto& [edge, directive] : overrides_) {
    if (!directive.poison.empty()) return true;
  }
  return false;
}

std::string AttackerProgram::KeyString() const {
  std::string key = "v" + std::to_string(victim_) + "|a";
  for (std::size_t i = 0; i < colluders_.size(); ++i) {
    if (i > 0) key += ',';
    key += std::to_string(colluders_[i]);
  }
  key += "|b";
  key += adopt_best_stripped_ ? '1' : '0';
  for (const auto& [colluder, directive] : defaults_) {
    key += "|d" + std::to_string(colluder) + ':' + EncodeDirective(directive);
  }
  for (const auto& [edge, directive] : overrides_) {
    key += "|o" + std::to_string(edge.first) + ',' +
           std::to_string(edge.second) + ':' + EncodeDirective(directive);
  }
  return key;
}

std::string Describe(const AttackerProgram& program) {
  const auto render = [](const Directive& directive) {
    std::string out = std::string(SendName(directive.send));
    if (directive.send != Send::kWithhold) {
      out += " strip_to=" + std::to_string(directive.strip_to);
      if (!directive.poison.empty()) {
        out += " poison=[";
        for (std::size_t i = 0; i < directive.poison.size(); ++i) {
          if (i > 0) out += ',';
          out += std::to_string(directive.poison[i]);
        }
        out += ']';
      }
    }
    return out;
  };
  std::string out = "victim AS" + std::to_string(program.Victim()) +
                    ", colluders [";
  for (std::size_t i = 0; i < program.Colluders().size(); ++i) {
    if (i > 0) out += ',';
    out += "AS" + std::to_string(program.Colluders()[i]);
  }
  out += "]";
  if (program.AdoptBestStripped()) out += ", adopt-best-stripped";
  out += '\n';
  for (const auto& [colluder, directive] : program.Defaults()) {
    out += "  AS" + std::to_string(colluder) + " -> *: " +
           render(directive) + '\n';
  }
  for (const auto& [edge, directive] : program.Overrides()) {
    out += "  AS" + std::to_string(edge.first) + " -> AS" +
           std::to_string(edge.second) + ": " + render(directive) + '\n';
  }
  return out;
}

ProgramTransform::ProgramTransform(const AttackerProgram& program)
    : program_(program) {}

bgp::ExportAction ProgramTransform::OnExport(Asn exporter, Asn to,
                                             topo::Relation to_rel,
                                             topo::Relation /*learned_from*/,
                                             bgp::AsPath& path) {
  if (!program_.IsColluder(exporter)) return bgp::ExportAction::kDefault;
  const Directive& directive = program_.DirectiveFor(exporter, to);
  if (directive.send == Send::kWithhold) return bgp::ExportAction::kSuppress;
  if (!path.Contains(program_.Victim())) return bgp::ExportAction::kDefault;

  bool modified = false;
  if (directive.strip_to >= 1) {
    const int removed = path.TrimRunsOf(program_.Victim(), directive.strip_to);
    copies_removed_ += static_cast<std::size_t>(removed);
    modified = removed > 0;
  }

  if (!directive.poison.empty()) {
    // Splice poison ASNs right after the exporter's own leading run, so the
    // path still opens with the exporter (the receiver's sanity view) and
    // still ends at the victim. ASNs already on the path are skipped — the
    // splice never manufactures a loop.
    std::vector<Asn> to_insert;
    for (Asn poison : directive.poison) {
      if (path.Contains(poison)) continue;
      if (std::find(to_insert.begin(), to_insert.end(), poison) !=
          to_insert.end()) {
        continue;
      }
      to_insert.push_back(poison);
    }
    if (!to_insert.empty()) {
      std::vector<Asn> hops = path.Hops();
      std::size_t lead = 0;
      while (lead < hops.size() && hops[lead] == exporter) ++lead;
      hops.insert(hops.begin() + static_cast<long>(lead), to_insert.begin(),
                  to_insert.end());
      path = bgp::AsPath(std::move(hops));
      modified = true;
    }
  }

  // An unmodified route carries no attack; behave like any honest AS (this is
  // also what keeps λ=1 victims safe from the paper attacker).
  if (!modified) return bgp::ExportAction::kDefault;

  switch (directive.send) {
    case Send::kPolicy:
      return bgp::ExportAction::kDefault;
    case Send::kAsCustomer:
      // The rewritten route masquerades as a customer route: export sideways
      // and downhill raises no valley-free flag; only refrain from announcing
      // upward (attack::AsppInterceptor's default mode).
      return to_rel == topo::Relation::kProvider ? bgp::ExportAction::kDefault
                                                 : bgp::ExportAction::kForce;
    case Send::kForce:
      return bgp::ExportAction::kForce;
    case Send::kWithhold:
      break;  // handled above
  }
  return bgp::ExportAction::kDefault;
}

std::optional<bgp::Route> ProgramTransform::OverrideBest(
    Asn asn, std::span<const std::optional<bgp::Route>> candidates,
    const std::optional<bgp::Route>& policy_best) {
  if (!program_.AdoptBestStripped() || !program_.IsColluder(asn)) {
    return std::nullopt;
  }
  // Identical to attack::AsppInterceptor: among every received route
  // containing the victim, adopt the one whose stripped form is shortest
  // (ties broken by the normal decision order).
  const bgp::Route* chosen = nullptr;
  std::size_t chosen_len = 0;
  int strippable = 0;
  for (const auto& candidate : candidates) {
    if (!candidate.has_value() ||
        !candidate->path.Contains(program_.Victim())) {
      continue;
    }
    bgp::AsPath stripped = candidate->path;
    strippable =
        std::max(strippable, stripped.CollapseRunsOf(program_.Victim()));
    const std::size_t len = stripped.Length();
    if (chosen == nullptr || len < chosen_len ||
        (len == chosen_len && bgp::BetterRoute(*candidate, *chosen))) {
      chosen = &*candidate;
      chosen_len = len;
    }
  }
  if (chosen == nullptr || strippable == 0) return std::nullopt;
  if (policy_best.has_value() && *policy_best == *chosen) return std::nullopt;
  return *chosen;
}

bool ProgramTransform::MightOverride(Asn asn) const {
  return program_.AdoptBestStripped() && program_.IsColluder(asn);
}

AttackerProgram DrawProgram(const topo::AsGraph& graph, Asn victim,
                            std::span<const Asn> colluders, int lambda,
                            const DrawLimits& limits, util::Rng& rng) {
  ASPPI_CHECK_GE(lambda, 1);
  AttackerProgram program(victim,
                          std::vector<Asn>(colluders.begin(), colluders.end()));

  const auto draw_poison = [&](std::vector<Asn>& out) {
    const std::size_t count = 1 + rng.Below(2);
    for (std::size_t i = 0; i < count; ++i) {
      // Rejection-sample a real, non-victim, non-colluding ASN; a bounded
      // number of tries keeps the draw total even on tiny all-colluder
      // topologies.
      for (int tries = 0; tries < 8; ++tries) {
        const Asn candidate = graph.AsnAt(
            static_cast<std::uint32_t>(rng.Below(graph.NumAses())));
        if (candidate == victim || program.IsColluder(candidate)) continue;
        if (std::find(out.begin(), out.end(), candidate) != out.end()) {
          continue;
        }
        out.push_back(candidate);
        break;
      }
    }
  };
  const auto draw_send = [&]() {
    switch (rng.Below(limits.allow_violate ? 3 : 2)) {
      case 0:
        return Send::kAsCustomer;
      case 1:
        return Send::kPolicy;
      default:
        return Send::kForce;
    }
  };

  for (Asn colluder : program.Colluders()) {
    Directive base;
    // strip_to = 0 (leave padding) through λ (trim to full padding = no-op on
    // the victim's own runs, still meaningful against intermediary prepends).
    base.strip_to = static_cast<int>(rng.Range(0, lambda));
    base.send = draw_send();
    if (limits.allow_poison && rng.Chance(0.25)) draw_poison(base.poison);
    program.SetDefault(colluder, base);

    const std::span<const topo::Edge> neighbors = graph.NeighborsOf(colluder);
    if (neighbors.empty()) continue;
    const std::size_t overrides = rng.Below(limits.max_overrides + 1);
    for (std::size_t i = 0; i < overrides; ++i) {
      const topo::Edge& edge = neighbors[rng.Below(neighbors.size())];
      // Overrides share the colluder's strip_to (UniformStripPerColluder
      // holds by construction — see the accusation-oracle precondition).
      Directive directive = base;
      if (limits.allow_withhold && rng.Chance(0.4)) {
        directive.send = Send::kWithhold;
      } else {
        directive.send = draw_send();
        directive.poison.clear();
        if (limits.allow_poison && rng.Chance(0.3)) {
          draw_poison(directive.poison);
        }
      }
      program.SetForNeighbor(colluder, edge.asn, directive);
    }
  }
  if (limits.allow_violate && rng.Chance(0.2)) {
    program.SetAdoptBestStripped(true);
  }
  return program;
}

}  // namespace asppi::strategy
