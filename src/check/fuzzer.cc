#include "check/fuzzer.h"

#include <algorithm>
#include <filesystem>

#include "attack/impact.h"
#include "bgp/propagation.h"
#include "bgp/routing_tree.h"
#include "check/reference_engine.h"
#include "defense/deployment.h"
#include "defense/policy.h"
#include "detect/detector.h"
#include "strategy/program.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/strings.h"

namespace asppi::check {

namespace {

using util::Format;

struct FuzzMetrics {
  util::Counter iterations{"check.fuzz.iterations"};
  util::Counter failures{"check.fuzz.failures"};
  util::Counter shrink_evals{"check.fuzz.shrink_evals"};
  util::Counter alt_fixpoints{"check.fuzz.alt_fixpoints"};
};

FuzzMetrics& Instr() {
  static FuzzMetrics* m = new FuzzMetrics();
  return *m;
}

// Keep failure reports readable: a systemic divergence violates hundreds of
// per-AS invariants; the first couple dozen identify it.
constexpr std::size_t kMaxViolations = 24;

void Truncate(Violations& out) {
  if (out.size() <= kMaxViolations) return;
  const std::size_t dropped = out.size() - kMaxViolations;
  out.resize(kMaxViolations);
  out.push_back(Format("(+%zu more violations)", dropped));
}

bool HasSiblingLinks(const topo::AsGraph& graph) {
  for (Asn asn : graph.Ases()) {
    for (const topo::AsGraph::Neighbor& nb : graph.NeighborsOf(asn)) {
      if (nb.rel == topo::Relation::kSibling) return true;
    }
  }
  return false;
}

std::string RenderRoute(const std::optional<bgp::Route>& route) {
  if (!route.has_value()) return "<none>";
  return Format("[%s] from AS%u", route->path.ToString().c_str(),
                static_cast<unsigned>(route->learned_from));
}

std::string RenderRef(const std::optional<ReferenceRoute>& route) {
  if (!route.has_value()) return "<none>";
  return Format("[%s] from AS%u", route->path.ToString().c_str(),
                static_cast<unsigned>(route->learned_from));
}

// Fast engine state vs oracle state, AS by AS. `fast` is a
// bgp::PropagationResult or a bgp::RoutingView (delta-engine output).
template <typename FastState>
void CompareStates(const char* tag, const topo::AsGraph& graph, Asn origin,
                   const FastState& fast,
                   const ReferenceEngine::State& oracle, Violations& out) {
  for (std::size_t i = 0; i < graph.NumAses(); ++i) {
    const Asn asn = graph.AsnAt(i);
    if (asn == origin) continue;
    const std::optional<bgp::Route>& f = fast.BestAt(asn);
    const std::optional<ReferenceRoute>& r = oracle[i];
    const bool same =
        f.has_value() == r.has_value() &&
        (!f.has_value() ||
         (f->path == r->path && f->learned_from == r->learned_from &&
          f->effective == r->effective));
    if (!same) {
      out.push_back(Format("diff-%s: AS%u simulator holds %s, oracle %s", tag,
                           static_cast<unsigned>(asn),
                           RenderRoute(f).c_str(), RenderRef(r).c_str()));
    }
  }
}

bgp::RoutingTree::Via ViaOf(const std::optional<ReferenceRoute>& route) {
  if (!route.has_value()) return bgp::RoutingTree::Via::kNone;
  switch (route->effective) {
    case topo::Relation::kCustomer:
      return bgp::RoutingTree::Via::kCustomer;
    case topo::Relation::kPeer:
      return bgp::RoutingTree::Via::kPeer;
    case topo::Relation::kProvider:
      return bgp::RoutingTree::Via::kProvider;
    case topo::Relation::kSibling:
      break;  // unreachable on sibling-free graphs
  }
  return bgp::RoutingTree::Via::kNone;
}

// Delta engine vs full engine, bit for bit: the two must agree on the round
// count and on *all* converged state — best routes, change rounds, every
// Adj-RIB-In slot, every advertisement flag. Unlike the oracle legs there is
// no alternative-fixpoint escape hatch: both engines replay the identical
// synchronous event schedule, so even attacker-induced multi-equilibrium
// instances must land in the same fixpoint.
void CompareEngineStates(const topo::AsGraph& graph,
                         const bgp::PropagationResult& full,
                         const bgp::PropagationResult& delta,
                         Violations& out, const char* tag = "engine") {
  if (full.Rounds() != delta.Rounds()) {
    out.push_back(Format("diff-%s-rounds: full engine %d, delta %d", tag,
                         full.Rounds(), delta.Rounds()));
  }
  for (std::size_t i = 0; i < graph.NumAses(); ++i) {
    const Asn asn = graph.AsnAt(i);
    if (!(full.BestRoutes()[i] == delta.BestRoutes()[i])) {
      out.push_back(Format("diff-%s-best: AS%u full holds %s, delta %s", tag,
                           static_cast<unsigned>(asn),
                           RenderRoute(full.BestRoutes()[i]).c_str(),
                           RenderRoute(delta.BestRoutes()[i]).c_str()));
    }
    if (full.FirstChangeRounds()[i] != delta.FirstChangeRounds()[i]) {
      out.push_back(Format("diff-%s-round: AS%u changed at %d (full) vs "
                           "%d (delta)",
                           tag, static_cast<unsigned>(asn),
                           full.FirstChangeRounds()[i],
                           delta.FirstChangeRounds()[i]));
    }
    if (full.RibIn()[i] != delta.RibIn()[i]) {
      out.push_back(Format("diff-%s-rib: AS%u Adj-RIB-In differs", tag,
                           static_cast<unsigned>(asn)));
    }
    if (full.Sent()[i] != delta.Sent()[i]) {
      out.push_back(Format("diff-%s-sent: AS%u advertisement flags differ",
                           tag, static_cast<unsigned>(asn)));
    }
  }
}

// `state` is a bgp::PropagationResult or a bgp::RoutingView.
template <typename State>
std::vector<std::pair<Asn, bgp::AsPath>> MonitorPaths(
    const State& state, const std::vector<Asn>& monitors) {
  std::vector<std::pair<Asn, bgp::AsPath>> paths;
  for (Asn monitor : monitors) {
    const std::optional<bgp::Route>& best = state.BestAt(monitor);
    if (best.has_value()) paths.emplace_back(monitor, best->path);
  }
  return paths;
}

std::size_t TotalAses(const Scenario& s) {
  return s.tier1 + s.tier2 + s.tier3 + s.stubs + s.content;
}

}  // namespace

Fuzzer::Fuzzer(const FuzzOptions& options) : options_(options) {}

Scenario Fuzzer::ScenarioFor(std::size_t iteration) const {
  // Everything below depends only on (seed, iteration): the shard that runs
  // the iteration never influences the scenario.
  util::Rng rng(util::DeriveSeed(options_.seed, iteration));
  Scenario s;
  s.mode = Scenario::Mode::kGen;
  s.note = Format("asppi_fuzz --seed %llu, iteration %zu",
                  static_cast<unsigned long long>(options_.seed), iteration);
  s.topo_seed = rng();
  s.tier1 = 1 + rng.Below(3);
  s.tier2 = 1 + rng.Below(6);
  s.tier3 = rng.Below(11);
  s.stubs = 4 + rng.Below(33);
  s.content = rng.Below(3);
  // Half the scenarios are sibling-free so the RoutingTree leg runs.
  s.sibling_pairs = rng.Chance(0.5) ? 1 + rng.Below(2) : 0;
  s.num_monitors = 4 + rng.Below(9);
  s.lambda = 1 + static_cast<int>(rng.Below(6));
  s.per_neighbor_pads = rng.Chance(0.3);
  s.violate_valley_free = rng.Chance(0.2);
  s.export_stripped_to_peers = rng.Chance(0.75);
  static const char* kVictimRoles[] = {"stub", "stub", "tier3", "content"};
  static const char* kAttackerRoles[] = {"tier2", "tier3", "stub", "tier1"};
  s.victim_ref = Format("%s:%llu", kVictimRoles[rng.Below(4)],
                        static_cast<unsigned long long>(rng.Below(64)));
  s.attacker_ref = Format("%s:%llu", kAttackerRoles[rng.Below(4)],
                          static_cast<unsigned long long>(rng.Below(64)));
  s.strat_colluders = 1 + rng.Below(3);
  s.strat_overrides = rng.Below(4);
  s.strat_poison = rng.Chance(0.5);
  s.strat_withhold = rng.Chance(0.6);
  return s;
}

Violations Fuzzer::RunScenario(const Scenario& scenario) const {
  Violations out;
  std::string error;
  std::optional<ScenarioInstance> instance = Materialize(scenario, &error);
  if (!instance.has_value()) {
    out.push_back("materialize: " + error);
    return out;
  }
  const topo::AsGraph& graph = instance->graph;
  const bgp::Announcement& announcement = instance->announcement;
  const Asn victim = instance->victim;

  // Leg 1 — attack-free propagation: event-driven simulator vs oracle, plus
  // the full converged-state invariants.
  const bgp::PropagationSimulator simulator(graph);
  const bgp::PropagationResult baseline = simulator.Run(announcement);
  const ReferenceEngine oracle(graph);
  const ReferenceEngine::State ref_before = oracle.Converge(announcement);
  CompareStates("baseline", graph, victim, baseline, ref_before, out);
  Invariants::CheckConvergedState(graph, baseline, out);

  // Leg 2 — RoutingTree (three-phase decomposition) vs oracle: route class
  // and stored length. Sibling-free graphs only, by RoutingTree's contract.
  if (!HasSiblingLinks(graph)) {
    const bgp::RoutingTree tree(graph, announcement);
    for (std::size_t i = 0; i < graph.NumAses(); ++i) {
      const Asn asn = graph.AsnAt(i);
      if (asn == victim) continue;
      const bgp::RoutingTree::Entry& entry = tree.At(asn);
      const bgp::RoutingTree::Via want = ViaOf(ref_before[i]);
      const std::size_t want_len =
          ref_before[i].has_value() ? ref_before[i]->path.Length() : 0;
      if (entry.via != want ||
          (want != bgp::RoutingTree::Via::kNone && entry.length != want_len)) {
        out.push_back(Format(
            "diff-tree: AS%u routing_tree says %s/len=%zu, oracle %s/len=%zu",
            static_cast<unsigned>(asn), bgp::RoutingTree::ViaName(entry.via),
            entry.length, bgp::RoutingTree::ViaName(want), want_len));
      }
    }
  }

  // Leg 3 — the interception attack: AttackSimulator (delta engine, the
  // default) vs oracle end to end. The cache is shared with leg 3b so both
  // engines warm-start from the identical converged baseline.
  attack::BaselineCache baseline_cache(graph);
  const attack::AttackSimulator attack_sim(graph, &baseline_cache);
  attack::AttackOutcome outcome = attack_sim.RunAsppInterceptionWithPolicy(
      announcement, instance->attacker, instance->violate_valley_free,
      instance->export_stripped_to_peers);
  if (options_.inject_bug) {
    // Deterministic corruption of the engine-under-test's result; every
    // scenario must now diverge, which exercises reporting and shrinking.
    if (!outcome.newly_polluted.empty()) {
      outcome.newly_polluted.pop_back();
    } else {
      outcome.fraction_after += 0.25;
    }
  }
  const ReferenceEngine::Outcome ref_outcome = oracle.RunInterception(
      announcement, instance->attacker, instance->violate_valley_free,
      instance->export_stripped_to_peers);
  // Attacked states need care: the attacker's path rewriting voids the
  // Gao-Rexford uniqueness guarantee, so on rare instances the event-driven
  // engine and the oracle legitimately settle into *different* stable
  // equilibria (e.g. two neighbors each adopting the stripped route the
  // other then can't see, by sender-side loop avoidance). A mismatch is a
  // divergence unless the engine's state is provably an alternative
  // fixpoint: one oracle Step over it changes nothing.
  Violations attack_diffs;
  CompareStates("attacked", graph, victim, outcome.after, ref_outcome.after,
                attack_diffs);
  bool alternative_fixpoint = false;
  if (!attack_diffs.empty()) {
    ReferenceAttack ref_attack;
    ref_attack.attacker = instance->attacker;
    ref_attack.victim = victim;
    ref_attack.violate_valley_free = instance->violate_valley_free;
    ref_attack.export_stripped_to_peers = instance->export_stripped_to_peers;
    const ReferenceEngine::State mirror =
        MirrorFastState(graph, outcome.after.Full());
    alternative_fixpoint =
        oracle.Step(announcement, mirror, &ref_attack) == mirror;
    if (alternative_fixpoint) Instr().alt_fixpoints.Add();
  }
  if (!alternative_fixpoint) {
    out.insert(out.end(), attack_diffs.begin(), attack_diffs.end());
    if (outcome.newly_polluted != ref_outcome.newly_polluted) {
      out.push_back(Format(
          "diff-pollution: engine reports %zu newly polluted ASes, oracle "
          "%zu",
          outcome.newly_polluted.size(), ref_outcome.newly_polluted.size()));
    }
    if (outcome.fraction_before != ref_outcome.fraction_before ||
        outcome.fraction_after != ref_outcome.fraction_after) {
      out.push_back(Format(
          "diff-fraction: engine reports %.6f/%.6f, oracle %.6f/%.6f "
          "(before/after)",
          outcome.fraction_before, outcome.fraction_after,
          ref_outcome.fraction_before, ref_outcome.fraction_after));
    }
  }
  // Either way the engine's own accounting must be internally consistent —
  // CheckInterception re-derives pollution and fractions from the engine's
  // before/after states, so a corrupted outcome is caught even when the
  // equilibria differ.
  Invariants::CheckInterception(graph, outcome, out);

  // Leg 3b — delta vs full engine, bit-identical (no escape hatch; see
  // CompareEngineStates). Also pins the derived accounting: the delta
  // engine's incremental pollution bookkeeping must reproduce the full
  // engine's scan-based numbers exactly.
  const attack::AttackSimulator full_sim(graph, &baseline_cache,
                                         attack::EngineKind::kFull);
  const attack::AttackOutcome full_outcome =
      full_sim.RunAsppInterceptionWithPolicy(
          announcement, instance->attacker, instance->violate_valley_free,
          instance->export_stripped_to_peers);
  CompareEngineStates(graph, full_outcome.after.Full(), outcome.after.Full(),
                      out);
  if (outcome.newly_polluted != full_outcome.newly_polluted) {
    out.push_back(Format(
        "diff-engine-pollution: delta reports %zu newly polluted ASes, full "
        "%zu",
        outcome.newly_polluted.size(), full_outcome.newly_polluted.size()));
  }
  if (outcome.fraction_before != full_outcome.fraction_before ||
      outcome.fraction_after != full_outcome.fraction_after) {
    out.push_back(Format(
        "diff-engine-fraction: delta reports %.6f/%.6f, full %.6f/%.6f "
        "(before/after)",
        outcome.fraction_before, outcome.fraction_after,
        full_outcome.fraction_before, full_outcome.fraction_after));
  }

  // Leg 4 — detection: alarm soundness on the attacked view, no false
  // accusations on the quiet view, and stream == batch equivalence.
  const std::vector<std::pair<Asn, bgp::AsPath>> previous =
      MonitorPaths(*outcome.before, instance->monitors);
  const std::vector<std::pair<Asn, bgp::AsPath>> current =
      MonitorPaths(outcome.after, instance->monitors);
  const detect::AsppDetector detector(&graph);
  const std::vector<detect::Alarm> alarms = detector.Scan(
      victim, previous, current, &announcement.prepends);
  Invariants::CheckAlarmsJustified(victim, previous, current, alarms,
                                   &announcement.prepends, out);
  const std::vector<detect::Alarm> quiet = detector.Scan(
      victim, previous, previous, &announcement.prepends);
  Invariants::CheckNoHighConfidence(quiet, out);
  Invariants::CheckStreamBatchEquivalence(&graph, victim, previous, current,
                                          &announcement.prepends, out);

  // Leg 5 — per-AS defense policies under a deployment plan. Strategy,
  // fraction, and plan seed are pure functions of the scenario, so a saved
  // repro replays the identical deployment.
  {
    util::Rng drng(util::DeriveSeed(scenario.topo_seed, 0xdefe));
    const defense::Strategy strategy =
        defense::kAllStrategies[drng.Below(3)];
    static constexpr double kFractions[] = {0.25, 0.5, 0.75, 1.0};
    const double fraction = kFractions[drng.Below(4)];
    // Vary the mix: under kAllPolicies the ordered Accept chain lets pathval
    // shadow the inline detector, so detector-only mixes must appear too.
    static constexpr std::uint8_t kKindChoices[] = {
        defense::kAllPolicies, defense::kRov, defense::kPathValidation,
        defense::kInlineDetector,
        static_cast<std::uint8_t>(defense::kRov | defense::kInlineDetector)};
    const std::uint8_t kinds = kKindChoices[drng.Below(5)];
    const defense::DeploymentPlan plan = defense::DeploymentPlan::Make(
        graph, strategy, victim, instance->attacker, drng());
    const defense::PolicySet policy = plan.AtFraction(fraction, kinds);

    // No legit filtering: the attack-free fixpoint with every policy active
    // must be bit-identical to the filterless baseline — ROV, path
    // validation, and the inline detector never reject a legitimate route,
    // and the detector never raises a false accusation, under any plan.
    const bgp::PropagationResult defended_baseline =
        simulator.Run(announcement, nullptr, &policy);
    CompareEngineStates(graph, baseline, defended_baseline, out,
                        "defense-legit");

    // Defended attack: delta vs full stay bit-identical with the filter
    // active, and the converged state honours every deployed policy.
    const attack::AttackOutcome defended =
        attack_sim.RunAsppInterceptionWithPolicy(
            announcement, instance->attacker, instance->violate_valley_free,
            instance->export_stripped_to_peers, &policy);
    const attack::AttackOutcome defended_full =
        full_sim.RunAsppInterceptionWithPolicy(
            announcement, instance->attacker, instance->violate_valley_free,
            instance->export_stripped_to_peers, &policy);
    CompareEngineStates(graph, defended_full.after.Full(),
                        defended.after.Full(), out, "defense-engine");
    if (defended.newly_polluted != defended_full.newly_polluted ||
        defended.fraction_after != defended_full.fraction_after) {
      out.push_back(Format(
          "diff-defense-accounting: delta reports %zu polluted / %.6f after, "
          "full %zu / %.6f",
          defended.newly_polluted.size(), defended.fraction_after,
          defended_full.newly_polluted.size(), defended_full.fraction_after));
    }
    Invariants::CheckDefendedState(graph, policy, victim, instance->attacker,
                                   announcement.prepends,
                                   defended.after.Full(), out);
  }

  // Leg 6 — strategic attacker programs: a seeded strategy::AttackerProgram
  // draw (per-neighbor announce/withhold, partial strips, poisoning,
  // collusion) runs through both engines, which must stay bit-identical —
  // and the converged state must be explainable edge by edge by the program
  // itself (withheld slots empty, strip bounds honoured, poison delivered,
  // witness rule confined to the colluding set). The paper-shape invariants
  // (CheckInterception) deliberately do NOT run here: a strip_to ≥ 2 program
  // legitimately leaves more than one victim copy behind.
  {
    util::Rng srng(util::DeriveSeed(scenario.topo_seed, 0x57a7));
    std::vector<Asn> colluders{instance->attacker};
    const std::size_t want =
        std::max<std::size_t>(1, scenario.strat_colluders);
    for (int tries = 0;
         colluders.size() < want && colluders.size() + 1 < graph.NumAses() &&
         tries < 64;
         ++tries) {
      const Asn candidate =
          graph.AsnAt(static_cast<std::uint32_t>(srng.Below(graph.NumAses())));
      if (candidate == victim) continue;
      if (std::find(colluders.begin(), colluders.end(), candidate) !=
          colluders.end()) {
        continue;
      }
      colluders.push_back(candidate);
    }
    strategy::DrawLimits limits;
    limits.max_overrides = scenario.strat_overrides;
    limits.allow_poison = scenario.strat_poison;
    limits.allow_withhold = scenario.strat_withhold;
    const strategy::AttackerProgram program = strategy::DrawProgram(
        graph, victim, colluders, scenario.lambda, limits, srng);

    strategy::ProgramTransform delta_transform(program);
    const attack::AttackOutcome strat_delta = attack_sim.RunTransform(
        announcement, program.Colluders(), delta_transform);
    strategy::ProgramTransform full_transform(program);
    const attack::AttackOutcome strat_full = full_sim.RunTransform(
        announcement, program.Colluders(), full_transform);
    CompareEngineStates(graph, strat_full.after.Full(),
                        strat_delta.after.Full(), out, "strategy-engine");
    if (strat_delta.newly_polluted != strat_full.newly_polluted ||
        strat_delta.fraction_before != strat_full.fraction_before ||
        strat_delta.fraction_after != strat_full.fraction_after) {
      out.push_back(Format(
          "diff-strategy-accounting: delta reports %zu polluted / %.6f "
          "after, full %zu / %.6f",
          strat_delta.newly_polluted.size(), strat_delta.fraction_after,
          strat_full.newly_polluted.size(), strat_full.fraction_after));
    }
    if (strat_delta.converged != strat_full.converged) {
      out.push_back(Format(
          "diff-strategy-convergence: delta %s, full %s",
          strat_delta.converged ? "converged" : "hit the round cap",
          strat_full.converged ? "converged" : "hit the round cap"));
    }
    Invariants::CheckStrategicAttack(
        graph, program, strat_full.after.Full(),
        MonitorPaths(*strat_full.before, instance->monitors),
        MonitorPaths(strat_full.after, instance->monitors),
        strat_full.converged, out);
  }

  Truncate(out);
  return out;
}

Scenario Fuzzer::Shrink(const Scenario& scenario) const {
  if (scenario.mode != Scenario::Mode::kGen) return scenario;
  Scenario best = scenario;
  std::size_t evals = 0;
  const auto still_fails = [&](const Scenario& candidate) {
    if (evals >= options_.shrink_budget) return false;
    ++evals;
    Instr().shrink_evals.Add();
    return !RunScenario(candidate).empty();
  };

  bool progress = true;
  while (progress && evals < options_.shrink_budget) {
    progress = false;

    // Topology sizes: jump to the floor, halve toward it, then decrement.
    struct SizeField {
      std::size_t Scenario::*member;
      std::size_t floor;
    };
    const SizeField kSizes[] = {
        {&Scenario::stubs, 1},        {&Scenario::tier3, 0},
        {&Scenario::tier2, 1},        {&Scenario::content, 0},
        {&Scenario::sibling_pairs, 0}, {&Scenario::tier1, 1},
        {&Scenario::num_monitors, 1},
    };
    for (const SizeField& field : kSizes) {
      while (best.*(field.member) > field.floor) {
        const std::size_t value = best.*(field.member);
        const std::size_t tries[] = {field.floor,
                                     field.floor + (value - field.floor) / 2,
                                     value - 1};
        bool shrunk = false;
        for (std::size_t t : tries) {
          if (t >= value) continue;
          Scenario candidate = best;
          candidate.*(field.member) = t;
          if (TotalAses(candidate) < 3) continue;
          if (still_fails(candidate)) {
            best = std::move(candidate);
            progress = true;
            shrunk = true;
            break;
          }
        }
        if (!shrunk) break;
      }
    }

    // λ toward 1, knobs toward the simplest settings.
    while (best.lambda > 1) {
      Scenario candidate = best;
      candidate.lambda = std::max(1, best.lambda / 2);
      if (candidate.lambda == best.lambda) candidate.lambda = best.lambda - 1;
      if (!still_fails(candidate)) break;
      best = std::move(candidate);
      progress = true;
    }
    if (best.per_neighbor_pads) {
      Scenario candidate = best;
      candidate.per_neighbor_pads = false;
      if (still_fails(candidate)) {
        best = std::move(candidate);
        progress = true;
      }
    }
    if (best.violate_valley_free) {
      Scenario candidate = best;
      candidate.violate_valley_free = false;
      if (still_fails(candidate)) {
        best = std::move(candidate);
        progress = true;
      }
    }

    // Strategy-draw knobs: fewer colluders, fewer overrides, then the
    // boldness bits — a minimized repro should name the simplest program
    // that still diverges.
    while (best.strat_colluders > 1) {
      Scenario candidate = best;
      candidate.strat_colluders = best.strat_colluders - 1;
      if (!still_fails(candidate)) break;
      best = std::move(candidate);
      progress = true;
    }
    while (best.strat_overrides > 0) {
      Scenario candidate = best;
      candidate.strat_overrides = best.strat_overrides - 1;
      if (!still_fails(candidate)) break;
      best = std::move(candidate);
      progress = true;
    }
    for (bool Scenario::*knob :
         {&Scenario::strat_poison, &Scenario::strat_withhold}) {
      if (best.*knob) {
        Scenario candidate = best;
        candidate.*knob = false;
        if (still_fails(candidate)) {
          best = std::move(candidate);
          progress = true;
        }
      }
    }
  }
  return best;
}

FuzzResult Fuzzer::Run() const {
  FuzzResult result;
  result.iterations = options_.iterations;
  if (!options_.corpus_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options_.corpus_dir, ec);
  }
  std::vector<std::uint8_t> failed(options_.iterations, 0);
  std::vector<Violations> found(options_.iterations);
  util::ParallelFor(options_.pool, options_.iterations, [&](std::size_t i) {
    Instr().iterations.Add();
    Violations violations = RunScenario(ScenarioFor(i));
    if (!violations.empty()) {
      failed[i] = 1;
      found[i] = std::move(violations);
    }
  });

  for (std::size_t i = 0; i < options_.iterations; ++i) {
    if (!failed[i]) continue;
    Instr().failures.Add();
    FuzzFailure failure;
    failure.iteration = i;
    failure.scenario = ScenarioFor(i);
    if (options_.minimize) {
      failure.scenario = Shrink(failure.scenario);
      failure.violations = RunScenario(failure.scenario);
    } else {
      failure.violations = std::move(found[i]);
    }
    if (!options_.corpus_dir.empty()) {
      const std::string path = Format(
          "%s/fuzz-seed%llu-iter%zu.scn", options_.corpus_dir.c_str(),
          static_cast<unsigned long long>(options_.seed), i);
      if (failure.scenario.SaveFile(path)) failure.repro_path = path;
    }
    result.failures.push_back(std::move(failure));
  }
  return result;
}

}  // namespace asppi::check
