#include "check/scenario.h"

#include <fstream>
#include <sstream>

#include "topology/generator.h"
#include "util/rng.h"
#include "util/strings.h"

namespace asppi::check {

namespace {

using util::Format;

// Stream tag for the per-neighbor pad draw (distinct from every stream the
// generator itself uses).
constexpr std::uint64_t kPadStream = 0x70ad70ad70ad70adULL;

std::string BoolStr(bool b) { return b ? "1" : "0"; }

bool SetError(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

// Resolves a `role:index` / `asn:N` reference against a generated topology.
// Role indices wrap modulo the population so shrunk topologies keep the
// reference valid; an empty role falls back through the size-ordered roles.
std::optional<Asn> ResolveRef(const topo::GeneratedTopology& gen,
                              const std::string& ref, std::string* error) {
  const std::vector<std::string> parts = util::Split(ref, ':');
  if (parts.size() != 2) {
    SetError(error, Format("bad reference '%s' (want role:index or asn:N)",
                           ref.c_str()));
    return std::nullopt;
  }
  const auto index = util::ParseUint(parts[1]);
  if (!index.has_value()) {
    SetError(error, Format("bad reference index in '%s'", ref.c_str()));
    return std::nullopt;
  }
  if (parts[0] == "asn") {
    const Asn asn = static_cast<Asn>(*index);
    if (!gen.graph.HasAs(asn)) {
      SetError(error, Format("reference '%s' names an unknown AS", ref.c_str()));
      return std::nullopt;
    }
    return asn;
  }
  const std::vector<Asn>* role = nullptr;
  if (parts[0] == "tier1") role = &gen.tier1;
  else if (parts[0] == "tier2") role = &gen.tier2;
  else if (parts[0] == "tier3") role = &gen.tier3;
  else if (parts[0] == "stub") role = &gen.stubs;
  else if (parts[0] == "content") role = &gen.content;
  else {
    SetError(error, Format("unknown role in reference '%s'", ref.c_str()));
    return std::nullopt;
  }
  if (role->empty()) {
    // Shrinking can empty a role out entirely; fall back by population.
    for (const std::vector<Asn>* fallback :
         {&gen.stubs, &gen.tier3, &gen.tier2, &gen.tier1, &gen.content}) {
      if (!fallback->empty()) {
        role = fallback;
        break;
      }
    }
  }
  if (role->empty()) {
    SetError(error, "topology has no ASes to resolve references against");
    return std::nullopt;
  }
  return (*role)[static_cast<std::size_t>(*index) % role->size()];
}

std::vector<Asn> TopDegreeMonitors(const topo::AsGraph& graph,
                                   std::size_t count, Asn victim,
                                   Asn attacker) {
  std::vector<Asn> monitors;
  for (Asn asn : graph.AsesByDegreeDesc()) {
    if (monitors.size() >= count) break;
    if (asn == victim || asn == attacker) continue;
    monitors.push_back(asn);
  }
  return monitors;
}

}  // namespace

std::string Scenario::Serialize() const {
  std::ostringstream os;
  os << "# asppi differential-fuzz scenario v1\n";
  if (!note.empty()) os << "note=" << note << "\n";
  os << "mode=" << (mode == Mode::kGen ? "gen" : "explicit") << "\n";
  if (mode == Mode::kGen) {
    os << "seed=" << topo_seed << "\n";
    os << "tier1=" << tier1 << "\n";
    os << "tier2=" << tier2 << "\n";
    os << "tier3=" << tier3 << "\n";
    os << "stubs=" << stubs << "\n";
    os << "content=" << content << "\n";
    os << "siblings=" << sibling_pairs << "\n";
    os << "monitors=" << num_monitors << "\n";
    os << "perneighbor=" << BoolStr(per_neighbor_pads) << "\n";
    os << "strat_colluders=" << strat_colluders << "\n";
    os << "strat_overrides=" << strat_overrides << "\n";
    os << "strat_poison=" << BoolStr(strat_poison) << "\n";
    os << "strat_withhold=" << BoolStr(strat_withhold) << "\n";
  } else {
    for (const Link& link : links) {
      os << "link=" << link.a << " " << link.b << " "
         << topo::RelationName(link.rel_of_b) << "\n";
    }
    for (const Pad& pad : pads) {
      os << "pad=" << pad.exporter << " ";
      if (pad.neighbor == 0) {
        os << "*";
      } else {
        os << pad.neighbor;
      }
      os << " " << pad.pads << "\n";
    }
    for (Asn monitor : monitor_list) os << "monitor=" << monitor << "\n";
  }
  os << "victim=" << victim_ref << "\n";
  os << "attacker=" << attacker_ref << "\n";
  os << "lambda=" << lambda << "\n";
  os << "violate=" << BoolStr(violate_valley_free) << "\n";
  os << "to_peers=" << BoolStr(export_stripped_to_peers) << "\n";
  return os.str();
}

std::optional<Scenario> Scenario::Parse(std::string_view text,
                                        std::string* error) {
  Scenario scenario;
  int line_no = 0;
  for (const std::string& raw : util::Split(text, '\n')) {
    ++line_no;
    const std::string_view line = util::Trim(raw);
    if (line.empty() || line.front() == '#') continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      SetError(error, Format("line %d: missing '='", line_no));
      return std::nullopt;
    }
    const std::string key(util::Trim(line.substr(0, eq)));
    const std::string value(util::Trim(line.substr(eq + 1)));
    const auto as_uint = [&]() { return util::ParseUint(value); };
    const auto as_bool = [&]() -> std::optional<bool> {
      if (value == "0") return false;
      if (value == "1") return true;
      return std::nullopt;
    };

    bool ok = true;
    if (key == "note") {
      scenario.note = value;
    } else if (key == "mode") {
      if (value == "gen") scenario.mode = Mode::kGen;
      else if (value == "explicit") scenario.mode = Mode::kExplicit;
      else ok = false;
    } else if (key == "seed") {
      const auto v = as_uint();
      ok = v.has_value();
      if (ok) scenario.topo_seed = *v;
    } else if (key == "tier1" || key == "tier2" || key == "tier3" ||
               key == "stubs" || key == "content" || key == "siblings" ||
               key == "monitors") {
      const auto v = as_uint();
      ok = v.has_value();
      if (ok) {
        const std::size_t n = static_cast<std::size_t>(*v);
        if (key == "tier1") scenario.tier1 = n;
        else if (key == "tier2") scenario.tier2 = n;
        else if (key == "tier3") scenario.tier3 = n;
        else if (key == "stubs") scenario.stubs = n;
        else if (key == "content") scenario.content = n;
        else if (key == "siblings") scenario.sibling_pairs = n;
        else scenario.num_monitors = n;
      }
    } else if (key == "perneighbor" || key == "violate" || key == "to_peers" ||
               key == "strat_poison" || key == "strat_withhold") {
      const auto v = as_bool();
      ok = v.has_value();
      if (ok) {
        if (key == "perneighbor") scenario.per_neighbor_pads = *v;
        else if (key == "violate") scenario.violate_valley_free = *v;
        else if (key == "strat_poison") scenario.strat_poison = *v;
        else if (key == "strat_withhold") scenario.strat_withhold = *v;
        else scenario.export_stripped_to_peers = *v;
      }
    } else if (key == "strat_colluders" || key == "strat_overrides") {
      const auto v = as_uint();
      ok = v.has_value();
      if (ok) {
        const std::size_t n = static_cast<std::size_t>(*v);
        if (key == "strat_colluders") scenario.strat_colluders = n;
        else scenario.strat_overrides = n;
      }
    } else if (key == "lambda") {
      const auto v = util::ParseInt(value);
      ok = v.has_value() && *v >= 1;
      if (ok) scenario.lambda = static_cast<int>(*v);
    } else if (key == "victim") {
      scenario.victim_ref = value;
    } else if (key == "attacker") {
      scenario.attacker_ref = value;
    } else if (key == "link") {
      const std::vector<std::string> parts = util::SplitWhitespace(value);
      Link link;
      topo::Relation rel;
      ok = parts.size() == 3 && util::ParseUint(parts[0]).has_value() &&
           util::ParseUint(parts[1]).has_value() &&
           topo::ParseRelation(parts[2], rel);
      if (ok) {
        link.a = static_cast<Asn>(*util::ParseUint(parts[0]));
        link.b = static_cast<Asn>(*util::ParseUint(parts[1]));
        link.rel_of_b = rel;
        scenario.links.push_back(link);
      }
    } else if (key == "pad") {
      const std::vector<std::string> parts = util::SplitWhitespace(value);
      ok = parts.size() == 3 && util::ParseUint(parts[0]).has_value() &&
           util::ParseInt(parts[2]).has_value();
      if (ok) {
        Pad pad;
        pad.exporter = static_cast<Asn>(*util::ParseUint(parts[0]));
        if (parts[1] != "*") {
          const auto neighbor = util::ParseUint(parts[1]);
          ok = neighbor.has_value();
          pad.neighbor = ok ? static_cast<Asn>(*neighbor) : 0;
        }
        pad.pads = static_cast<int>(*util::ParseInt(parts[2]));
        if (ok) scenario.pads.push_back(pad);
      }
    } else if (key == "monitor") {
      const auto v = as_uint();
      ok = v.has_value();
      if (ok) scenario.monitor_list.push_back(static_cast<Asn>(*v));
    } else {
      SetError(error, Format("line %d: unknown key '%s'", line_no, key.c_str()));
      return std::nullopt;
    }
    if (!ok) {
      SetError(error, Format("line %d: bad value for '%s': '%s'", line_no,
                             key.c_str(), value.c_str()));
      return std::nullopt;
    }
  }
  return scenario;
}

std::optional<Scenario> Scenario::LoadFile(const std::string& path,
                                           std::string* error) {
  std::ifstream in(path);
  if (!in) {
    SetError(error, Format("cannot open %s", path.c_str()));
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return Parse(buffer.str(), error);
}

bool Scenario::SaveFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << Serialize();
  return static_cast<bool>(out);
}

std::optional<ScenarioInstance> Materialize(const Scenario& scenario,
                                            std::string* error) {
  ScenarioInstance instance;
  instance.lambda = scenario.lambda;
  instance.violate_valley_free = scenario.violate_valley_free;
  instance.export_stripped_to_peers = scenario.export_stripped_to_peers;

  if (scenario.mode == Scenario::Mode::kGen) {
    topo::GeneratorParams params;
    params.seed = scenario.topo_seed;
    params.num_tier1 = scenario.tier1;
    params.num_tier2 = scenario.tier2;
    params.num_tier3 = scenario.tier3;
    params.num_stubs = scenario.stubs;
    params.num_content = scenario.content;
    params.num_sibling_pairs = scenario.sibling_pairs;
    if (params.TotalAses() < 3) {
      SetError(error, "generated topology needs at least 3 ASes");
      return std::nullopt;
    }
    topo::GeneratedTopology gen = topo::GenerateInternetTopology(params);

    const auto victim = ResolveRef(gen, scenario.victim_ref, error);
    if (!victim.has_value()) return std::nullopt;
    auto attacker = ResolveRef(gen, scenario.attacker_ref, error);
    if (!attacker.has_value()) return std::nullopt;
    if (*attacker == *victim) {
      // Reference collision (possible after shrinking): deterministically
      // take the next AS in registration order.
      attacker.reset();
      for (Asn asn : gen.graph.Ases()) {
        if (asn != *victim) {
          attacker = asn;
          break;
        }
      }
      if (!attacker.has_value()) {
        SetError(error, "topology too small to host distinct victim/attacker");
        return std::nullopt;
      }
    }
    instance.victim = *victim;
    instance.attacker = *attacker;
    instance.graph = std::move(gen.graph);
  } else {
    if (scenario.links.empty()) {
      SetError(error, "explicit scenario has no links");
      return std::nullopt;
    }
    topo::GraphBuilder builder;
    for (const Scenario::Link& link : scenario.links) {
      if (link.a == link.b) {
        SetError(error, Format("self-link on AS%u", link.a));
        return std::nullopt;
      }
      if (builder.HasLink(link.a, link.b)) {
        SetError(error, Format("duplicate link AS%u-AS%u", link.a, link.b));
        return std::nullopt;
      }
      builder.AddLink(link.a, link.b, link.rel_of_b);
    }
    instance.graph = builder.Freeze();
    const auto resolve = [&](const std::string& ref) -> std::optional<Asn> {
      const std::vector<std::string> parts = util::Split(ref, ':');
      if (parts.size() != 2 || parts[0] != "asn") {
        SetError(error, Format("explicit scenarios need asn:N references, "
                               "got '%s'",
                               ref.c_str()));
        return std::nullopt;
      }
      const auto asn = util::ParseUint(parts[1]);
      if (!asn.has_value() ||
          !instance.graph.HasAs(static_cast<Asn>(*asn))) {
        SetError(error, Format("reference '%s' names an unknown AS",
                               ref.c_str()));
        return std::nullopt;
      }
      return static_cast<Asn>(*asn);
    };
    const auto victim = resolve(scenario.victim_ref);
    if (!victim.has_value()) return std::nullopt;
    const auto attacker = resolve(scenario.attacker_ref);
    if (!attacker.has_value()) return std::nullopt;
    if (*victim == *attacker) {
      SetError(error, "victim and attacker must differ");
      return std::nullopt;
    }
    if (!instance.graph.ProviderCustomerAcyclic()) {
      SetError(error, "provider-customer cycle: topology cannot converge");
      return std::nullopt;
    }
    instance.victim = *victim;
    instance.attacker = *attacker;
  }

  instance.announcement.origin = instance.victim;
  instance.announcement.prepends.SetDefault(instance.victim, scenario.lambda);
  if (scenario.per_neighbor_pads && scenario.lambda > 1) {
    util::Rng rng(util::DeriveSeed(scenario.topo_seed, kPadStream));
    for (const topo::AsGraph::Neighbor& nb :
         instance.graph.NeighborsOf(instance.victim)) {
      instance.announcement.prepends.SetForNeighbor(
          instance.victim, nb.asn,
          static_cast<int>(rng.Range(1, scenario.lambda)));
    }
  }
  for (const Scenario::Pad& pad : scenario.pads) {
    if (pad.pads < 1) {
      SetError(error, Format("pad count %d for AS%u must be >= 1", pad.pads,
                             pad.exporter));
      return std::nullopt;
    }
    if (pad.neighbor == 0) {
      instance.announcement.prepends.SetDefault(pad.exporter, pad.pads);
    } else {
      instance.announcement.prepends.SetForNeighbor(pad.exporter, pad.neighbor,
                                                    pad.pads);
    }
  }

  if (scenario.mode == Scenario::Mode::kExplicit &&
      !scenario.monitor_list.empty()) {
    for (Asn monitor : scenario.monitor_list) {
      if (!instance.graph.HasAs(monitor)) {
        SetError(error, Format("monitor AS%u not in topology", monitor));
        return std::nullopt;
      }
      instance.monitors.push_back(monitor);
    }
  } else {
    instance.monitors =
        TopDegreeMonitors(instance.graph, scenario.num_monitors,
                          instance.victim, instance.attacker);
  }
  return instance;
}

}  // namespace asppi::check
