// Reusable invariant checkers over routing states, attack outcomes, and
// detector alarm sets (DESIGN.md §4f).
//
// Every checker appends human-readable violation lines to a `Violations`
// vector instead of asserting, so one caller can be a gtest property suite
// (EXPECT the vector empty, print it on failure) and another the differential
// fuzzer (collect violations across many engines and shrink the scenario
// that produced them). Checkers re-derive the rules they verify from the
// paper's definitions — they do not call back into the engine code under
// test (the stability checker uses check::ReferenceEngine, which is itself
// engine-independent by construction).
#pragma once

#include <string>
#include <vector>

#include "attack/impact.h"
#include "bgp/propagation.h"
#include "check/reference_engine.h"
#include "defense/policy.h"
#include "detect/detector.h"
#include "strategy/program.h"
#include "topology/as_graph.h"

namespace asppi::check {

// One violation per line: "invariant-name: detail".
using Violations = std::vector<std::string>;

// Knobs for CheckPath.
struct PathChecks {
  Asn origin = 0;
  // Largest legal trailing run of the origin's ASN (0 disables the bound).
  int max_origin_padding = 0;
  // Gao-Rexford shape: climb provider links, cross at most one peer link,
  // then descend customer links (siblings transparent). Disable for
  // post-attack states — stripped routes legitimately break the shape (that
  // asymmetry is exactly what the detector's hint rules key on).
  bool require_valley_free = true;
};

class Invariants {
 public:
  // --- routing-state invariants ------------------------------------------

  // One stored best path at `self`: every hop pair is a real link, no loops,
  // self not on the path, terminates at `origin`, padding bound, and
  // (optionally) valley-free shape.
  static void CheckPath(const topo::AsGraph& graph, Asn self,
                        const bgp::AsPath& path, const PathChecks& checks,
                        Violations& out);

  // Whole attack-free converged state: full reachability (on connected
  // graphs), CheckPath everywhere, customer>peer>provider preference and
  // decision stability (no policy-legal candidate derived from a neighbor's
  // best beats the chosen route — one ReferenceEngine::Step must be a no-op),
  // and next-hop consistency.
  static void CheckConvergedState(const topo::AsGraph& graph,
                                  const bgp::PropagationResult& state,
                                  Violations& out);

  // Next-hop consistency alone: the path stored at u is exactly its
  // neighbor v's best path plus v's per-neighbor prepends toward u. Routes
  // learned from `skip_learned_from` (the attacker, whose exports are
  // rewritten) are exempt; pass 0 to exempt nothing.
  static void CheckNextHopConsistency(const topo::AsGraph& graph,
                                      const bgp::PropagationResult& state,
                                      Asn skip_learned_from, Violations& out);

  // --- interception invariants -------------------------------------------

  // Paper §II-B arithmetic on a finished attack: every post-attack best path
  // that traverses the attacker carries exactly one trailing victim copy —
  // the attacker removed exactly λ−1 copies, making the interception route
  // λ−1 hops shorter than its unstripped form — while paths avoiding the
  // attacker still carry the full per-branch padding. Interception is not
  // blackholing: every AS keeps a route terminating at the victim. Also
  // re-derives newly_polluted and the fractions from the two states.
  static void CheckInterception(const topo::AsGraph& graph,
                                const attack::AttackOutcome& outcome,
                                Violations& out);

  // A converged state under an arbitrary strategy::AttackerProgram, checked
  // edge by edge against the program itself:
  //  * a withheld (colluder → neighbor) edge delivered nothing — the
  //    neighbor's Adj-RIB-In slot for the colluder is empty;
  //  * an edge whose directive poisons the receiving neighbor itself is
  //    likewise empty (the receiver-side loop check drops it);
  //  * every non-empty slot opens with the colluder's own ASN, bounds each
  //    victim run by the directive's strip_to (when stripping at all), and
  //    carries every poison ASN of the directive.
  // The per-slot audit holds for any reachable state — converged or the
  // round-cap snapshot of an oscillating program — because each property is
  // an invariant of the export that wrote the slot. When additionally
  // `converged` holds and the program strips uniformly per colluder
  // (AttackerProgram::UniformStripPerColluder) without poisoning, observed
  // padding is a deterministic function of the announcement chain, so the
  // detector's witness rule is provably sound against it: a fresh Scan over
  // the monitor paths (victim policy withheld — the victim-aware rule names
  // innocent branch heads by design) must place every high-confidence
  // suspect inside the colluding set. Differential per-neighbor strips can
  // frame the innocent first hop of a differently-stripped branch, poison
  // frames the stuffed ASN, and a cap snapshot mixes stale unstripped paths
  // with stripped ones — any of the three voids the soundness argument and
  // skips the accusation oracle (documented in DESIGN.md §4k).
  static void CheckStrategicAttack(
      const topo::AsGraph& graph, const strategy::AttackerProgram& program,
      const bgp::PropagationResult& attacked,
      const std::vector<std::pair<Asn, bgp::AsPath>>& previous,
      const std::vector<std::pair<Asn, bgp::AsPath>>& current, bool converged,
      Violations& out);

  // --- defense invariants --------------------------------------------------

  // A (possibly attacked) converged state under an active defense::PolicySet,
  // checked against the policies' paper-level definitions:
  //  * rov: a kRov AS holds no route — best or Adj-RIB-In — whose path
  //    originates anywhere but `origin`.
  //  * pathval: a kPathValidation AS holds no route whose prepend runs
  //    undercut `prepends` (the §II-B run-length rule, re-derived here), and
  //    no AS holds an Adj-RIB-In entry learned from a kPathValidation
  //    neighbor that undercuts it — a validating AS never selects a stripped
  //    path and never propagates one. Entries learned from `attacker` are
  //    exempt (its exports are rewritten regardless of any tag it carries).
  //  * detector: a kInlineDetector AS holds no best route the victim-aware
  //    Fig. 4 rule would accuse (detect/rules.h; the rule itself is verified
  //    independently by the detector invariants above).
  static void CheckDefendedState(const topo::AsGraph& graph,
                                 const defense::PolicySet& policy, Asn origin,
                                 Asn attacker,
                                 const bgp::PrependPolicy& prepends,
                                 const bgp::PropagationResult& state,
                                 Violations& out);

  // --- detector invariants -----------------------------------------------

  // Soundness: every high-confidence alarm in `alarms` (as returned by an
  // AsppDetector::Scan over these monitor paths) is justified under the
  // witness-rule definition, re-derived here by brute force: the observer's
  // padding dropped versus `previous`, the suspect heads the observer's
  // stripped core, and an independent witness (same chain behind the
  // suspect, more padding) exists in `current` — or, when `victim_policy`
  // is given, the observed padding undercuts what the victim announced
  // toward that branch. Hint (possible) alarms are checked for their
  // trigger conditions only.
  static void CheckAlarmsJustified(
      Asn victim, const std::vector<std::pair<Asn, bgp::AsPath>>& previous,
      const std::vector<std::pair<Asn, bgp::AsPath>>& current,
      const std::vector<detect::Alarm>& alarms,
      const bgp::PrependPolicy* victim_policy, Violations& out);

  // Completeness guard for legitimate dynamics: no high-confidence alarm at
  // all (internally consistent snapshots can hint, never accuse).
  static void CheckNoHighConfidence(const std::vector<detect::Alarm>& alarms,
                                    Violations& out);

  // Stream == batch: replaying `previous`→`current` monitor paths through
  // the stream::IncrementalDetector (baseline RIB seeded from `previous`,
  // one announcement per changed monitor, withdrawals for vanished ones)
  // must leave the same alarm set as a batch AsppDetector::Scan under
  // ConflictPolicy::kLatestObserved. `graph` powers the hint rules on both
  // sides (nullptr disables them on both).
  static void CheckStreamBatchEquivalence(
      const topo::AsGraph* graph, Asn victim,
      const std::vector<std::pair<Asn, bgp::AsPath>>& previous,
      const std::vector<std::pair<Asn, bgp::AsPath>>& current,
      const bgp::PrependPolicy* victim_policy, Violations& out);
};

}  // namespace asppi::check
