// Fuzz scenarios: a compact, diffable text format (`.scn`) describing one
// differential-fuzzing case — topology, victim, attacker, λ, boldness knobs,
// monitor set — plus the machinery to materialize it into a runnable
// ScenarioInstance (DESIGN.md §4f covers the format).
//
// Two modes:
//   * `gen`: the topology comes from topology/generator with the recorded
//     size parameters and seed; victim/attacker are `role:index` references
//     (resolved modulo the role population, so the reference stays valid as
//     the shrinker drives the sizes down).
//   * `explicit`: the topology is a literal `link=` list and victim/attacker
//     are `asn:N` references — for hand-written regression cases such as the
//     Facebook-anomaly shape.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "bgp/propagation.h"
#include "topology/as_graph.h"

namespace asppi::check {

using topo::Asn;

struct Scenario {
  enum class Mode { kGen, kExplicit };
  Mode mode = Mode::kGen;
  // Free-form provenance line ("found by asppi_fuzz --seed 42 iter 17").
  std::string note;

  // --- gen mode ------------------------------------------------------------
  std::uint64_t topo_seed = 1;
  std::size_t tier1 = 3;
  std::size_t tier2 = 6;
  std::size_t tier3 = 10;
  std::size_t stubs = 24;
  std::size_t content = 2;
  std::size_t sibling_pairs = 1;
  // `role:index` (role ∈ tier1|tier2|tier3|stub|content, index mod population)
  // or `asn:N`.
  std::string victim_ref = "stub:0";
  std::string attacker_ref = "tier2:0";
  // Monitors = this many top-degree ASes (victim and attacker excluded).
  std::size_t num_monitors = 8;
  // Draw the victim's per-neighbor pads in [1, lambda] from the scenario seed
  // instead of announcing lambda uniformly (exercises per-branch λ paths).
  bool per_neighbor_pads = false;
  // Leg-6 strategy draw (gen mode): size of the colluding attacker set (the
  // attacker plus strat_colluders−1 extra ASes drawn from the scenario seed),
  // per-colluder cap on per-neighbor directive overrides, and whether drawn
  // programs may poison paths / withhold announcements.
  std::size_t strat_colluders = 1;
  std::size_t strat_overrides = 2;
  bool strat_poison = true;
  bool strat_withhold = true;

  // --- explicit mode -------------------------------------------------------
  struct Link {
    Asn a = 0;
    Asn b = 0;
    topo::Relation rel_of_b = topo::Relation::kCustomer;  // b's role wrt a
  };
  std::vector<Link> links;
  std::vector<Asn> monitor_list;  // empty = top-degree fallback
  struct Pad {
    Asn exporter = 0;
    Asn neighbor = 0;  // 0 = the exporter's default pad count
    int pads = 1;
  };
  std::vector<Pad> pads;  // applied on top of the victim's lambda default

  // --- both modes ----------------------------------------------------------
  int lambda = 3;
  bool violate_valley_free = false;
  bool export_stripped_to_peers = true;

  std::string Serialize() const;
  static std::optional<Scenario> Parse(std::string_view text,
                                       std::string* error = nullptr);
  static std::optional<Scenario> LoadFile(const std::string& path,
                                          std::string* error = nullptr);
  bool SaveFile(const std::string& path) const;
};

// A scenario made concrete: graph built, role references resolved, prepend
// policy assembled. Self-contained (owns the graph).
struct ScenarioInstance {
  topo::AsGraph graph;
  Asn victim = 0;
  Asn attacker = 0;
  bgp::Announcement announcement;  // origin = victim, prepends populated
  std::vector<Asn> monitors;
  int lambda = 1;
  bool violate_valley_free = false;
  bool export_stripped_to_peers = true;
};

// Builds the instance; nullopt (with `error` filled) on unresolvable
// references, phantom-link relations, or a victim==attacker collision that
// cannot be repaired. Deterministic for a given scenario.
std::optional<ScenarioInstance> Materialize(const Scenario& scenario,
                                            std::string* error = nullptr);

}  // namespace asppi::check
