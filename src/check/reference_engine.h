// ReferenceEngine: the correctness oracle for every routing engine in the
// library (DESIGN.md §4f).
//
// It recomputes Gao-Rexford propagation — and the ASPP-interception outcome —
// with the most naive algorithm that can possibly be right: a Jacobi fixpoint
// iteration that, every round, rebuilds each AS's candidate set from its
// neighbors' round-(r−1) best routes and re-runs the decision process, until
// nothing changes. O(rounds · V·E), no incremental state, no event scheduling,
// no Adj-RIB-In bookkeeping, no warm starts. It deliberately shares *no code*
// with `bgp::PropagationSimulator` (event-driven, withdrawal-tracking),
// `bgp::RoutingTree` (three-phase Dijkstra decomposition) or `attack/impact`
// (Resume-based warm starts + shared baseline caches) beyond the vocabulary
// types (AsPath, Relation, PrependPolicy), so a bug in any fast engine cannot
// be mirrored here by construction.
//
// Gao-Rexford safety (which every topology the library produces satisfies —
// provider-customer acyclicity is enforced by AsGraph/generator) guarantees a
// unique stable routing solution reached under any fair activation schedule,
// so the oracle and the fast engines must converge to bit-identical routes.
// The differential fuzzer (check/fuzzer.h) turns that "must" into a standing
// test. Converge() runs synchronous (Jacobi) rounds first; because the
// attacker's path rewriting sits outside the Gao-Rexford safety proof, a
// fully synchronous schedule can fall into a 2-cycle on rare attacked
// instances, in which case it falls back to sequential in-place sweeps — an
// asynchronous fair schedule with the same fixpoints.
#pragma once

#include <optional>
#include <vector>

#include "bgp/propagation.h"
#include "topology/as_graph.h"

namespace asppi::check {

using topo::Asn;
using topo::Relation;

// The attacker model, re-stated independently of attack::AsppInterceptor
// (paper §II-B): the attacker collapses the victim's prepended runs from
// every route it exports, and chooses how boldly to re-export the stripped
// route.
struct ReferenceAttack {
  Asn attacker = 0;
  Asn victim = 0;
  // Adopt the stripped-shortest received route and announce it upward too
  // (the "violate routing policy" series of paper Figs. 11/12).
  bool violate_valley_free = false;
  // Announce the stripped route to peers (paper default) or only downward.
  bool export_stripped_to_peers = true;
};

// What one AS holds at the fixpoint. Mirrors the fields of bgp::Route the
// differential comparison inspects, but is assembled independently.
struct ReferenceRoute {
  bgp::AsPath path;                         // as stored (prepends included)
  Asn learned_from = 0;                     // neighbor the route came from
  Relation rel = Relation::kPeer;           // neighbor's role relative to self
  Relation effective = Relation::kPeer;     // class after sibling transport

  bool operator==(const ReferenceRoute&) const = default;
};

class ReferenceEngine {
 public:
  // One slot per dense graph index; nullopt for the origin and for ASes with
  // no route.
  using State = std::vector<std::optional<ReferenceRoute>>;

  explicit ReferenceEngine(const topo::AsGraph& graph);

  // Converged best routes for `announcement`, optionally under `attack`.
  // Aborts (ASPPI_CHECK) if the fixpoint does not settle — on a Gao-Rexford-
  // safe topology that is itself a bug worth crashing on.
  State Converge(const bgp::Announcement& announcement,
                 const ReferenceAttack* attack = nullptr) const;

  // One full Jacobi round: every AS's best recomputed from its neighbors'
  // routes in `state`. Converge() iterates this to a fixpoint; the stability
  // invariant (check/invariants.h) applies it once to a fast engine's
  // converged state, which must already be a fixpoint.
  State Step(const bgp::Announcement& announcement, const State& state,
             const ReferenceAttack* attack = nullptr) const;

  // The interception experiment end to end: attack-free fixpoint, attacked
  // fixpoint, and the pollution accounting `attack::AttackOutcome` reports.
  struct Outcome {
    State before;
    State after;
    double fraction_before = 0.0;
    double fraction_after = 0.0;
    // ASes whose best path traverses the attacker after but not before, in
    // dense graph-index order (the same order attack/impact emits).
    std::vector<Asn> newly_polluted;
  };
  Outcome RunInterception(const bgp::Announcement& announcement, Asn attacker,
                          bool violate_valley_free = false,
                          bool export_stripped_to_peers = true) const;

  // ASes (excluding `x` and the origin) whose best path contains `x`, in
  // dense graph-index order.
  std::vector<Asn> Traversing(const State& state, Asn origin, Asn x) const;

  const topo::AsGraph& Graph() const { return graph_; }

 private:
  // The decision process of the AS at dense index `u` over what its
  // neighbors' routes in `state` deliver (including the violate-mode
  // attacker override). Shared by Step (Jacobi) and Converge's sequential
  // fallback sweeps.
  std::optional<ReferenceRoute> ComputeBest(
      const bgp::Announcement& announcement, const State& state,
      const ReferenceAttack* attack, std::size_t u) const;

  // The route neighbor `from` (holding `from_best`) would deliver to `to`
  // this round, after export policy, prepending, the attacker hook, and both
  // loop checks. nullopt = nothing delivered.
  std::optional<ReferenceRoute> Deliver(
      const bgp::Announcement& announcement, const ReferenceAttack* attack,
      Asn from, const std::optional<ReferenceRoute>& from_best, Asn to,
      Relation from_rel_to_self) const;

  const topo::AsGraph& graph_;
};

// Mirrors a fast engine's converged state into the oracle's representation
// (used by the stability invariant and by the fuzzer's alternative-fixpoint
// proof for attacked states, where stability — not uniqueness — is what the
// theory guarantees).
ReferenceEngine::State MirrorFastState(const topo::AsGraph& graph,
                                       const bgp::PropagationResult& state);

}  // namespace asppi::check
