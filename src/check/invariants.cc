#include "check/invariants.h"

#include <algorithm>
#include <map>
#include <optional>

#include "data/measurement.h"
#include "data/prefix.h"
#include "detect/observation.h"
#include "detect/rules.h"
#include "stream/incremental.h"
#include "util/strings.h"

namespace asppi::check {

namespace {

using bgp::AsPath;
using util::Format;

// Trailing-run strip, re-stated from the paper: a route to the victim's
// prefix splits into (core, λ) where λ is the trailing run of victim copies.
// Routes not ending at the victim, or with the victim mid-path, don't strip.
struct Stripped {
  std::vector<Asn> core;
  int lambda = 0;
};

std::optional<Stripped> Strip(const AsPath& path, Asn victim) {
  const std::vector<Asn>& hops = path.Hops();
  if (hops.empty() || hops.back() != victim) return std::nullopt;
  Stripped out;
  std::size_t end = hops.size();
  while (end > 0 && hops[end - 1] == victim) {
    --end;
    ++out.lambda;
  }
  out.core.assign(hops.begin(), hops.begin() + static_cast<long>(end));
  for (Asn asn : out.core) {
    if (asn == victim) return std::nullopt;
  }
  return out;
}

bool EndsWith(const std::vector<Asn>& hay, const std::vector<Asn>& tail) {
  if (hay.size() < tail.size()) return false;
  return std::equal(tail.begin(), tail.end(),
                    hay.end() - static_cast<long>(tail.size()));
}

// Observer → stripped route over the suffix-expanded observation set.
std::map<Asn, Stripped> StrippedViewOf(
    const std::vector<std::pair<Asn, AsPath>>& monitor_paths, Asn victim,
    detect::RouteSnapshot::ConflictPolicy policy) {
  std::map<Asn, Stripped> view;
  const detect::RouteSnapshot snapshot =
      detect::RouteSnapshot::FromMonitors(monitor_paths, policy);
  for (const auto& [owner, path] : snapshot.Routes()) {
    if (auto stripped = Strip(path, victim)) {
      view.emplace(owner, std::move(*stripped));
    }
  }
  return view;
}

std::string Render(const std::optional<ReferenceRoute>& route) {
  if (!route.has_value()) return "<none>";
  return Format("[%s] from AS%u", route->path.ToString().c_str(),
                static_cast<unsigned>(route->learned_from));
}

}  // namespace

void Invariants::CheckPath(const topo::AsGraph& graph, Asn self,
                           const AsPath& path, const PathChecks& checks,
                           Violations& out) {
  if (path.Empty()) {
    out.push_back(Format("path-empty: AS%u holds an empty path",
                         static_cast<unsigned>(self)));
    return;
  }
  if (path.HasLoop()) {
    out.push_back(Format("path-loop: AS%u holds %s",
                         static_cast<unsigned>(self),
                         path.ToString().c_str()));
  }
  if (path.Contains(self)) {
    out.push_back(Format("path-self: AS%u appears on its own route %s",
                         static_cast<unsigned>(self),
                         path.ToString().c_str()));
  }
  if (path.OriginAs() != checks.origin) {
    out.push_back(Format("path-origin: AS%u route %s does not end at AS%u",
                         static_cast<unsigned>(self), path.ToString().c_str(),
                         static_cast<unsigned>(checks.origin)));
  }
  if (checks.max_origin_padding > 0 &&
      path.OriginPadding() > checks.max_origin_padding) {
    out.push_back(Format(
        "path-padding: AS%u route %s carries %d origin copies (max %d)",
        static_cast<unsigned>(self), path.ToString().c_str(),
        path.OriginPadding(), checks.max_origin_padding));
  }

  // Traffic direction: self -> seq[0] -> ... -> origin. Every hop must be a
  // real link; the Gao-Rexford shape climbs providers, crosses at most one
  // peer link, then descends customers (siblings transparent).
  std::vector<Asn> chain;
  chain.push_back(self);
  const std::vector<Asn> seq = path.DistinctSequence();
  chain.insert(chain.end(), seq.begin(), seq.end());
  bool descended = false;
  bool used_peer = false;
  for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
    const auto rel = graph.RelationOf(chain[i], chain[i + 1]);
    if (!rel.has_value()) {
      out.push_back(Format(
          "path-links: AS%u route %s uses non-adjacent hop AS%u->AS%u",
          static_cast<unsigned>(self), path.ToString().c_str(),
          static_cast<unsigned>(chain[i]),
          static_cast<unsigned>(chain[i + 1])));
      return;  // shape analysis is meaningless past a phantom link
    }
    if (!checks.require_valley_free) continue;
    switch (*rel) {
      case Relation::kProvider:  // moving up
        if (descended) {
          out.push_back(Format("valley-free: AS%u route %s climbs after the "
                               "peak at AS%u->AS%u",
                               static_cast<unsigned>(self),
                               path.ToString().c_str(),
                               static_cast<unsigned>(chain[i]),
                               static_cast<unsigned>(chain[i + 1])));
          return;
        }
        break;
      case Relation::kPeer:
        if (used_peer) {
          out.push_back(Format("valley-free: AS%u route %s crosses two peer "
                               "links",
                               static_cast<unsigned>(self),
                               path.ToString().c_str()));
          return;
        }
        used_peer = true;
        descended = true;
        break;
      case Relation::kCustomer:  // moving down
        descended = true;
        break;
      case Relation::kSibling:  // transparent
        break;
    }
  }
}

void Invariants::CheckConvergedState(const topo::AsGraph& graph,
                                     const bgp::PropagationResult& state,
                                     Violations& out) {
  const bgp::Announcement& ann = state.GetAnnouncement();
  const bool connected = graph.IsConnected();
  PathChecks checks;
  checks.origin = ann.origin;
  checks.max_origin_padding = ann.prepends.MaxPadsOf(ann.origin);
  checks.require_valley_free = true;

  for (Asn asn : graph.Ases()) {
    if (asn == ann.origin) continue;
    const auto& best = state.BestAt(asn);
    if (!best.has_value()) {
      if (connected) {
        out.push_back(Format("reachability: AS%u has no route to AS%u",
                             static_cast<unsigned>(asn),
                             static_cast<unsigned>(ann.origin)));
      }
      continue;
    }
    CheckPath(graph, asn, best->path, checks, out);
  }

  // Preference + stability: a converged Gao-Rexford state is a fixpoint of
  // one naive decision round — if any AS would switch (e.g. to an available
  // customer route it should have preferred), the state is wrong.
  const ReferenceEngine oracle(graph);
  const ReferenceEngine::State mirror = MirrorFastState(graph, state);
  const ReferenceEngine::State stepped = oracle.Step(ann, mirror);
  for (std::size_t i = 0; i < mirror.size(); ++i) {
    if (mirror[i] != stepped[i]) {
      out.push_back(Format(
          "stability: AS%u holds %s but one decision round yields %s",
          static_cast<unsigned>(graph.AsnAt(i)), Render(mirror[i]).c_str(),
          Render(stepped[i]).c_str()));
    }
  }

  CheckNextHopConsistency(graph, state, /*skip_learned_from=*/0, out);
}

void Invariants::CheckNextHopConsistency(const topo::AsGraph& graph,
                                         const bgp::PropagationResult& state,
                                         Asn skip_learned_from,
                                         Violations& out) {
  const bgp::Announcement& ann = state.GetAnnouncement();
  for (Asn asn : graph.Ases()) {
    if (asn == ann.origin) continue;
    const auto& best = state.BestAt(asn);
    if (!best.has_value()) continue;
    const Asn via = best->learned_from;
    if (via != 0 && via == skip_learned_from) continue;
    const int pads = ann.prepends.PadsFor(via, asn);
    const std::vector<Asn>& hops = best->path.Hops();

    // The stored path must open with exactly `pads` copies of the neighbor,
    // followed by the neighbor's own stored best path (empty for the origin).
    std::vector<Asn> expected(static_cast<std::size_t>(pads), via);
    if (via != ann.origin) {
      const auto& via_best = state.BestAt(via);
      if (!via_best.has_value()) {
        out.push_back(Format(
            "next-hop: AS%u learned %s from AS%u, which holds no route",
            static_cast<unsigned>(asn), best->path.ToString().c_str(),
            static_cast<unsigned>(via)));
        continue;
      }
      expected.insert(expected.end(), via_best->path.Hops().begin(),
                      via_best->path.Hops().end());
    }
    if (hops != expected) {
      out.push_back(Format(
          "next-hop: AS%u holds %s but AS%u's best plus %d pad(s) gives %s",
          static_cast<unsigned>(asn), best->path.ToString().c_str(),
          static_cast<unsigned>(via), pads,
          AsPath(expected).ToString().c_str()));
    }
  }
}

void Invariants::CheckInterception(const topo::AsGraph& graph,
                                   const attack::AttackOutcome& outcome,
                                   Violations& out) {
  const Asn victim = outcome.victim;
  const Asn attacker = outcome.attacker;
  const bgp::Announcement& ann = outcome.after.GetAnnouncement();
  const bool connected = graph.IsConnected();

  std::vector<Asn> traversing_before;
  std::vector<Asn> traversing_after;
  for (Asn asn : graph.Ases()) {
    if (asn == victim) continue;
    const auto& best = outcome.after.BestAt(asn);
    if (!best.has_value()) {
      if (connected) {
        out.push_back(Format("delivery: AS%u lost its route under the attack",
                             static_cast<unsigned>(asn)));
      }
      continue;
    }
    const auto stripped = Strip(best->path, victim);
    if (!stripped.has_value()) {
      out.push_back(Format(
          "delivery: AS%u's post-attack route %s does not terminate cleanly "
          "at AS%u",
          static_cast<unsigned>(asn), best->path.ToString().c_str(),
          static_cast<unsigned>(victim)));
      continue;
    }
    // The neighbor the victim announced this branch to: the last core hop,
    // or the holder itself when it borders the victim.
    const Asn branch = stripped->core.empty() ? asn : stripped->core.back();
    const int announced = ann.prepends.PadsFor(victim, branch);
    const bool traverses = asn != attacker && best->path.Contains(attacker);
    if (traverses) {
      // λ−1 copies removed: the stripped interception route keeps exactly
      // one victim copy however much padding the branch announced.
      if (stripped->lambda != 1) {
        out.push_back(Format(
            "interception-shorter: AS%u's route %s traverses the attacker "
            "but carries %d victim copies (want 1 = %d announced minus %d "
            "removed)",
            static_cast<unsigned>(asn), best->path.ToString().c_str(),
            stripped->lambda, announced, announced - 1));
      }
    } else if (asn != attacker && stripped->lambda != announced) {
      out.push_back(Format(
          "padding-preserved: AS%u's route %s avoids the attacker but "
          "carries %d victim copies (announced %d toward AS%u)",
          static_cast<unsigned>(asn), best->path.ToString().c_str(),
          stripped->lambda, announced, static_cast<unsigned>(branch)));
    }
    if (asn != attacker && best->path.Contains(attacker)) {
      traversing_after.push_back(asn);
    }
    const auto& before = outcome.before->BestAt(asn);
    if (asn != attacker && before.has_value() &&
        before->path.Contains(attacker)) {
      traversing_before.push_back(asn);
    }
  }

  // Pollution accounting re-derived: newly_polluted = after \ before, and
  // the fractions are the set sizes over n−2.
  std::vector<Asn> expected_polluted;
  for (Asn asn : traversing_after) {
    if (std::find(traversing_before.begin(), traversing_before.end(), asn) ==
        traversing_before.end()) {
      expected_polluted.push_back(asn);
    }
  }
  if (expected_polluted != outcome.newly_polluted) {
    out.push_back(Format(
        "pollution-set: outcome reports %zu newly polluted ASes, re-derived "
        "%zu",
        outcome.newly_polluted.size(), expected_polluted.size()));
  }
  const std::size_t n = graph.NumAses();
  if (n > 2) {
    const double denom = static_cast<double>(n - 2);
    const double want_after =
        static_cast<double>(traversing_after.size()) / denom;
    const double want_before =
        static_cast<double>(traversing_before.size()) / denom;
    if (outcome.fraction_after != want_after ||
        outcome.fraction_before != want_before) {
      out.push_back(Format(
          "pollution-fraction: outcome reports %.6f/%.6f, re-derived "
          "%.6f/%.6f (before/after)",
          outcome.fraction_before, outcome.fraction_after, want_before,
          want_after));
    }
  }
}

void Invariants::CheckStrategicAttack(
    const topo::AsGraph& graph, const strategy::AttackerProgram& program,
    const bgp::PropagationResult& attacked,
    const std::vector<std::pair<Asn, AsPath>>& previous,
    const std::vector<std::pair<Asn, AsPath>>& current, bool converged,
    Violations& out) {
  const Asn victim = program.Victim();

  // Edge-by-edge delivery audit: whatever a colluder's neighbor holds in its
  // Adj-RIB-In slot for that colluder must be explainable by the program's
  // directive for the (colluder → neighbor) edge.
  for (Asn colluder : program.Colluders()) {
    for (const topo::Edge& nb : graph.NeighborsOf(colluder)) {
      const strategy::Directive& directive =
          program.DirectiveFor(colluder, nb.asn);
      const std::optional<bgp::Route>& slot =
          attacked.RibIn()[nb.id][nb.back_slot];
      const bool receiver_poisoned =
          std::find(directive.poison.begin(), directive.poison.end(),
                    nb.asn) != directive.poison.end();
      if (directive.send == strategy::Send::kWithhold) {
        if (slot.has_value()) {
          out.push_back(Format(
              "strategy-withhold: AS%u withholds from AS%u yet the slot "
              "holds %s",
              static_cast<unsigned>(colluder), static_cast<unsigned>(nb.asn),
              slot->path.ToString().c_str()));
        }
        continue;
      }
      if (!slot.has_value()) continue;
      const AsPath& path = slot->path;
      if (receiver_poisoned) {
        out.push_back(Format(
            "strategy-poison-self: AS%u poisons AS%u on their edge yet the "
            "slot holds %s (loop check should have dropped it)",
            static_cast<unsigned>(colluder), static_cast<unsigned>(nb.asn),
            path.ToString().c_str()));
        continue;
      }
      if (path.Empty() || path.First() != colluder) {
        out.push_back(Format(
            "strategy-sender: AS%u's slot from AS%u holds %s, which does not "
            "open with the colluder",
            static_cast<unsigned>(nb.asn), static_cast<unsigned>(colluder),
            path.ToString().c_str()));
        continue;
      }
      if (directive.strip_to >= 1 &&
          path.MaxRunOf(victim) > directive.strip_to) {
        out.push_back(Format(
            "strategy-strip: AS%u -> AS%u carries a victim run of %d, "
            "directive trims to %d (path %s)",
            static_cast<unsigned>(colluder), static_cast<unsigned>(nb.asn),
            path.MaxRunOf(victim), directive.strip_to,
            path.ToString().c_str()));
      }
      for (Asn poison : directive.poison) {
        if (!path.Contains(poison)) {
          out.push_back(Format(
              "strategy-poison: AS%u -> AS%u lacks poison AS%u (path %s)",
              static_cast<unsigned>(colluder), static_cast<unsigned>(nb.asn),
              static_cast<unsigned>(poison), path.ToString().c_str()));
        }
      }
    }
  }

  // Accusation oracle, sound only for converged states under uniform
  // per-colluder, poison-free programs: padding is then a deterministic
  // function of the chain, so the witness rule can never pin a non-colluder.
  // Poison splices an innocent ASN into the path — blame-shifting is what
  // path stuffing is for — and a round-cap snapshot mixes stale unstripped
  // paths with stripped ones, so either condition voids the soundness
  // argument. Victim policy deliberately withheld — the victim-aware rule
  // accuses the victim-adjacent branch head, which is innocent under any
  // mid-path attacker.
  if (converged && program.UniformStripPerColluder() && !program.UsesPoison()) {
    // Soundness is claimed for honest vantage points only. The detector's
    // suffix expansion infers a route for every AS on a monitor path, but a
    // colluder strips the victim run it re-announces, so the observed suffix
    // misrepresents the true route of the colluder itself and of every AS
    // behind it on that path (they received the unstripped run). Rows in
    // front of the first colluder are honest: their owners genuinely hold
    // the stripped route. Build the stripped views with that taint filter —
    // the production Scan cannot (it does not know the colluders), which is
    // exactly why its framing alarms on tainted rows are out of scope here.
    auto trusted_view = [&program, victim](
        const std::vector<std::pair<Asn, bgp::AsPath>>& paths) {
      detect::StrippedView view;
      auto add = [&view, victim](Asn owner, const std::vector<Asn>& hops,
                                 std::size_t from) {
        if (view.count(owner)) return;  // first observation wins, as in Scan
        auto stripped = detect::StripVictimPadding(
            AsPath(std::vector<Asn>(hops.begin() + static_cast<long>(from),
                                    hops.end())),
            victim);
        if (stripped) view.emplace(owner, std::move(*stripped));
      };
      for (const auto& [monitor, path] : paths) {
        if (program.IsColluder(monitor)) continue;
        const std::vector<Asn>& hops = path.Hops();
        if (hops.empty()) continue;
        add(monitor, hops, 0);
        std::size_t i = 0;
        while (i < hops.size()) {
          const Asn as = hops[i];
          std::size_t j = i;
          while (j < hops.size() && hops[j] == as) ++j;
          if (program.IsColluder(as)) break;  // this row and deeper: tainted
          if (j < hops.size()) add(as, hops, j);
          i = j;
        }
      }
      return view;
    };
    const detect::StrippedView prev_view = trusted_view(previous);
    const detect::StrippedView cur_view = trusted_view(current);
    for (const auto& [observer, now] : cur_view) {
      auto before = prev_view.find(observer);
      if (before == prev_view.end()) continue;
      if (now.lambda >= before->second.lambda) continue;
      if (now.core.size() < 2) continue;
      const std::optional<detect::Alarm> alarm =
          detect::HighConfidenceAlarm(observer, now, cur_view);
      if (!alarm || alarm->confidence != detect::Alarm::Confidence::kHigh) {
        continue;
      }
      if (!program.IsColluder(alarm->suspect)) {
        out.push_back(Format(
            "strategy-accusation: witness rule accuses AS%u, outside the "
            "colluding set (observer AS%u): %s",
            static_cast<unsigned>(alarm->suspect),
            static_cast<unsigned>(alarm->observer), alarm->detail.c_str()));
      }
    }
  }
}

void Invariants::CheckDefendedState(const topo::AsGraph& graph,
                                    const defense::PolicySet& policy,
                                    Asn origin, Asn attacker,
                                    const bgp::PrependPolicy& prepends,
                                    const bgp::PropagationResult& state,
                                    Violations& out) {
  // §II-B run-length rule, re-stated: on a loop-free path every maximal run
  // of AS X carries exactly PadsFor(X, successor) copies, the successor
  // being the receiver-side hop adjacent to the run. Fewer copies prove
  // someone removed padding.
  const auto undercut = [&prepends](Asn receiver, const AsPath& path) {
    const std::vector<Asn>& hops = path.Hops();
    Asn successor = receiver;
    std::size_t i = 0;
    while (i < hops.size()) {
      const Asn run_asn = hops[i];
      std::size_t run = 0;
      while (i < hops.size() && hops[i] == run_asn) {
        ++run;
        ++i;
      }
      if (static_cast<int>(run) < prepends.PadsFor(run_asn, successor)) {
        return true;
      }
      successor = run_asn;
    }
    return false;
  };

  for (std::size_t i = 0; i < graph.NumAses(); ++i) {
    const Asn asn = graph.AsnAt(i);
    const std::uint8_t tags = policy.TagsAt(static_cast<topo::AsId>(i));
    const std::optional<bgp::Route>& best = state.BestRoutes()[i];

    if (best.has_value() && asn != origin) {
      if ((tags & defense::kRov) && best->path.OriginAs() != origin) {
        out.push_back(Format(
            "defense-rov: AS%u runs ROV yet selected [%s] originating at "
            "AS%u",
            static_cast<unsigned>(asn), best->path.ToString().c_str(),
            static_cast<unsigned>(best->path.OriginAs())));
      }
      if ((tags & defense::kPathValidation) && undercut(asn, best->path)) {
        out.push_back(Format(
            "defense-pathval: AS%u validates paths yet selected the "
            "undercut route [%s]",
            static_cast<unsigned>(asn), best->path.ToString().c_str()));
      }
      if (tags & defense::kInlineDetector) {
        const std::optional<detect::StrippedRoute> stripped =
            detect::StripVictimPadding(best->path, origin);
        if (stripped.has_value() &&
            detect::VictimAwareAlarm(origin, asn, *stripped, prepends)
                .has_value()) {
          out.push_back(Format(
              "defense-detector: AS%u runs the inline detector yet selected "
              "the accusable route [%s]",
              static_cast<unsigned>(asn), best->path.ToString().c_str()));
        }
      }
    }

    // Propagation side: whatever a defended neighbor exported into this
    // AS's Adj-RIB-In was that neighbor's accepted best — so it obeys the
    // neighbor's own policies too.
    const std::span<const topo::Edge> neighbors =
        graph.NeighborsAt(static_cast<topo::AsId>(i));
    const std::vector<std::optional<bgp::Route>>& rib = state.RibIn()[i];
    for (std::size_t slot = 0; slot < neighbors.size(); ++slot) {
      const topo::Edge& nb = neighbors[slot];
      if (nb.asn == attacker) continue;  // rewritten exports, tag or not
      const std::uint8_t nb_tags = policy.TagsAt(nb.id);
      if (nb_tags == 0 || !rib[slot].has_value()) continue;
      const AsPath& path = rib[slot]->path;
      if ((nb_tags & defense::kRov) && path.OriginAs() != origin) {
        out.push_back(Format(
            "defense-rov-propagated: ROV AS%u exported [%s] originating at "
            "AS%u to AS%u",
            static_cast<unsigned>(nb.asn), path.ToString().c_str(),
            static_cast<unsigned>(path.OriginAs()),
            static_cast<unsigned>(asn)));
      }
      if ((nb_tags & defense::kPathValidation) && undercut(asn, path)) {
        out.push_back(Format(
            "defense-pathval-propagated: validating AS%u exported the "
            "undercut route [%s] to AS%u",
            static_cast<unsigned>(nb.asn), path.ToString().c_str(),
            static_cast<unsigned>(asn)));
      }
    }
  }
}

void Invariants::CheckAlarmsJustified(
    Asn victim, const std::vector<std::pair<Asn, AsPath>>& previous,
    const std::vector<std::pair<Asn, AsPath>>& current,
    const std::vector<detect::Alarm>& alarms,
    const bgp::PrependPolicy* victim_policy, Violations& out) {
  using detect::Alarm;
  const auto policy = detect::RouteSnapshot::ConflictPolicy::kFirstObserved;
  const std::map<Asn, Stripped> prev_view =
      StrippedViewOf(previous, victim, policy);
  const std::map<Asn, Stripped> cur_view =
      StrippedViewOf(current, victim, policy);

  for (const Alarm& alarm : alarms) {
    const auto now_it = cur_view.find(alarm.observer);
    if (now_it == cur_view.end()) {
      out.push_back(Format(
          "alarm-witness: AS%u raised an alarm but holds no strippable "
          "route (%s)",
          static_cast<unsigned>(alarm.observer), alarm.detail.c_str()));
      continue;
    }
    const Stripped& now = now_it->second;

    if (alarm.confidence == Alarm::Confidence::kHigh) {
      // Justification 1 — the Fig.-4 witness rule: padding dropped, the
      // suspect heads the observer's core, and some other AS holds the same
      // chain behind the suspect with exactly pads_removed more copies.
      bool justified = false;
      const auto before_it = prev_view.find(alarm.observer);
      if (before_it != prev_view.end() && now.core.size() >= 2 &&
          now.core.front() == alarm.suspect &&
          now.lambda < before_it->second.lambda) {
        const std::vector<Asn> segment(now.core.begin() + 1, now.core.end());
        for (const auto& [other, stripped] : cur_view) {
          if (other == alarm.observer) continue;
          if (!EndsWith(stripped.core, segment)) continue;
          if (stripped.lambda > now.lambda &&
              stripped.lambda - now.lambda == alarm.pads_removed) {
            justified = true;
            break;
          }
        }
      }
      // Justification 2 — the victim-aware rule: observed padding toward the
      // first neighbor undercuts what the victim announced to it.
      if (!justified && victim_policy != nullptr && !now.core.empty() &&
          now.core.back() == alarm.suspect) {
        const int announced = victim_policy->PadsFor(victim, alarm.suspect);
        justified = now.lambda < announced &&
                    alarm.pads_removed == announced - now.lambda;
      }
      if (!justified) {
        out.push_back(Format(
            "alarm-witness: high-confidence alarm against AS%u (observer "
            "AS%u, %d pads) has no independent witness: %s",
            static_cast<unsigned>(alarm.suspect),
            static_cast<unsigned>(alarm.observer), alarm.pads_removed,
            alarm.detail.c_str()));
      }
      continue;
    }

    // Hint alarms: check the trigger conditions (padding drop, suspect heads
    // the core, some strictly longer padded route exists).
    const auto before_it = prev_view.find(alarm.observer);
    bool triggered = before_it != prev_view.end() && now.core.size() >= 2 &&
                     now.core.front() == alarm.suspect &&
                     now.lambda < before_it->second.lambda;
    if (triggered) {
      bool longer_exists = false;
      for (const auto& [other, stripped] : cur_view) {
        if (other == alarm.observer) continue;
        if (stripped.lambda > now.lambda &&
            stripped.core.size() + static_cast<std::size_t>(stripped.lambda) >
                now.core.size() + static_cast<std::size_t>(now.lambda)) {
          longer_exists = true;
          break;
        }
      }
      triggered = longer_exists;
    }
    if (!triggered) {
      out.push_back(Format(
          "alarm-trigger: hint alarm against AS%u (observer AS%u) without a "
          "padding-drop trigger: %s",
          static_cast<unsigned>(alarm.suspect),
          static_cast<unsigned>(alarm.observer), alarm.detail.c_str()));
    }
  }
}

void Invariants::CheckNoHighConfidence(const std::vector<detect::Alarm>& alarms,
                                       Violations& out) {
  for (const detect::Alarm& alarm : alarms) {
    if (alarm.confidence == detect::Alarm::Confidence::kHigh) {
      out.push_back(Format(
          "false-positive: high-confidence alarm against AS%u (observer "
          "AS%u): %s",
          static_cast<unsigned>(alarm.suspect),
          static_cast<unsigned>(alarm.observer), alarm.detail.c_str()));
    }
  }
}

void Invariants::CheckStreamBatchEquivalence(
    const topo::AsGraph* graph, Asn victim,
    const std::vector<std::pair<Asn, AsPath>>& previous,
    const std::vector<std::pair<Asn, AsPath>>& current,
    const bgp::PrependPolicy* victim_policy, Violations& out) {
  // Replay previous→current as a single-prefix update stream.
  const data::Prefix prefix = data::SyntheticPrefix(0);
  data::RibSnapshot rib;
  for (const auto& [monitor, path] : previous) {
    rib.tables[monitor][prefix] = path;
  }

  stream::IncrementalDetector::Options options;
  options.graph = graph;
  options.victim_policy = victim_policy;
  stream::IncrementalDetector incremental(options);
  incremental.SeedBaseline(rib);

  std::uint64_t sequence = 1;
  for (const auto& [monitor, path] : current) {
    data::Update update;
    update.sequence = sequence++;
    update.monitor = monitor;
    update.prefix = prefix;
    update.path = path;
    incremental.Apply(update);
  }
  for (const auto& [monitor, path] : previous) {
    const bool still_present =
        std::any_of(current.begin(), current.end(),
                    [m = monitor](const auto& entry) { return entry.first == m; });
    if (still_present) continue;
    data::Update update;
    update.sequence = sequence++;
    update.monitor = monitor;
    update.prefix = prefix;
    update.withdraw = true;
    incremental.Apply(update);
  }

  detect::DetectorOptions batch_options;
  batch_options.conflict_policy =
      detect::RouteSnapshot::ConflictPolicy::kLatestObserved;
  const detect::AsppDetector batch(graph, batch_options);
  std::vector<detect::Alarm> batch_alarms =
      batch.Scan(victim, previous, current, victim_policy);
  std::sort(batch_alarms.begin(), batch_alarms.end(), detect::AlarmLess);

  const std::vector<detect::Alarm> stream_alarms =
      incremental.CurrentAlarms(victim);
  if (stream_alarms == batch_alarms) return;
  out.push_back(Format(
      "stream-batch: incremental detector holds %zu alarm(s), batch scan "
      "%zu for victim AS%u",
      stream_alarms.size(), batch_alarms.size(),
      static_cast<unsigned>(victim)));
  for (const detect::Alarm& alarm : stream_alarms) {
    if (std::find(batch_alarms.begin(), batch_alarms.end(), alarm) ==
        batch_alarms.end()) {
      out.push_back(Format("stream-batch:   stream-only: %s (suspect AS%u)",
                           alarm.detail.c_str(),
                           static_cast<unsigned>(alarm.suspect)));
    }
  }
  for (const detect::Alarm& alarm : batch_alarms) {
    if (std::find(stream_alarms.begin(), stream_alarms.end(), alarm) ==
        stream_alarms.end()) {
      out.push_back(Format("stream-batch:   batch-only: %s (suspect AS%u)",
                           alarm.detail.c_str(),
                           static_cast<unsigned>(alarm.suspect)));
    }
  }
}

}  // namespace asppi::check
