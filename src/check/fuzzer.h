// Differential fuzzer: generates seeded scenarios, runs every fast engine
// against the ReferenceEngine oracle plus the full invariant battery, shrinks
// failing scenarios to a minimal topology, and serializes repro cases
// (DESIGN.md §4f).
//
// Determinism contract: the scenario of iteration i depends only on
// (options.seed, i) — never on the shard that happens to execute it — so
// `--seed N --threads K` finds the identical failure set for every K.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/invariants.h"
#include "check/scenario.h"
#include "util/thread_pool.h"

namespace asppi::check {

struct FuzzOptions {
  std::uint64_t seed = 42;
  std::size_t iterations = 100;
  // Shrink each failure to a minimal scenario before reporting.
  bool minimize = true;
  // Test hook: corrupt the fast engine's attack outcome before comparison,
  // guaranteeing a divergence on every scenario (exercises the failure path
  // and the shrinker end to end).
  bool inject_bug = false;
  // Parallel sharding (null = serial). The failure set is identical either
  // way; only wall-clock changes.
  util::ThreadPool* pool = nullptr;
  // When non-empty, each (shrunk) failing scenario is saved here as
  // `fuzz-seed<seed>-iter<i>.scn`.
  std::string corpus_dir;
  // Cap on RunScenario evaluations one Shrink may spend.
  std::size_t shrink_budget = 200;
};

struct FuzzFailure {
  std::size_t iteration = 0;
  Scenario scenario;       // shrunk when options.minimize
  Violations violations;   // violations of the reported (shrunk) scenario
  std::string repro_path;  // file written, when options.corpus_dir is set
};

struct FuzzResult {
  std::size_t iterations = 0;
  std::vector<FuzzFailure> failures;  // ascending iteration order
  bool Clean() const { return failures.empty(); }
};

class Fuzzer {
 public:
  explicit Fuzzer(const FuzzOptions& options);

  // The scenario of iteration i: a random small-to-medium topology with
  // random victim/attacker roles, λ, boldness knobs, and monitor count, all
  // drawn from DeriveSeed(options.seed, i).
  Scenario ScenarioFor(std::size_t iteration) const;

  // Runs one scenario through every differential + invariant check:
  //   * PropagationSimulator vs ReferenceEngine (attack-free fixpoint),
  //   * RoutingTree vs ReferenceEngine (class + length, sibling-free only),
  //   * AttackSimulator vs ReferenceEngine::RunInterception (paths,
  //     fractions, pollution sets),
  //   * Invariants over the converged states and the attack outcome,
  //   * detector alarm justification, baseline false-positive guard, and
  //     stream==batch equivalence over the monitor views.
  // Empty result = the scenario passes.
  Violations RunScenario(const Scenario& scenario) const;

  // Greedy minimization: repeatedly shrink topology sizes / λ / knobs while
  // RunScenario still fails, until a fixpoint or the shrink budget runs out.
  Scenario Shrink(const Scenario& scenario) const;

  // The whole campaign. Failures are shrunk and (optionally) serialized.
  FuzzResult Run() const;

 private:
  FuzzOptions options_;
};

}  // namespace asppi::check
