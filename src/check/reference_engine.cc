#include "check/reference_engine.h"

#include <algorithm>

#include "util/check.h"
#include "util/metrics.h"

namespace asppi::check {

namespace {

struct OracleMetrics {
  util::Counter converges{"check.reference.converges"};
  util::Counter rounds{"check.reference.rounds"};
  util::Counter sequential_fallbacks{"check.reference.sequential_fallbacks"};
};

OracleMetrics& Instr() {
  static OracleMetrics* m = new OracleMetrics();
  return *m;
}

// Local-preference ranking, re-stated from the paper (§IV-B): an AS is paid
// for customer traffic and pays for provider traffic, siblings are
// intra-organization. Deliberately not LocalPrefOf() from bgp/policy.h — the
// oracle re-derives the ordering so a constant typo there would diverge here.
int RankOf(Relation effective) {
  switch (effective) {
    case Relation::kCustomer:
      return 3;
    case Relation::kSibling:
      return 2;
    case Relation::kPeer:
      return 1;
    case Relation::kProvider:
      return 0;
  }
  return -1;
}

// The decision process: class, then length including prepends, then lowest
// neighbor ASN.
bool Better(const ReferenceRoute& a, const ReferenceRoute& b) {
  if (RankOf(a.effective) != RankOf(b.effective)) {
    return RankOf(a.effective) > RankOf(b.effective);
  }
  if (a.path.Length() != b.path.Length()) {
    return a.path.Length() < b.path.Length();
  }
  return a.learned_from < b.learned_from;
}

// Valley-free export rule, re-stated: routes of customer/sibling class are
// exported to everyone; peer/provider-class routes only downward (to
// customers) and to siblings. `to_rel` is the receiver's role relative to
// the exporter.
bool ExportAllowed(Relation route_class, Relation to_rel) {
  if (route_class == Relation::kCustomer || route_class == Relation::kSibling) {
    return true;
  }
  return to_rel == Relation::kCustomer || to_rel == Relation::kSibling;
}

}  // namespace

ReferenceEngine::ReferenceEngine(const topo::AsGraph& graph) : graph_(graph) {}

ReferenceEngine::State MirrorFastState(const topo::AsGraph& graph,
                                       const bgp::PropagationResult& state) {
  ReferenceEngine::State mirror(graph.NumAses());
  for (std::size_t i = 0; i < graph.NumAses(); ++i) {
    const auto& best = state.BestAt(graph.AsnAt(i));
    if (!best.has_value()) continue;
    ReferenceRoute route;
    route.path = best->path;
    route.learned_from = best->learned_from;
    route.rel = best->rel;
    route.effective = best->effective;
    mirror[i] = std::move(route);
  }
  return mirror;
}

std::optional<ReferenceRoute> ReferenceEngine::Deliver(
    const bgp::Announcement& announcement, const ReferenceAttack* attack,
    Asn from, const std::optional<ReferenceRoute>& from_best, Asn to,
    Relation from_rel_to_self) const {
  const bool is_origin = (from == announcement.origin);
  // The receiver's role as the exporter sees it.
  const Relation to_rel = topo::Reverse(from_rel_to_self);

  bgp::AsPath path;
  Relation out_class = Relation::kCustomer;  // own prefix ranks like customer
  if (is_origin) {
    path = bgp::AsPath::Origin(from, announcement.prepends.PadsFor(from, to));
  } else {
    if (!from_best.has_value()) return std::nullopt;
    // Sender-side loop avoidance: never offer a route back through an AS
    // already on it.
    if (from_best->path.Contains(to)) return std::nullopt;
    path = from_best->path;
    path.Prepend(from, announcement.prepends.PadsFor(from, to));
    out_class = from_best->effective;
  }

  // The attacker hook: strip the victim's runs, then export per its boldness.
  bool force = false;
  if (attack != nullptr && from == attack->attacker &&
      path.Contains(attack->victim)) {
    const int removed = path.CollapseRunsOf(attack->victim);
    if (removed > 0) {
      if (attack->violate_valley_free) {
        force = true;
      } else if (attack->export_stripped_to_peers) {
        // Stripped routes masquerade as customer routes: announce everywhere
        // except upward.
        force = (to_rel != Relation::kProvider);
      }
    }
  }

  const bool policy_ok =
      is_origin || ExportAllowed(out_class, to_rel);
  if (!force && !policy_ok) return std::nullopt;
  // Receiver-side loop detection.
  if (path.Contains(to)) return std::nullopt;

  ReferenceRoute route;
  route.path = std::move(path);
  route.learned_from = from;
  route.rel = from_rel_to_self;
  // Sibling links transport the underlying class; real inter-domain
  // boundaries re-classify by the business relationship.
  route.effective = (from_rel_to_self == Relation::kSibling)
                        ? out_class
                        : from_rel_to_self;
  return route;
}

std::optional<ReferenceRoute> ReferenceEngine::ComputeBest(
    const bgp::Announcement& announcement, const State& state,
    const ReferenceAttack* attack, std::size_t u) const {
  const Asn u_asn = graph_.AsnAt(u);
  std::vector<std::optional<ReferenceRoute>> candidates;
  std::optional<ReferenceRoute> best;
  const bool attacker_here = attack != nullptr && u_asn == attack->attacker;
  for (const topo::AsGraph::Neighbor& nb : graph_.NeighborsOf(u_asn)) {
    std::optional<ReferenceRoute> offered =
        Deliver(announcement, attack, nb.asn, state[graph_.IndexOf(nb.asn)],
                u_asn, nb.rel);
    if (attacker_here) candidates.push_back(offered);
    if (offered.has_value() && (!best.has_value() || Better(*offered, *best))) {
      best = std::move(offered);
    }
  }
  // The policy-violating attacker overrides the decision process: among
  // received routes containing the victim it adopts the one whose
  // *stripped* form is shortest (ties by the normal decision order).
  if (attacker_here && attack->violate_valley_free) {
    const ReferenceRoute* chosen = nullptr;
    std::size_t chosen_len = 0;
    int strippable = 0;
    for (const auto& candidate : candidates) {
      if (!candidate.has_value() || !candidate->path.Contains(attack->victim)) {
        continue;
      }
      bgp::AsPath stripped = candidate->path;
      strippable =
          std::max(strippable, stripped.CollapseRunsOf(attack->victim));
      const std::size_t len = stripped.Length();
      if (chosen == nullptr || len < chosen_len ||
          (len == chosen_len && Better(*candidate, *chosen))) {
        chosen = &*candidate;
        chosen_len = len;
      }
    }
    if (chosen != nullptr && strippable > 0) best = *chosen;
  }
  return best;
}

ReferenceEngine::State ReferenceEngine::Step(
    const bgp::Announcement& announcement, const State& state,
    const ReferenceAttack* attack) const {
  const std::size_t n = graph_.NumAses();
  ASPPI_CHECK_EQ(state.size(), n);
  const std::size_t origin = graph_.IndexOf(announcement.origin);
  State next(n);
  for (std::size_t u = 0; u < n; ++u) {
    if (u == origin) continue;  // the origin always keeps its own prefix
    next[u] = ComputeBest(announcement, state, attack, u);
  }
  return next;
}

ReferenceEngine::State ReferenceEngine::Converge(
    const bgp::Announcement& announcement,
    const ReferenceAttack* attack) const {
  ASPPI_CHECK(graph_.HasAs(announcement.origin));
  if (attack != nullptr) {
    ASPPI_CHECK(graph_.HasAs(attack->attacker));
    ASPPI_CHECK_NE(attack->attacker, attack->victim);
  }
  Instr().converges.Add();
  const std::size_t n = graph_.NumAses();
  const std::size_t origin = graph_.IndexOf(announcement.origin);
  State state(n);

  // Phase 1 — synchronous (Jacobi) rounds: every AS recomputes from the
  // previous round's state. This is the maximally schedule-independent way to
  // reach the Gao-Rexford fixpoint, and on attack-free (and most attacked)
  // instances it settles in O(diameter) rounds.
  constexpr int kJacobiRounds = 2000;
  int round = 0;
  bool settled = false;
  while (round < kJacobiRounds) {
    ++round;
    State next = Step(announcement, state, attack);
    if (next == state) {
      settled = true;
      break;
    }
    state = std::move(next);
  }

  // Phase 2 — sequential (Gauss-Seidel) sweeps, each AS updating in place in
  // dense-index order. The attacker's path rewriting can couple two ASes into
  // a synchronous 2-cycle (each flips based on the other's stale route) that
  // every *asynchronous* activation — including the event-driven simulator's
  // — resolves; a sequential sweep is such a schedule, so it finishes what
  // Jacobi cannot. The fixpoints of both schedules coincide, so which phase
  // terminates does not affect the answer.
  if (!settled) {
    Instr().sequential_fallbacks.Add();
    constexpr int kMaxSweeps = 10000;
    for (int sweep = 0; !settled; ++sweep) {
      ASPPI_CHECK_LT(sweep, kMaxSweeps) << "reference fixpoint did not settle";
      ++round;
      bool changed = false;
      for (std::size_t u = 0; u < n; ++u) {
        if (u == origin) continue;
        std::optional<ReferenceRoute> best =
            ComputeBest(announcement, state, attack, u);
        if (best != state[u]) {
          state[u] = std::move(best);
          changed = true;
        }
      }
      settled = !changed;
    }
  }
  Instr().rounds.Add(static_cast<std::uint64_t>(round));
  return state;
}

std::vector<Asn> ReferenceEngine::Traversing(const State& state, Asn origin,
                                             Asn x) const {
  std::vector<Asn> out;
  for (std::size_t i = 0; i < state.size(); ++i) {
    const Asn asn = graph_.AsnAt(i);
    if (asn == x || asn == origin) continue;
    if (state[i].has_value() && state[i]->path.Contains(x)) out.push_back(asn);
  }
  return out;
}

ReferenceEngine::Outcome ReferenceEngine::RunInterception(
    const bgp::Announcement& announcement, Asn attacker,
    bool violate_valley_free, bool export_stripped_to_peers) const {
  ReferenceAttack attack;
  attack.attacker = attacker;
  attack.victim = announcement.origin;
  attack.violate_valley_free = violate_valley_free;
  attack.export_stripped_to_peers = export_stripped_to_peers;

  Outcome outcome;
  outcome.before = Converge(announcement);
  outcome.after = Converge(announcement, &attack);

  const std::vector<Asn> before_set =
      Traversing(outcome.before, announcement.origin, attacker);
  const std::vector<Asn> after_set =
      Traversing(outcome.after, announcement.origin, attacker);
  const std::size_t n = graph_.NumAses();
  if (n > 2) {
    const double denom = static_cast<double>(n - 2);
    outcome.fraction_before = static_cast<double>(before_set.size()) / denom;
    outcome.fraction_after = static_cast<double>(after_set.size()) / denom;
  }
  for (Asn asn : after_set) {
    bool was = false;
    for (Asn b : before_set) {
      if (b == asn) {
        was = true;
        break;
      }
    }
    if (!was) outcome.newly_polluted.push_back(asn);
  }
  return outcome;
}

}  // namespace asppi::check
