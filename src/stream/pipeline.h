// Sharded online detection pipeline.
//
// The Pipeline distributes victims (prefix-owner ASes) over N independent
// IncrementalDetector shards (`victim % num_shards`) and processes update
// windows on a util::ThreadPool. Sharding is by victim, not by prefix: the
// Fig.-4 witness rule compares routes of *different* monitors and prefixes of
// the same origin, so one victim's whole observation set must live in one
// shard — prefix sharding would sever witnesses from the observers they
// vindicate (DESIGN.md §4e).
//
// Determinism: a serial dispatcher assigns every event to its shard (queue
// fill order depends only on the input order and the shard function), windows
// flush when any shard queue reaches capacity (again input-dependent only),
// each shard applies its queue in order, and Finish() merges all emissions
// sorted by StampedAlarmLess. The emitted alarm stream is therefore
// bit-identical for any thread count and any shard count that keeps victims
// co-located — and equals the emissions of a single unsharded
// IncrementalDetector fed the same stream.
//
// Origin moves: if an announcement changes the origin AS of a (monitor,
// prefix) slot, the dispatcher synthesizes a withdrawal (same sequence) to
// the old victim's shard before routing the announcement to the new one —
// exactly what a single detector's StreamState reports as a cross-victim
// change.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "stream/incremental.h"
#include "stream/update_source.h"
#include "util/thread_pool.h"

namespace asppi::stream {

class Pipeline {
 public:
  struct Options {
    // Number of detector shards. 0 = the pool's concurrency (or 1 without a
    // pool). Must stay fixed for a given stream to keep shard assignment —
    // and thus per-shard apply order — reproducible.
    std::size_t num_shards = 0;
    // Per-shard queue bound; reaching it flushes the current window.
    std::size_t queue_capacity = 1024;
    IncrementalDetector::Options detector;
  };

  // `pool` may be nullptr (serial windows). The pool is borrowed, not owned.
  Pipeline(util::ThreadPool* pool, const Options& options);

  // Seeds every shard's baseline from the converged RIB. Call once, first.
  void SeedBaseline(const data::RibSnapshot& rib);

  // Routes one event to its shard; may flush a full window. Events must
  // arrive in replay order (ascending sequence — what UpdateSource yields).
  void Push(const data::Update& update);

  // Drains all shard queues (window barrier).
  void Flush();

  // Final flush; returns every alarm emitted over the whole stream, sorted
  // by StampedAlarmLess. The pipeline stays queryable afterwards.
  std::vector<StampedAlarm> Finish();

  // Current alarm set for `victim` (delegates to its shard's detector).
  std::vector<detect::Alarm> CurrentAlarms(Asn victim) const;
  const IncrementalDetector& DetectorFor(Asn victim) const;

  std::size_t NumShards() const { return shards_.size(); }
  std::size_t QueuePeak() const { return queue_peak_; }

 private:
  struct Shard {
    IncrementalDetector detector;
    std::vector<data::Update> queue;
  };

  std::size_t ShardOf(Asn victim) const { return victim % shards_.size(); }
  void Enqueue(std::size_t shard, data::Update update);

  util::ThreadPool* pool_;
  Options options_;
  std::vector<Shard> shards_;
  // Serial dispatcher's view of each slot's current origin, for routing
  // withdrawals and detecting origin moves.
  std::map<StreamState::EntryKey, Asn> owner_of_;
  std::vector<StampedAlarm> alarms_;
  std::size_t queue_peak_ = 0;
};

}  // namespace asppi::stream
