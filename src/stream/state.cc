#include "stream/state.h"

#include "util/metrics.h"

namespace asppi::stream {

namespace {

struct StateMetrics {
  util::Counter announcements{"stream.state.announcements"};
  util::Counter withdrawals{"stream.state.withdrawals"};
  util::Counter noop_withdrawals{"stream.state.noop_withdrawals"};
};

StateMetrics& Instr() {
  static StateMetrics* m = new StateMetrics();
  return *m;
}

}  // namespace

void StreamState::SeedBaseline(const data::RibSnapshot& rib) {
  for (const auto& [monitor, table] : rib.tables) {
    for (const auto& [prefix, path] : table) {
      if (path.Empty()) continue;
      Insert({monitor, prefix}, path, 0);
    }
  }
}

void StreamState::Insert(const EntryKey& key, AsPath path,
                         std::uint64_t sequence) {
  Entry entry;
  entry.victim = path.OriginAs();
  entry.path = std::move(path);
  entry.sequence = sequence;
  buckets_[entry.victim].insert({sequence, key.monitor, key.prefix});
  entries_.insert_or_assign(key, std::move(entry));
}

StreamState::Change StreamState::Apply(const data::Update& update) {
  Change change;
  change.key = {update.monitor, update.prefix};
  change.sequence = update.sequence;

  auto it = entries_.find(change.key);
  if (it != entries_.end()) {
    change.old_victim = it->second.victim;
    change.old_path = it->second.path;
    auto bucket = buckets_.find(it->second.victim);
    bucket->second.erase(
        {it->second.sequence, change.key.monitor, change.key.prefix});
    if (bucket->second.empty()) buckets_.erase(bucket);
  }

  if (update.withdraw) {
    if (it == entries_.end()) {
      Instr().noop_withdrawals.Add();
      return change;  // withdrawing nothing: no-op
    }
    Instr().withdrawals.Add();
    entries_.erase(it);
    change.changed = true;
    return change;
  }

  Instr().announcements.Add();
  change.changed = true;
  change.new_victim = update.path.OriginAs();
  change.new_path = update.path;
  Insert(change.key, update.path, update.sequence);
  return change;
}

std::vector<std::pair<Asn, AsPath>> StreamState::PathsToward(
    Asn victim) const {
  std::vector<std::pair<Asn, AsPath>> out;
  auto bucket = buckets_.find(victim);
  if (bucket == buckets_.end()) return out;
  out.reserve(bucket->second.size());
  for (const auto& [sequence, monitor, prefix] : bucket->second) {
    out.emplace_back(monitor, entries_.at({monitor, prefix}).path);
  }
  return out;
}

std::vector<Asn> StreamState::Victims() const {
  std::vector<Asn> out;
  out.reserve(buckets_.size());
  for (const auto& [victim, bucket] : buckets_) out.push_back(victim);
  return out;
}

data::RibSnapshot StreamState::ToRib() const {
  data::RibSnapshot rib;
  for (const auto& [key, entry] : entries_) {
    rib.tables[key.monitor][key.prefix] = entry.path;
  }
  return rib;
}

void ApplyUpdates(data::RibSnapshot& rib,
                  const std::vector<data::Update>& updates) {
  for (const data::Update& update : updates) {
    if (update.withdraw) {
      auto table = rib.tables.find(update.monitor);
      if (table == rib.tables.end()) continue;
      table->second.erase(update.prefix);
    } else {
      rib.tables[update.monitor][update.prefix] = update.path;
    }
  }
}

}  // namespace asppi::stream
