#include "stream/update_source.h"

#include <algorithm>
#include <tuple>

namespace asppi::stream {

UpdateSource::UpdateSource(std::vector<data::Update> updates)
    : events_(std::move(updates)) {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const data::Update& a, const data::Update& b) {
                     return std::tie(a.sequence, a.monitor, a.prefix) <
                            std::tie(b.sequence, b.monitor, b.prefix);
                   });
}

std::string UpdateSource::FromFile(const std::string& path, UpdateSource& out) {
  std::vector<data::Update> updates;
  std::string err = data::ReadUpdatesFile(path, updates);
  if (!err.empty()) return err;
  out = UpdateSource(std::move(updates));
  return "";
}

UpdateSource UpdateSource::FromGenerator(
    const data::MeasurementGenerator& generator,
    const std::vector<Asn>& monitors) {
  return UpdateSource(generator.GenerateUpdates(monitors));
}

bool UpdateSource::Next(data::Update& out) {
  if (cursor_ >= events_.size()) return false;
  out = events_[cursor_++];
  return true;
}

}  // namespace asppi::stream
