// Online ASPP-interception detection over a sequenced update stream.
//
// The batch `detect::AsppDetector` rebuilds and re-strips full RouteSnapshots
// per Scan. IncrementalDetector maintains the same observation state
// incrementally: per-victim suffix-expansion contributions (which monitor
// entry implies which derived route, resolved latest-wins), a segment index
// (every suffix of every stripped core → the owners holding it and their
// padding counts) answering the Fig.-4 witness query in one lookup, and the
// set of currently *triggered* observers (padding below baseline). One
// applied update touches only the affected victim's buckets: the derived
// routes of the changed entry, the index rows of their core suffixes, and a
// re-evaluation of that victim's triggered observers.
//
// Equivalence contract (the keystone, asserted by tests/stream_test.cc): at
// any point of the replay, `CurrentAlarms(v)` equals — as a set — the batch
// detector's `Scan(v, BaselinePaths(v), CurrentPaths(v))` under
// `ConflictPolicy::kLatestObserved`. `Apply` reports the alarms newly raised
// by each event, stamped with its sequence number.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "detect/detector.h"
#include "detect/rules.h"
#include "stream/state.h"

namespace asppi::stream {

// An alarm raised by the online detector at a specific stream position.
struct StampedAlarm {
  std::uint64_t sequence = 0;
  Asn victim = 0;
  detect::Alarm alarm;

  bool operator==(const StampedAlarm&) const = default;
};

// Total order for deterministic merges: (sequence, victim, alarm).
bool StampedAlarmLess(const StampedAlarm& a, const StampedAlarm& b);

class IncrementalDetector {
 public:
  struct Options {
    // Relationship graph for the hint rules (nullptr disables them).
    const topo::AsGraph* graph = nullptr;
    // Prefix owners' own prepend policies, for the victim-aware rule
    // (nullptr disables it). `PadsFor(victim, neighbor)` is consulted for
    // every victim this detector tracks.
    const bgp::PrependPolicy* victim_policy = nullptr;
    detect::DetectorOptions detector;
  };

  IncrementalDetector();
  explicit IncrementalDetector(const Options& options);

  // Seeds the pre-stream observation set (sequence 0): the fixed baseline
  // the trigger rule compares against, which is also the initial current
  // state. Call once, before the first Apply.
  void SeedBaseline(const data::RibSnapshot& rib);

  // Applies one update and returns the alarms it newly raised (alarms that
  // ceased to hold are dropped from the current set silently; the
  // `stream.alarms_retracted` counter accounts for them).
  std::vector<StampedAlarm> Apply(const data::Update& update);

  // The current alarm set for `victim`, sorted by detect::AlarmLess.
  std::vector<detect::Alarm> CurrentAlarms(Asn victim) const;

  // Live monitor-path entries toward `victim` in ascending
  // (sequence, monitor, prefix) order — the canonical order for a batch
  // kLatestObserved reconstruction. BaselinePaths is the seeded equivalent.
  std::vector<std::pair<Asn, AsPath>> CurrentPaths(Asn victim) const;
  std::vector<std::pair<Asn, AsPath>> BaselinePaths(Asn victim) const;

  const StreamState& State() const { return state_; }

 private:
  struct Contribution {
    std::uint64_t sequence = 0;
    StreamState::EntryKey key;
    AsPath route;
  };

  // Everything the rules need about one victim's observation set.
  struct VictimState {
    // Derived-route contributions per owner AS, keyed by the table entry
    // they came from. The effective route is the latest-wins maximum by
    // (sequence, monitor, prefix).
    std::map<Asn, std::map<StreamState::EntryKey, Contribution>> contribs;
    // Effective route per owner (resolution winner), plus its stripped form
    // when it ends at the victim.
    struct Effective {
      std::uint64_t sequence = 0;
      StreamState::EntryKey key;
      AsPath route;
      bool strippable = false;
    };
    std::map<Asn, Effective> effective;
    // Strippable effective routes — the view the shared rules run over.
    detect::StrippedView stripped;
    // Suffix → owner → padding count: every suffix of every stripped core.
    // Answers "smallest-ASN owner whose core ends with `segment` and whose
    // padding exceeds λ" — the Fig.-4 witness — in one lookup.
    std::map<std::vector<Asn>, std::map<Asn, int>> segment_index;
    // The fixed pre-stream view (trigger comparisons).
    detect::StrippedView baseline;
    // Observers whose current padding is below their baseline padding.
    std::set<Asn> triggered;
    // Per-observer rule results: the Fig.-4/hint alarm and the victim-aware
    // alarm. The current alarm set is assembled from these with the batch
    // detector's dedup semantics.
    std::map<Asn, detect::Alarm> rule_alarms;
    std::map<Asn, detect::Alarm> victim_alarms;
    // Current alarm set, sorted by detect::AlarmLess.
    std::vector<detect::Alarm> alarm_set;
  };

  // Applies the (removal, addition) of one table entry to `victim`'s bucket.
  // Emits newly-raised alarms into `out`.
  void ApplyToVictim(Asn victim, const StreamState::EntryKey& key,
                     std::uint64_t sequence, const AsPath* old_path,
                     const AsPath* new_path, std::vector<StampedAlarm>& out);

  // Recomputes the effective route of `owner`; returns true if it changed.
  bool ResolveEffective(VictimState& vs, Asn victim, Asn owner);

  void IndexInsert(VictimState& vs, Asn owner,
                   const detect::StrippedRoute& stripped);
  void IndexErase(VictimState& vs, Asn owner,
                  const detect::StrippedRoute& stripped);

  // Re-runs the Fig.-4 rules for one triggered observer.
  void EvaluateObserver(Asn victim, VictimState& vs, Asn observer);

  // Assembles the deduped, AlarmLess-sorted alarm set from the per-observer
  // rule results, mirroring the batch Scan's insertion order.
  std::vector<detect::Alarm> BuildAlarmSet(const VictimState& vs) const;

  // Rebuilds the alarm set, diffs against the previous one, emits new
  // alarms stamped with `sequence`.
  void RefreshAlarms(Asn victim, VictimState& vs, std::uint64_t sequence,
                     std::vector<StampedAlarm>& out);

  Options options_;
  StreamState state_;
  std::map<Asn, VictimState> victims_;
  // Baseline entries per victim in canonical order (all sequence 0).
  std::map<Asn, std::vector<std::pair<Asn, AsPath>>> baseline_paths_;
};

}  // namespace asppi::stream
