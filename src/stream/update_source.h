// Sources of sequenced BGP update events for the online detection pipeline.
//
// An UpdateSource replays a finite stream of `data::Update` events in
// ascending sequence order — from a `.upd` file, an in-memory vector, or a
// `data::MeasurementGenerator` corpus. Files are allowed to be unordered on
// disk (real collector dumps interleave feeds); the source canonicalizes to
// ascending (sequence, monitor, prefix) order on construction so every
// consumer sees one well-defined replay order.
#pragma once

#include <string>
#include <vector>

#include "data/formats.h"
#include "data/measurement.h"

namespace asppi::stream {

using topo::Asn;

class UpdateSource {
 public:
  UpdateSource() = default;
  // Takes ownership of `updates` and sorts them into replay order.
  explicit UpdateSource(std::vector<data::Update> updates);

  // Reads a `.upd` file. Returns "" on success, else the parser's
  // line-numbered error message.
  static std::string FromFile(const std::string& path, UpdateSource& out);

  // Generates the corpus' churn stream for `monitors`.
  static UpdateSource FromGenerator(const data::MeasurementGenerator& generator,
                                    const std::vector<Asn>& monitors);

  // All events in replay order.
  const std::vector<data::Update>& Events() const { return events_; }
  std::size_t Size() const { return events_.size(); }

  // Cursor-style replay: fills `out` and advances; false at end of stream.
  bool Next(data::Update& out);
  std::size_t Remaining() const { return events_.size() - cursor_; }
  void Reset() { cursor_ = 0; }

 private:
  std::vector<data::Update> events_;
  std::size_t cursor_ = 0;
};

}  // namespace asppi::stream
