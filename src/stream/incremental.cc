#include "stream/incremental.h"

#include <algorithm>
#include <tuple>

#include "util/metrics.h"

namespace asppi::stream {

namespace {

struct IncrementalMetrics {
  util::Counter events{"stream.events"};
  util::Counter alarms{"stream.alarms"};
  util::Counter retracted{"stream.alarms_retracted"};
  util::Counter reevals{"stream.reevaluations"};
  util::Counter index_inserts{"stream.index.segments_inserted"};
  util::Counter index_erases{"stream.index.segments_erased"};
  util::Counter index_lookups{"stream.index.lookups"};
};

IncrementalMetrics& Instr() {
  static IncrementalMetrics* m = new IncrementalMetrics();
  return *m;
}

}  // namespace

bool StampedAlarmLess(const StampedAlarm& a, const StampedAlarm& b) {
  if (a.sequence != b.sequence) return a.sequence < b.sequence;
  if (a.victim != b.victim) return a.victim < b.victim;
  return detect::AlarmLess(a.alarm, b.alarm);
}

IncrementalDetector::IncrementalDetector() : IncrementalDetector(Options()) {}

IncrementalDetector::IncrementalDetector(const Options& options)
    : options_(options) {}

void IncrementalDetector::SeedBaseline(const data::RibSnapshot& rib) {
  state_.SeedBaseline(rib);
  // Contributions carry sequence 0; iteration over the RIB maps is already
  // the canonical ascending (sequence=0, monitor, prefix) order.
  for (const auto& [monitor, table] : rib.tables) {
    for (const auto& [prefix, path] : table) {
      if (path.Empty()) continue;
      const Asn victim = path.OriginAs();
      VictimState& vs = victims_[victim];
      baseline_paths_[victim].emplace_back(monitor, path);
      StreamState::EntryKey key{monitor, prefix};
      for (auto& [owner, route] : detect::ExpandObservedPath(monitor, path)) {
        Contribution contribution;
        contribution.sequence = 0;
        contribution.key = key;
        contribution.route = std::move(route);
        vs.contribs[owner].insert_or_assign(key, std::move(contribution));
      }
    }
  }
  for (auto& [victim, vs] : victims_) {
    std::vector<Asn> owners;
    owners.reserve(vs.contribs.size());
    for (const auto& [owner, contributions] : vs.contribs) {
      owners.push_back(owner);
    }
    for (Asn owner : owners) ResolveEffective(vs, victim, owner);
    vs.baseline = vs.stripped;  // the fixed pre-stream view
    if (options_.victim_policy != nullptr &&
        options_.detector.enable_victim_policy) {
      // Pre-existing policy violations belong to the initial alarm set (the
      // batch detector would report them on Scan(baseline, baseline)); they
      // are not stamped as stream alarms.
      for (const auto& [owner, stripped] : vs.stripped) {
        if (auto alarm = detect::VictimAwareAlarm(victim, owner, stripped,
                                                  *options_.victim_policy)) {
          vs.victim_alarms.insert_or_assign(owner, std::move(*alarm));
        }
      }
      vs.alarm_set = BuildAlarmSet(vs);
    }
  }
}

std::vector<StampedAlarm> IncrementalDetector::Apply(
    const data::Update& update) {
  std::vector<StampedAlarm> out;
  Instr().events.Add();
  StreamState::Change change = state_.Apply(update);
  if (!change.changed) return out;
  if (change.old_victim != 0 && change.old_victim != change.new_victim) {
    ApplyToVictim(change.old_victim, change.key, change.sequence,
                  &change.old_path, nullptr, out);
  }
  if (change.new_victim != 0) {
    const AsPath* old_path =
        change.old_victim == change.new_victim ? &change.old_path : nullptr;
    ApplyToVictim(change.new_victim, change.key, change.sequence, old_path,
                  &change.new_path, out);
  }
  return out;
}

void IncrementalDetector::ApplyToVictim(Asn victim,
                                        const StreamState::EntryKey& key,
                                        std::uint64_t sequence,
                                        const AsPath* old_path,
                                        const AsPath* new_path,
                                        std::vector<StampedAlarm>& out) {
  VictimState& vs = victims_[victim];
  std::set<Asn> dirty;
  if (old_path != nullptr) {
    for (auto& [owner, route] : detect::ExpandObservedPath(key.monitor,
                                                           *old_path)) {
      auto it = vs.contribs.find(owner);
      if (it != vs.contribs.end() && it->second.erase(key) > 0) {
        if (it->second.empty()) vs.contribs.erase(it);
        dirty.insert(owner);
      }
    }
  }
  if (new_path != nullptr) {
    for (auto& [owner, route] : detect::ExpandObservedPath(key.monitor,
                                                           *new_path)) {
      Contribution contribution;
      contribution.sequence = sequence;
      contribution.key = key;
      contribution.route = std::move(route);
      vs.contribs[owner].insert_or_assign(key, std::move(contribution));
      dirty.insert(owner);
    }
  }

  bool view_changed = false;
  for (Asn owner : dirty) {
    if (!ResolveEffective(vs, victim, owner)) continue;
    view_changed = true;
    auto now = vs.stripped.find(owner);
    auto before = vs.baseline.find(owner);
    const bool triggered = now != vs.stripped.end() &&
                           before != vs.baseline.end() &&
                           now->second.lambda < before->second.lambda;
    if (triggered) {
      vs.triggered.insert(owner);
    } else {
      vs.triggered.erase(owner);
      vs.rule_alarms.erase(owner);
    }
    if (options_.victim_policy != nullptr &&
        options_.detector.enable_victim_policy) {
      std::optional<detect::Alarm> alarm;
      if (now != vs.stripped.end()) {
        alarm = detect::VictimAwareAlarm(victim, owner, now->second,
                                         *options_.victim_policy);
      }
      if (alarm) {
        vs.victim_alarms.insert_or_assign(owner, std::move(*alarm));
      } else {
        vs.victim_alarms.erase(owner);
      }
    }
  }
  if (!view_changed) return;

  // Any route change can create or destroy a witness (or hint evidence) for
  // any triggered observer of this victim, so all of them re-evaluate. The
  // triggered set is empty in the attack-free steady state.
  for (Asn observer : vs.triggered) EvaluateObserver(victim, vs, observer);
  RefreshAlarms(victim, vs, sequence, out);
}

bool IncrementalDetector::ResolveEffective(VictimState& vs, Asn victim,
                                           Asn owner) {
  const Contribution* best = nullptr;
  auto cit = vs.contribs.find(owner);
  if (cit != vs.contribs.end()) {
    for (const auto& [key, contribution] : cit->second) {
      if (best == nullptr ||
          std::tie(contribution.sequence, contribution.key) >
              std::tie(best->sequence, best->key)) {
        best = &contribution;
      }
    }
  }
  auto eit = vs.effective.find(owner);
  if (best == nullptr) {
    if (eit == vs.effective.end()) return false;
    if (eit->second.strippable) {
      IndexErase(vs, owner, vs.stripped.at(owner));
      vs.stripped.erase(owner);
    }
    vs.effective.erase(eit);
    return true;
  }
  if (eit != vs.effective.end() && eit->second.route == best->route) {
    // Same route under a new resolution winner: nothing observable changed.
    eit->second.sequence = best->sequence;
    eit->second.key = best->key;
    return false;
  }
  if (eit != vs.effective.end() && eit->second.strippable) {
    IndexErase(vs, owner, vs.stripped.at(owner));
    vs.stripped.erase(owner);
  }
  VictimState::Effective effective;
  effective.sequence = best->sequence;
  effective.key = best->key;
  effective.route = best->route;
  auto stripped = detect::StripVictimPadding(best->route, victim);
  effective.strippable = stripped.has_value();
  vs.effective.insert_or_assign(owner, std::move(effective));
  if (stripped) {
    IndexInsert(vs, owner, *stripped);
    vs.stripped.insert_or_assign(owner, std::move(*stripped));
  }
  return true;
}

void IncrementalDetector::IndexInsert(VictimState& vs, Asn owner,
                                      const detect::StrippedRoute& stripped) {
  for (std::size_t i = 0; i < stripped.core.size(); ++i) {
    std::vector<Asn> suffix(stripped.core.begin() + static_cast<long>(i),
                            stripped.core.end());
    vs.segment_index[std::move(suffix)].insert_or_assign(owner,
                                                         stripped.lambda);
  }
  Instr().index_inserts.Add(stripped.core.size());
}

void IncrementalDetector::IndexErase(VictimState& vs, Asn owner,
                                     const detect::StrippedRoute& stripped) {
  for (std::size_t i = 0; i < stripped.core.size(); ++i) {
    std::vector<Asn> suffix(stripped.core.begin() + static_cast<long>(i),
                            stripped.core.end());
    auto it = vs.segment_index.find(suffix);
    if (it == vs.segment_index.end()) continue;
    it->second.erase(owner);
    if (it->second.empty()) vs.segment_index.erase(it);
  }
  Instr().index_erases.Add(stripped.core.size());
}

void IncrementalDetector::EvaluateObserver(Asn victim, VictimState& vs,
                                           Asn observer) {
  const detect::StrippedRoute& now = vs.stripped.at(observer);
  std::optional<detect::Alarm> alarm;
  // The segment rules need >= 2 core hops (per-neighbor padding differences
  // toward distinct first hops are legitimate traffic engineering).
  if (now.core.size() >= 2) {
    Instr().reevals.Add();
    const std::vector<Asn> segment(now.core.begin() + 1, now.core.end());
    Instr().index_lookups.Add();
    auto it = vs.segment_index.find(segment);
    if (it != vs.segment_index.end()) {
      // Ascending owner order reproduces the batch rule's linear-scan
      // witness choice (first qualifying observer by ASN).
      for (const auto& [witness, witness_lambda] : it->second) {
        if (witness == observer) continue;
        if (witness_lambda > now.lambda) {
          alarm = detect::MakeHighConfidenceAlarm(now.core.front(), observer,
                                                  now.lambda, witness,
                                                  witness_lambda);
          break;
        }
      }
    }
    if (!alarm && options_.graph != nullptr && options_.detector.enable_hints) {
      alarm = detect::HintAlarm(*options_.graph, victim, observer, now,
                                vs.stripped);
    }
  }
  if (alarm) {
    vs.rule_alarms.insert_or_assign(observer, std::move(*alarm));
  } else {
    vs.rule_alarms.erase(observer);
  }
}

std::vector<detect::Alarm> IncrementalDetector::BuildAlarmSet(
    const VictimState& vs) const {
  std::vector<detect::Alarm> set;
  std::set<std::tuple<int, Asn, Asn>> seen;
  auto add_unique = [&](const detect::Alarm& alarm) {
    auto key = std::make_tuple(static_cast<int>(alarm.confidence),
                               alarm.suspect, alarm.observer);
    if (seen.insert(key).second) set.push_back(alarm);
  };
  // Same dedup and insertion order as the batch Scan: rule alarms by
  // ascending observer, then victim-aware alarms by ascending observer.
  for (const auto& [observer, alarm] : vs.rule_alarms) add_unique(alarm);
  for (const auto& [observer, alarm] : vs.victim_alarms) add_unique(alarm);
  std::sort(set.begin(), set.end(), detect::AlarmLess);
  return set;
}

void IncrementalDetector::RefreshAlarms(Asn victim, VictimState& vs,
                                        std::uint64_t sequence,
                                        std::vector<StampedAlarm>& out) {
  std::vector<detect::Alarm> next = BuildAlarmSet(vs);
  std::vector<detect::Alarm> fresh;
  std::set_difference(next.begin(), next.end(), vs.alarm_set.begin(),
                      vs.alarm_set.end(), std::back_inserter(fresh),
                      detect::AlarmLess);
  const std::size_t retracted =
      vs.alarm_set.size() - (next.size() - fresh.size());
  Instr().alarms.Add(fresh.size());
  Instr().retracted.Add(retracted);
  for (detect::Alarm& alarm : fresh) {
    StampedAlarm stamped;
    stamped.sequence = sequence;
    stamped.victim = victim;
    stamped.alarm = std::move(alarm);
    out.push_back(std::move(stamped));
  }
  vs.alarm_set = std::move(next);
}

std::vector<detect::Alarm> IncrementalDetector::CurrentAlarms(
    Asn victim) const {
  auto it = victims_.find(victim);
  return it == victims_.end() ? std::vector<detect::Alarm>{}
                              : it->second.alarm_set;
}

std::vector<std::pair<Asn, AsPath>> IncrementalDetector::CurrentPaths(
    Asn victim) const {
  return state_.PathsToward(victim);
}

std::vector<std::pair<Asn, AsPath>> IncrementalDetector::BaselinePaths(
    Asn victim) const {
  auto it = baseline_paths_.find(victim);
  return it == baseline_paths_.end() ? std::vector<std::pair<Asn, AsPath>>{}
                                     : it->second;
}

}  // namespace asppi::stream
