#include "stream/pipeline.h"

#include <algorithm>
#include <iterator>
#include <utility>

#include "util/check.h"
#include "util/metrics.h"

namespace asppi::stream {

namespace {

struct PipelineMetrics {
  util::Counter events{"stream.pipeline.events"};
  util::Counter batches{"stream.pipeline.batches"};
  util::Counter origin_moves{"stream.pipeline.origin_moves"};
  util::Counter dropped_withdrawals{"stream.pipeline.dropped_withdrawals"};
};

PipelineMetrics& Instr() {
  static PipelineMetrics* m = new PipelineMetrics();
  return *m;
}

}  // namespace

Pipeline::Pipeline(util::ThreadPool* pool, const Options& options)
    : pool_(pool), options_(options) {
  std::size_t num_shards = options.num_shards;
  if (num_shards == 0) num_shards = pool != nullptr ? pool->NumThreads() : 1;
  ASPPI_CHECK(options_.queue_capacity > 0) << "queue capacity must be positive";
  shards_.reserve(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i) {
    shards_.emplace_back(Shard{IncrementalDetector(options.detector), {}});
  }
  util::Metrics::Global().SetGauge("stream.pipeline.shards",
                                   static_cast<double>(num_shards));
}

void Pipeline::SeedBaseline(const data::RibSnapshot& rib) {
  std::vector<data::RibSnapshot> shard_ribs(shards_.size());
  for (const auto& [monitor, table] : rib.tables) {
    for (const auto& [prefix, path] : table) {
      if (path.Empty()) continue;
      const Asn victim = path.OriginAs();
      owner_of_.insert_or_assign({monitor, prefix}, victim);
      shard_ribs[ShardOf(victim)].tables[monitor][prefix] = path;
    }
  }
  util::ParallelFor(pool_, shards_.size(), [&](std::size_t i) {
    shards_[i].detector.SeedBaseline(shard_ribs[i]);
  });
}

void Pipeline::Push(const data::Update& update) {
  Instr().events.Add();
  const StreamState::EntryKey key{update.monitor, update.prefix};
  auto it = owner_of_.find(key);
  if (update.withdraw) {
    if (it == owner_of_.end()) {
      // Withdrawing a slot no shard holds: a no-op everywhere; don't burden
      // a queue with it.
      Instr().dropped_withdrawals.Add();
      return;
    }
    Enqueue(ShardOf(it->second), update);
    owner_of_.erase(it);
    return;
  }
  const Asn new_victim = update.path.OriginAs();
  if (it != owner_of_.end() && it->second != new_victim) {
    // Origin move: the old victim's shard must see the slot vacated. Same
    // sequence — this is one event, split across two victims.
    Instr().origin_moves.Add();
    data::Update vacate = update;
    vacate.withdraw = true;
    vacate.path = AsPath();
    Enqueue(ShardOf(it->second), std::move(vacate));
  }
  Enqueue(ShardOf(new_victim), update);
  owner_of_.insert_or_assign(key, new_victim);
}

void Pipeline::Enqueue(std::size_t shard, data::Update update) {
  shards_[shard].queue.push_back(std::move(update));
  queue_peak_ = std::max(queue_peak_, shards_[shard].queue.size());
  if (shards_[shard].queue.size() >= options_.queue_capacity) Flush();
}

void Pipeline::Flush() {
  bool any = false;
  for (const Shard& shard : shards_) {
    if (!shard.queue.empty()) {
      any = true;
      break;
    }
  }
  if (!any) return;
  Instr().batches.Add();
  // Per-shard output slots keep the merge order a pure function of the
  // input, regardless of which worker runs which shard.
  std::vector<std::vector<StampedAlarm>> slots(shards_.size());
  util::ParallelFor(pool_, shards_.size(), [&](std::size_t i) {
    Shard& shard = shards_[i];
    for (const data::Update& update : shard.queue) {
      std::vector<StampedAlarm> emitted = shard.detector.Apply(update);
      slots[i].insert(slots[i].end(),
                      std::make_move_iterator(emitted.begin()),
                      std::make_move_iterator(emitted.end()));
    }
    shard.queue.clear();
  });
  for (std::vector<StampedAlarm>& slot : slots) {
    alarms_.insert(alarms_.end(), std::make_move_iterator(slot.begin()),
                   std::make_move_iterator(slot.end()));
  }
}

std::vector<StampedAlarm> Pipeline::Finish() {
  Flush();
  std::sort(alarms_.begin(), alarms_.end(), StampedAlarmLess);
  util::Metrics::Global().SetGauge("stream.pipeline.queue_peak",
                                   static_cast<double>(queue_peak_));
  return alarms_;
}

std::vector<detect::Alarm> Pipeline::CurrentAlarms(Asn victim) const {
  return shards_[ShardOf(victim)].detector.CurrentAlarms(victim);
}

const IncrementalDetector& Pipeline::DetectorFor(Asn victim) const {
  return shards_[ShardOf(victim)].detector;
}

}  // namespace asppi::stream
