// Incremental per-monitor routing state for the online pipeline.
//
// StreamState maintains the latest-wins view of every (monitor, prefix)
// table entry as a sequenced update stream replays over a baseline RIB
// snapshot, and groups live entries into per-victim buckets (keyed by the
// origin AS of the announced path — the prefix owner the detector defends).
//
// The canonical reconstruction contract: `PathsToward(v)` returns the live
// entries of v's bucket in ascending (sequence, monitor, prefix) order, so
// `RouteSnapshot::FromMonitors(PathsToward(v), kLatestObserved)` is *the*
// snapshot implied by the events applied so far — the right-hand side of the
// batch/stream equivalence contract (DESIGN.md §4e).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <tuple>
#include <vector>

#include "bgp/as_path.h"
#include "data/measurement.h"

namespace asppi::stream {

using bgp::AsPath;
using topo::Asn;

class StreamState {
 public:
  // Identifies one table slot: a prefix in one monitor's table.
  struct EntryKey {
    Asn monitor = 0;
    data::Prefix prefix;
    auto operator<=>(const EntryKey&) const = default;
  };

  // What one applied update did to the table, reported to the caller so the
  // incremental detector can patch its expansion index with exactly the
  // affected entries.
  struct Change {
    bool changed = false;  // false: no-op (withdrawal of an absent entry)
    EntryKey key;
    std::uint64_t sequence = 0;
    Asn old_victim = 0;  // 0 = slot was empty before
    AsPath old_path;
    Asn new_victim = 0;  // 0 = slot is empty now (withdrawal)
    AsPath new_path;
  };

  // Seeds the table from a converged RIB snapshot; entries carry sequence 0.
  void SeedBaseline(const data::RibSnapshot& rib);

  // Applies one update, latest-wins. A re-announcement of an identical path
  // still counts as a change (the entry's sequence advances, which can flip
  // latest-wins conflict resolution for derived routes).
  Change Apply(const data::Update& update);

  // Live entries toward `victim` in ascending (sequence, monitor, prefix)
  // order. Empty if the victim currently originates nothing.
  std::vector<std::pair<Asn, AsPath>> PathsToward(Asn victim) const;

  // Victims with at least one live entry, ascending.
  std::vector<Asn> Victims() const;

  // The full current table as a RIB snapshot (drops sequence stamps).
  data::RibSnapshot ToRib() const;

  std::size_t NumEntries() const { return entries_.size(); }

 private:
  struct Entry {
    AsPath path;
    std::uint64_t sequence = 0;
    Asn victim = 0;
  };

  using BucketKey = std::tuple<std::uint64_t, Asn, data::Prefix>;

  void Insert(const EntryKey& key, AsPath path, std::uint64_t sequence);

  std::map<EntryKey, Entry> entries_;
  // victim → live (sequence, monitor, prefix) keys, the canonical order.
  std::map<Asn, std::set<BucketKey>> buckets_;
};

// Latest-wins replay of a whole update stream over a RIB snapshot (the batch
// analogue of feeding every event through StreamState::Apply): announcements
// overwrite the (monitor, prefix) slot, withdrawals erase it.
void ApplyUpdates(data::RibSnapshot& rib,
                  const std::vector<data::Update>& updates);

}  // namespace asppi::stream
