// The ASPP-interception detection algorithm (paper Figure 4).
//
// Trigger: an observed route to the victim's prefix whose trailing padding
// count decreased (λt < λt−1).
//
// High-confidence rule: find another currently-observed route whose core
// (padding-stripped) path has the same length and an identical tail after the
// first hop, but more padding. The shared tail [AS_{I−1} … AS_1] means the
// victim announced two different padding counts along the same neighbor
// chain — impossible under consistent per-neighbor policy — so the first hop
// AS_I of the shorter route removed the padding: raise a high-confidence
// alarm naming AS_I.
//
// Hint rules (lower confidence, need the AS-relationship graph): when no
// exact tail match exists but another AS holds a strictly longer padded
// route that routing policy says it should not prefer — its neighbor
// AS_{I−1} "had" the short route and would have exported it — raise a
// possible-attack alarm (paper's three relationship cases).
//
// Victim-aware rule (paper §V-B limitations): the prefix owner knows its own
// prepend policy; a route whose padding toward some first neighbor W is
// smaller than what the victim actually announced to W is proof of stripping
// somewhere on that branch. This covers the attacker-adjacent-to-victim
// corner case when a vantage point exists past the attacker.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "bgp/policy.h"
#include "detect/observation.h"
#include "topology/as_graph.h"

namespace asppi::detect {

struct Alarm {
  enum class Confidence { kHigh, kPossible };
  Confidence confidence = Confidence::kHigh;
  // The AS accused of removing padding.
  Asn suspect = 0;
  // The AS whose observed route triggered the alarm.
  Asn observer = 0;
  // Padding copies the suspect is believed to have removed (high confidence).
  int pads_removed = 0;
  std::string detail;

  bool operator==(const Alarm&) const = default;
};

// Total order on alarms used wherever alarm *sets* are compared or merged
// deterministically (the stream pipeline's canonical output order).
bool AlarmLess(const Alarm& a, const Alarm& b);

struct DetectorOptions {
  // Enables the relationship-based hint rules (requires a graph).
  bool enable_hints = true;
  // Enables the victim-aware rule (requires `victim_policy` in Scan).
  bool enable_victim_policy = true;
  // Suffix-conflict resolution for the snapshots Scan builds internally.
  // kFirstObserved fits converged before/after snapshots; the stream
  // equivalence tests pass kLatestObserved to match stream-derived state.
  RouteSnapshot::ConflictPolicy conflict_policy =
      RouteSnapshot::ConflictPolicy::kFirstObserved;
};

class AsppDetector {
 public:
  using Options = DetectorOptions;

  // `graph` powers the hint rules; pass nullptr to run purely on routing data.
  explicit AsppDetector(const topo::AsGraph* graph = nullptr,
                        const Options& options = Options());

  // Full pipeline over two converged observation sets (previous and current
  // monitor best paths). `victim_policy`, if provided, is the prefix owner's
  // own prepend configuration (used only by the victim-aware rule).
  std::vector<Alarm> Scan(
      Asn victim,
      const std::vector<std::pair<Asn, AsPath>>& previous_monitor_paths,
      const std::vector<std::pair<Asn, AsPath>>& current_monitor_paths,
      const bgp::PrependPolicy* victim_policy = nullptr) const;

  // The inner Fig.-4 check for one observer whose padding decreased.
  // `current` is the full current snapshot to search.
  std::vector<Alarm> DetectOne(Asn victim, Asn observer,
                               const AsPath& route_now,
                               const AsPath& route_before,
                               const RouteSnapshot& current) const;

 private:
  const topo::AsGraph* graph_;
  Options options_;
};

// True if any alarm has high confidence.
bool HasHighConfidence(const std::vector<Alarm>& alarms);
// First alarm naming `suspect`, if any.
const Alarm* FindAccusing(const std::vector<Alarm>& alarms, Asn suspect);

}  // namespace asppi::detect
