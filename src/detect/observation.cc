#include "detect/observation.h"

namespace asppi::detect {

RouteSnapshot RouteSnapshot::FromMonitors(
    const std::vector<std::pair<Asn, AsPath>>& monitor_paths) {
  RouteSnapshot snapshot;
  for (const auto& [monitor, path] : monitor_paths) {
    if (path.Empty()) continue;
    snapshot.routes_.emplace(monitor, path);
    // Suffix expansion: decompose the path into runs [(a1,c1)…(ak,ck)];
    // the AS of run i holds the route formed by runs i+1…k.
    const auto& hops = path.Hops();
    std::size_t i = 0;
    while (i < hops.size()) {
      Asn as = hops[i];
      std::size_t j = i;
      while (j < hops.size() && hops[j] == as) ++j;
      if (j < hops.size()) {
        AsPath suffix(std::vector<Asn>(hops.begin() + static_cast<long>(j),
                                       hops.end()));
        snapshot.routes_.emplace(as, std::move(suffix));
      }
      i = j;
    }
  }
  return snapshot;
}

const AsPath* RouteSnapshot::RouteOf(Asn asn) const {
  auto it = routes_.find(asn);
  return it == routes_.end() ? nullptr : &it->second;
}

}  // namespace asppi::detect
