#include "detect/observation.h"

#include <algorithm>

namespace asppi::detect {

std::vector<std::pair<Asn, AsPath>> ExpandObservedPath(Asn monitor,
                                                       const AsPath& path) {
  std::vector<std::pair<Asn, AsPath>> entries;
  if (path.Empty()) return entries;
  auto seen = [&entries](Asn owner) {
    return std::any_of(entries.begin(), entries.end(),
                       [owner](const auto& e) { return e.first == owner; });
  };
  entries.emplace_back(monitor, path);
  // Suffix expansion: decompose the path into runs [(a1,c1)…(ak,ck)];
  // the AS of run i holds the route formed by runs i+1…k.
  const auto& hops = path.Hops();
  std::size_t i = 0;
  while (i < hops.size()) {
    Asn as = hops[i];
    std::size_t j = i;
    while (j < hops.size() && hops[j] == as) ++j;
    if (j < hops.size() && !seen(as)) {
      entries.emplace_back(as, AsPath(std::vector<Asn>(
                                   hops.begin() + static_cast<long>(j),
                                   hops.end())));
    }
    i = j;
  }
  return entries;
}

RouteSnapshot RouteSnapshot::FromMonitors(
    const std::vector<std::pair<Asn, AsPath>>& monitor_paths,
    ConflictPolicy policy) {
  RouteSnapshot snapshot;
  for (const auto& [monitor, path] : monitor_paths) {
    for (auto& [owner, route] : ExpandObservedPath(monitor, path)) {
      if (policy == ConflictPolicy::kFirstObserved) {
        snapshot.routes_.emplace(owner, std::move(route));
      } else {
        snapshot.routes_.insert_or_assign(owner, std::move(route));
      }
    }
  }
  return snapshot;
}

const AsPath* RouteSnapshot::RouteOf(Asn asn) const {
  auto it = routes_.find(asn);
  return it == routes_.end() ? nullptr : &it->second;
}

}  // namespace asppi::detect
