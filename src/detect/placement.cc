#include "detect/placement.h"

#include <algorithm>
#include <optional>

#include "detect/detector.h"
#include "detect/monitors.h"
#include "util/check.h"
#include "util/rng.h"

namespace asppi::detect {

namespace {

using MonitorPaths = std::vector<std::pair<Asn, AsPath>>;

// One training attack's observable state: per-candidate before/after paths.
struct TrainingAttack {
  std::vector<std::size_t> candidate_index;  // candidates with routes
  MonitorPaths before;
  MonitorPaths after;
};

bool DetectedWith(const AsppDetector& detector, Asn victim,
                  const TrainingAttack& attack,
                  const std::vector<bool>& selected, std::size_t extra) {
  MonitorPaths before, after;
  for (std::size_t i = 0; i < attack.candidate_index.size(); ++i) {
    std::size_t candidate = attack.candidate_index[i];
    if (!selected[candidate] && candidate != extra) continue;
    before.push_back(attack.before[i]);
    after.push_back(attack.after[i]);
  }
  if (after.empty()) return false;
  return !detector.Scan(victim, before, after).empty();
}

}  // namespace

PlacementResult SelectMonitorsForVictim(const topo::AsGraph& graph, Asn victim,
                                        const PlacementConfig& config) {
  ASPPI_CHECK(graph.HasAs(victim));
  PlacementResult result;

  // Candidate pool: top-degree prefilter (excluding the victim itself).
  std::vector<Asn> pool =
      config.candidate_pool == 0
          ? graph.AsesByDegreeDesc()
          : TopDegreeMonitors(graph, config.candidate_pool + 1);
  pool.erase(std::remove(pool.begin(), pool.end(), victim), pool.end());
  if (config.candidate_pool != 0 && pool.size() > config.candidate_pool) {
    pool.resize(config.candidate_pool);
  }

  // Training attacks: random attackers against this victim. The attacker
  // sample is drawn serially up front (fixing the rng stream independent of
  // scheduling); the simulations — all sharing one memoized baseline, since
  // victim and λ are fixed — then run in parallel into input-index slots.
  util::Rng rng(config.seed);
  attack::BaselineCache baseline_cache(graph);
  attack::AttackSimulator simulator(graph, &baseline_cache);
  AsppDetector detector(&graph);
  const auto& ases = graph.Ases();
  std::vector<Asn> attackers;
  attackers.reserve(config.training_attacks);
  for (std::size_t i = 0; i < config.training_attacks; ++i) {
    Asn attacker = ases[rng.Below(ases.size())];
    if (attacker == victim) continue;
    attackers.push_back(attacker);
  }
  std::vector<std::optional<TrainingAttack>> simulated(attackers.size());
  util::ParallelFor(config.pool, attackers.size(), [&](std::size_t i) {
    const Asn attacker = attackers[i];
    attack::AttackOutcome outcome =
        simulator.RunAsppInterception(victim, attacker, config.lambda);
    if (outcome.newly_polluted.empty()) return;
    TrainingAttack training;
    for (std::size_t c = 0; c < pool.size(); ++c) {
      if (pool[c] == attacker) continue;
      const auto& before = outcome.before->BestAt(pool[c]);
      const auto& after = outcome.after.BestAt(pool[c]);
      if (!before.has_value() || !after.has_value()) continue;
      training.candidate_index.push_back(c);
      training.before.emplace_back(pool[c], before->path);
      training.after.emplace_back(pool[c], after->path);
    }
    simulated[i] = std::move(training);
  });
  std::vector<TrainingAttack> attacks;
  for (auto& training : simulated) {
    if (training.has_value()) attacks.push_back(std::move(*training));
  }
  result.training_effective = attacks.size();

  // Greedy coverage maximization: each round picks the candidate whose
  // addition detects the most still-uncovered training attacks.
  std::vector<bool> selected(pool.size(), false);
  std::vector<bool> covered(attacks.size(), false);
  const std::size_t kNone = pool.size();
  for (std::size_t round = 0;
       round < config.budget && result.monitors.size() < pool.size();
       ++round) {
    // Score every unselected candidate in parallel, then resolve the argmax
    // serially — first candidate with the maximal gain, exactly the pick the
    // serial loop makes.
    std::vector<std::size_t> gains(pool.size(), 0);
    util::ParallelFor(config.pool, pool.size(), [&](std::size_t c) {
      if (selected[c]) return;
      std::size_t gain = 0;
      for (std::size_t a = 0; a < attacks.size(); ++a) {
        if (covered[a]) continue;
        if (DetectedWith(detector, victim, attacks[a], selected, c)) ++gain;
      }
      gains[c] = gain;
    });
    std::size_t best_candidate = kNone;
    std::size_t best_gain = 0;
    for (std::size_t c = 0; c < pool.size(); ++c) {
      if (selected[c]) continue;
      if (best_candidate == kNone || gains[c] > best_gain) {
        best_candidate = c;
        best_gain = gains[c];
      }
    }
    if (best_candidate == kNone) break;
    selected[best_candidate] = true;
    result.monitors.push_back(pool[best_candidate]);
    for (std::size_t a = 0; a < attacks.size(); ++a) {
      if (!covered[a] &&
          DetectedWith(detector, victim, attacks[a], selected, kNone)) {
        covered[a] = true;
      }
    }
    // Once everything is covered, the remaining budget adds nothing on the
    // training set — spend it on generalization instead (below).
    if (std::all_of(covered.begin(), covered.end(),
                    [](bool b) { return b; })) {
      break;
    }
  }
  // Fill any unused budget with the highest-degree unselected candidates:
  // extra vantage points can only widen held-out coverage.
  for (std::size_t c = 0;
       c < pool.size() && result.monitors.size() < config.budget; ++c) {
    if (!selected[c]) {
      selected[c] = true;
      result.monitors.push_back(pool[c]);
    }
  }
  result.training_covered = static_cast<std::size_t>(
      std::count(covered.begin(), covered.end(), true));
  return result;
}

}  // namespace asppi::detect
