#include "detect/monitors.h"

#include <algorithm>

#include "util/rng.h"

namespace asppi::detect {

std::vector<Asn> TopDegreeMonitors(const topo::AsGraph& graph,
                                   std::size_t count) {
  std::vector<Asn> ranked = graph.AsesByDegreeDesc();
  if (ranked.size() > count) ranked.resize(count);
  return ranked;
}

std::vector<Asn> RandomMonitors(const topo::AsGraph& graph, std::size_t count,
                                std::uint64_t seed) {
  util::Rng rng(seed);
  count = std::min(count, graph.NumAses());
  std::vector<std::size_t> picks =
      rng.SampleWithoutReplacement(graph.NumAses(), count);
  std::vector<Asn> out;
  out.reserve(picks.size());
  for (std::size_t idx : picks) out.push_back(graph.AsnAt(idx));
  return out;
}

std::vector<Asn> Tier1FirstMonitors(const topo::AsGraph& graph,
                                    const topo::TierInfo& tiers,
                                    std::size_t count) {
  std::vector<Asn> out = tiers.Tier1();
  if (out.size() > count) {
    out.resize(count);
    return out;
  }
  for (Asn asn : graph.AsesByDegreeDesc()) {
    if (out.size() >= count) break;
    if (std::find(out.begin(), out.end(), asn) == out.end()) {
      out.push_back(asn);
    }
  }
  return out;
}

}  // namespace asppi::detect
