#include "detect/rules.h"

#include <algorithm>

#include "util/strings.h"

namespace asppi::detect {

using topo::Relation;

std::optional<StrippedRoute> StripVictimPadding(const AsPath& path,
                                                Asn victim) {
  const auto& hops = path.Hops();
  if (hops.empty() || hops.back() != victim) return std::nullopt;
  StrippedRoute out;
  std::size_t end = hops.size();
  while (end > 0 && hops[end - 1] == victim) {
    --end;
    ++out.lambda;
  }
  out.core.assign(hops.begin(), hops.begin() + static_cast<long>(end));
  for (Asn asn : out.core) {
    if (asn == victim) return std::nullopt;  // victim mid-path: malformed
  }
  return out;
}

bool PathEndsWith(const std::vector<Asn>& hay, const std::vector<Asn>& tail) {
  if (hay.size() < tail.size()) return false;
  return std::equal(tail.begin(), tail.end(),
                    hay.end() - static_cast<long>(tail.size()));
}

StrippedView BuildStrippedView(const RouteSnapshot& current, Asn victim) {
  StrippedView view;
  for (const auto& [observer, path] : current.Routes()) {
    auto stripped = StripVictimPadding(path, victim);
    if (stripped) view.emplace(observer, std::move(*stripped));
  }
  return view;
}

Alarm MakeHighConfidenceAlarm(Asn suspect, Asn observer, int lambda_now,
                              Asn witness, int witness_lambda) {
  Alarm alarm;
  alarm.confidence = Alarm::Confidence::kHigh;
  alarm.suspect = suspect;
  alarm.observer = observer;
  alarm.pads_removed = witness_lambda - lambda_now;
  alarm.detail = util::Format(
      "chain behind AS%u observed with %d pads at AS%u but %d pads here",
      static_cast<unsigned>(suspect), witness_lambda,
      static_cast<unsigned>(witness), lambda_now);
  return alarm;
}

std::optional<Alarm> HighConfidenceAlarm(Asn observer, const StrippedRoute& now,
                                         const StrippedView& view) {
  if (now.core.size() < 2) return std::nullopt;
  const Asn suspect = now.core.front();
  // Every honest AS forwards ONE path, so any other observed route containing
  // the same chain directly before the victim must carry the same padding
  // count; more padding behind the same chain ⇒ the suspect removed copies.
  const std::vector<Asn> segment(now.core.begin() + 1, now.core.end());
  for (const auto& [other, stripped] : view) {
    if (other == observer) continue;
    if (!PathEndsWith(stripped.core, segment)) continue;
    if (now.lambda < stripped.lambda) {
      // One independent witness suffices.
      return MakeHighConfidenceAlarm(suspect, observer, now.lambda, other,
                                     stripped.lambda);
    }
  }
  return std::nullopt;
}

std::optional<Alarm> HintAlarm(const topo::AsGraph& graph, Asn victim,
                               Asn observer, const StrippedRoute& now,
                               const StrippedView& view) {
  if (now.core.size() < 2) return std::nullopt;
  const Asn suspect = now.core.front();
  const Asn as_i1 = now.core[1];  // AS_{I-1}
  for (const auto& [other, stripped] : view) {
    if (other == observer) continue;
    if (stripped.core.empty()) continue;
    if (now.lambda >= stripped.lambda) continue;
    // Another AS holds a strictly longer padded route.
    if (stripped.core.size() + static_cast<std::size_t>(stripped.lambda) <=
        now.core.size() + static_cast<std::size_t>(now.lambda)) {
      continue;
    }
    const Asn as_l = stripped.core.front();
    if (!graph.HasAs(as_l) || !graph.HasAs(as_i1)) continue;
    auto rel = graph.RelationOf(as_l, as_i1);  // role of AS_{I-1} at AS'_L
    if (!rel) continue;

    bool suspicious = false;
    std::string why;
    if (*rel == Relation::kCustomer) {
      // AS'_L's customer had the short route and would have exported it.
      suspicious = true;
      why = "customer withheld shorter route";
    } else if (*rel == Relation::kPeer) {
      // Peer-learned shorter routes are exportable when customer-learned:
      // suspicious only if the short route has no peer link (pure
      // customer chain), which AS_{I-1} would export to its peer AS'_L.
      bool any_peer_link = false;
      std::vector<Asn> chain = now.core;
      chain.push_back(victim);
      for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
        auto link = graph.RelationOf(chain[i], chain[i + 1]);
        if (link && *link == Relation::kPeer) any_peer_link = true;
      }
      if (!any_peer_link) {
        suspicious = true;
        why = "peer withheld customer-chain route";
      }
    } else if (*rel == Relation::kProvider) {
      const Asn as_l1 = stripped.core.size() >= 2 ? stripped.core[1] : victim;
      auto up = graph.RelationOf(as_l, as_l1);  // role of AS'_{L-1} at AS'_L
      if (up && *up == Relation::kProvider) {
        suspicious = true;
        why = "provider preferred longer provider route";
      }
    }
    if (suspicious) {
      // One hint per observer is enough.
      Alarm alarm;
      alarm.confidence = Alarm::Confidence::kPossible;
      alarm.suspect = suspect;
      alarm.observer = observer;
      alarm.pads_removed = stripped.lambda - now.lambda;
      alarm.detail = util::Format("%s (vs AS%u)", why.c_str(),
                                  static_cast<unsigned>(as_l));
      return alarm;
    }
  }
  return std::nullopt;
}

std::optional<Alarm> VictimAwareAlarm(Asn victim, Asn observer,
                                      const StrippedRoute& now,
                                      const bgp::PrependPolicy& policy) {
  if (now.core.empty()) return std::nullopt;
  const Asn first_neighbor = now.core.back();
  const int announced = policy.PadsFor(victim, first_neighbor);
  if (now.lambda >= announced) return std::nullopt;
  Alarm alarm;
  alarm.confidence = Alarm::Confidence::kHigh;
  alarm.suspect = first_neighbor;
  alarm.observer = observer;
  alarm.pads_removed = announced - now.lambda;
  alarm.detail = util::Format(
      "victim announced %d pads toward AS%u but only %d observed", announced,
      static_cast<unsigned>(first_neighbor), now.lambda);
  return alarm;
}

}  // namespace asppi::detect
