// Vantage-point selection for self-defense — the future work the paper
// commits to in §V-B/§VIII: "each victim can select a set of important ASes
// as their monitors to prevent being hijacked ... we will study the
// selection of vantage point to perform self-defense for different victims."
//
// We implement a victim-specific greedy coverage optimizer: given a victim
// and a budget of monitors, choose the ASes whose feeds would have exposed
// the largest number of simulated attacks against that victim, evaluated
// over a training set of candidate attackers. Greedy set-cover is the
// natural fit (detection coverage is a monotone set function of the monitor
// set) and gives the classic (1 − 1/e) guarantee for coverage-maximization.
#pragma once

#include <cstdint>
#include <vector>

#include "attack/impact.h"
#include "detect/evaluation.h"
#include "util/thread_pool.h"

namespace asppi::detect {

struct PlacementConfig {
  // Monitors to select.
  std::size_t budget = 20;
  // Candidate monitor pool size (top-degree prefilter; 0 = every AS).
  std::size_t candidate_pool = 200;
  // Training attackers sampled around the victim.
  std::size_t training_attacks = 40;
  std::uint64_t seed = 1;
  int lambda = 3;
  // Optional parallelism for the training simulations and the per-round
  // candidate scoring. The attacker sample, the greedy pick order, and the
  // resulting monitor set are identical for any thread count: attackers are
  // drawn serially before simulating, and each round's argmax is resolved
  // by (gain desc, candidate index asc) over fully materialized gains.
  util::ThreadPool* pool = nullptr;
};

struct PlacementResult {
  std::vector<Asn> monitors;          // selected, in pick order
  std::size_t training_effective = 0;  // training attacks that polluted
  std::size_t training_covered = 0;    // of those, detected by the selection
  double TrainingCoverage() const {
    return training_effective == 0
               ? 0.0
               : static_cast<double>(training_covered) /
                     static_cast<double>(training_effective);
  }
};

// Greedy victim-specific monitor selection on `graph`.
PlacementResult SelectMonitorsForVictim(const topo::AsGraph& graph, Asn victim,
                                        const PlacementConfig& config);

}  // namespace asppi::detect
