// Vantage-point observations for the detector.
//
// Route monitors (RouteViews/RIPE-style collectors) export the best route of
// the ASes that peer with them. Because BGP forwarding is destination-based,
// every *suffix* of an observed AS path is itself the best route of the AS at
// that position — so a set of monitor paths implies routes for many more ASes
// than there are monitors (paper §V-A: "the total ASes n are larger than the
// number of monitors"). RouteSnapshot performs that expansion.
#pragma once

#include <map>
#include <utility>
#include <vector>

#include "bgp/as_path.h"

namespace asppi::detect {

using bgp::Asn;
using bgp::AsPath;

// The observed routing state at one instant: AS → its (known) best path.
class RouteSnapshot {
 public:
  // How suffix-expansion conflicts (two observations implying different
  // routes for the same AS) are resolved:
  //   kFirstObserved — the earliest entry in `monitor_paths` order wins.
  //     Right for converged snapshots, where observations of the same AS
  //     never genuinely disagree and the order is an arbitrary tiebreak.
  //   kLatestObserved — the latest entry in `monitor_paths` order wins.
  //     Right for stream-derived state mid-churn, where a later observation
  //     supersedes an earlier one; callers pass entries in recency order
  //     (ascending update sequence). stream::IncrementalDetector maintains
  //     exactly this resolution incrementally, which is what makes the
  //     batch/stream equivalence contract well-defined (DESIGN.md §4e).
  // Within a single observed path, the first derived entry per AS always
  // wins under either policy (a path implies at most one route per AS).
  enum class ConflictPolicy { kFirstObserved, kLatestObserved };

  // Builds the snapshot from monitor observations, expanding each path's
  // suffixes: for a path [a … x <x's route>], AS x's route is everything
  // after x's (possibly prepended) run.
  static RouteSnapshot FromMonitors(
      const std::vector<std::pair<Asn, AsPath>>& monitor_paths,
      ConflictPolicy policy = ConflictPolicy::kFirstObserved);

  const AsPath* RouteOf(Asn asn) const;
  const std::map<Asn, AsPath>& Routes() const { return routes_; }
  std::size_t Size() const { return routes_.size(); }

 private:
  std::map<Asn, AsPath> routes_;
};

// The (owner, route) entries implied by one observed path: the monitor's own
// full path plus, for each prepend-run boundary, the suffix after that run.
// First occurrence per owner wins (relevant only for looped paths). Shared by
// RouteSnapshot::FromMonitors and the stream pipeline's incremental index so
// both expansions are identical by construction.
std::vector<std::pair<Asn, AsPath>> ExpandObservedPath(Asn monitor,
                                                       const AsPath& path);

}  // namespace asppi::detect
