// Vantage-point observations for the detector.
//
// Route monitors (RouteViews/RIPE-style collectors) export the best route of
// the ASes that peer with them. Because BGP forwarding is destination-based,
// every *suffix* of an observed AS path is itself the best route of the AS at
// that position — so a set of monitor paths implies routes for many more ASes
// than there are monitors (paper §V-A: "the total ASes n are larger than the
// number of monitors"). RouteSnapshot performs that expansion.
#pragma once

#include <map>
#include <utility>
#include <vector>

#include "bgp/as_path.h"

namespace asppi::detect {

using bgp::Asn;
using bgp::AsPath;

// The observed routing state at one instant: AS → its (known) best path.
class RouteSnapshot {
 public:
  // Builds the snapshot from monitor observations, expanding each path's
  // suffixes: for a path [a … x <x's route>], AS x's route is everything
  // after x's (possibly prepended) run. Conflicting suffixes for the same AS
  // keep the first observed (converged data never conflicts).
  static RouteSnapshot FromMonitors(
      const std::vector<std::pair<Asn, AsPath>>& monitor_paths);

  const AsPath* RouteOf(Asn asn) const;
  const std::map<Asn, AsPath>& Routes() const { return routes_; }
  std::size_t Size() const { return routes_.size(); }

 private:
  std::map<Asn, AsPath> routes_;
};

}  // namespace asppi::detect
