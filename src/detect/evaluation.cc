#include "detect/evaluation.h"

#include <algorithm>
#include <limits>
#include <set>

#include "util/check.h"
#include "util/metrics.h"
#include "util/rng.h"

namespace asppi::detect {

namespace {

using MonitorPaths = std::vector<std::pair<Asn, AsPath>>;

// Harness-level counters: one evaluation per (attacker, victim) instance,
// one replayed round per hop-wave snapshot handed to the detector.
struct EvalMetrics {
  util::Counter evaluations{"detect.evaluations"};
  util::Counter rounds_replayed{"detect.rounds_replayed"};
};

EvalMetrics& Instr() {
  static EvalMetrics* m = new EvalMetrics();
  return *m;
}

// Best-path observations for `monitors`; ASes without routes are skipped.
// The attacker is excluded — it would not feed honest data to a collector.
MonitorPaths PathsAt(const bgp::PropagationResult& state,
                     const std::vector<Asn>& monitors, Asn attacker) {
  MonitorPaths out;
  out.reserve(monitors.size());
  for (Asn m : monitors) {
    if (m == attacker) continue;
    const auto& best = state.BestAt(m);
    if (best.has_value()) out.emplace_back(m, best->path);
  }
  return out;
}

}  // namespace

DetectionResult EvaluateDetection(const attack::AttackSimulator& simulator,
                                  Asn victim, Asn attacker,
                                  const std::vector<Asn>& monitors,
                                  const DetectionConfig& config) {
  attack::AttackOutcome outcome = simulator.RunAsppInterception(
      victim, attacker, config.lambda, config.violate_valley_free);
  return EvaluateDetectionOnOutcome(simulator.Graph(), outcome, monitors,
                                    config);
}

DetectionResult EvaluateDetectionOnOutcome(const topo::AsGraph& graph,
                                           const attack::AttackOutcome& outcome,
                                           const std::vector<Asn>& monitors,
                                           const DetectionConfig& config) {
  Instr().evaluations.Add();
  DetectionResult result;
  const Asn victim = outcome.victim;
  const Asn attacker = outcome.attacker;
  result.polluted_count = outcome.newly_polluted.size();
  result.effective = !outcome.newly_polluted.empty();
  if (!result.effective) return result;

  AsppDetector::Options options;
  options.enable_hints = config.hints;
  options.enable_victim_policy = config.victim_aware;
  AsppDetector detector(&graph, options);

  bgp::PrependPolicy victim_policy;
  victim_policy.SetDefault(victim, outcome.lambda);
  const bgp::PrependPolicy* policy =
      config.victim_aware ? &victim_policy : nullptr;

  const MonitorPaths before = PathsAt(*outcome.before, monitors, attacker);

  // Detection timing: replay the attack's hop-waves. At round r each monitor
  // shows its post-attack route if it had switched by r, else its old route.
  // The first round whose snapshot raises an alarm is the detection round.
  std::set<int> rounds;
  for (Asn m : monitors) {
    if (m == attacker) continue;
    int r = outcome.after.FirstChangeRound(m);
    if (r >= 0) rounds.insert(r);
  }

  for (int round : rounds) {
    Instr().rounds_replayed.Add();
    MonitorPaths current;
    current.reserve(before.size());
    for (Asn m : monitors) {
      if (m == attacker) continue;
      int changed = outcome.after.FirstChangeRound(m);
      const auto& best = (changed >= 0 && changed <= round)
                             ? outcome.after.BestAt(m)
                             : outcome.before->BestAt(m);
      if (best.has_value()) current.emplace_back(m, best->path);
    }
    std::vector<Alarm> alarms = detector.Scan(victim, before, current, policy);
    if (alarms.empty()) continue;
    result.detected = true;
    result.detected_high = HasHighConfidence(alarms);
    result.suspect_correct = FindAccusing(alarms, attacker) != nullptr;
    result.detection_round = round;
    break;
  }

  if (result.detected) {
    // Synchronous rounds discretize asynchronous BGP: within a round,
    // updates process in arbitrary order, so an AS and the alarming monitor
    // that switched in the same round are ordered by a deterministic
    // per-AS jitter. Without this, every same-wave AS would count as
    // "polluted before detection", biasing the Fig. 14 CDF pessimistically.
    auto jitter = [](Asn asn) {
      return static_cast<double>(util::DeriveSeed(asn, 0x31773)) /
             static_cast<double>(std::numeric_limits<std::uint64_t>::max());
    };
    double monitor_jitter = 1.0;
    for (Asn m : monitors) {
      if (m == attacker) continue;
      if (outcome.after.FirstChangeRound(m) == result.detection_round) {
        monitor_jitter = std::min(monitor_jitter, jitter(m));
      }
    }
    std::size_t already = 0;
    for (Asn asn : outcome.newly_polluted) {
      int r = outcome.after.FirstChangeRound(asn);
      if (r < 0) continue;
      if (r < result.detection_round ||
          (r == result.detection_round && jitter(asn) < monitor_jitter)) {
        ++already;
      }
    }
    result.polluted_before_detection =
        static_cast<double>(already) /
        static_cast<double>(outcome.newly_polluted.size());
  }
  return result;
}

DetectionRates EvaluateDetectionRates(
    const attack::AttackSimulator& simulator,
    const std::vector<std::pair<Asn, Asn>>& attacker_victim_pairs,
    const std::vector<Asn>& monitors, const DetectionConfig& config,
    util::ThreadPool* pool) {
  std::vector<DetectionResult> results(attacker_victim_pairs.size());
  util::ParallelFor(pool, attacker_victim_pairs.size(), [&](std::size_t i) {
    const auto& [attacker, victim] = attacker_victim_pairs[i];
    results[i] =
        EvaluateDetection(simulator, victim, attacker, monitors, config);
  });
  DetectionRates rates;
  for (const DetectionResult& result : results) {
    ++rates.instances;
    if (!result.effective) continue;
    ++rates.effective;
    if (result.detected) ++rates.detected;
    if (result.detected_high) ++rates.detected_high;
    if (result.suspect_correct) ++rates.suspect_correct;
  }
  return rates;
}

}  // namespace asppi::detect
