// End-to-end detection evaluation: simulate an ASPP interception, feed the
// monitors' before/after routes to the detector, and measure whether (and how
// early) the attack is caught (paper Figs. 13–14).
#pragma once

#include <vector>

#include "attack/impact.h"
#include "detect/detector.h"
#include "util/thread_pool.h"

namespace asppi::detect {

struct DetectionConfig {
  int lambda = 3;
  bool violate_valley_free = false;
  // Give the detector the victim's own prepend policy (victim-aware rule).
  bool victim_aware = false;
  // Enable relationship-based hint rules.
  bool hints = true;
};

struct DetectionResult {
  // Did the attack pollute at least one AS? (Ineffective attacks produce no
  // routing change and are undetectable-but-harmless.)
  bool effective = false;
  std::size_t polluted_count = 0;

  bool detected = false;        // any alarm
  bool detected_high = false;   // high-confidence alarm
  bool suspect_correct = false;  // some alarm names the true attacker

  // Synchronous round (hop-wave from the attacker) at which the first
  // alarming monitor observed its route change; -1 if undetected.
  int detection_round = -1;
  // Of the eventually-polluted ASes, the fraction already polluted by
  // `detection_round` (1.0 if undetected — everything was polluted first).
  double polluted_before_detection = 1.0;
};

// Runs one attack instance and evaluates detection with the given monitors.
DetectionResult EvaluateDetection(const attack::AttackSimulator& simulator,
                                  Asn victim, Asn attacker,
                                  const std::vector<Asn>& monitors,
                                  const DetectionConfig& config);

// Evaluates detection on an already-simulated attack (lets sweeps over
// monitor sets reuse one expensive simulation). `config.lambda` and
// `config.violate_valley_free` are ignored here — they are properties of
// `outcome`.
DetectionResult EvaluateDetectionOnOutcome(const topo::AsGraph& graph,
                                           const attack::AttackOutcome& outcome,
                                           const std::vector<Asn>& monitors,
                                           const DetectionConfig& config);

// Convenience: detection rate over many attacker/victim pairs =
// detected / effective (both high-confidence-only and any-alarm variants).
struct DetectionRates {
  std::size_t instances = 0;
  std::size_t effective = 0;
  std::size_t detected = 0;
  std::size_t detected_high = 0;
  std::size_t suspect_correct = 0;
  double DetectionRate() const {
    return effective == 0 ? 0.0
                          : static_cast<double>(detected) /
                                static_cast<double>(effective);
  }
  double HighConfidenceRate() const {
    return effective == 0 ? 0.0
                          : static_cast<double>(detected_high) /
                                static_cast<double>(effective);
  }
};

// `pool` (optional) evaluates the pairs in parallel; per-pair results are
// accumulated in input order, so the rates are identical for any thread
// count. Give `simulator` a BaselineCache to also dedupe the attack-free
// propagation across pairs that share a victim.
DetectionRates EvaluateDetectionRates(
    const attack::AttackSimulator& simulator,
    const std::vector<std::pair<Asn, Asn>>& attacker_victim_pairs,
    const std::vector<Asn>& monitors, const DetectionConfig& config,
    util::ThreadPool* pool = nullptr);

}  // namespace asppi::detect
