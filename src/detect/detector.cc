#include "detect/detector.h"

#include <algorithm>
#include <set>
#include <tuple>

#include "util/metrics.h"
#include "util/strings.h"

namespace asppi::detect {

namespace {

using topo::Relation;

// Detector workload counters: observations are monitor routes compared per
// Scan, triggers are padding-decrease candidates entering the Fig.-4 rules.
struct DetectorMetrics {
  util::Counter scans{"detect.scans"};
  util::Counter observations{"detect.observations_scanned"};
  util::Counter triggers{"detect.trigger_evaluations"};
  util::Counter alarms{"detect.alarms"};
};

DetectorMetrics& Instr() {
  static DetectorMetrics* m = new DetectorMetrics();
  return *m;
}

// Splits a route to the victim into (core, λ): core is the path with the
// trailing run of victim copies removed, λ the run length. Returns nullopt
// for routes that do not end at the victim or contain it mid-path (looped or
// foreign routes — not this detector's business).
struct StrippedRoute {
  std::vector<Asn> core;
  int lambda = 0;
};

std::optional<StrippedRoute> StripVictimPadding(const AsPath& path,
                                                Asn victim) {
  const auto& hops = path.Hops();
  if (hops.empty() || hops.back() != victim) return std::nullopt;
  StrippedRoute out;
  std::size_t end = hops.size();
  while (end > 0 && hops[end - 1] == victim) {
    --end;
    ++out.lambda;
  }
  out.core.assign(hops.begin(), hops.begin() + static_cast<long>(end));
  for (Asn asn : out.core) {
    if (asn == victim) return std::nullopt;  // victim mid-path: malformed
  }
  return out;
}

bool EndsWith(const std::vector<Asn>& hay, const std::vector<Asn>& tail) {
  if (hay.size() < tail.size()) return false;
  return std::equal(tail.begin(), tail.end(), hay.end() - static_cast<long>(tail.size()));
}

}  // namespace

AsppDetector::AsppDetector(const topo::AsGraph* graph, const Options& options)
    : graph_(graph), options_(options) {}

std::vector<Alarm> AsppDetector::DetectOne(Asn victim, Asn observer,
                                           const AsPath& route_now,
                                           const AsPath& route_before,
                                           const RouteSnapshot& current) const {
  std::vector<Alarm> alarms;
  auto now = StripVictimPadding(route_now, victim);
  auto before = StripVictimPadding(route_before, victim);
  if (!now || !before) return alarms;
  if (now->lambda >= before->lambda) return alarms;  // padding did not drop
  Instr().triggers.Add();
  // A core of length < 2 means the observed branch leaves the victim
  // directly; distinct first hops may legitimately receive different padding
  // (per-neighbor traffic engineering), so the segment rules need ≥ 2 hops.
  if (now->core.size() < 2) return alarms;

  const Asn suspect = now->core.front();

  // --- high-confidence rule -------------------------------------------------
  // The segment after the suspect, [AS_{I-1} … AS_1], is the chain the
  // padding travelled through. Every honest AS forwards ONE path, so any
  // other observed route containing that same chain directly before the
  // victim must carry the same padding count. More padding behind the same
  // chain ⇒ AS_I removed copies (paper Fig. 4, "any path containing the same
  // path segment").
  const std::vector<Asn> segment(now->core.begin() + 1, now->core.end());
  for (const auto& [other, other_path] : current.Routes()) {
    if (other == observer) continue;
    auto stripped = StripVictimPadding(other_path, victim);
    if (!stripped) continue;
    if (!EndsWith(stripped->core, segment)) continue;
    if (now->lambda < stripped->lambda) {
      Alarm alarm;
      alarm.confidence = Alarm::Confidence::kHigh;
      alarm.suspect = suspect;
      alarm.observer = observer;
      alarm.pads_removed = stripped->lambda - now->lambda;
      alarm.detail = util::Format(
          "chain behind AS%u observed with %d pads at AS%u but %d pads here",
          static_cast<unsigned>(suspect), stripped->lambda,
          static_cast<unsigned>(other), now->lambda);
      alarms.push_back(std::move(alarm));
      break;  // one independent witness suffices
    }
  }
  if (!alarms.empty()) return alarms;

  // --- hint rules (need relationships) ---------------------------------------
  if (graph_ == nullptr || !options_.enable_hints) return alarms;
  const Asn as_i1 = now->core[1];  // AS_{I-1}
  for (const auto& [other, other_path] : current.Routes()) {
    if (other == observer) continue;
    auto stripped = StripVictimPadding(other_path, victim);
    if (!stripped || stripped->core.empty()) continue;
    if (now->lambda >= stripped->lambda) continue;
    // Another AS holds a strictly longer padded route.
    if (stripped->core.size() + static_cast<std::size_t>(stripped->lambda) <=
        now->core.size() + static_cast<std::size_t>(now->lambda)) {
      continue;
    }
    const Asn as_l = stripped->core.front();
    if (!graph_->HasAs(as_l) || !graph_->HasAs(as_i1)) continue;
    auto rel = graph_->RelationOf(as_l, as_i1);  // role of AS_{I-1} at AS'_L
    if (!rel) continue;

    bool suspicious = false;
    std::string why;
    if (*rel == Relation::kCustomer) {
      // AS'_L's customer had the short route and would have exported it.
      suspicious = true;
      why = "customer withheld shorter route";
    } else if (*rel == Relation::kPeer) {
      // Peer-learned shorter routes are exportable when customer-learned:
      // suspicious only if the short route has no peer link (pure
      // customer chain), which AS_{I-1} would export to its peer AS'_L.
      bool any_peer_link = false;
      std::vector<Asn> chain = now->core;
      chain.push_back(victim);
      for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
        auto link = graph_->RelationOf(chain[i], chain[i + 1]);
        if (link && *link == Relation::kPeer) any_peer_link = true;
      }
      if (!any_peer_link) {
        suspicious = true;
        why = "peer withheld customer-chain route";
      }
    } else if (*rel == Relation::kProvider) {
      const Asn as_l1 = stripped->core.size() >= 2 ? stripped->core[1] : victim;
      auto up = graph_->RelationOf(as_l, as_l1);  // role of AS'_{L-1} at AS'_L
      if (up && *up == Relation::kProvider) {
        suspicious = true;
        why = "provider preferred longer provider route";
      }
    }
    if (suspicious) {
      Alarm alarm;
      alarm.confidence = Alarm::Confidence::kPossible;
      alarm.suspect = suspect;
      alarm.observer = observer;
      alarm.pads_removed = stripped->lambda - now->lambda;
      alarm.detail = util::Format("%s (vs AS%u)", why.c_str(),
                                  static_cast<unsigned>(as_l));
      alarms.push_back(std::move(alarm));
      break;  // one hint per observer is enough
    }
  }
  return alarms;
}

std::vector<Alarm> AsppDetector::Scan(
    Asn victim,
    const std::vector<std::pair<Asn, AsPath>>& previous_monitor_paths,
    const std::vector<std::pair<Asn, AsPath>>& current_monitor_paths,
    const bgp::PrependPolicy* victim_policy) const {
  RouteSnapshot previous = RouteSnapshot::FromMonitors(previous_monitor_paths);
  RouteSnapshot current = RouteSnapshot::FromMonitors(current_monitor_paths);
  Instr().scans.Add();
  Instr().observations.Add(current_monitor_paths.size());

  std::vector<Alarm> alarms;
  std::set<std::tuple<int, Asn, Asn>> seen;
  auto add_unique = [&](Alarm alarm) {
    auto key = std::make_tuple(static_cast<int>(alarm.confidence),
                               alarm.suspect, alarm.observer);
    if (seen.insert(key).second) alarms.push_back(std::move(alarm));
  };

  for (const auto& [observer, route_now] : current.Routes()) {
    const AsPath* route_before = previous.RouteOf(observer);
    if (route_before == nullptr) continue;
    for (Alarm& alarm :
         DetectOne(victim, observer, route_now, *route_before, current)) {
      add_unique(std::move(alarm));
    }
  }

  // Victim-aware rule: the owner compares observed padding on each branch
  // with what it actually announced to that first neighbor.
  if (victim_policy != nullptr && options_.enable_victim_policy) {
    for (const auto& [observer, route_now] : current.Routes()) {
      auto stripped = StripVictimPadding(route_now, victim);
      if (!stripped || stripped->core.empty()) continue;
      const Asn first_neighbor = stripped->core.back();
      const int announced = victim_policy->PadsFor(victim, first_neighbor);
      if (stripped->lambda < announced) {
        Alarm alarm;
        alarm.confidence = Alarm::Confidence::kHigh;
        alarm.suspect = first_neighbor;
        alarm.observer = observer;
        alarm.pads_removed = announced - stripped->lambda;
        alarm.detail = util::Format(
            "victim announced %d pads toward AS%u but only %d observed",
            announced, static_cast<unsigned>(first_neighbor),
            stripped->lambda);
        add_unique(std::move(alarm));
      }
    }
  }
  Instr().alarms.Add(alarms.size());
  return alarms;
}

bool HasHighConfidence(const std::vector<Alarm>& alarms) {
  for (const Alarm& alarm : alarms) {
    if (alarm.confidence == Alarm::Confidence::kHigh) return true;
  }
  return false;
}

const Alarm* FindAccusing(const std::vector<Alarm>& alarms, Asn suspect) {
  for (const Alarm& alarm : alarms) {
    if (alarm.suspect == suspect) return &alarm;
  }
  return nullptr;
}

}  // namespace asppi::detect
