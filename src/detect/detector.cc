#include "detect/detector.h"

#include <set>
#include <tuple>

#include "detect/rules.h"
#include "util/metrics.h"

namespace asppi::detect {

namespace {

// Detector workload counters: observations are monitor routes compared per
// Scan, triggers are padding-decrease candidates entering the Fig.-4 rules.
struct DetectorMetrics {
  util::Counter scans{"detect.scans"};
  util::Counter observations{"detect.observations_scanned"};
  util::Counter triggers{"detect.trigger_evaluations"};
  util::Counter alarms{"detect.alarms"};
};

DetectorMetrics& Instr() {
  static DetectorMetrics* m = new DetectorMetrics();
  return *m;
}

}  // namespace

bool AlarmLess(const Alarm& a, const Alarm& b) {
  return std::tie(a.observer, a.confidence, a.suspect, a.pads_removed,
                  a.detail) < std::tie(b.observer, b.confidence, b.suspect,
                                       b.pads_removed, b.detail);
}

AsppDetector::AsppDetector(const topo::AsGraph* graph, const Options& options)
    : graph_(graph), options_(options) {}

std::vector<Alarm> AsppDetector::DetectOne(Asn victim, Asn observer,
                                           const AsPath& route_now,
                                           const AsPath& route_before,
                                           const RouteSnapshot& current) const {
  std::vector<Alarm> alarms;
  auto now = StripVictimPadding(route_now, victim);
  auto before = StripVictimPadding(route_before, victim);
  if (!now || !before) return alarms;
  if (now->lambda >= before->lambda) return alarms;  // padding did not drop
  Instr().triggers.Add();
  // A core of length < 2 means the observed branch leaves the victim
  // directly; distinct first hops may legitimately receive different padding
  // (per-neighbor traffic engineering), so the segment rules need ≥ 2 hops.
  if (now->core.size() < 2) return alarms;

  StrippedView view = BuildStrippedView(current, victim);
  if (auto alarm = HighConfidenceAlarm(observer, *now, view)) {
    alarms.push_back(std::move(*alarm));
    return alarms;
  }
  if (graph_ == nullptr || !options_.enable_hints) return alarms;
  if (auto alarm = HintAlarm(*graph_, victim, observer, *now, view)) {
    alarms.push_back(std::move(*alarm));
  }
  return alarms;
}

std::vector<Alarm> AsppDetector::Scan(
    Asn victim,
    const std::vector<std::pair<Asn, AsPath>>& previous_monitor_paths,
    const std::vector<std::pair<Asn, AsPath>>& current_monitor_paths,
    const bgp::PrependPolicy* victim_policy) const {
  RouteSnapshot previous = RouteSnapshot::FromMonitors(
      previous_monitor_paths, options_.conflict_policy);
  RouteSnapshot current = RouteSnapshot::FromMonitors(current_monitor_paths,
                                                      options_.conflict_policy);
  Instr().scans.Add();
  Instr().observations.Add(current_monitor_paths.size());

  // Strip every observed route once; all rules run over these views.
  StrippedView prev_view = BuildStrippedView(previous, victim);
  StrippedView cur_view = BuildStrippedView(current, victim);

  std::vector<Alarm> alarms;
  std::set<std::tuple<int, Asn, Asn>> seen;
  auto add_unique = [&](Alarm alarm) {
    auto key = std::make_tuple(static_cast<int>(alarm.confidence),
                               alarm.suspect, alarm.observer);
    if (seen.insert(key).second) alarms.push_back(std::move(alarm));
  };

  for (const auto& [observer, now] : cur_view) {
    auto before = prev_view.find(observer);
    if (before == prev_view.end()) continue;
    if (now.lambda >= before->second.lambda) continue;  // padding did not drop
    Instr().triggers.Add();
    if (now.core.size() < 2) continue;  // per-neighbor TE is legitimate
    if (auto alarm = HighConfidenceAlarm(observer, now, cur_view)) {
      add_unique(std::move(*alarm));
      continue;
    }
    if (graph_ != nullptr && options_.enable_hints) {
      if (auto alarm = HintAlarm(*graph_, victim, observer, now, cur_view)) {
        add_unique(std::move(*alarm));
      }
    }
  }

  // Victim-aware rule: the owner compares observed padding on each branch
  // with what it actually announced to that first neighbor.
  if (victim_policy != nullptr && options_.enable_victim_policy) {
    for (const auto& [observer, now] : cur_view) {
      if (auto alarm = VictimAwareAlarm(victim, observer, now, *victim_policy)) {
        add_unique(std::move(*alarm));
      }
    }
  }
  Instr().alarms.Add(alarms.size());
  return alarms;
}

bool HasHighConfidence(const std::vector<Alarm>& alarms) {
  for (const Alarm& alarm : alarms) {
    if (alarm.confidence == Alarm::Confidence::kHigh) return true;
  }
  return false;
}

const Alarm* FindAccusing(const std::vector<Alarm>& alarms, Asn suspect) {
  for (const Alarm& alarm : alarms) {
    if (alarm.suspect == suspect) return &alarm;
  }
  return nullptr;
}

}  // namespace asppi::detect
