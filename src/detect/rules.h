// The Fig.-4 detection rules as free functions over padding-stripped views.
//
// Both detector frontends — the batch `AsppDetector` (converged snapshot
// pairs) and the online `stream::IncrementalDetector` (per-event updates over
// sharded incremental state) — must raise byte-identical alarms on the same
// observation set. The only way to keep that contract honest is to have one
// implementation of each rule, parameterized on a `StrippedView` (the
// observation set after victim-padding stripping, keyed by observer in
// ascending ASN order, which fixes the witness-selection order).
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "detect/detector.h"
#include "detect/observation.h"

namespace asppi::detect {

// A route to the victim split into (core, λ): core is the path with the
// trailing run of victim copies removed, λ the run length. Strip fails
// (nullopt) for routes that do not end at the victim or contain it mid-path
// (looped or foreign routes — not this detector's business).
struct StrippedRoute {
  std::vector<Asn> core;
  int lambda = 0;
};

std::optional<StrippedRoute> StripVictimPadding(const AsPath& path,
                                                Asn victim);

// True when `hay` ends with `tail` (element-wise).
bool PathEndsWith(const std::vector<Asn>& hay, const std::vector<Asn>& tail);

// The observation set after stripping: observer → stripped route, ascending
// by observer ASN. Unstrippable routes are omitted (every rule skips them).
using StrippedView = std::map<Asn, StrippedRoute>;

StrippedView BuildStrippedView(const RouteSnapshot& current, Asn victim);

// Assembles the high-confidence alarm for a found witness. Exposed so the
// incremental detector's segment index can produce alarms byte-identical to
// the linear scan's once it has located the same witness.
Alarm MakeHighConfidenceAlarm(Asn suspect, Asn observer, int lambda_now,
                              Asn witness, int witness_lambda);

// High-confidence rule (paper Fig. 4): the segment after the suspect,
// [AS_{I-1} … AS_1], is the chain the padding travelled through; any other
// observed route whose core ends with that chain but carries more padding
// proves the suspect removed copies. The witness is the first qualifying
// observer in ascending ASN order. Requires now.core.size() >= 2.
std::optional<Alarm> HighConfidenceAlarm(Asn observer,
                                         const StrippedRoute& now,
                                         const StrippedView& view);

// Relationship hint rules (lower confidence): another AS holds a strictly
// longer padded route that routing policy says it should not prefer. The
// witness is the first qualifying observer in ascending ASN order. Requires
// now.core.size() >= 2 and a relationship graph.
std::optional<Alarm> HintAlarm(const topo::AsGraph& graph, Asn victim,
                               Asn observer, const StrippedRoute& now,
                               const StrippedView& view);

// Victim-aware rule (paper §V-B): the prefix owner knows its own prepend
// policy; observed padding toward first neighbor W below what the victim
// announced to W is proof of stripping on that branch.
std::optional<Alarm> VictimAwareAlarm(Asn victim, Asn observer,
                                      const StrippedRoute& now,
                                      const bgp::PrependPolicy& policy);

}  // namespace asppi::detect
