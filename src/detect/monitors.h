// Monitor (vantage point) selection strategies (paper §VI-C ranks ASes by
// degree and takes the top d; alternatives provided for the placement study).
#pragma once

#include <cstdint>
#include <vector>

#include "topology/as_graph.h"
#include "topology/tiers.h"

namespace asppi::detect {

using topo::Asn;

// Top-`count` ASes by decreasing degree (the paper's strategy).
std::vector<Asn> TopDegreeMonitors(const topo::AsGraph& graph,
                                   std::size_t count);

// Uniformly random monitors (baseline for the placement comparison).
std::vector<Asn> RandomMonitors(const topo::AsGraph& graph, std::size_t count,
                                std::uint64_t seed);

// All tier-1 ASes, then highest-degree others to reach `count`.
std::vector<Asn> Tier1FirstMonitors(const topo::AsGraph& graph,
                                    const topo::TierInfo& tiers,
                                    std::size_t count);

}  // namespace asppi::detect
