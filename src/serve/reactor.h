// ReactorServer: QueryService behind the net:: epoll reactor.
//
// Where the threaded Server spends a thread per connection, this front end
// runs N event-loop shards (net::Server) and scales to connection counts
// far beyond the thread count — perf_serve's ceiling probe gates it at >= 4x
// the threaded server's max_connections. Each readiness event drains a
// connection's complete request lines as ONE batch:
//
//   loop thread: admission (one inflight slot per batch — a batch is one
//                pool worker's worth of serialized work, and each connection
//                carries at most one, so batch slots measure cross-connection
//                demand exactly like the threaded server's per-request gate;
//                over the bound the whole batch is answered "overloaded") →
//                pin the current Epoch → submit to the shared ThreadPool;
//   pool thread: deadline check (stale batches shed wholesale), reload
//                interception (HandleAdminLine — identical bytes to the
//                threaded server), then QueryService::HandleBatch (batched
//                mode: intra-batch dedup memo) or per-line Handle (unbatched
//                — the perf_serve ablation), then conn->Reply(responses);
//   loop thread: Reply appends, flushes, dispatches the next batch.
//
// Per-connection ordering holds because net::Conn keeps at most one batch in
// flight; responses are request-ordered with no sequence numbers. Epochs are
// pinned per batch: a SIGHUP swap mid-batch means this batch answers from
// the old generation and the next batch picks up the new one — no query is
// ever dropped or torn across generations.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "net/server.h"
#include "serve/epoch.h"
#include "serve/service.h"
#include "util/thread_pool.h"

namespace asppi::serve {

struct ReactorOptions {
  int port = 0;  // 0 = ephemeral
  int shards = 2;
  net::PollerBackend backend = net::PollerBackend::kAuto;
  std::size_t max_connections = 1024;
  // Queued-or-executing BATCHES (<= one per connection) before shedding.
  std::size_t max_inflight = 128;
  int deadline_ms = 10000;
  int slow_query_ms = 1000;
  bool log_slow_queries = true;
  // false = per-line QueryService::Handle even when lines arrive together
  // (the batching ablation perf_serve measures). Wire bytes are identical
  // either way; only the amortization differs.
  bool batch = true;
  std::size_t max_line_bytes = 64 * 1024;
  std::size_t max_write_backlog = 4 * 1024 * 1024;
};

class ReactorServer {
 public:
  // `epochs` (holding at least one installed epoch by Start) and `pool`
  // must outlive the server.
  ReactorServer(EpochManager* epochs, util::ThreadPool* pool,
                const ReactorOptions& options = ReactorOptions());
  ~ReactorServer();

  ReactorServer(const ReactorServer&) = delete;
  ReactorServer& operator=(const ReactorServer&) = delete;

  std::string Start();
  // Graceful drain; idempotent. Blocks until in-flight batches have flushed
  // AND every pool task has released its connection, so the ThreadPool holds
  // no reference into the reactor once Stop returns (whatever order the
  // caller destroys them in).
  void Stop();

  int Port() const;
  net::PollerBackend Backend() const;
  ServerStats Stats() const;

 private:
  void HandleBatch(const std::shared_ptr<net::Conn>& conn,
                   std::vector<std::string> lines);

  EpochManager* epochs_;
  util::ThreadPool* pool_;
  ReactorOptions options_;
  std::unique_ptr<net::Server> net_server_;

  std::atomic<std::size_t> inflight_{0};
  std::atomic<std::uint64_t> overload_rejects_{0};
  std::atomic<std::uint64_t> deadline_exceeded_{0};
  std::atomic<std::uint64_t> slow_queries_{0};
  std::atomic<std::uint64_t> backlog_sheds_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batched_requests_{0};
  std::atomic<bool> running_{false};
};

}  // namespace asppi::serve
