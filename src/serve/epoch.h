// Snapshot epochs: hot-reload without dropping a query.
//
// An Epoch is one immutable serving generation — a loaded corpus (usually a
// data::Snapshot) plus the QueryService built over it, stamped with a
// monotonically increasing id. The EpochManager holds the current epoch
// behind a shared_ptr; swapping in a new one is a pointer assignment under a
// short mutex, and every in-flight request PINS the epoch it started on (the
// threaded server pins per request, the reactor per batch). The old
// generation — snapshot mmap, graph, caches — stays alive exactly until the
// last pinned query drops its reference, so a SIGHUP mid-burst loses
// nothing: queries racing the swap are answered by whichever epoch they
// pinned, never by a half-torn one.
//
// Two triggers feed Reload():
//   * SIGHUP — asppi_serve's signal loop observes the flag and calls it;
//   * the "reload" admin op — both servers intercept it via HandleAdminLine
//     before service dispatch, so the wire behavior is byte-identical
//     between the threaded server and the reactor.
// Reloads are serialized; concurrent triggers coalesce into distinct
// sequential generations rather than racing.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "data/snapshot.h"
#include "serve/service.h"

namespace asppi::serve {

struct Epoch {
  std::uint64_t id = 0;
  // Owns the corpus the service references (null for unowned/test epochs).
  std::shared_ptr<const data::Snapshot> snapshot;
  std::shared_ptr<QueryService> service;
};

// Loads `path` (binary snapshot) and builds the serving stack over it:
// active defense from the snapshot's kDefense tags, warmed baselines, the
// works. Returns "" on success. `base` supplies the non-corpus options
// (engine, lambda, cache budget); its active_defense is replaced by the
// snapshot's own deployment.
std::string MakeSnapshotEpoch(const std::string& path, std::uint64_t id,
                              const ServiceOptions& base,
                              std::shared_ptr<Epoch>* out);

// Wraps an externally-owned service (tests, the legacy Server ctor) as epoch
// `id` without taking ownership — the caller keeps the service alive.
std::shared_ptr<Epoch> MakeUnownedEpoch(QueryService* service,
                                        std::uint64_t id = 0);

class EpochManager {
 public:
  // Builds the next generation. Receives the id the new epoch must carry;
  // fills `out` and returns "" on success. Runs under the reload lock.
  using Reloader =
      std::function<std::string(std::uint64_t next_id,
                                std::shared_ptr<Epoch>* out)>;

  // The current generation; callers keep the returned shared_ptr for the
  // whole query (or batch) — that reference IS the pin.
  std::shared_ptr<Epoch> Current() const;

  // Publishes `epoch` as current and applies the registered stats provider
  // to its service.
  void Install(std::shared_ptr<Epoch> epoch);

  // Registers how new generations are built (unset = reload unavailable).
  void SetReloader(Reloader reloader);

  // The serving front end's live-counter hook, surfaced through the stats
  // op; applied to the current and every future epoch's service.
  void SetStatsProvider(std::function<ServerStats()> provider);

  // Builds generation current+1 via the reloader and installs it. Returns ""
  // on success; on failure the current epoch keeps serving. Serialized.
  std::string Reload();

  std::uint64_t CurrentId() const;
  std::uint64_t ReloadCount() const;

 private:
  mutable std::mutex mu_;
  std::shared_ptr<Epoch> current_;
  std::function<ServerStats()> stats_provider_;

  std::mutex reload_mu_;  // serializes Reload(); never held with mu_
  Reloader reloader_;
  std::atomic<std::uint64_t> reloads_{0};
};

// Intercepts the "reload" admin op. Returns true (with `*response` set, no
// trailing newline) when `line` parses as a reload request; false for every
// other line — including malformed ones, whose error bytes must come from
// the ordinary per-server path so the two servers stay byte-identical.
bool HandleAdminLine(EpochManager* epochs, std::string_view line,
                     std::string* response);

}  // namespace asppi::serve
