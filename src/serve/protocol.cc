#include "serve/protocol.h"

#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>

#include "util/json.h"
#include "util/strings.h"

namespace asppi::serve {

namespace {

using util::Json;

// Reads an integral JSON number member in [min, max]. Returns false (with
// `error` set) on a present-but-invalid member, true otherwise; `found` says
// whether the member existed.
bool ReadBoundedInt(const Json& object, const char* name, std::uint64_t min,
                    std::uint64_t max, std::uint64_t* out, bool* found,
                    std::string* error) {
  *found = false;
  const Json* member = object.Find(name);
  if (member == nullptr) return true;
  if (member->GetType() != Json::Type::kNumber) {
    *error = std::string("field '") + name + "' must be a number";
    return false;
  }
  const double v = member->AsDouble();
  if (!std::isfinite(v) || v != std::floor(v) || v < 0.0 ||
      v > 18446744073709549568.0) {
    *error = std::string("field '") + name + "' must be a non-negative integer";
    return false;
  }
  const auto value = static_cast<std::uint64_t>(v);
  if (value < min || value > max) {
    *error = std::string("field '") + name + "' out of range [" +
             std::to_string(min) + ", " + std::to_string(max) + "]";
    return false;
  }
  *out = value;
  *found = true;
  return true;
}

bool RequireAsn(const Json& object, const char* name, Asn* out,
                std::string* error) {
  std::uint64_t value = 0;
  bool found = false;
  if (!ReadBoundedInt(object, name,
                      /*min=*/0,
                      /*max=*/std::numeric_limits<std::uint32_t>::max(), &value,
                      &found, error)) {
    return false;
  }
  if (!found) {
    *error = std::string("missing required field '") + name + "'";
    return false;
  }
  *out = static_cast<Asn>(value);
  return true;
}

}  // namespace

const char* OpName(Op op) {
  switch (op) {
    case Op::kImpact:
      return "impact";
    case Op::kDetect:
      return "detect";
    case Op::kRoute:
      return "route";
    case Op::kDefense:
      return "defense";
    case Op::kStrategy:
      return "strategy";
    case Op::kStats:
      return "stats";
    case Op::kHealth:
      return "health";
    case Op::kReload:
      return "reload";
  }
  return "unknown";
}

std::string ParseRequest(std::string_view line, Request* out) {
  std::string error;
  std::optional<Json> parsed = Json::Parse(line, &error);
  if (!parsed.has_value()) return "bad request JSON: " + error;
  const Json& object = *parsed;
  if (!object.IsObject()) return "request must be a JSON object";

  const Json* op = object.Find("op");
  if (op == nullptr) return "missing required field 'op'";
  if (op->GetType() != Json::Type::kString) return "field 'op' must be a string";

  Request request;
  const std::string& name = op->AsString();
  if (name == "impact") {
    request.op = Op::kImpact;
  } else if (name == "detect") {
    request.op = Op::kDetect;
  } else if (name == "route") {
    request.op = Op::kRoute;
  } else if (name == "defense") {
    request.op = Op::kDefense;
  } else if (name == "strategy") {
    request.op = Op::kStrategy;
  } else if (name == "stats") {
    request.op = Op::kStats;
  } else if (name == "health") {
    request.op = Op::kHealth;
  } else if (name == "reload") {
    request.op = Op::kReload;
  } else {
    return "unknown op '" + name + "'";
  }

  if (request.op == Op::kImpact || request.op == Op::kDetect ||
      request.op == Op::kDefense || request.op == Op::kStrategy) {
    if (!RequireAsn(object, "victim", &request.victim, &error)) return error;
    if (!RequireAsn(object, "attacker", &request.attacker, &error)) return error;
    if (request.victim == request.attacker) {
      return "victim and attacker must differ";
    }
    // "violate" picks the fixed attacker's valley stance; the strategy op's
    // search space already spans policy-violating exports, so the knob does
    // not apply there (and must stay zero for CanonicalKey uniformity).
    if (request.op != Op::kStrategy) {
      const Json* violate = object.Find("violate");
      if (violate != nullptr) {
        if (violate->GetType() != Json::Type::kBool) {
          return "field 'violate' must be a boolean";
        }
        request.violate_valley_free = violate->AsBool();
      }
    }
  }
  if (request.op == Op::kRoute) {
    if (!RequireAsn(object, "origin", &request.victim, &error)) return error;
    if (!RequireAsn(object, "observer", &request.observer, &error)) return error;
  }
  if (request.op == Op::kImpact || request.op == Op::kDetect ||
      request.op == Op::kRoute || request.op == Op::kDefense ||
      request.op == Op::kStrategy) {
    std::uint64_t value = 0;
    bool found = false;
    if (!ReadBoundedInt(object, "lambda", 1, 64, &value, &found, &error)) {
      return error;
    }
    if (found) request.lambda = static_cast<int>(value);
  }
  if (request.op == Op::kStrategy) {
    std::uint64_t value = 0;
    bool found = false;
    if (!ReadBoundedInt(object, "beam", 1, 16, &value, &found, &error)) {
      return error;
    }
    if (found) request.beam = static_cast<std::size_t>(value);
    if (!ReadBoundedInt(object, "rounds", 1, 8, &value, &found, &error)) {
      return error;
    }
    if (found) request.search_rounds = static_cast<std::size_t>(value);
  }
  if (request.op == Op::kDefense) {
    request.deploy_frac = 1.0;
    request.deploy_kinds = defense::kAllPolicies;
    request.deploy_seed = 1;
    const Json* strategy = object.Find("strategy");
    if (strategy != nullptr) {
      if (strategy->GetType() != Json::Type::kString) {
        return "field 'strategy' must be a string";
      }
      const std::optional<defense::Strategy> parsed_strategy =
          defense::ParseStrategy(strategy->AsString());
      if (!parsed_strategy.has_value()) {
        return "unknown strategy '" + strategy->AsString() + "'";
      }
      request.deploy_strategy = *parsed_strategy;
    }
    const Json* frac = object.Find("frac");
    if (frac != nullptr) {
      if (frac->GetType() != Json::Type::kNumber) {
        return "field 'frac' must be a number";
      }
      const double v = frac->AsDouble();
      if (!std::isfinite(v) || v < 0.0 || v > 1.0) {
        return "field 'frac' out of range [0, 1]";
      }
      request.deploy_frac = v;
    }
    const Json* policies = object.Find("policies");
    if (policies != nullptr) {
      if (policies->GetType() != Json::Type::kString) {
        return "field 'policies' must be a string";
      }
      const std::optional<std::uint8_t> kinds =
          defense::ParsePolicyKinds(policies->AsString());
      if (!kinds.has_value()) {
        return "unknown policies '" + policies->AsString() + "'";
      }
      request.deploy_kinds = *kinds;
    }
    std::uint64_t value = 0;
    bool found = false;
    if (!ReadBoundedInt(object, "seed", 1,
                        std::numeric_limits<std::uint64_t>::max() - 2048, &value,
                        &found, &error)) {
      return error;
    }
    if (found) request.deploy_seed = value;
  }
  if (request.op == Op::kDetect) {
    std::uint64_t value = 0;
    bool found = false;
    if (!ReadBoundedInt(object, "monitors", 1, 65536, &value, &found, &error)) {
      return error;
    }
    if (found) request.monitors = static_cast<std::size_t>(value);
  }
  *out = request;
  return "";
}

std::string CanonicalKey(const Request& request) {
  // Unused fields are always zero after ParseRequest, so one fixed-order
  // rendering covers every op without per-op cases.
  std::string key = OpName(request.op);
  key += '|';
  key += std::to_string(request.victim);
  key += '|';
  key += std::to_string(request.attacker);
  key += '|';
  key += std::to_string(request.observer);
  key += '|';
  key += std::to_string(request.lambda);
  key += '|';
  key += std::to_string(request.monitors);
  key += '|';
  key += request.violate_valley_free ? '1' : '0';
  key += '|';
  key += defense::StrategyName(request.deploy_strategy);
  key += '|';
  // %.17g round-trips every double, so two distinguishable fractions can
  // never collapse onto one cache key.
  key += util::Format("%.17g", request.deploy_frac);
  key += '|';
  key += std::to_string(request.deploy_kinds);
  key += '|';
  key += std::to_string(request.deploy_seed);
  key += '|';
  key += std::to_string(request.beam);
  key += '|';
  key += std::to_string(request.search_rounds);
  return key;
}

bool IsCacheable(Op op) {
  return op == Op::kImpact || op == Op::kDetect || op == Op::kRoute ||
         op == Op::kDefense || op == Op::kStrategy;
}

std::string ErrorResponse(const std::string& message) {
  Json response = Json::Object();
  response["ok"] = Json(false);
  response["error"] = Json(message);
  return response.ToString(-1);
}

}  // namespace asppi::serve
