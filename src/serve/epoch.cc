#include "serve/epoch.h"

#include <utility>

#include "defense/policy.h"
#include "util/json.h"
#include "util/metrics.h"

namespace asppi::serve {

namespace {

struct EpochMetrics {
  util::Counter installs{"serve.epoch.installs"};
  util::Counter reloads{"serve.epoch.reloads"};
  util::Counter reload_failures{"serve.epoch.reload_failures"};
};

EpochMetrics& Instr() {
  static EpochMetrics* m = new EpochMetrics();
  return *m;
}

}  // namespace

std::string MakeSnapshotEpoch(const std::string& path, std::uint64_t id,
                              const ServiceOptions& base,
                              std::shared_ptr<Epoch>* out) {
  auto snapshot = std::make_shared<data::Snapshot>();
  const std::string err = data::Snapshot::Load(path, *snapshot);
  if (!err.empty()) return err;

  ServiceOptions options = base;
  options.active_defense.reset();
  if (!snapshot->DefenseTags().empty()) {
    options.active_defense = std::make_shared<defense::PolicySet>(
        snapshot->Graph(), snapshot->DefenseTags());
  }
  auto epoch = std::make_shared<Epoch>();
  epoch->id = id;
  epoch->service = std::make_shared<QueryService>(snapshot->Graph(),
                                                  snapshot->Policy(), options);
  epoch->service->WarmBaselines(snapshot->Baselines());
  epoch->snapshot = std::move(snapshot);
  *out = std::move(epoch);
  return "";
}

std::shared_ptr<Epoch> MakeUnownedEpoch(QueryService* service,
                                        std::uint64_t id) {
  auto epoch = std::make_shared<Epoch>();
  epoch->id = id;
  // Aliasing-style null deleter: the epoch pins nothing; the caller owns the
  // service's lifetime (the legacy Server ctor contract).
  epoch->service = std::shared_ptr<QueryService>(service,
                                                 [](QueryService*) {});
  return epoch;
}

std::shared_ptr<Epoch> EpochManager::Current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

void EpochManager::Install(std::shared_ptr<Epoch> epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  if (epoch != nullptr && epoch->service != nullptr && stats_provider_) {
    epoch->service->SetServerStatsFn(stats_provider_);
  }
  current_ = std::move(epoch);
  Instr().installs.Add();
}

void EpochManager::SetReloader(Reloader reloader) {
  std::lock_guard<std::mutex> lock(reload_mu_);
  reloader_ = std::move(reloader);
}

void EpochManager::SetStatsProvider(std::function<ServerStats()> provider) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_provider_ = std::move(provider);
  if (current_ != nullptr && current_->service != nullptr && stats_provider_) {
    current_->service->SetServerStatsFn(stats_provider_);
  }
}

std::string EpochManager::Reload() {
  std::lock_guard<std::mutex> reload_lock(reload_mu_);
  if (!reloader_) return "reload unavailable: no snapshot source";
  const std::uint64_t next_id = CurrentId() + 1;
  std::shared_ptr<Epoch> next;
  const std::string err = reloader_(next_id, &next);
  if (!err.empty()) {
    Instr().reload_failures.Add();
    return err;
  }
  if (next == nullptr) {
    Instr().reload_failures.Add();
    return "reloader produced no epoch";
  }
  Install(std::move(next));
  Instr().reloads.Add();
  reloads_.fetch_add(1, std::memory_order_relaxed);
  return "";
}

std::uint64_t EpochManager::CurrentId() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_ != nullptr ? current_->id : 0;
}

std::uint64_t EpochManager::ReloadCount() const {
  return reloads_.load(std::memory_order_relaxed);
}

bool HandleAdminLine(EpochManager* epochs, std::string_view line,
                     std::string* response) {
  // Cheap pre-filter: almost no query line contains the token at all.
  if (line.find("reload") == std::string_view::npos) return false;
  Request request;
  if (!ParseRequest(line, &request).empty()) return false;
  if (request.op != Op::kReload) return false;

  const std::string err = epochs->Reload();
  util::Json body = util::Json::Object();
  if (err.empty()) {
    const std::shared_ptr<Epoch> epoch = epochs->Current();
    body["ok"] = util::Json(true);
    body["op"] = util::Json("reload");
    body["epoch"] = util::Json(epoch != nullptr ? epoch->id : 0);
    if (epoch != nullptr && epoch->service != nullptr) {
      body["ases"] = util::Json(
          static_cast<std::uint64_t>(epoch->service->Graph().NumAses()));
    }
    *response = body.ToString(-1);
  } else {
    *response = ErrorResponse("reload failed: " + err);
  }
  return true;
}

}  // namespace asppi::serve
