// TCP front end for QueryService: newline-delimited JSON request/response
// over loopback-friendly sockets, with explicit overload behavior.
//
// Threading model:
//   * one acceptor thread (poll + accept, reaps finished connections);
//   * one lightweight thread per connection that splits the byte stream into
//     lines and writes responses back in order;
//   * actual query execution happens on the shared util::ThreadPool — the
//     connection thread blocks on the result, so each connection has at most
//     one request in flight and per-connection response order is trivially
//     request order.
//
// Backpressure is explicit, never unbounded queueing:
//   * at most `max_connections` concurrent connections — an accept beyond
//     that is answered with one {"ok":false,"error":"overloaded"} line and
//     closed (serve.overload_rejects);
//   * at most `max_inflight` requests queued-or-executing across all
//     connections — a request beyond that is rejected the same way without
//     touching the pool;
//   * a request that waited in the pool queue past `deadline_ms` is answered
//     {"ok":false,"error":"deadline exceeded"} instead of executing
//     (serve.deadline_exceeded) — shedding stale work under burst instead of
//     growing the queue.
//
// Requests slower than `slow_query_ms` end-to-end are counted
// (serve.slow_queries) and logged to stderr with their request line.
//
// Stop() is a graceful drain: stop accepting, let every in-flight request
// finish and its response flush, then join all threads. Safe to call from a
// signal-triggered path (the tool's SIGTERM handler just sets a flag the
// main thread observes; Stop itself runs on the main thread).
//
// Every request pins the current Epoch (serve/epoch.h) for its whole
// lifetime, and the "reload" admin op is intercepted before service
// dispatch, so this server hot-reloads snapshots exactly like the reactor
// does. The legacy (QueryService*, ThreadPool*) constructor wraps the
// service in an internal single-epoch manager — existing call sites keep
// working, they just can't reload.
//
// All sockets are ScopedFd-owned and every accept/poll/recv/send retries
// EINTR (net/fd.h): a SIGHUP delivered mid-syscall during a reload must
// never tear a connection or leak a descriptor.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/fd.h"
#include "serve/epoch.h"
#include "serve/service.h"
#include "util/thread_pool.h"

namespace asppi::serve {

struct ServerOptions {
  // 0 = pick an ephemeral port (read it back with Port()).
  int port = 0;
  std::size_t max_connections = 64;
  std::size_t max_inflight = 128;
  int deadline_ms = 10000;
  int slow_query_ms = 1000;
  bool log_slow_queries = true;
};

class Server {
 public:
  // `service` and `pool` must outlive the server. Wraps the service in an
  // internal one-epoch manager (no reload source).
  Server(QueryService* service, util::ThreadPool* pool,
         const ServerOptions& options = ServerOptions());
  // Epoch-aware form: serves whatever `epochs` currently holds and follows
  // installs/reloads. `epochs` and `pool` must outlive the server.
  Server(EpochManager* epochs, util::ThreadPool* pool,
         const ServerOptions& options = ServerOptions());
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds 0.0.0.0:<port>, starts the acceptor. Returns "" on success, else
  // an error message (e.g. the port is taken).
  std::string Start();

  // The bound port (valid after a successful Start()).
  int Port() const { return port_; }

  bool Running() const { return running_.load(std::memory_order_acquire); }

  // Graceful drain; idempotent.
  void Stop();

  struct Counters {
    std::uint64_t accepted = 0;
    std::uint64_t overload_rejects = 0;
    std::uint64_t deadline_exceeded = 0;
    std::uint64_t slow_queries = 0;
  };
  Counters GetCounters() const;

 private:
  void AcceptLoop();
  void ConnectionLoop(std::uint64_t id, int fd);
  void HandleLine(int fd, const std::string& line);
  void ReapFinished(bool all);
  static bool SendAll(int fd, const std::string& data);

  EpochManager* epochs_;
  std::unique_ptr<EpochManager> owned_epochs_;  // legacy-ctor backing store
  util::ThreadPool* pool_;
  ServerOptions options_;

  net::ScopedFd listen_fd_;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;

  std::mutex conn_mu_;
  std::unordered_map<std::uint64_t, std::thread> connections_;
  std::vector<std::uint64_t> finished_;
  std::uint64_t next_connection_id_ = 0;
  std::atomic<std::size_t> active_connections_{0};
  std::atomic<std::size_t> inflight_{0};

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> overload_rejects_{0};
  std::atomic<std::uint64_t> deadline_exceeded_{0};
  std::atomic<std::uint64_t> slow_queries_{0};
};

}  // namespace asppi::serve
