// The asppi_serve wire protocol: newline-delimited JSON over TCP.
//
// Each request is one JSON object on one line; each response is one JSON
// object on one line. Requests carry an "op" discriminator:
//
//   {"op":"impact","victim":V,"attacker":A}            what-if interception
//       optional: "lambda" (victim prepend count, default = server's),
//                 "violate" (attacker violates valley-free, default false)
//   {"op":"detect","victim":V,"attacker":A}            run attack + detector
//       optional: "lambda", "violate", "monitors" (top-degree vantage count)
//   {"op":"route","origin":O,"observer":B}             converged best path
//       optional: "lambda" (origin prepend count, default = server's)
//   {"op":"defense","victim":V,"attacker":A}           defended what-if
//       optional: "lambda", "violate",
//                 "strategy" ("top-degree"|"random"|"victim-cone",
//                             default top-degree),
//                 "frac" (deployment fraction in [0,1], default 1.0),
//                 "policies" ("rov"/"pathval"/"detector"/"all" or '+'-joined,
//                             default "all"),
//                 "seed" (deployment seed for the random strategy, default 1)
//       Runs the interception twice — undefended, and with the requested
//       deployment active as the engines' import filter — and reports both
//       pollution fractions.
//   {"op":"strategy","victim":V,"attacker":A}          worst-case attacker
//       optional: "lambda", "beam" (beam width, [1, 16], default 4),
//                 "rounds" (mutation rounds, [1, 8], default 2)
//       Beam-searches the strategic AttackerProgram space (per-neighbor
//       withhold/partial-strip/poison/forced-export) for the pair and
//       reports the worst program found next to the paper model's
//       pollution; best >= paper by construction (the paper model seeds
//       the beam).
//   {"op":"stats"}                                     cache/latency/counters
//   {"op":"health"}                                    liveness + corpus size
//   {"op":"reload"}                                    swap in a new epoch
//       Admin op: both servers intercept it before service dispatch
//       (serve/epoch.h) and answer with the new epoch id, or an error when
//       no snapshot source is configured. In-flight queries keep the epoch
//       they started on.
//
// Responses always contain "ok" (bool); failures add "error" with a message
// (parse failures include the line/column from util::Json::Parse). The server
// may also answer {"ok":false,"error":"overloaded",...} under backpressure
// without ever parsing the request body.
//
// ParseRequest validates shape strictly: ASN fields must be integral JSON
// numbers in [0, 2^32-1], "lambda" in [1, 64], "monitors" in [1, 65536] —
// so a malformed or hostile line is rejected before it reaches the
// simulation engines.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "defense/deployment.h"
#include "defense/policy.h"
#include "topology/types.h"

namespace asppi::serve {

using topo::Asn;

enum class Op {
  kImpact,
  kDetect,
  kRoute,
  kDefense,
  kStrategy,
  kStats,
  kHealth,
  kReload,
};

// One past the last Op value (sizes per-op counter arrays).
inline constexpr int kOpCount = static_cast<int>(Op::kReload) + 1;

const char* OpName(Op op);

struct Request {
  Op op = Op::kHealth;
  Asn victim = 0;    // impact/detect/defense; the announcement origin for route
  Asn attacker = 0;  // impact/detect/defense
  Asn observer = 0;  // route
  int lambda = 0;    // 0 = use the service default
  std::size_t monitors = 0;  // 0 = use the service default
  bool violate_valley_free = false;
  // defense only; zero elsewhere so CanonicalKey stays op-uniform.
  defense::Strategy deploy_strategy = defense::Strategy::kTopDegree;
  double deploy_frac = 0.0;
  std::uint8_t deploy_kinds = 0;     // defense::PolicyKind mask
  std::uint64_t deploy_seed = 0;
  // strategy only; zero elsewhere (0 = use the service defaults).
  std::size_t beam = 0;
  std::size_t search_rounds = 0;
};

// Parses and validates one request line. Returns "" on success (filling
// `out`), else a human-readable error message.
std::string ParseRequest(std::string_view line, Request* out);

// Canonical byte key for the result cache: a fixed-order rendering of every
// request field that can affect the response. Two requests with the same
// canonical key — however their JSON was spelled — get the same answer, which
// is what makes cache hits safe.
std::string CanonicalKey(const Request& request);

// True for ops whose responses are pure functions of the request (and thus
// cacheable); stats/health reflect live server state and are not.
bool IsCacheable(Op op);

// Serialized {"ok":false,"error":message} line (no trailing newline).
std::string ErrorResponse(const std::string& message);

}  // namespace asppi::serve
