#include "serve/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <utility>

#include "util/metrics.h"

namespace asppi::serve {

namespace {

struct ServerMetrics {
  util::Counter accepted{"serve.connections.accepted"};
  util::Counter overload{"serve.overload_rejects"};
  util::Counter deadline{"serve.deadline_exceeded"};
  util::Counter slow{"serve.slow_queries"};
};

ServerMetrics& Instr() {
  static ServerMetrics* m = new ServerMetrics();
  return *m;
}

// Poll granularity: how often idle loops re-check the stop flag.
constexpr int kPollMs = 100;

std::string OverloadedResponse() {
  // Static shape; built once to keep the rejection path allocation-light.
  static const std::string* line =
      new std::string(ErrorResponse("overloaded") + "\n");
  return *line;
}

}  // namespace

Server::Server(QueryService* service, util::ThreadPool* pool,
               const ServerOptions& options)
    : owned_epochs_(std::make_unique<EpochManager>()),
      pool_(pool),
      options_(options) {
  owned_epochs_->Install(MakeUnownedEpoch(service));
  epochs_ = owned_epochs_.get();
}

Server::Server(EpochManager* epochs, util::ThreadPool* pool,
               const ServerOptions& options)
    : epochs_(epochs), pool_(pool), options_(options) {}

Server::~Server() { Stop(); }

std::string Server::Start() {
  listen_fd_.Reset(::socket(AF_INET, SOCK_STREAM, 0));
  if (!listen_fd_.valid()) {
    return std::string("socket: ") + std::strerror(errno);
  }
  int one = 1;
  ::setsockopt(listen_fd_.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::bind(listen_fd_.get(), reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    std::string error = std::string("bind: ") + std::strerror(errno);
    listen_fd_.Reset();
    return error;
  }
  // A short kernel backlog is part of the bounded-queue story: beyond it,
  // connection attempts fail fast at the client instead of queueing here.
  if (::listen(listen_fd_.get(), 16) < 0) {
    std::string error = std::string("listen: ") + std::strerror(errno);
    listen_fd_.Reset();
    return error;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_.get(), reinterpret_cast<sockaddr*>(&bound),
                    &len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  epochs_->SetStatsProvider([this] {
    ServerStats stats;
    stats.kind = "threaded";
    stats.epoch = epochs_->CurrentId();
    stats.connections = active_connections_.load(std::memory_order_relaxed);
    stats.accepted = accepted_.load(std::memory_order_relaxed);
    stats.overload_rejects = overload_rejects_.load(std::memory_order_relaxed);
    stats.deadline_exceeded =
        deadline_exceeded_.load(std::memory_order_relaxed);
    stats.slow_queries = slow_queries_.load(std::memory_order_relaxed);
    return stats;
  });
  running_.store(true, std::memory_order_release);
  stopping_.store(false, std::memory_order_release);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return "";
}

void Server::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  if (acceptor_.joinable()) acceptor_.join();
  listen_fd_.Reset();
  // Connection threads observe stopping_ at their next poll tick, finish the
  // request they are blocked on (the pool keeps running), flush, and exit.
  ReapFinished(/*all=*/true);
}

Server::Counters Server::GetCounters() const {
  Counters counters;
  counters.accepted = accepted_.load(std::memory_order_relaxed);
  counters.overload_rejects = overload_rejects_.load(std::memory_order_relaxed);
  counters.deadline_exceeded =
      deadline_exceeded_.load(std::memory_order_relaxed);
  counters.slow_queries = slow_queries_.load(std::memory_order_relaxed);
  return counters;
}

void Server::ReapFinished(bool all) {
  std::vector<std::thread> to_join;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (all) {
      for (auto& [id, thread] : connections_) {
        to_join.push_back(std::move(thread));
      }
      connections_.clear();
      finished_.clear();
    } else {
      for (std::uint64_t id : finished_) {
        auto it = connections_.find(id);
        if (it != connections_.end()) {
          to_join.push_back(std::move(it->second));
          connections_.erase(it);
        }
      }
      finished_.clear();
    }
  }
  for (std::thread& thread : to_join) {
    if (thread.joinable()) thread.join();
  }
}

void Server::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_.get(), POLLIN, 0};
    const int ready = static_cast<int>(
        net::RetryOnEintr([&] { return ::poll(&pfd, 1, kPollMs); }));
    ReapFinished(/*all=*/false);
    if (ready <= 0) continue;
    const int fd = static_cast<int>(net::RetryOnEintr(
        [&] { return ::accept(listen_fd_.get(), nullptr, nullptr); }));
    if (fd < 0) continue;
    accepted_.fetch_add(1, std::memory_order_relaxed);
    Instr().accepted.Add();
    if (active_connections_.load(std::memory_order_relaxed) >=
        options_.max_connections) {
      overload_rejects_.fetch_add(1, std::memory_order_relaxed);
      Instr().overload.Add();
      SendAll(fd, OverloadedResponse());
      ::close(fd);
      continue;
    }
    active_connections_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(conn_mu_);
    const std::uint64_t id = next_connection_id_++;
    connections_.emplace(
        id, std::thread([this, id, fd] { ConnectionLoop(id, fd); }));
  }
}

void Server::ConnectionLoop(std::uint64_t id, int raw_fd) {
  // Owned here: every exit path (EOF, error, stop) closes exactly once.
  net::ScopedFd conn_fd(raw_fd);
  const int fd = conn_fd.get();
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open && !stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = static_cast<int>(
        net::RetryOnEintr([&] { return ::poll(&pfd, 1, kPollMs); }));
    if (ready < 0) break;
    if (ready == 0) continue;
    const ssize_t n = net::RetryOnEintr(
        [&] { return ::recv(fd, chunk, sizeof(chunk), 0); });
    if (n <= 0) break;  // peer closed (0) or error (<0)
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start);
         nl != std::string::npos && open; nl = buffer.find('\n', start)) {
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      HandleLine(fd, line);
      if (stopping_.load(std::memory_order_acquire)) open = false;
    }
    buffer.erase(0, start);
  }
  conn_fd.Reset();
  active_connections_.fetch_sub(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(conn_mu_);
  finished_.push_back(id);
}

void Server::HandleLine(int fd, const std::string& line) {
  // Admin ops swap serving state and must not race the pool queue — handle
  // them inline before admission. Shared with the reactor so both servers
  // answer reloads with identical bytes.
  std::string admin_response;
  if (HandleAdminLine(epochs_, line, &admin_response)) {
    admin_response.push_back('\n');
    SendAll(fd, admin_response);
    return;
  }
  // Bounded admission: one slot per queued-or-executing request, across all
  // connections. Beyond the bound we shed load with an explicit error
  // instead of queueing without limit.
  const std::size_t slot = inflight_.fetch_add(1, std::memory_order_acq_rel);
  if (slot >= options_.max_inflight) {
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    overload_rejects_.fetch_add(1, std::memory_order_relaxed);
    Instr().overload.Add();
    SendAll(fd, OverloadedResponse());
    return;
  }
  const auto enqueued = std::chrono::steady_clock::now();
  // The promise is shared with the worker (not referenced from this stack):
  // future.get() can unblock while the worker is still inside set_value, so
  // the shared state must own its own lifetime.
  auto promise = std::make_shared<std::promise<std::string>>();
  std::future<std::string> future = promise->get_future();
  // Pin the epoch NOW, not at dequeue: a request admitted before a reload is
  // answered by the generation it raced in on, and the pinned shared_ptr
  // keeps that generation's corpus mapped until the response is built.
  const std::shared_ptr<Epoch> epoch = epochs_->Current();
  pool_->Submit([this, line, promise, enqueued, epoch] {
    // Deadline checked at dequeue: work that went stale waiting in the queue
    // is answered with an error instead of burning a worker on it.
    const auto waited = std::chrono::steady_clock::now() - enqueued;
    if (std::chrono::duration_cast<std::chrono::milliseconds>(waited).count() >=
        options_.deadline_ms) {
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      Instr().deadline.Add();
      promise->set_value(ErrorResponse("deadline exceeded"));
      return;
    }
    promise->set_value(epoch->service->Handle(line));
  });
  std::string response = future.get();
  inflight_.fetch_sub(1, std::memory_order_acq_rel);
  const auto elapsed = std::chrono::steady_clock::now() - enqueued;
  const auto elapsed_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count();
  if (elapsed_ms >= options_.slow_query_ms) {
    slow_queries_.fetch_add(1, std::memory_order_relaxed);
    Instr().slow.Add();
    if (options_.log_slow_queries) {
      std::fprintf(stderr, "[asppi_serve] slow query (%lld ms): %s\n",
                   static_cast<long long>(elapsed_ms), line.c_str());
    }
  }
  response.push_back('\n');
  SendAll(fd, response);
}

bool Server::SendAll(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = net::RetryOnEintr([&] {
      return ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    });
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace asppi::serve
