#include "serve/service.h"

#include <algorithm>
#include <utility>

#include "defense/deployment.h"
#include "detect/monitors.h"
#include "strategy/program.h"
#include "strategy/search.h"
#include "util/json.h"
#include "util/metrics.h"

namespace asppi::serve {

namespace {

using util::Json;

struct ServiceMetrics {
  util::Counter requests{"serve.requests"};
  util::Counter errors{"serve.errors"};
  util::Counter cache_hits{"serve.cache.hits"};
  util::Counter cache_misses{"serve.cache.misses"};
  util::Counter cache_evictions{"serve.cache.evictions"};
  util::Counter batches{"serve.batch.count"};
  util::Counter batch_lines{"serve.batch.lines"};
  util::Counter batch_dedup{"serve.batch.dedup_hits"};
  util::Timer execute{"serve.execute"};
};

ServiceMetrics& Instr() {
  static ServiceMetrics* m = new ServiceMetrics();
  return *m;
}

// Best-path observations for `monitors` toward the announcement's origin;
// monitors without a route are skipped and the attacker is excluded (it
// would not feed honest data to a collector). Mirrors the extraction the
// detection-evaluation harness uses, so serve "detect" answers match the
// batch pipeline's.
template <typename State>  // PropagationResult or RoutingView
std::vector<std::pair<Asn, bgp::AsPath>> PathsAt(
    const State& state, const std::vector<Asn>& monitors, Asn attacker) {
  std::vector<std::pair<Asn, bgp::AsPath>> out;
  out.reserve(monitors.size());
  for (Asn m : monitors) {
    if (m == attacker) continue;
    const auto& best = state.BestAt(m);
    if (best.has_value()) out.emplace_back(m, best->path);
  }
  return out;
}

const char* ConfidenceName(detect::Alarm::Confidence confidence) {
  return confidence == detect::Alarm::Confidence::kHigh ? "high" : "possible";
}

}  // namespace

QueryService::QueryService(const topo::AsGraph& graph,
                           bgp::PrependPolicy policy,
                           const ServiceOptions& options)
    : graph_(graph),
      policy_(std::move(policy)),
      options_(options),
      baseline_cache_(graph),
      simulator_(graph, &baseline_cache_, options.engine),
      detector_(&graph),
      cache_(options.cache_capacity, options.cache_shards),
      start_(std::chrono::steady_clock::now()) {}

std::size_t QueryService::WarmBaselines(
    const std::vector<std::shared_ptr<const bgp::PropagationResult>>&
        baselines) {
  std::size_t accepted = 0;
  for (const auto& baseline : baselines) {
    if (baseline == nullptr) continue;
    baseline_cache_.Put(baseline);
    ++accepted;
  }
  warmed_baselines_.fetch_add(accepted, std::memory_order_relaxed);
  return accepted;
}

std::uint64_t QueryService::RequestCount(Op op) const {
  return op_counts_[static_cast<int>(op)].load(std::memory_order_relaxed);
}

bgp::Announcement QueryService::AnnouncementFor(Asn origin, int lambda) const {
  bgp::Announcement announcement;
  announcement.origin = origin;
  announcement.prepends = policy_;
  announcement.prepends.SetDefault(origin, lambda);
  return announcement;
}

int QueryService::EffectiveLambda(const Request& request) const {
  return request.lambda > 0 ? request.lambda : options_.default_lambda;
}

const defense::PolicySet* QueryService::ActiveDefense() const {
  const defense::PolicySet* set = options_.active_defense.get();
  return (set != nullptr && !set->Empty()) ? set : nullptr;
}

std::string QueryService::Handle(std::string_view line) {
  return HandleLine(line, /*memo=*/nullptr);
}

std::vector<std::string> QueryService::HandleBatch(
    const std::vector<std::string>& lines) {
  Instr().batches.Add();
  Instr().batch_lines.Add(lines.size());
  // The memo lives for one batch only: repeated cacheable requests inside
  // the batch collapse onto one execution even when the result cache is
  // disabled (cache_capacity = 0) or the entry was just evicted.
  std::unordered_map<std::string, std::string> memo;
  std::vector<std::string> responses;
  responses.reserve(lines.size());
  for (const std::string& line : lines) {
    responses.push_back(HandleLine(line, &memo));
  }
  return responses;
}

void QueryService::SetServerStatsFn(std::function<ServerStats()> fn) {
  std::lock_guard<std::mutex> lock(stats_fn_mu_);
  server_stats_fn_ = std::move(fn);
}

std::string QueryService::HandleLine(
    std::string_view line,
    std::unordered_map<std::string, std::string>* memo) {
  Instr().requests.Add();
  const auto start = std::chrono::steady_clock::now();
  Request request;
  std::string response;
  std::string parse_error = ParseRequest(line, &request);
  if (!parse_error.empty()) {
    Instr().errors.Add();
    response = ErrorResponse(parse_error);
  } else {
    op_counts_[static_cast<int>(request.op)].fetch_add(
        1, std::memory_order_relaxed);
    if (IsCacheable(request.op)) {
      // Fold the active deployment's digest into the key: a defended and an
      // undefended server (or the same server re-pointed at a new snapshot's
      // deployment) compute different answers for identical request bytes,
      // so the canonical request alone must never be the whole key.
      std::string key = CanonicalKey(request);
      if (const defense::PolicySet* active = ActiveDefense()) {
        key += active->CacheKey();
      }
      bool memo_hit = false;
      if (memo != nullptr) {
        const auto it = memo->find(key);
        if (it != memo->end()) {
          Instr().batch_dedup.Add();
          response = it->second;
          memo_hit = true;
        }
      }
      if (!memo_hit) {
        if (auto cached = cache_.Get(key)) {
          Instr().cache_hits.Add();
          response = *cached;
        } else {
          Instr().cache_misses.Add();
          response = Execute(request);
          const std::size_t evicted = cache_.Put(key, response);
          if (evicted != 0) Instr().cache_evictions.Add(evicted);
        }
        if (memo != nullptr) memo->emplace(std::move(key), response);
      }
    } else {
      response = Execute(request);
    }
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  latency_.RecordNs(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()));
  return response;
}

std::string QueryService::Execute(const Request& request) {
  util::ScopedTimer timer(Instr().execute);
  switch (request.op) {
    case Op::kImpact:
      return RunImpact(request);
    case Op::kDetect:
      return RunDetect(request);
    case Op::kRoute:
      return RunRoute(request);
    case Op::kDefense:
      return RunDefense(request);
    case Op::kStrategy:
      return RunStrategy(request);
    case Op::kStats:
      return RunStats();
    case Op::kHealth:
      return RunHealth();
    case Op::kReload:
      // Epoch swapping is a transport concern; both servers intercept this
      // op before dispatch (serve/epoch.h). Reaching the service means there
      // is no server — direct embedding or tests.
      return ErrorResponse("reload requires a server");
  }
  return ErrorResponse("unhandled op");
}

std::string QueryService::RunImpact(const Request& request) {
  if (!graph_.HasAs(request.victim)) {
    return ErrorResponse("unknown victim AS" + std::to_string(request.victim));
  }
  if (!graph_.HasAs(request.attacker)) {
    return ErrorResponse("unknown attacker AS" +
                         std::to_string(request.attacker));
  }
  const int lambda = EffectiveLambda(request);
  const attack::AttackOutcome outcome =
      simulator_.RunAsppInterceptionWithPolicy(
          AnnouncementFor(request.victim, lambda), request.attacker,
          request.violate_valley_free,
          /*export_stripped_to_peers=*/true, ActiveDefense());
  Json response = Json::Object();
  response["ok"] = Json(true);
  response["op"] = Json("impact");
  response["victim"] = Json(static_cast<std::uint64_t>(outcome.victim));
  response["attacker"] = Json(static_cast<std::uint64_t>(outcome.attacker));
  response["lambda"] = Json(outcome.lambda);
  response["violate"] = Json(request.violate_valley_free);
  response["fraction_before"] = Json(outcome.fraction_before);
  response["fraction_after"] = Json(outcome.fraction_after);
  response["newly_polluted"] =
      Json(static_cast<std::uint64_t>(outcome.newly_polluted.size()));
  response["reachable_before"] =
      Json(static_cast<std::uint64_t>(outcome.before->ReachableCount()));
  response["reachable_after"] =
      Json(static_cast<std::uint64_t>(outcome.after.ReachableCount()));
  return response.ToString(-1);
}

std::string QueryService::RunDetect(const Request& request) {
  if (!graph_.HasAs(request.victim)) {
    return ErrorResponse("unknown victim AS" + std::to_string(request.victim));
  }
  if (!graph_.HasAs(request.attacker)) {
    return ErrorResponse("unknown attacker AS" +
                         std::to_string(request.attacker));
  }
  const int lambda = EffectiveLambda(request);
  const std::size_t monitor_count =
      request.monitors > 0 ? request.monitors : options_.default_monitors;
  const bgp::Announcement announcement =
      AnnouncementFor(request.victim, lambda);
  const attack::AttackOutcome outcome =
      simulator_.RunAsppInterceptionWithPolicy(
          announcement, request.attacker, request.violate_valley_free,
          /*export_stripped_to_peers=*/true, ActiveDefense());
  const std::vector<Asn> monitors =
      detect::TopDegreeMonitors(graph_, monitor_count);
  const auto previous = PathsAt(*outcome.before, monitors, request.attacker);
  const auto current = PathsAt(outcome.after, monitors, request.attacker);
  std::vector<detect::Alarm> alarms = detector_.Scan(
      request.victim, previous, current, &announcement.prepends);
  std::sort(alarms.begin(), alarms.end(), detect::AlarmLess);

  Json response = Json::Object();
  response["ok"] = Json(true);
  response["op"] = Json("detect");
  response["victim"] = Json(static_cast<std::uint64_t>(request.victim));
  response["attacker"] = Json(static_cast<std::uint64_t>(request.attacker));
  response["lambda"] = Json(lambda);
  response["monitors"] = Json(static_cast<std::uint64_t>(monitors.size()));
  Json alarm_list = Json::Array();
  bool attacker_accused = false;
  for (const detect::Alarm& alarm : alarms) {
    Json entry = Json::Object();
    entry["confidence"] = Json(ConfidenceName(alarm.confidence));
    entry["suspect"] = Json(static_cast<std::uint64_t>(alarm.suspect));
    entry["observer"] = Json(static_cast<std::uint64_t>(alarm.observer));
    entry["pads_removed"] = Json(alarm.pads_removed);
    entry["detail"] = Json(alarm.detail);
    alarm_list.Push(std::move(entry));
    if (alarm.suspect == request.attacker) attacker_accused = true;
  }
  response["alarms"] = std::move(alarm_list);
  response["high_confidence"] = Json(detect::HasHighConfidence(alarms));
  response["attacker_accused"] = Json(attacker_accused);
  return response.ToString(-1);
}

std::string QueryService::RunRoute(const Request& request) {
  if (!graph_.HasAs(request.victim)) {
    return ErrorResponse("unknown origin AS" + std::to_string(request.victim));
  }
  if (!graph_.HasAs(request.observer)) {
    return ErrorResponse("unknown observer AS" +
                         std::to_string(request.observer));
  }
  const int lambda = EffectiveLambda(request);
  // By-reference read of the retained baseline: entries are never evicted or
  // replaced, so no shared_ptr bump or RIB copy on this hot path.
  const bgp::PropagationResult& state =
      baseline_cache_.GetRef(AnnouncementFor(request.victim, lambda));
  const auto& best = state.BestAt(request.observer);
  Json response = Json::Object();
  response["ok"] = Json(true);
  response["op"] = Json("route");
  response["origin"] = Json(static_cast<std::uint64_t>(request.victim));
  response["observer"] = Json(static_cast<std::uint64_t>(request.observer));
  response["lambda"] = Json(lambda);
  response["found"] = Json(best.has_value());
  if (best.has_value()) {
    response["path"] = Json(best->path.ToString());
    response["hops"] = Json(static_cast<std::uint64_t>(best->path.Length()));
  }
  return response.ToString(-1);
}

std::string QueryService::RunDefense(const Request& request) {
  if (!graph_.HasAs(request.victim)) {
    return ErrorResponse("unknown victim AS" + std::to_string(request.victim));
  }
  if (!graph_.HasAs(request.attacker)) {
    return ErrorResponse("unknown attacker AS" +
                         std::to_string(request.attacker));
  }
  const int lambda = EffectiveLambda(request);
  const bgp::Announcement announcement =
      AnnouncementFor(request.victim, lambda);
  const defense::DeploymentPlan plan = defense::DeploymentPlan::Make(
      graph_, request.deploy_strategy, request.victim, request.attacker,
      request.deploy_seed);
  const defense::PolicySet deployment =
      plan.AtFraction(request.deploy_frac, request.deploy_kinds);
  // Both runs share the cached filterless baseline — the undefended leg is
  // the same computation an "impact" query does, so it may already be warm.
  const attack::AttackOutcome undefended =
      simulator_.RunAsppInterceptionWithPolicy(announcement, request.attacker,
                                               request.violate_valley_free);
  const attack::AttackOutcome defended =
      simulator_.RunAsppInterceptionWithPolicy(
          announcement, request.attacker, request.violate_valley_free,
          /*export_stripped_to_peers=*/true, &deployment);
  Json response = Json::Object();
  response["ok"] = Json(true);
  response["op"] = Json("defense");
  response["victim"] = Json(static_cast<std::uint64_t>(request.victim));
  response["attacker"] = Json(static_cast<std::uint64_t>(request.attacker));
  response["lambda"] = Json(lambda);
  response["violate"] = Json(request.violate_valley_free);
  response["strategy"] = Json(defense::StrategyName(request.deploy_strategy));
  response["policies"] = Json(defense::PolicyKindsName(request.deploy_kinds));
  response["frac"] = Json(request.deploy_frac);
  response["deployed"] =
      Json(static_cast<std::uint64_t>(deployment.DeployedCount()));
  response["fraction_before"] = Json(undefended.fraction_before);
  response["fraction_after_undefended"] = Json(undefended.fraction_after);
  response["fraction_after_defended"] = Json(defended.fraction_after);
  response["prevented"] =
      Json(undefended.fraction_after - defended.fraction_after);
  response["newly_polluted_undefended"] =
      Json(static_cast<std::uint64_t>(undefended.newly_polluted.size()));
  response["newly_polluted_defended"] =
      Json(static_cast<std::uint64_t>(defended.newly_polluted.size()));
  return response.ToString(-1);
}

std::string QueryService::RunStrategy(const Request& request) {
  if (!graph_.HasAs(request.victim)) {
    return ErrorResponse("unknown victim AS" + std::to_string(request.victim));
  }
  if (!graph_.HasAs(request.attacker)) {
    return ErrorResponse("unknown attacker AS" +
                         std::to_string(request.attacker));
  }
  const int lambda = EffectiveLambda(request);
  strategy::SearchOptions options;
  options.lambda = lambda;
  options.beam_width = request.beam > 0 ? request.beam : 4;
  options.rounds = request.search_rounds > 0 ? request.search_rounds : 2;
  // Candidates score serially on the calling thread (Handle is already
  // fanned out per connection); the shared baseline cache means repeated
  // strategy queries against a warm victim skip the baseline re-convergence.
  options.baseline_cache = &baseline_cache_;
  options.engine = options_.engine;
  options.filter = ActiveDefense();
  const strategy::Search search(graph_, options);
  const strategy::SearchResult result =
      search.Run(request.victim, request.attacker);

  Json response = Json::Object();
  response["ok"] = Json(true);
  response["op"] = Json("strategy");
  response["victim"] = Json(static_cast<std::uint64_t>(request.victim));
  response["attacker"] = Json(static_cast<std::uint64_t>(request.attacker));
  response["lambda"] = Json(lambda);
  response["beam"] = Json(static_cast<std::uint64_t>(options.beam_width));
  response["rounds"] = Json(static_cast<std::uint64_t>(options.rounds));
  response["fraction_before"] = Json(result.best.fraction_before);
  response["fraction_after_paper"] = Json(result.paper_after);
  response["fraction_after_best"] = Json(result.best.fraction_after);
  response["gap"] = Json(result.gap);
  response["programs_scored"] =
      Json(static_cast<std::uint64_t>(result.programs_scored));
  response["best_program"] = Json(result.best.program.KeyString());
  return response.ToString(-1);
}

std::string QueryService::RunStats() {
  const util::ShardedLruCache::Stats cache_stats = cache_.GetStats();
  const auto uptime = std::chrono::steady_clock::now() - start_;
  Json response = Json::Object();
  response["ok"] = Json(true);
  response["op"] = Json("stats");
  response["uptime_ms"] = Json(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(uptime).count()));
  Json requests = Json::Object();
  for (Op op : {Op::kImpact, Op::kDetect, Op::kRoute, Op::kDefense,
                Op::kStrategy, Op::kStats, Op::kHealth, Op::kReload}) {
    requests[OpName(op)] = Json(RequestCount(op));
  }
  response["requests"] = std::move(requests);
  Json cache = Json::Object();
  cache["capacity"] = Json(static_cast<std::uint64_t>(cache_.Capacity()));
  cache["entries"] = Json(cache_stats.entries);
  cache["hits"] = Json(cache_stats.hits);
  cache["misses"] = Json(cache_stats.misses);
  cache["evictions"] = Json(cache_stats.evictions);
  response["cache"] = std::move(cache);
  Json baselines = Json::Object();
  baselines["entries"] = Json(static_cast<std::uint64_t>(baseline_cache_.Size()));
  baselines["warmed"] = Json(static_cast<std::uint64_t>(
      warmed_baselines_.load(std::memory_order_relaxed)));
  response["baselines"] = std::move(baselines);
  Json latency = Json::Object();
  latency["count"] = Json(latency_.Count());
  latency["p50_us"] = Json(latency_.QuantileNs(0.50) / 1e3);
  latency["p90_us"] = Json(latency_.QuantileNs(0.90) / 1e3);
  latency["p99_us"] = Json(latency_.QuantileNs(0.99) / 1e3);
  latency["p999_us"] = Json(latency_.QuantileNs(0.999) / 1e3);
  response["latency"] = std::move(latency);
  std::function<ServerStats()> stats_fn;
  {
    std::lock_guard<std::mutex> lock(stats_fn_mu_);
    stats_fn = server_stats_fn_;
  }
  if (stats_fn) {
    const ServerStats live = stats_fn();
    response["epoch"] = Json(live.epoch);
    Json server = Json::Object();
    server["kind"] = Json(live.kind);
    server["connections"] = Json(live.connections);
    server["accepted"] = Json(live.accepted);
    server["overload_rejects"] = Json(live.overload_rejects);
    server["deadline_exceeded"] = Json(live.deadline_exceeded);
    server["backlog_sheds"] = Json(live.backlog_sheds);
    server["slow_queries"] = Json(live.slow_queries);
    server["batches"] = Json(live.batches);
    server["batched_requests"] = Json(live.batched_requests);
    response["server"] = std::move(server);
  }
  return response.ToString(-1);
}

std::string QueryService::RunHealth() {
  Json response = Json::Object();
  response["ok"] = Json(true);
  response["op"] = Json("health");
  response["status"] = Json("serving");
  response["ases"] = Json(static_cast<std::uint64_t>(graph_.NumAses()));
  response["links"] = Json(static_cast<std::uint64_t>(graph_.NumLinks()));
  response["baselines"] =
      Json(static_cast<std::uint64_t>(baseline_cache_.Size()));
  const defense::PolicySet* active = ActiveDefense();
  response["defense_deployed"] = Json(
      static_cast<std::uint64_t>(active != nullptr ? active->DeployedCount()
                                                   : 0));
  return response.ToString(-1);
}

}  // namespace asppi::serve
