#include "serve/reactor.h"

#include <chrono>
#include <cstdio>
#include <thread>
#include <utility>

#include "util/metrics.h"

namespace asppi::serve {

namespace {

struct ReactorMetrics {
  util::Counter batches{"serve.reactor.batches"};
  util::Counter batch_lines{"serve.reactor.batch_lines"};
  util::Counter overload{"serve.reactor.overload_rejects"};
  util::Counter deadline{"serve.reactor.deadline_exceeded"};
  util::Counter slow{"serve.reactor.slow_batches"};
};

ReactorMetrics& Instr() {
  static ReactorMetrics* m = new ReactorMetrics();
  return *m;
}

const std::string& OverloadedLine() {
  static const std::string* line = new std::string(ErrorResponse("overloaded"));
  return *line;
}

const std::string& DeadlineLine() {
  static const std::string* line =
      new std::string(ErrorResponse("deadline exceeded"));
  return *line;
}

}  // namespace

ReactorServer::ReactorServer(EpochManager* epochs, util::ThreadPool* pool,
                             const ReactorOptions& options)
    : epochs_(epochs), pool_(pool), options_(options) {}

ReactorServer::~ReactorServer() { Stop(); }

std::string ReactorServer::Start() {
  net::NetServerOptions net_options;
  net_options.port = static_cast<std::uint16_t>(options_.port);
  net_options.shards = options_.shards;
  net_options.backend = options_.backend;
  net_options.max_connections = options_.max_connections;
  net_options.conn.max_line_bytes = options_.max_line_bytes;
  net_options.conn.max_write_backlog = options_.max_write_backlog;
  net_options.conn.oversize_response = ErrorResponse("request line too long");
  net_options.conn.backlog_shed_counter = &backlog_sheds_;
  net_server_ = std::make_unique<net::Server>(
      [this](const std::shared_ptr<net::Conn>& conn,
             std::vector<std::string> lines) {
        HandleBatch(conn, std::move(lines));
      },
      net_options);
  const std::string err = net_server_->Start();
  if (!err.empty()) {
    net_server_.reset();
    return err;
  }
  epochs_->SetStatsProvider([this] { return Stats(); });
  running_.store(true, std::memory_order_release);
  return "";
}

void ReactorServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // net::Server::Stop drains: in-flight batches Reply through still-running
  // loops, buffered responses flush, then the shards join.
  net_server_->Stop();
  // The loops are joined, so no new batches can be submitted — but batches
  // already in the ThreadPool still hold shared_ptr<Conn>s whose raw loop_
  // pointers reach into net_server_'s EventLoops (a force-closed straggler's
  // batch can outlive its connection). Wait for them here, while the loops
  // are stopped but still allocated: a late Reply posts onto a stopped loop
  // (retained, never run — safe), and once inflight_ hits zero nothing ever
  // touches net state again, so ~ReactorServer may free net_server_.
  while (inflight_.load(std::memory_order_acquire) > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

int ReactorServer::Port() const {
  return net_server_ != nullptr ? net_server_->port() : 0;
}

net::PollerBackend ReactorServer::Backend() const {
  return net_server_ != nullptr ? net_server_->backend() : options_.backend;
}

ServerStats ReactorServer::Stats() const {
  ServerStats stats;
  stats.kind = "reactor";
  stats.epoch = epochs_->CurrentId();
  if (net_server_ != nullptr) {
    stats.connections = net_server_->OpenConnections();
    stats.accepted = net_server_->Accepted();
    stats.overload_rejects = net_server_->Rejected() +
                             overload_rejects_.load(std::memory_order_relaxed);
  } else {
    stats.overload_rejects = overload_rejects_.load(std::memory_order_relaxed);
  }
  stats.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  stats.slow_queries = slow_queries_.load(std::memory_order_relaxed);
  stats.backlog_sheds = backlog_sheds_.load(std::memory_order_relaxed);
  stats.batches = batches_.load(std::memory_order_relaxed);
  stats.batched_requests = batched_requests_.load(std::memory_order_relaxed);
  return stats;
}

void ReactorServer::HandleBatch(const std::shared_ptr<net::Conn>& conn,
                                std::vector<std::string> lines) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  batched_requests_.fetch_add(lines.size(), std::memory_order_relaxed);
  Instr().batches.Add();
  Instr().batch_lines.Add(lines.size());

  // Admission on the loop thread: one inflight slot per BATCH, not per line.
  // A batch occupies exactly one pool worker however many lines it carries
  // (they execute serially inside it), and each connection has at most one
  // batch in flight — so batch slots measure the same thing the threaded
  // server's per-request gate does: concurrent demand across connections. A
  // pipelined burst on one connection is serialized work, not concurrency,
  // and must not trip the bound (the byte-equivalence gate pins this down).
  const std::size_t slot = inflight_.fetch_add(1, std::memory_order_acq_rel);
  if (slot >= options_.max_inflight) {
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    overload_rejects_.fetch_add(lines.size(), std::memory_order_relaxed);
    Instr().overload.Add(lines.size());
    std::vector<std::string> responses(lines.size(), OverloadedLine());
    conn->Reply(std::move(responses));
    return;
  }

  // Pin the epoch for the whole batch: a reload landing mid-flight swaps the
  // NEXT batch's generation; this one answers from the corpus it started on.
  const std::shared_ptr<Epoch> epoch = epochs_->Current();
  const auto enqueued = std::chrono::steady_clock::now();
  pool_->Submit([this, conn, epoch, enqueued,
                 lines = std::move(lines)]() mutable {
    const std::size_t count = lines.size();
    std::vector<std::string> responses;
    responses.reserve(count);

    const auto waited = std::chrono::steady_clock::now() - enqueued;
    const bool stale =
        std::chrono::duration_cast<std::chrono::milliseconds>(waited).count() >=
        options_.deadline_ms;
    if (stale) {
      // Deadline at dequeue, batch-wide: every line went stale in the same
      // queue, so the whole batch is shed in O(1) work.
      deadline_exceeded_.fetch_add(count, std::memory_order_relaxed);
      Instr().deadline.Add(count);
      for (std::size_t i = 0; i < count; ++i) {
        responses.push_back(DeadlineLine());
      }
    } else {
      // Admin (reload) lines execute inline at their batch position; the
      // rest go through the service, batched or per-line.
      std::vector<std::size_t> normal_index;
      std::vector<std::string> normal_lines;
      normal_index.reserve(count);
      normal_lines.reserve(count);
      responses.resize(count);
      for (std::size_t i = 0; i < count; ++i) {
        if (HandleAdminLine(epochs_, lines[i], &responses[i])) continue;
        normal_index.push_back(i);
        normal_lines.push_back(std::move(lines[i]));
      }
      if (options_.batch) {
        std::vector<std::string> answered =
            epoch->service->HandleBatch(normal_lines);
        for (std::size_t i = 0; i < normal_index.size(); ++i) {
          responses[normal_index[i]] = std::move(answered[i]);
        }
      } else {
        for (std::size_t i = 0; i < normal_index.size(); ++i) {
          responses[normal_index[i]] = epoch->service->Handle(normal_lines[i]);
        }
      }
    }
    const auto elapsed = std::chrono::steady_clock::now() - enqueued;
    const auto elapsed_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count();
    if (!stale && elapsed_ms >= options_.slow_query_ms) {
      slow_queries_.fetch_add(1, std::memory_order_relaxed);
      Instr().slow.Add();
      if (options_.log_slow_queries) {
        std::fprintf(stderr, "[asppi_serve] slow batch (%lld ms, %zu line(s))\n",
                     static_cast<long long>(elapsed_ms), count);
      }
    }
    conn->Reply(std::move(responses));
    // Released only after Reply: Stop() waits on this counter to know no
    // pool task still references a Conn (and through it an EventLoop).
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
  });
}

}  // namespace asppi::serve
