// QueryService: the computation core of asppi_serve, independent of any
// transport. One instance owns the loaded corpus (graph + policy), the
// propagation/attack/detection engines, and two caches:
//
//   * attack::BaselineCache — converged attack-free states, keyed by
//     announcement; pre-seeded from a snapshot's checkpointed baselines via
//     WarmBaselines so the first query against a warmed victim skips
//     propagation entirely.
//   * util::ShardedLruCache — serialized response lines keyed by the
//     request's canonical bytes (protocol.h), so repeated what-if queries are
//     answered without touching the engines at all.
//
// Handle() is safe to call from many threads concurrently: the engines are
// const over a shared graph, the baseline cache synchronizes internally, and
// responses are built on the calling thread. Answers are pure functions of
// (corpus, request) — byte-identical to what the batch tools compute for the
// same inputs — which is the property the serve_test equivalence suite pins.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "attack/baseline_cache.h"
#include "attack/impact.h"
#include "bgp/policy.h"
#include "bgp/propagation.h"
#include "defense/policy.h"
#include "detect/detector.h"
#include "serve/protocol.h"
#include "topology/as_graph.h"
#include "util/lru_cache.h"
#include "util/stats.h"

namespace asppi::serve {

struct ServiceOptions {
  // λ used when a request omits "lambda" (matches asppi_attack's default).
  int default_lambda = 4;
  // Top-degree vantage-point count when "detect" omits "monitors".
  std::size_t default_monitors = 30;
  // Result-cache entry budget (0 disables response caching — the ablation
  // mode perf_serve measures).
  std::size_t cache_capacity = 4096;
  std::size_t cache_shards = 8;
  // Convergence engine for impact/detect what-if queries (delta warm-starts
  // from the cached baseline and propagates only the attack wavefront).
  attack::EngineKind engine = attack::EngineKind::kDelta;
  // Corpus-wide defense deployment (usually a snapshot's kDefense section).
  // When set and non-empty it is the import filter for every impact/detect
  // what-if, and its digest is folded into every result-cache key so defended
  // and undefended answers can never alias in the ShardedLruCache. The
  // "defense" op builds its own per-request deployment and ignores this.
  std::shared_ptr<const defense::PolicySet> active_defense;
};

// Live transport-layer counters the serving front end exposes through the
// "stats" op. Both servers fill the shared fields; batch fields stay zero on
// the threaded server (it has no batch path).
struct ServerStats {
  const char* kind = "";  // "threaded" | "reactor"
  std::uint64_t epoch = 0;
  std::uint64_t connections = 0;  // currently open
  std::uint64_t accepted = 0;
  std::uint64_t overload_rejects = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t backlog_sheds = 0;
  std::uint64_t slow_queries = 0;
  std::uint64_t batches = 0;
  std::uint64_t batched_requests = 0;
};

class QueryService {
 public:
  // `graph` must outlive the service. `policy` is the corpus-wide prepend
  // policy (usually the snapshot's; per-request "lambda" overlays the
  // victim's default on top of it).
  QueryService(const topo::AsGraph& graph, bgp::PrependPolicy policy,
               const ServiceOptions& options = ServiceOptions());

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  // Pre-seeds the baseline cache with checkpointed converged states (each
  // must have been produced over `graph`). Returns how many were accepted.
  std::size_t WarmBaselines(
      const std::vector<std::shared_ptr<const bgp::PropagationResult>>&
          baselines);

  // Parses, executes, and serializes one request line. Always returns exactly
  // one JSON object (no trailing newline). Thread-safe.
  std::string Handle(std::string_view line);

  // Batch entry point (the reactor's readiness-sized drains land here): one
  // response per line, in order, each byte-identical to what Handle() would
  // have produced. The batch amortization is an intra-batch memo on the full
  // cache key — a burst of identical what-ifs (the common pipelined-client
  // shape) executes once and answers N times, without N round trips through
  // the sharded cache. Thread-safe.
  std::vector<std::string> HandleBatch(
      const std::vector<std::string>& lines);

  // Installs the transport's live-counter hook; "stats" responses then carry
  // an "epoch" field and a "server" object. Thread-safe.
  void SetServerStatsFn(std::function<ServerStats()> fn);

  const topo::AsGraph& Graph() const { return graph_; }
  const bgp::PrependPolicy& Policy() const { return policy_; }
  const ServiceOptions& Options() const { return options_; }
  util::ShardedLruCache& Cache() { return cache_; }
  util::LatencyHistogram& Latency() { return latency_; }
  std::uint64_t RequestCount(Op op) const;

 private:
  // The victim/origin announcement a request implies: corpus policy overlaid
  // with a uniform default of λ for the origin. Shared by impact, detect,
  // route, and the snapshot builder so their baseline-cache keys agree.
  bgp::Announcement AnnouncementFor(Asn origin, int lambda) const;
  int EffectiveLambda(const Request& request) const;

  // The import filter what-if runs honor (null = undefended).
  const defense::PolicySet* ActiveDefense() const;

  // Shared core of Handle/HandleBatch. `memo` (optional) maps full cache
  // keys to responses already computed earlier in the same batch.
  std::string HandleLine(
      std::string_view line,
      std::unordered_map<std::string, std::string>* memo);

  std::string Execute(const Request& request);
  std::string RunImpact(const Request& request);
  std::string RunDetect(const Request& request);
  std::string RunRoute(const Request& request);
  std::string RunDefense(const Request& request);
  std::string RunStrategy(const Request& request);
  std::string RunStats();
  std::string RunHealth();

  const topo::AsGraph& graph_;
  bgp::PrependPolicy policy_;
  ServiceOptions options_;
  attack::BaselineCache baseline_cache_;
  attack::AttackSimulator simulator_;
  detect::AsppDetector detector_;
  util::ShardedLruCache cache_;
  util::LatencyHistogram latency_;
  std::atomic<std::uint64_t> op_counts_[kOpCount] = {};
  std::atomic<std::size_t> warmed_baselines_{0};
  std::chrono::steady_clock::time_point start_;

  mutable std::mutex stats_fn_mu_;
  std::function<ServerStats()> server_stats_fn_;
};

}  // namespace asppi::serve
