#include "topology/builders.h"

#include "util/check.h"

namespace asppi::topo {

AsGraph ProviderChain(std::size_t n) {
  ASPPI_CHECK_GE(n, 1u);
  GraphBuilder b;
  b.AddAs(1);
  for (Asn a = 1; a + 1 <= n; ++a) {
    b.AddLink(a + 1, a, Relation::kCustomer);  // a is customer of a+1
  }
  return b.Freeze();
}

AsGraph PeerClique(std::size_t n) {
  ASPPI_CHECK_GE(n, 1u);
  GraphBuilder g;
  for (Asn a = 1; a <= n; ++a) g.AddAs(a);
  for (Asn a = 1; a <= n; ++a) {
    for (Asn b = a + 1; b <= n; ++b) g.AddLink(a, b, Relation::kPeer);
  }
  return g.Freeze();
}

AsGraph ProviderStar(std::size_t spokes) {
  GraphBuilder g;
  g.AddAs(1);
  for (Asn s = 2; s <= spokes + 1; ++s) g.AddLink(1, s, Relation::kCustomer);
  return g.Freeze();
}

AsGraph DualHomedStub() {
  GraphBuilder g;
  g.AddLink(1, 2, Relation::kPeer);          // T1a ── T1b
  g.AddLink(1, 11, Relation::kCustomer);     // P1 under T1a
  g.AddLink(2, 12, Relation::kCustomer);     // P2 under T1b
  g.AddLink(11, 100, Relation::kCustomer);   // V under P1
  g.AddLink(12, 100, Relation::kCustomer);   // V under P2
  g.AddLink(11, 21, Relation::kCustomer);    // stub S1
  g.AddLink(12, 22, Relation::kCustomer);    // stub S2
  return g.Freeze();
}

AsGraph FacebookAnomalyTopology() {
  using namespace fb;
  GraphBuilder g;
  const Asn tier1[] = {kLevel3, kAtt, kNtt, kChinaTelecom};
  for (Asn a : tier1) g.AddAs(a);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = i + 1; j < 4; ++j) {
      g.AddLink(tier1[i], tier1[j], Relation::kPeer);
    }
  }
  g.AddLink(kChinaTelecom, kSkTelecom, Relation::kCustomer);
  g.AddLink(kLevel3, kFacebook, Relation::kCustomer);
  g.AddLink(kSkTelecom, kFacebook, Relation::kCustomer);
  return g.Freeze();
}

}  // namespace asppi::topo
