#include "topology/serialization.h"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <set>
#include <sstream>

#include "util/strings.h"

namespace asppi::topo {

namespace {

// Serialization code per relationship, from the perspective "a <code> b".
// -1: a is provider of b; 0: peers; 2: siblings.
int CodeFor(Relation rel_of_b) {
  switch (rel_of_b) {
    case Relation::kCustomer:
      return -1;  // b is a's customer → a provides for b
    case Relation::kPeer:
      return 0;
    case Relation::kSibling:
      return 2;
    case Relation::kProvider:
      return -1;  // written from the other side; never reached (see Write)
  }
  return 0;
}

}  // namespace

void WriteAsRel(const AsGraph& graph, std::ostream& os) {
  os << "# asppi as-rel format: <as-a>|<as-b>|<code>\n";
  os << "# code -1: a is provider of b; 0: a and b are peers; 2: siblings\n";
  std::set<std::pair<Asn, Asn>> written;
  for (AsId id = 0; id < graph.NumAses(); ++id) {
    const Asn a = graph.AsnAt(id);
    for (const AsGraph::Neighbor& n : graph.NeighborsAt(id)) {
      Asn b = n.asn;
      auto key = std::minmax(a, b);
      if (!written.insert({key.first, key.second}).second) continue;
      // Emit provider→customer edges from the provider side so the code is
      // always -1/0/2.
      if (n.rel == Relation::kProvider) {
        os << b << "|" << a << "|" << CodeFor(Relation::kCustomer) << "\n";
      } else {
        os << a << "|" << b << "|" << CodeFor(n.rel) << "\n";
      }
    }
  }
}

void WriteAsRelFile(const AsGraph& graph, const std::string& path) {
  std::ofstream os(path);
  WriteAsRel(graph, os);
}

std::string ReadAsRel(std::istream& is, GraphBuilder& out) {
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    std::string_view trimmed = util::Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::vector<std::string> parts = util::Split(std::string(trimmed), '|');
    if (parts.size() != 3) {
      return util::Format("line %zu: expected 3 '|'-separated fields", lineno);
    }
    auto a = util::ParseUint(parts[0]);
    auto b = util::ParseUint(parts[1]);
    auto code = util::ParseInt(parts[2]);
    if (!a || !b || !code) {
      return util::Format("line %zu: malformed numbers", lineno);
    }
    if (*a == *b) {
      return util::Format("line %zu: self-link on AS%llu", lineno,
                          static_cast<unsigned long long>(*a));
    }
    Relation rel;
    switch (*code) {
      case -1:
        rel = Relation::kCustomer;  // b is customer of a
        break;
      case 0:
        rel = Relation::kPeer;
        break;
      case 2:
        rel = Relation::kSibling;
        break;
      default:
        return util::Format("line %zu: unknown relationship code %lld", lineno,
                            static_cast<long long>(*code));
    }
    auto existing = out.RelationOf(static_cast<Asn>(*a), static_cast<Asn>(*b));
    if (existing && *existing != rel) {
      return util::Format("line %zu: conflicting relationship for %llu|%llu",
                          lineno, static_cast<unsigned long long>(*a),
                          static_cast<unsigned long long>(*b));
    }
    out.AddLink(static_cast<Asn>(*a), static_cast<Asn>(*b), rel);
  }
  return "";
}

std::string ReadAsRelFile(const std::string& path, GraphBuilder& out) {
  std::ifstream is(path);
  if (!is) return util::Format("cannot open '%s'", path.c_str());
  return ReadAsRel(is, out);
}

}  // namespace asppi::topo
