// Basic AS-level types shared across the library.
#pragma once

#include <cstdint>
#include <string>

namespace asppi::topo {

// Autonomous System Number. 32-bit per RFC 4893.
using Asn = std::uint32_t;

// Dense AS identifier inside one frozen AsGraph: the interval [0, NumAses()).
// Every simulator-internal array is indexed by AsId; ASNs appear only at the
// tool/parse boundary (flags, wire formats, report output) and are translated
// exactly once via AsGraph::IndexOf / AsnAt. See DESIGN.md §4i for the
// boundary rules.
using AsId = std::uint32_t;

inline constexpr AsId kInvalidAsId = 0xFFFFFFFFu;

// Business relationship of a neighbor *relative to an AS*. If B is A's
// customer, then A sees B as kCustomer and B sees A as kProvider.
//
// kSibling models two ASes under common administration (e.g. after a merger):
// sibling links transit everything in both directions (Gao 2000).
//
// The enum values double as the relation-segment order of a frozen AsGraph's
// adjacency rows (customers first, then peers, providers, siblings).
enum class Relation : std::uint8_t {
  kCustomer = 0,
  kPeer = 1,
  kProvider = 2,
  kSibling = 3,
};

inline constexpr std::size_t kNumRelations = 4;

// The same link seen from the other side.
constexpr Relation Reverse(Relation r) {
  switch (r) {
    case Relation::kCustomer:
      return Relation::kProvider;
    case Relation::kProvider:
      return Relation::kCustomer;
    case Relation::kPeer:
      return Relation::kPeer;
    case Relation::kSibling:
      return Relation::kSibling;
  }
  return Relation::kPeer;  // unreachable
}

const char* RelationName(Relation r);

// Parses "customer"/"peer"/"provider"/"sibling"; returns false on mismatch.
bool ParseRelation(const std::string& name, Relation& out);

}  // namespace asppi::topo
