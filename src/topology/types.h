// Basic AS-level types shared across the library.
#pragma once

#include <cstdint>
#include <string>

namespace asppi::topo {

// Autonomous System Number. 32-bit per RFC 4893.
using Asn = std::uint32_t;

// Business relationship of a neighbor *relative to an AS*. If B is A's
// customer, then A sees B as kCustomer and B sees A as kProvider.
//
// kSibling models two ASes under common administration (e.g. after a merger):
// sibling links transit everything in both directions (Gao 2000).
enum class Relation : std::uint8_t {
  kCustomer = 0,
  kPeer = 1,
  kProvider = 2,
  kSibling = 3,
};

// The same link seen from the other side.
constexpr Relation Reverse(Relation r) {
  switch (r) {
    case Relation::kCustomer:
      return Relation::kProvider;
    case Relation::kProvider:
      return Relation::kCustomer;
    case Relation::kPeer:
      return Relation::kPeer;
    case Relation::kSibling:
      return Relation::kSibling;
  }
  return Relation::kPeer;  // unreachable
}

const char* RelationName(Relation r);

// Parses "customer"/"peer"/"provider"/"sibling"; returns false on mismatch.
bool ParseRelation(const std::string& name, Relation& out);

}  // namespace asppi::topo
