#include "topology/generator.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <utility>

#include "util/check.h"
#include "util/rng.h"

namespace asppi::topo {

namespace {

using util::Rng;

// Degree-proportional sampling pool over a fixed member set: weight of a
// member is its current degree + 1 (preferential attachment; the +1 keeps
// zero-degree ASes selectable). Backed by a Fenwick tree so a pick costs
// O(log n) instead of the O(n) scan that made 100k-AS generation quadratic.
//
// Draw-compatible with the old linear scan: one rng.Below(total) per pick,
// and the selected element is the first whose inclusive prefix sum exceeds
// the draw — identical totals and identical picks, so every seed reproduces
// the topologies it generated before.
class PreferentialPool {
 public:
  PreferentialPool(const GraphBuilder& g, std::vector<Asn> members)
      : members_(std::move(members)), tree_(members_.size() + 1, 0) {
    pos_.reserve(members_.size());
    for (std::size_t i = 0; i < members_.size(); ++i) {
      pos_.emplace(members_[i], i);
      Add(i, g.HasAs(members_[i]) ? g.Degree(members_[i]) + 1 : 1);
    }
  }

  // Call once per link added while the pool is live; no-op for non-members.
  void OnLinkAdded(Asn a, Asn b) {
    Bump(a);
    Bump(b);
  }

  Asn Pick(Rng& rng) const {
    ASPPI_CHECK(!members_.empty());
    std::size_t target = rng.Below(total_);
    // Fenwick descent: largest index whose prefix sum is <= target, i.e. the
    // first element whose inclusive prefix exceeds the draw.
    std::size_t idx = 0;
    std::size_t step = 1;
    while (step * 2 <= members_.size()) step *= 2;
    for (; step > 0; step /= 2) {
      std::size_t next = idx + step;
      if (next <= members_.size() && tree_[next] <= target) {
        idx = next;
        target -= tree_[next];
      }
    }
    return members_[idx];
  }

 private:
  void Bump(Asn asn) {
    auto it = pos_.find(asn);
    if (it != pos_.end()) Add(it->second, 1);
  }

  void Add(std::size_t i, std::size_t delta) {
    total_ += delta;
    for (std::size_t j = i + 1; j <= members_.size(); j += j & (~j + 1)) {
      tree_[j] += delta;
    }
  }

  std::vector<Asn> members_;
  std::vector<std::size_t> tree_;  // 1-based Fenwick tree of weights
  std::unordered_map<Asn, std::size_t> pos_;
  std::size_t total_ = 0;
};

// Picks up to `want` distinct providers preferentially from `pool`,
// excluding `self`.
std::vector<Asn> PickProviders(const PreferentialPool& pool, Asn self,
                               std::size_t want, Rng& rng) {
  std::vector<Asn> chosen;
  // Bounded retries: with small pools preferential picks may repeat.
  for (std::size_t attempts = 0; chosen.size() < want && attempts < want * 20;
       ++attempts) {
    Asn cand = pool.Pick(rng);
    if (cand == self) continue;
    if (std::find(chosen.begin(), chosen.end(), cand) != chosen.end()) continue;
    chosen.push_back(cand);
  }
  return chosen;
}

}  // namespace

GeneratorParams Internet2026Params() {
  GeneratorParams p;
  p.seed = 2026;
  p.num_tier1 = 15;
  p.num_tier2 = 2200;
  p.num_tier3 = 14000;
  p.num_stubs = 83500;
  p.num_content = 350;
  p.num_sibling_pairs = 400;
  p.tier2_avg_peers = 8.0;
  p.content_min_peers = 40;
  p.content_max_peers = 250;
  return p;
}

GeneratedTopology GenerateInternetTopology(const GeneratorParams& params) {
  ASPPI_CHECK_GE(params.num_tier1, 1u);
  ASPPI_CHECK_GE(params.num_tier2, 1u);
  GeneratedTopology out;
  out.params = params;
  Rng rng(params.seed);

  Asn next_asn = 1;
  auto allocate = [&next_asn](std::size_t n) {
    std::vector<Asn> asns(n);
    for (auto& a : asns) a = next_asn++;
    return asns;
  };

  out.tier1 = allocate(params.num_tier1);
  out.tier2 = allocate(params.num_tier2);
  out.tier3 = allocate(params.num_tier3);
  out.stubs = allocate(params.num_stubs);
  out.content = allocate(params.num_content);

  GraphBuilder g;
  for (Asn a : out.tier1) g.AddAs(a);

  // Tier-1 core: full peering mesh.
  for (std::size_t i = 0; i < out.tier1.size(); ++i) {
    for (std::size_t j = i + 1; j < out.tier1.size(); ++j) {
      g.AddLink(out.tier1[i], out.tier1[j], Relation::kPeer);
    }
  }

  // Tier-2: 1–3 tier-1 providers (preferentially attached — the top tier-1s
  // accumulate the biggest customer cones, as in inferred 2011 topologies
  // where cones were individually modest but collectively covered everything)
  // plus Zipf-weighted peering among tier-2s.
  for (Asn t2 : out.tier2) {
    std::size_t n_prov = std::min<std::size_t>(1 + rng.Below(3), out.tier1.size());
    // Uniform (not preferential) attachment at the top level: inferred 2011
    // tier-1 customer cones were individually modest; letting the rich get
    // richer here would concentrate half the Internet under one tier-1 and
    // distort every attack-impact ceiling.
    std::vector<Asn> chosen;
    for (std::size_t attempts = 0;
         chosen.size() < n_prov && attempts < n_prov * 20; ++attempts) {
      Asn cand = rng.Pick(out.tier1);
      if (std::find(chosen.begin(), chosen.end(), cand) != chosen.end()) {
        continue;
      }
      chosen.push_back(cand);
    }
    for (Asn prov : chosen) {
      g.AddLink(prov, t2, Relation::kCustomer);
    }
  }
  {
    // Per-AS peering propensity: Zipf over a shuffled order so the rich
    // peerers are a random subset, not the lowest ASNs.
    std::vector<Asn> order = out.tier2;
    rng.Shuffle(order);
    // Propensity ∝ 1/(rank+1)^0.7 over the shuffled order.
    double mean_prop = 0.0;
    std::vector<std::pair<Asn, double>> weights;
    weights.reserve(order.size());
    for (std::size_t rank = 0; rank < order.size(); ++rank) {
      double w = std::pow(1.0 + static_cast<double>(rank), -0.7);
      weights.emplace_back(order[rank], w);
      mean_prop += w;
    }
    mean_prop /= static_cast<double>(weights.size());
    for (const auto& [asn, w] : weights) {
      double scaled = params.tier2_avg_peers * w / mean_prop;
      std::size_t n_peers = static_cast<std::size_t>(scaled);
      if (rng.Chance(scaled - static_cast<double>(n_peers))) ++n_peers;
      for (std::size_t k = 0; k < n_peers; ++k) {
        Asn other = rng.Pick(out.tier2);
        if (other == asn || g.HasLink(asn, other)) continue;
        g.AddLink(asn, other, Relation::kPeer);
      }
    }
  }

  // Tier-3: providers mostly in tier-2 (preferential), sometimes tier-1;
  // sparse regional peering.
  {
    PreferentialPool tier2_pool(g, out.tier2);
    for (Asn t3 : out.tier3) {
      std::size_t n_prov = 1 + rng.Below(3);
      std::vector<Asn> provs = PickProviders(tier2_pool, t3, n_prov, rng);
      if (rng.Chance(0.05)) {
        provs.push_back(rng.Pick(out.tier1));
      }
      for (Asn prov : provs) {
        if (!g.HasLink(prov, t3)) {
          g.AddLink(prov, t3, Relation::kCustomer);
          tier2_pool.OnLinkAdded(prov, t3);
        }
      }
    }
  }
  for (Asn t3 : out.tier3) {
    if (!rng.Chance(params.tier3_peer_prob)) continue;
    std::size_t n_peers = 1 + rng.Below(3);
    for (std::size_t k = 0; k < n_peers; ++k) {
      Asn other = rng.Pick(out.tier3);
      if (other == t3 || g.HasLink(t3, other)) continue;
      g.AddLink(t3, other, Relation::kPeer);
    }
  }

  // Stubs: 1–3 providers out of tier-2 ∪ tier-3 (preferential).
  {
    std::vector<Asn> transit = out.tier2;
    transit.insert(transit.end(), out.tier3.begin(), out.tier3.end());
    PreferentialPool transit_pool(g, std::move(transit));
    for (Asn stub : out.stubs) {
      std::size_t n_prov = 1;
      double roll = rng.Uniform();
      if (roll < params.stub_triplehome_prob) n_prov = 3;
      else if (roll < params.stub_triplehome_prob + params.stub_dualhome_prob) n_prov = 2;
      for (Asn prov : PickProviders(transit_pool, stub, n_prov, rng)) {
        g.AddLink(prov, stub, Relation::kCustomer);
        transit_pool.OnLinkAdded(prov, stub);
      }
    }
  }

  // Content/CDN ASes: 1–2 transit providers, many peers across tier-2/3.
  {
    std::vector<Asn> peer_pool = out.tier2;
    peer_pool.insert(peer_pool.end(), out.tier3.begin(), out.tier3.end());
    PreferentialPool tier2_pool(g, out.tier2);
    for (Asn c : out.content) {
      std::size_t n_prov = 1 + rng.Below(2);
      for (Asn prov : PickProviders(tier2_pool, c, n_prov, rng)) {
        g.AddLink(prov, c, Relation::kCustomer);
        tier2_pool.OnLinkAdded(prov, c);
      }
      std::size_t span = params.content_max_peers - params.content_min_peers + 1;
      std::size_t n_peers = params.content_min_peers + rng.Below(span);
      n_peers = std::min(n_peers, peer_pool.size());
      for (std::size_t k = 0; k < n_peers; ++k) {
        Asn other = rng.Pick(peer_pool);
        if (other == c || g.HasLink(c, other)) continue;
        g.AddLink(c, other, Relation::kPeer);
        tier2_pool.OnLinkAdded(c, other);
      }
    }
  }

  // Sibling pairs among tier-2/tier-3 (non-adjacent picks only).
  {
    std::vector<Asn> pool = out.tier2;
    pool.insert(pool.end(), out.tier3.begin(), out.tier3.end());
    std::size_t made = 0;
    for (std::size_t attempts = 0;
         made < params.num_sibling_pairs && attempts < params.num_sibling_pairs * 50;
         ++attempts) {
      Asn a = rng.Pick(pool);
      Asn b = rng.Pick(pool);
      if (a == b || g.HasLink(a, b)) continue;
      // A sibling merge must not create a provider→customer cycle, or the
      // policy system loses its convergence guarantee.
      if (SiblingLinkCreatesCycle(g, a, b)) continue;
      g.AddLink(a, b, Relation::kSibling);
      out.siblings.emplace_back(a, b);
      ++made;
    }
  }

  out.graph = g.Freeze();
  ASPPI_CHECK(out.graph.IsConnected())
      << "generator produced a disconnected graph";
  ASPPI_CHECK(out.graph.ProviderCustomerAcyclic())
      << "generator produced a provider-customer cycle";
  return out;
}

}  // namespace asppi::topo
