#include "topology/as_graph.h"

#include <algorithm>
#include <deque>

#include "util/check.h"

namespace asppi::topo {

const char* RelationName(Relation r) {
  switch (r) {
    case Relation::kCustomer:
      return "customer";
    case Relation::kPeer:
      return "peer";
    case Relation::kProvider:
      return "provider";
    case Relation::kSibling:
      return "sibling";
  }
  return "?";
}

bool ParseRelation(const std::string& name, Relation& out) {
  if (name == "customer") out = Relation::kCustomer;
  else if (name == "peer") out = Relation::kPeer;
  else if (name == "provider") out = Relation::kProvider;
  else if (name == "sibling") out = Relation::kSibling;
  else return false;
  return true;
}

void AsGraph::AddAs(Asn asn) {
  if (index_.contains(asn)) return;
  index_.emplace(asn, asns_.size());
  asns_.push_back(asn);
  adjacency_.emplace_back();
}

void AsGraph::AddHalfLink(std::size_t from, Asn to, Relation rel) {
  adjacency_[from].push_back(Neighbor{to, rel});
}

void AsGraph::AddLink(Asn a, Asn b, Relation rel_of_b) {
  ASPPI_CHECK_NE(a, b) << "self-link on AS" << a;
  AddAs(a);
  AddAs(b);
  if (auto existing = RelationOf(a, b)) {
    ASPPI_CHECK(*existing == rel_of_b)
        << "conflicting relationship for link " << a << "-" << b << ": had "
        << RelationName(*existing) << ", got " << RelationName(rel_of_b);
    return;
  }
  AddHalfLink(index_.at(a), b, rel_of_b);
  AddHalfLink(index_.at(b), a, Reverse(rel_of_b));
  ++num_links_;
}

bool AsGraph::HasLink(Asn a, Asn b) const { return RelationOf(a, b).has_value(); }

std::optional<Relation> AsGraph::RelationOf(Asn a, Asn b) const {
  auto it = index_.find(a);
  if (it == index_.end()) return std::nullopt;
  for (const Neighbor& n : adjacency_[it->second]) {
    if (n.asn == b) return n.rel;
  }
  return std::nullopt;
}

std::span<const AsGraph::Neighbor> AsGraph::NeighborsOf(Asn asn) const {
  auto it = index_.find(asn);
  ASPPI_CHECK(it != index_.end()) << "unknown AS" << asn;
  return adjacency_[it->second];
}

std::span<const AsGraph::Neighbor> AsGraph::NeighborsAtIndex(
    std::size_t index) const {
  ASPPI_CHECK_LT(index, adjacency_.size());
  return adjacency_[index];
}

std::vector<Asn> AsGraph::NeighborsWith(Asn asn, Relation rel) const {
  std::vector<Asn> out;
  for (const Neighbor& n : NeighborsOf(asn)) {
    if (n.rel == rel) out.push_back(n.asn);
  }
  return out;
}

std::size_t AsGraph::IndexOf(Asn asn) const {
  auto it = index_.find(asn);
  ASPPI_CHECK(it != index_.end()) << "unknown AS" << asn;
  return it->second;
}

Asn AsGraph::AsnAt(std::size_t index) const {
  ASPPI_CHECK_LT(index, asns_.size());
  return asns_[index];
}

std::vector<Asn> AsGraph::AsesByDegreeDesc() const {
  std::vector<Asn> out = asns_;
  std::sort(out.begin(), out.end(), [this](Asn a, Asn b) {
    std::size_t da = adjacency_[index_.at(a)].size();
    std::size_t db = adjacency_[index_.at(b)].size();
    if (da != db) return da > db;
    return a < b;
  });
  return out;
}

std::size_t AsGraph::CustomerConeSize(Asn asn) const {
  std::vector<bool> seen(asns_.size(), false);
  std::deque<std::size_t> queue;
  std::size_t start = IndexOf(asn);
  seen[start] = true;
  queue.push_back(start);
  std::size_t count = 0;
  while (!queue.empty()) {
    std::size_t cur = queue.front();
    queue.pop_front();
    ++count;
    for (const Neighbor& n : adjacency_[cur]) {
      if (n.rel != Relation::kCustomer) continue;
      std::size_t idx = index_.at(n.asn);
      if (!seen[idx]) {
        seen[idx] = true;
        queue.push_back(idx);
      }
    }
  }
  return count;
}

bool AsGraph::ReachesDownhill(Asn from, Asn to) const {
  std::vector<bool> seen(NumAses(), false);
  std::deque<std::size_t> queue;
  seen[IndexOf(from)] = true;
  queue.push_back(IndexOf(from));
  while (!queue.empty()) {
    std::size_t cur = queue.front();
    queue.pop_front();
    for (const Neighbor& n : adjacency_[cur]) {
      if (n.rel != Relation::kCustomer && n.rel != Relation::kSibling) {
        continue;
      }
      if (n.asn == to) return true;
      std::size_t idx = index_.at(n.asn);
      if (!seen[idx]) {
        seen[idx] = true;
        queue.push_back(idx);
      }
    }
  }
  return false;
}

bool SiblingLinkCreatesCycle(const AsGraph& graph, Asn a, Asn b) {
  return graph.ReachesDownhill(a, b) || graph.ReachesDownhill(b, a);
}

bool AsGraph::ProviderCustomerAcyclic() const {
  // Union sibling groups, then Kahn's algorithm on the supernode digraph.
  const std::size_t n = asns_.size();
  std::vector<std::size_t> group(n);
  for (std::size_t i = 0; i < n; ++i) group[i] = i;
  // Union-find with path halving.
  auto find = [&group](std::size_t x) {
    while (group[x] != x) {
      group[x] = group[group[x]];
      x = group[x];
    }
    return x;
  };
  for (std::size_t i = 0; i < n; ++i) {
    for (const Neighbor& nb : adjacency_[i]) {
      if (nb.rel == Relation::kSibling) {
        std::size_t ra = find(i), rb = find(index_.at(nb.asn));
        if (ra != rb) group[ra] = rb;
      }
    }
  }
  std::vector<std::size_t> indegree(n, 0);
  std::vector<std::vector<std::size_t>> edges(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (const Neighbor& nb : adjacency_[i]) {
      if (nb.rel != Relation::kCustomer) continue;
      std::size_t from = find(i), to = find(index_.at(nb.asn));
      if (from == to) return false;  // sibling group providing for itself
      edges[from].push_back(to);
      ++indegree[to];
    }
  }
  std::deque<std::size_t> ready;
  std::size_t groups = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (find(i) != i) continue;
    ++groups;
    if (indegree[i] == 0) ready.push_back(i);
  }
  std::size_t processed = 0;
  while (!ready.empty()) {
    std::size_t cur = ready.front();
    ready.pop_front();
    ++processed;
    for (std::size_t to : edges[cur]) {
      if (--indegree[to] == 0) ready.push_back(to);
    }
  }
  return processed == groups;
}

bool AsGraph::IsConnected() const {
  if (asns_.empty()) return true;
  std::vector<bool> seen(asns_.size(), false);
  std::deque<std::size_t> queue{0};
  seen[0] = true;
  std::size_t count = 0;
  while (!queue.empty()) {
    std::size_t cur = queue.front();
    queue.pop_front();
    ++count;
    for (const Neighbor& n : adjacency_[cur]) {
      std::size_t idx = index_.at(n.asn);
      if (!seen[idx]) {
        seen[idx] = true;
        queue.push_back(idx);
      }
    }
  }
  return count == asns_.size();
}

}  // namespace asppi::topo
