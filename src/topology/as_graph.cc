#include "topology/as_graph.h"

#include <algorithm>
#include <deque>
#include <utility>

#include "util/check.h"

namespace asppi::topo {

const char* RelationName(Relation r) {
  switch (r) {
    case Relation::kCustomer:
      return "customer";
    case Relation::kPeer:
      return "peer";
    case Relation::kProvider:
      return "provider";
    case Relation::kSibling:
      return "sibling";
  }
  return "?";
}

bool ParseRelation(const std::string& name, Relation& out) {
  if (name == "customer") out = Relation::kCustomer;
  else if (name == "peer") out = Relation::kPeer;
  else if (name == "provider") out = Relation::kProvider;
  else if (name == "sibling") out = Relation::kSibling;
  else return false;
  return true;
}

#ifndef NDEBUG
namespace detail {
namespace {
thread_local std::uint64_t g_asn_lookups = 0;
}  // namespace
std::uint64_t AsnLookupCount() { return g_asn_lookups; }
void BumpAsnLookup() { ++g_asn_lookups; }
}  // namespace detail
#endif

// ---------------------------------------------------------------------------
// GraphBuilder
// ---------------------------------------------------------------------------

void GraphBuilder::AddAs(Asn asn) {
  if (index_.contains(asn)) return;
  index_.emplace(asn, static_cast<AsId>(asns_.size()));
  asns_.push_back(asn);
  adjacency_.emplace_back();
}

void GraphBuilder::AddLink(Asn a, Asn b, Relation rel_of_b) {
  ASPPI_CHECK_NE(a, b) << "self-link on AS" << a;
  AddAs(a);
  AddAs(b);
  if (auto existing = RelationOf(a, b)) {
    ASPPI_CHECK(*existing == rel_of_b)
        << "conflicting relationship for link " << a << "-" << b << ": had "
        << RelationName(*existing) << ", got " << RelationName(rel_of_b);
    return;
  }
  const AsId ia = index_.at(a);
  const AsId ib = index_.at(b);
  adjacency_[ia].push_back(Entry{b, ib, rel_of_b});
  adjacency_[ib].push_back(Entry{a, ia, Reverse(rel_of_b)});
  ++num_links_;
}

std::optional<Relation> GraphBuilder::RelationOf(Asn a, Asn b) const {
  auto it = index_.find(a);
  if (it == index_.end()) return std::nullopt;
  for (const Entry& e : adjacency_[it->second]) {
    if (e.asn == b) return e.rel;
  }
  return std::nullopt;
}

std::size_t GraphBuilder::Degree(Asn asn) const {
  auto it = index_.find(asn);
  ASPPI_CHECK(it != index_.end()) << "unknown AS" << asn;
  return adjacency_[it->second].size();
}

bool GraphBuilder::ReachesDownhill(Asn from, Asn to) const {
  auto it = index_.find(from);
  ASPPI_CHECK(it != index_.end()) << "unknown AS" << from;
  std::vector<bool> seen(asns_.size(), false);
  std::deque<AsId> queue;
  seen[it->second] = true;
  queue.push_back(it->second);
  while (!queue.empty()) {
    AsId cur = queue.front();
    queue.pop_front();
    for (const Entry& e : adjacency_[cur]) {
      if (e.rel != Relation::kCustomer && e.rel != Relation::kSibling) {
        continue;
      }
      if (e.asn == to) return true;
      if (!seen[e.id]) {
        seen[e.id] = true;
        queue.push_back(e.id);
      }
    }
  }
  return false;
}

bool SiblingLinkCreatesCycle(const GraphBuilder& builder, Asn a, Asn b) {
  return builder.ReachesDownhill(a, b) || builder.ReachesDownhill(b, a);
}

bool SiblingLinkCreatesCycle(const AsGraph& graph, Asn a, Asn b) {
  return graph.ReachesDownhill(a, b) || graph.ReachesDownhill(b, a);
}

// ---------------------------------------------------------------------------
// Freeze
// ---------------------------------------------------------------------------

struct AsGraph::Storage {
  std::vector<Asn> asn_of;
  std::vector<Asn> lookup_asn;
  std::vector<AsId> lookup_id;
  std::vector<std::uint32_t> offsets;
  std::vector<std::uint32_t> seg_ends;
  std::vector<std::uint32_t> ranks;
  std::vector<AsId> ids_by_rank;
  std::vector<std::uint32_t> rank_pos;
  std::vector<Asn> edge_asns;
  std::vector<Edge> edges;
};

namespace {

// Union-find root with path halving.
AsId FindRoot(std::vector<AsId>& group, AsId x) {
  while (group[x] != x) {
    group[x] = group[group[x]];
    x = group[x];
  }
  return x;
}

}  // namespace

AsGraph GraphBuilder::Freeze() const {
  const std::size_t n = asns_.size();
  auto storage = std::make_shared<AsGraph::Storage>();
  AsGraph::Storage& s = *storage;

  s.asn_of = asns_;

  // ASN interning table: ids sorted by ASN, binary-searchable.
  s.lookup_id.resize(n);
  for (std::size_t i = 0; i < n; ++i) s.lookup_id[i] = static_cast<AsId>(i);
  std::sort(s.lookup_id.begin(), s.lookup_id.end(),
            [this](AsId a, AsId b) { return asns_[a] < asns_[b]; });
  s.lookup_asn.resize(n);
  for (std::size_t i = 0; i < n; ++i) s.lookup_asn[i] = asns_[s.lookup_id[i]];

  // Row extents, then relation-grouped rows (stable within each group).
  s.offsets.resize(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    s.offsets[i + 1] =
        s.offsets[i] + static_cast<std::uint32_t>(adjacency_[i].size());
  }
  const std::size_t m = s.offsets[n];
  s.edges.resize(m);
  s.edge_asns.resize(m);
  s.seg_ends.resize(3 * n);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t pos = s.offsets[i];
    for (std::size_t r = 0; r < kNumRelations; ++r) {
      const Relation rel = static_cast<Relation>(r);
      for (const Entry& e : adjacency_[i]) {
        if (e.rel != rel) continue;
        s.edges[pos] = Edge{e.asn, e.id, 0, e.rel};
        s.edge_asns[pos] = e.asn;
        ++pos;
      }
      if (r < 3) s.seg_ends[3 * i + r] = pos;
    }
  }

  // Resolve back slots: per-AS (neighbor ASN, slot) tables over the regrouped
  // rows, then one binary search per directed edge. Links are unique per AS
  // pair, so each search has exactly one hit.
  {
    std::vector<std::vector<std::pair<Asn, std::uint32_t>>> slot_of(n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t begin = s.offsets[i], end = s.offsets[i + 1];
      slot_of[i].reserve(end - begin);
      for (std::uint32_t e = begin; e < end; ++e) {
        slot_of[i].emplace_back(s.edges[e].asn, e - begin);
      }
      std::sort(slot_of[i].begin(), slot_of[i].end());
    }
    for (std::size_t i = 0; i < n; ++i) {
      const Asn self = asns_[i];
      for (std::uint32_t e = s.offsets[i]; e < s.offsets[i + 1]; ++e) {
        const auto& table = slot_of[s.edges[e].id];
        auto it = std::lower_bound(table.begin(), table.end(),
                                   std::pair<Asn, std::uint32_t>{self, 0});
        ASPPI_CHECK(it != table.end() && it->first == self);
        s.edges[e].back_slot = it->second;
      }
    }
  }

  // Propagation ranks over the sibling-merged provider→customer digraph:
  // merge sibling groups (union-find), then Kahn from customer-less groups.
  // rank(group with no customers) = 0, rank(provider group) = 1 + max rank of
  // its customer groups. Cycle members never drain and land at max_rank + 1;
  // the graph is Gao-Rexford acyclic iff every group drains and no sibling
  // group provides for itself.
  bool acyclic = true;
  s.ranks.assign(n, 0);
  if (n > 0) {
    std::vector<AsId> group(n);
    for (std::size_t i = 0; i < n; ++i) group[i] = static_cast<AsId>(i);
    for (std::size_t i = 0; i < n; ++i) {
      for (const Entry& e : adjacency_[i]) {
        if (e.rel != Relation::kSibling) continue;
        AsId ra = FindRoot(group, static_cast<AsId>(i));
        AsId rb = FindRoot(group, e.id);
        if (ra != rb) group[ra] = rb;
      }
    }
    std::vector<std::uint32_t> indegree(n, 0);
    std::vector<std::vector<AsId>> up(n);  // group(customer) → group(provider)
    for (std::size_t i = 0; i < n; ++i) {
      for (const Entry& e : adjacency_[i]) {
        if (e.rel != Relation::kCustomer) continue;
        AsId provider = FindRoot(group, static_cast<AsId>(i));
        AsId customer = FindRoot(group, e.id);
        if (provider == customer) {
          acyclic = false;  // sibling group providing for itself
          continue;
        }
        up[customer].push_back(provider);
        ++indegree[provider];
      }
    }
    std::vector<std::uint32_t> group_rank(n, 0);
    std::vector<bool> drained(n, false);
    std::deque<AsId> ready;
    std::size_t groups = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (FindRoot(group, static_cast<AsId>(i)) != i) continue;
      ++groups;
      if (indegree[i] == 0) ready.push_back(static_cast<AsId>(i));
    }
    std::size_t processed = 0;
    std::uint32_t max_rank = 0;
    while (!ready.empty()) {
      AsId cur = ready.front();
      ready.pop_front();
      drained[cur] = true;
      ++processed;
      max_rank = std::max(max_rank, group_rank[cur]);
      for (AsId p : up[cur]) {
        group_rank[p] = std::max(group_rank[p], group_rank[cur] + 1);
        if (--indegree[p] == 0) ready.push_back(p);
      }
    }
    if (processed != groups) {
      acyclic = false;
      const std::uint32_t cyclic_rank = max_rank + 1;
      for (std::size_t i = 0; i < n; ++i) {
        if (FindRoot(group, static_cast<AsId>(i)) == i && !drained[i]) {
          group_rank[i] = cyclic_rank;
        }
      }
      max_rank = cyclic_rank;
    }
    for (std::size_t i = 0; i < n; ++i) {
      s.ranks[i] = group_rank[FindRoot(group, static_cast<AsId>(i))];
    }
    s.ids_by_rank.resize(n);
    for (std::size_t i = 0; i < n; ++i) s.ids_by_rank[i] = static_cast<AsId>(i);
    std::sort(s.ids_by_rank.begin(), s.ids_by_rank.end(),
              [&s](AsId a, AsId b) {
                if (s.ranks[a] != s.ranks[b]) return s.ranks[a] < s.ranks[b];
                return a < b;
              });
    s.rank_pos.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      s.rank_pos[s.ids_by_rank[i]] = static_cast<std::uint32_t>(i);
    }
  }

  // Undirected connectivity.
  bool connected = true;
  if (n > 0) {
    std::vector<bool> seen(n, false);
    std::deque<AsId> queue{0};
    seen[0] = true;
    std::size_t count = 0;
    while (!queue.empty()) {
      AsId cur = queue.front();
      queue.pop_front();
      ++count;
      for (std::uint32_t e = s.offsets[cur]; e < s.offsets[cur + 1]; ++e) {
        AsId nb = s.edges[e].id;
        if (!seen[nb]) {
          seen[nb] = true;
          queue.push_back(nb);
        }
      }
    }
    connected = count == n;
  }

  AsGraph g;
  AsGraph::CsrArrays arrays;
  arrays.asn_of = s.asn_of;
  arrays.lookup_asn = s.lookup_asn;
  arrays.lookup_id = s.lookup_id;
  arrays.offsets = s.offsets;
  arrays.seg_ends = s.seg_ends;
  arrays.ranks = s.ranks;
  arrays.ids_by_rank = s.ids_by_rank;
  arrays.rank_pos = s.rank_pos;
  arrays.edge_asns = s.edge_asns;
  arrays.edges = s.edges;
  arrays.num_links = num_links_;
  arrays.num_ranks = n == 0 ? 0 : s.ranks[s.ids_by_rank.back()] + 1;
  arrays.connected = connected;
  arrays.acyclic = acyclic;
  g.Adopt(arrays, std::move(storage));
  return g;
}

// ---------------------------------------------------------------------------
// AsGraph
// ---------------------------------------------------------------------------

void AsGraph::Adopt(const CsrArrays& arrays,
                    std::shared_ptr<const void> keepalive) {
  asn_of_ = arrays.asn_of;
  lookup_asn_ = arrays.lookup_asn;
  lookup_id_ = arrays.lookup_id;
  offsets_ = arrays.offsets;
  seg_ends_ = arrays.seg_ends;
  ranks_ = arrays.ranks;
  ids_by_rank_ = arrays.ids_by_rank;
  rank_pos_ = arrays.rank_pos;
  edge_asns_ = arrays.edge_asns;
  edges_ = arrays.edges;
  num_links_ = arrays.num_links;
  num_ranks_ = arrays.num_ranks;
  connected_ = arrays.connected;
  acyclic_ = arrays.acyclic;
  keepalive_ = std::move(keepalive);
}

AsId AsGraph::Find(Asn asn) const {
#ifndef NDEBUG
  detail::BumpAsnLookup();
#endif
  auto it = std::lower_bound(lookup_asn_.begin(), lookup_asn_.end(), asn);
  if (it == lookup_asn_.end() || *it != asn) return kInvalidAsId;
  return lookup_id_[it - lookup_asn_.begin()];
}

AsId AsGraph::IndexOf(Asn asn) const {
  AsId id = Find(asn);
  ASPPI_CHECK(id != kInvalidAsId) << "unknown AS" << asn;
  return id;
}

Asn AsGraph::AsnAt(AsId id) const {
  ASPPI_CHECK_LT(id, asn_of_.size());
  return asn_of_[id];
}

std::optional<Relation> AsGraph::RelationOf(Asn a, Asn b) const {
  AsId ia = Find(a);
  if (ia == kInvalidAsId) return std::nullopt;
  for (const Edge& e : NeighborsAt(ia)) {
    if (e.asn == b) return e.rel;
  }
  return std::nullopt;
}

std::span<const Asn> AsGraph::SegmentAt(AsId id, Relation rel) const {
  const std::uint32_t* ends = &seg_ends_[3 * static_cast<std::size_t>(id)];
  const std::size_t r = static_cast<std::size_t>(rel);
  const std::uint32_t begin = r == 0 ? offsets_[id] : ends[r - 1];
  const std::uint32_t end = r == 3 ? offsets_[id + 1] : ends[r];
  return edge_asns_.subspan(begin, end - begin);
}

std::span<const Edge> AsGraph::EdgeSegmentAt(AsId id, Relation rel) const {
  const std::uint32_t* ends = &seg_ends_[3 * static_cast<std::size_t>(id)];
  const std::size_t r = static_cast<std::size_t>(rel);
  const std::uint32_t begin = r == 0 ? offsets_[id] : ends[r - 1];
  const std::uint32_t end = r == 3 ? offsets_[id + 1] : ends[r];
  return edges_.subspan(begin, end - begin);
}

std::vector<Asn> AsGraph::AsesByDegreeDesc() const {
  const std::size_t n = asn_of_.size();
  std::vector<std::pair<std::size_t, Asn>> keyed(n);
  for (std::size_t i = 0; i < n; ++i) keyed[i] = {DegreeAt(i), asn_of_[i]};
  std::sort(keyed.begin(), keyed.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  std::vector<Asn> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = keyed[i].second;
  return out;
}

std::size_t AsGraph::CustomerConeSize(Asn asn) const {
  std::vector<bool> seen(asn_of_.size(), false);
  std::deque<AsId> queue;
  AsId start = IndexOf(asn);
  seen[start] = true;
  queue.push_back(start);
  std::size_t count = 0;
  while (!queue.empty()) {
    AsId cur = queue.front();
    queue.pop_front();
    ++count;
    for (const Edge& e : EdgeSegmentAt(cur, Relation::kCustomer)) {
      if (!seen[e.id]) {
        seen[e.id] = true;
        queue.push_back(e.id);
      }
    }
  }
  return count;
}

bool AsGraph::ReachesDownhill(Asn from, Asn to) const {
  std::vector<bool> seen(asn_of_.size(), false);
  std::deque<AsId> queue;
  AsId start = IndexOf(from);
  seen[start] = true;
  queue.push_back(start);
  while (!queue.empty()) {
    AsId cur = queue.front();
    queue.pop_front();
    for (const Edge& e : NeighborsAt(cur)) {
      if (e.rel != Relation::kCustomer && e.rel != Relation::kSibling) {
        continue;
      }
      if (e.asn == to) return true;
      if (!seen[e.id]) {
        seen[e.id] = true;
        queue.push_back(e.id);
      }
    }
  }
  return false;
}

GraphBuilder AsGraph::ToBuilder() const {
  GraphBuilder b;
  const std::size_t n = asn_of_.size();
  for (std::size_t i = 0; i < n; ++i) b.AddAs(asn_of_[i]);
  for (AsId i = 0; i < n; ++i) {
    for (const Edge& e : NeighborsAt(i)) {
      if (i < e.id) b.AddLink(asn_of_[i], e.asn, e.rel);
    }
  }
  return b;
}

AsGraph::CsrArrays AsGraph::Csr() const {
  CsrArrays arrays;
  arrays.asn_of = asn_of_;
  arrays.lookup_asn = lookup_asn_;
  arrays.lookup_id = lookup_id_;
  arrays.offsets = offsets_;
  arrays.seg_ends = seg_ends_;
  arrays.ranks = ranks_;
  arrays.ids_by_rank = ids_by_rank_;
  arrays.rank_pos = rank_pos_;
  arrays.edge_asns = edge_asns_;
  arrays.edges = edges_;
  arrays.num_links = num_links_;
  arrays.num_ranks = num_ranks_;
  arrays.connected = connected_;
  arrays.acyclic = acyclic_;
  return arrays;
}

std::optional<AsGraph> AsGraph::FromCsr(const CsrArrays& arrays,
                                        std::shared_ptr<const void> keepalive,
                                        std::string* error) {
  auto fail = [error](const char* what) -> std::optional<AsGraph> {
    if (error) *error = what;
    return std::nullopt;
  };
  const std::size_t n = arrays.asn_of.size();
  if (arrays.lookup_asn.size() != n || arrays.lookup_id.size() != n ||
      arrays.ranks.size() != n || arrays.ids_by_rank.size() != n ||
      arrays.rank_pos.size() != n || arrays.seg_ends.size() != 3 * n ||
      arrays.offsets.size() != n + 1) {
    return fail("csr graph: inconsistent array sizes");
  }
  const std::size_t m = arrays.edges.size();
  if (arrays.edge_asns.size() != m) return fail("csr graph: edge_asns size");
  if (arrays.offsets[0] != 0 || arrays.offsets[n] != m) {
    return fail("csr graph: offsets extent");
  }
  if (m % 2 != 0 || arrays.num_links != m / 2) {
    return fail("csr graph: link count");
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (arrays.offsets[i] > arrays.offsets[i + 1]) {
      return fail("csr graph: offsets not monotone");
    }
    if (i + 1 < n && arrays.lookup_asn[i] >= arrays.lookup_asn[i + 1]) {
      return fail("csr graph: lookup table not strictly sorted");
    }
    if (arrays.lookup_id[i] >= n ||
        arrays.asn_of[arrays.lookup_id[i]] != arrays.lookup_asn[i]) {
      return fail("csr graph: lookup table does not invert asn_of");
    }
    if (arrays.ids_by_rank[i] >= n ||
        arrays.rank_pos[arrays.ids_by_rank[i]] != i) {
      return fail("csr graph: rank order table does not invert rank_pos");
    }
    if (i + 1 < n) {
      const AsId a = arrays.ids_by_rank[i], b = arrays.ids_by_rank[i + 1];
      if (arrays.ranks[a] > arrays.ranks[b] ||
          (arrays.ranks[a] == arrays.ranks[b] && a >= b)) {
        return fail("csr graph: ids_by_rank not sorted by (rank, id)");
      }
    }
    if (arrays.ranks[i] >= arrays.num_ranks && !(n == 0)) {
      return fail("csr graph: rank out of range");
    }
    // Row structure: segments partition the row in relation order, every edge
    // matches its segment, back slots round-trip.
    const std::uint32_t begin = arrays.offsets[i], end = arrays.offsets[i + 1];
    std::uint32_t seg_begin = begin;
    for (std::size_t r = 0; r < kNumRelations; ++r) {
      const std::uint32_t seg_end =
          r < 3 ? arrays.seg_ends[3 * i + r] : end;
      if (seg_end < seg_begin || seg_end > end) {
        return fail("csr graph: segment extents");
      }
      for (std::uint32_t e = seg_begin; e < seg_end; ++e) {
        const Edge& edge = arrays.edges[e];
        if (edge.rel != static_cast<Relation>(r)) {
          return fail("csr graph: edge outside its relation segment");
        }
        if (edge.id >= n || arrays.asn_of[edge.id] != edge.asn) {
          return fail("csr graph: edge id/asn mismatch");
        }
        if (arrays.edge_asns[e] != edge.asn) {
          return fail("csr graph: edge_asns mismatch");
        }
        const std::uint32_t back =
            arrays.offsets[edge.id] + edge.back_slot;
        if (back >= arrays.offsets[edge.id + 1]) {
          return fail("csr graph: back slot out of row");
        }
        const Edge& back_edge = arrays.edges[back];
        if (back_edge.id != i || back_edge.back_slot != e - begin ||
            back_edge.rel != Reverse(edge.rel)) {
          return fail("csr graph: back slot does not round-trip");
        }
      }
      seg_begin = seg_end;
    }
  }
  AsGraph g;
  g.Adopt(arrays, std::move(keepalive));
  return g;
}

}  // namespace asppi::topo
