// Small named topologies used by unit tests, examples, and the Section III
// anomaly replay.
#pragma once

#include "topology/as_graph.h"

namespace asppi::topo {

// Provider chain: AS1 ← AS2 ← … ← ASn, where ASk+1 is ASk's provider.
// (AS1 is the deepest customer.)
AsGraph ProviderChain(std::size_t n);

// Full peering mesh over ASes 1..n.
AsGraph PeerClique(std::size_t n);

// Star: hub AS1 provides for spokes AS2..ASn+1.
AsGraph ProviderStar(std::size_t spokes);

// A small multihomed scenario used by the traffic-engineering example and
// decision-process tests:
//
//        T1a(1) ══ T1b(2)     (peering)
//         │          │
//        P1(11)    P2(12)     (customers of the tier-1s)
//           \       /
//            V(100)           (dual-homed customer of P1 and P2)
//
// plus stubs S1(21) under P1 and S2(22) under P2.
AsGraph DualHomedStub();

// Well-known ASNs of the Facebook anomaly of Mar 22, 2011 (paper Section III).
namespace fb {
inline constexpr Asn kFacebook = 32934;
inline constexpr Asn kLevel3 = 3356;
inline constexpr Asn kAtt = 7018;
inline constexpr Asn kNtt = 2914;
inline constexpr Asn kChinaTelecom = 4134;
inline constexpr Asn kSkTelecom = 9318;
}  // namespace fb

// The six-AS topology of paper Figure 1:
//   * Level3 (3356), AT&T (7018), NTT (2914), China Telecom (4134) form a
//     tier-1 peering mesh;
//   * SK Telecom (9318) is a customer of China Telecom;
//   * Facebook (32934) is a customer of both Level3 and SK Telecom.
AsGraph FacebookAnomalyTopology();

}  // namespace asppi::topo
