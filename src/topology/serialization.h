// Text serialization of AS graphs, CAIDA-style:
//
//   # comment lines start with '#'
//   <as-a>|<as-b>|<code>
//
// where code -1 means a is b's provider (b is a's customer), 0 means peers,
// and 2 means siblings. This matches the CAIDA as-rel format (-1/0) extended
// with the sibling code used by Gao's original dataset releases.
#pragma once

#include <iosfwd>
#include <string>

#include "topology/as_graph.h"

namespace asppi::topo {

// Writes all links (each once) plus a header comment.
void WriteAsRel(const AsGraph& graph, std::ostream& os);
void WriteAsRelFile(const AsGraph& graph, const std::string& path);

// Parses the format above into a builder (Freeze() when done). Aborts-free:
// malformed lines produce an error via the returned status string; on success
// the string is empty.
std::string ReadAsRel(std::istream& is, GraphBuilder& out);
std::string ReadAsRelFile(const std::string& path, GraphBuilder& out);

}  // namespace asppi::topo
