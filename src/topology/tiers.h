// Tier classification of an AS graph.
//
// Tier 1 = provider-free ASes (paper: "an AS with no providers and peering
// with all other tier-1 ASes"); among provider-free candidates we keep the
// densely inter-peered core. Every other AS gets tier = 1 + min tier over its
// providers (siblings inherit the better of the pair), matching the informal
// tier-k language of the paper ("Tier-4 and Tier-5 ASes").
#pragma once

#include <vector>

#include "topology/as_graph.h"

namespace asppi::topo {

class TierInfo {
 public:
  // Tier of `asn`; tier 1 is the core. ASes unreachable from the core via
  // provider chains get the sentinel kUnranked.
  static constexpr int kUnranked = 99;

  int TierOf(Asn asn) const;
  const std::vector<Asn>& Tier1() const { return tier1_; }
  // All ASes of exactly tier `t`, in ASN order.
  std::vector<Asn> AsesAtTier(int t) const;
  int MaxTier() const { return max_tier_; }

 private:
  friend TierInfo ClassifyTiers(const AsGraph& graph);

  const AsGraph* graph_ = nullptr;
  std::vector<int> tier_by_index_;
  std::vector<Asn> tier1_;
  int max_tier_ = 0;
};

TierInfo ClassifyTiers(const AsGraph& graph);

}  // namespace asppi::topo
