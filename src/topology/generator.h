// Seeded generator of Internet-like AS topologies.
//
// The real AS graph (paper: inferred from RouteViews/RIPE) is substituted by
// a synthetic hierarchy that reproduces the structural features the attack
// analysis depends on:
//   * a small provider-free tier-1 clique (full mesh of peering links),
//   * transit tiers with heavy-tailed degrees (preferential attachment),
//   * a large population of single-/multi-homed stub ASes,
//   * a few content/CDN-style ASes with very rich peering (IXP effect),
//   * sibling pairs (commonly-administered ASes transiting everything),
// all derived deterministically from a 64-bit seed.
#pragma once

#include <cstdint>
#include <vector>

#include "topology/as_graph.h"

namespace asppi::topo {

struct GeneratorParams {
  std::uint64_t seed = 42;

  std::size_t num_tier1 = 10;
  std::size_t num_tier2 = 120;
  std::size_t num_tier3 = 700;
  std::size_t num_stubs = 3000;
  std::size_t num_content = 20;
  std::size_t num_sibling_pairs = 15;

  // Average number of tier-2↔tier-2 peer links per tier-2 AS (scaled by a
  // per-AS Zipf propensity, so some tier-2s peer far more richly than others).
  double tier2_avg_peers = 6.0;
  // Probability a tier-3 AS participates in regional peering at all.
  double tier3_peer_prob = 0.15;
  // Stub multihoming: P(2 providers) and P(3 providers).
  double stub_dualhome_prob = 0.35;
  double stub_triplehome_prob = 0.05;
  // Content-AS peer-count range.
  std::size_t content_min_peers = 20;
  std::size_t content_max_peers = 120;

  std::size_t TotalAses() const {
    return num_tier1 + num_tier2 + num_tier3 + num_stubs + num_content;
  }
};

// The generated graph plus role metadata (which ASes were created in which
// structural role) so experiments can sample archetypes directly.
struct GeneratedTopology {
  AsGraph graph;
  std::vector<Asn> tier1;
  std::vector<Asn> tier2;
  std::vector<Asn> tier3;
  std::vector<Asn> stubs;
  std::vector<Asn> content;  // richly-peered content/CDN ASes
  std::vector<std::pair<Asn, Asn>> siblings;
  GeneratorParams params;
};

// Deterministic for a given `params` (including seed). The result is always
// connected: every non-tier-1 AS has at least one provider chain to the core.
GeneratedTopology GenerateInternetTopology(const GeneratorParams& params);

// Tiered preset approximating the 2026 Internet: ~100k ASes (15 tier-1s,
// 2.2k tier-2s, 14k regional tier-3s, 83.5k stubs, 350 content ASes, 400
// sibling pairs) with richer tier-2 peering than the legacy default. The
// scale target of the "internet2026" experiments; generation stays fast
// because provider attachment samples through a Fenwick tree.
GeneratorParams Internet2026Params();

}  // namespace asppi::topo
