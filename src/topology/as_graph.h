// AsGraph: the AS-level Internet topology with annotated business
// relationships. This is the substrate every simulator in the library runs on.
//
// The graph is mutable during construction (AddAs/AddLink) and cheap to query
// afterwards. ASes are mapped to dense indices [0, NumAses()) so simulators
// can use flat arrays; public APIs speak ASNs.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "topology/types.h"

namespace asppi::topo {

class AsGraph {
 public:
  struct Neighbor {
    Asn asn;
    Relation rel;  // role of `asn` relative to the AS owning this list
    bool operator==(const Neighbor&) const = default;
  };

  // --- construction -------------------------------------------------------

  // Registers an AS. Idempotent.
  void AddAs(Asn asn);

  // Adds a bidirectional link; `rel_of_b` is b's role relative to a
  // (e.g. AddLink(a, b, Relation::kCustomer) makes b a customer of a).
  // Both endpoints are registered if needed. Re-adding an existing link with
  // the same relationship is idempotent; with a different relationship it
  // aborts — ambiguous inputs must be resolved by the caller (see infer/).
  void AddLink(Asn a, Asn b, Relation rel_of_b);

  // --- queries -------------------------------------------------------------

  bool HasAs(Asn asn) const { return index_.contains(asn); }
  bool HasLink(Asn a, Asn b) const;
  // Role of b relative to a, or nullopt if not adjacent.
  std::optional<Relation> RelationOf(Asn a, Asn b) const;

  std::span<const Neighbor> NeighborsOf(Asn asn) const;
  // Same adjacency list addressed by dense index — the simulators' hot loops
  // use this to skip the ASN hash lookup.
  std::span<const Neighbor> NeighborsAtIndex(std::size_t index) const;
  std::vector<Asn> Customers(Asn asn) const { return NeighborsWith(asn, Relation::kCustomer); }
  std::vector<Asn> Providers(Asn asn) const { return NeighborsWith(asn, Relation::kProvider); }
  std::vector<Asn> Peers(Asn asn) const { return NeighborsWith(asn, Relation::kPeer); }
  std::vector<Asn> Siblings(Asn asn) const { return NeighborsWith(asn, Relation::kSibling); }

  std::size_t Degree(Asn asn) const { return NeighborsOf(asn).size(); }
  std::size_t NumAses() const { return asns_.size(); }
  std::size_t NumLinks() const { return num_links_; }
  // All ASNs in registration order (deterministic).
  const std::vector<Asn>& Ases() const { return asns_; }

  // Dense-index mapping for simulator-internal flat arrays.
  std::size_t IndexOf(Asn asn) const;
  Asn AsnAt(std::size_t index) const;

  // ASes sorted by decreasing degree (ties by ascending ASN) — the paper's
  // monitor-selection ranking.
  std::vector<Asn> AsesByDegreeDesc() const;

  // Size of the customer cone: the AS itself plus everything reachable by
  // repeatedly descending provider→customer edges.
  std::size_t CustomerConeSize(Asn asn) const;

  // True if every AS can reach every other ignoring relationship direction.
  bool IsConnected() const;

  // True if the provider→customer digraph — with sibling groups merged into
  // single supernodes — is acyclic. Gao-Rexford convergence (and hence the
  // propagation simulator's termination guarantee) requires this.
  bool ProviderCustomerAcyclic() const;

  // Directed downhill reachability: can `from` reach `to` by descending
  // provider→customer edges, traversing sibling links freely?
  bool ReachesDownhill(Asn from, Asn to) const;

 private:
  std::vector<Asn> NeighborsWith(Asn asn, Relation rel) const;
  void AddHalfLink(std::size_t from, Asn to, Relation rel);

  std::unordered_map<Asn, std::size_t> index_;
  std::vector<Asn> asns_;
  std::vector<std::vector<Neighbor>> adjacency_;
  std::size_t num_links_ = 0;
};

// Would adding a sibling link a–b create a cycle in the sibling-merged
// provider→customer digraph? True exactly when a directed provider→customer
// path (traversing existing sibling links freely) already connects a to b in
// either direction. Used by the generator and scenario builders to keep
// every produced topology convergence-safe.
bool SiblingLinkCreatesCycle(const AsGraph& graph, Asn a, Asn b);

}  // namespace asppi::topo
