// The two-phase topology core (DESIGN.md §4i).
//
// GraphBuilder is the mutable construction phase: AddAs/AddLink with the
// conflict rules the infer/ pipeline and the parsers rely on, plus the
// queries construction-time callers need (HasLink, Degree, ReachesDownhill
// for convergence-safe sibling placement). Freeze() compiles the builder into
// an immutable AsGraph and the builder can keep growing (Freeze is
// non-destructive).
//
// AsGraph is the frozen compact-sparse-row form every simulator runs on:
//   * one offsets array + one Edge array, adjacency rows grouped by relation
//     (customers, peers, providers, siblings — stable within each group), so
//     Customers()/Providers()/Peers()/Siblings() are zero-alloc std::span
//     segment views;
//   * ASN↔AsId interning resolved once at freeze into a sorted lookup table —
//     no hash map anywhere in the frozen graph, and IndexOf() is a
//     tool/parse-edge concern (debug builds count translations so the engines
//     can assert their hot loops never translate);
//   * every Edge carries the neighbor's dense id and the owner's slot in the
//     neighbor's row (back_slot), which is what used to be the engines'
//     separate EdgeMap — two array reads replace a hash lookup plus binary
//     search on every delivery;
//   * propagation ranks (customer-cone tiers a la BGPExtrapolator: stubs are
//     rank 0, each provider one above its highest customer, sibling groups
//     share a rank) precomputed for rank-ordered worklist scheduling in both
//     engines, plus connectivity and Gao-Rexford acyclicity flags.
//
// Storage is reachable only through spans backed by a shared keepalive, so a
// frozen graph is cheap to copy (spans + one shared_ptr) and can borrow its
// arrays straight out of an mmap'ed snapshot section (data/snapshot.cc) with
// zero parsing and zero copying.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "topology/types.h"

namespace asppi::topo {

class GraphBuilder;

#ifndef NDEBUG
namespace detail {
// Count of ASN→AsId translations performed on this thread (IndexOf and the
// ASN-keyed convenience queries). The engines snapshot it around their
// propagation loops and abort if a translation sneaks in.
std::uint64_t AsnLookupCount();
void BumpAsnLookup();
}  // namespace detail
#endif

// One directed adjacency entry of a frozen AsGraph. 16 bytes, padding
// explicit and zeroed so edge arrays are byte-stable under memcpy
// serialization (the snapshot CSR section).
struct Edge {
  Asn asn = 0;                   // neighbor ASN
  AsId id = 0;                   // neighbor dense id
  std::uint32_t back_slot = 0;   // owner's slot in the neighbor's row
  Relation rel = Relation::kCustomer;  // neighbor's role relative to owner
  std::uint8_t pad_[3] = {0, 0, 0};
};
static_assert(sizeof(Edge) == 16);

class AsGraph {
 public:
  using Neighbor = Edge;

  // Raw views of the frozen arrays, for the snapshot serializer and the
  // zero-copy loader. All spans alias the graph's backing storage.
  struct CsrArrays {
    std::span<const Asn> asn_of;              // AsId → ASN, size n
    std::span<const Asn> lookup_asn;          // ASNs ascending, size n
    std::span<const AsId> lookup_id;          // parallel ids, size n
    std::span<const std::uint32_t> offsets;   // row extents, size n+1
    std::span<const std::uint32_t> seg_ends;  // 3 per AS (customer/peer/provider group ends)
    std::span<const std::uint32_t> ranks;     // AsId → propagation rank
    std::span<const AsId> ids_by_rank;        // ids sorted by (rank, id)
    std::span<const std::uint32_t> rank_pos;  // inverse of ids_by_rank
    std::span<const Asn> edge_asns;           // edges[e].asn, for segment views
    std::span<const Edge> edges;              // size offsets.back()
    std::uint64_t num_links = 0;
    std::uint32_t num_ranks = 0;
    bool connected = false;
    bool acyclic = false;
  };

  AsGraph() = default;  // empty graph

  // --- existence / relationship queries (ASN edge) -------------------------

  bool HasAs(Asn asn) const { return Find(asn) != kInvalidAsId; }
  bool HasLink(Asn a, Asn b) const { return RelationOf(a, b).has_value(); }
  // Role of b relative to a, or nullopt if not adjacent.
  std::optional<Relation> RelationOf(Asn a, Asn b) const;

  // --- adjacency -----------------------------------------------------------

  std::span<const Edge> NeighborsOf(Asn asn) const {
    return NeighborsAt(IndexOf(asn));
  }
  std::span<const Edge> NeighborsAt(AsId id) const {
    return edges_.subspan(offsets_[id], offsets_[id + 1] - offsets_[id]);
  }

  // Relation-segment views: the neighbors of one relation class as a
  // contiguous span of ASNs. Zero allocation, O(1).
  std::span<const Asn> Customers(Asn asn) const { return SegmentAt(IndexOf(asn), Relation::kCustomer); }
  std::span<const Asn> Peers(Asn asn) const { return SegmentAt(IndexOf(asn), Relation::kPeer); }
  std::span<const Asn> Providers(Asn asn) const { return SegmentAt(IndexOf(asn), Relation::kProvider); }
  std::span<const Asn> Siblings(Asn asn) const { return SegmentAt(IndexOf(asn), Relation::kSibling); }
  std::span<const Asn> CustomersAt(AsId id) const { return SegmentAt(id, Relation::kCustomer); }
  std::span<const Asn> PeersAt(AsId id) const { return SegmentAt(id, Relation::kPeer); }
  std::span<const Asn> ProvidersAt(AsId id) const { return SegmentAt(id, Relation::kProvider); }
  std::span<const Asn> SiblingsAt(AsId id) const { return SegmentAt(id, Relation::kSibling); }
  // The Edge sub-row of one relation class (dense ids included).
  std::span<const Edge> EdgeSegmentAt(AsId id, Relation rel) const;

  std::size_t Degree(Asn asn) const { return DegreeAt(IndexOf(asn)); }
  std::size_t DegreeAt(AsId id) const { return offsets_[id + 1] - offsets_[id]; }

  // --- identity ------------------------------------------------------------

  std::size_t NumAses() const { return asn_of_.size(); }
  std::size_t NumLinks() const { return num_links_; }
  // All ASNs in registration order (AsId order, deterministic).
  std::span<const Asn> Ases() const { return asn_of_; }

  // ASN → dense id. Aborts on unknown ASNs; a tool/parse-edge operation only
  // (binary search over the interning table; debug builds count calls so the
  // engines can assert none happen inside propagation loops).
  AsId IndexOf(Asn asn) const;
  // Like IndexOf but returns kInvalidAsId instead of aborting.
  AsId Find(Asn asn) const;
  Asn AsnAt(AsId id) const;

  // --- precomputed structure ----------------------------------------------

  // Propagation rank of an AS: 0 for ASes with no customers, otherwise one
  // above the highest-ranked customer (sibling groups share the group rank).
  // On a provider-customer-cyclic graph the cycle members get rank
  // NumRanks()-1 and ProviderCustomerAcyclic() is false.
  std::uint32_t RankAt(AsId id) const { return ranks_[id]; }
  std::uint32_t RankOf(Asn asn) const { return ranks_[IndexOf(asn)]; }
  std::uint32_t NumRanks() const { return num_ranks_; }
  // All ids ordered by (rank ascending, id ascending) — the engines' worklist
  // scan order, so convergence wavefronts are processed cone-upward.
  std::span<const AsId> IdsByRank() const { return ids_by_rank_; }
  // Position of an id inside IdsByRank() (for sorting sparse worklists into
  // the same order the dense scans use).
  std::uint32_t RankPosAt(AsId id) const { return rank_pos_[id]; }

  // True if every AS can reach every other ignoring relationship direction.
  bool IsConnected() const { return connected_; }
  // True if the provider→customer digraph — with sibling groups merged into
  // single supernodes — is acyclic. Gao-Rexford convergence (and hence the
  // propagation simulator's termination guarantee) requires this.
  bool ProviderCustomerAcyclic() const { return acyclic_; }

  // --- derived queries -----------------------------------------------------

  // ASes sorted by decreasing degree (ties by ascending ASN) — the paper's
  // monitor-selection ranking.
  std::vector<Asn> AsesByDegreeDesc() const;

  // Size of the customer cone: the AS itself plus everything reachable by
  // repeatedly descending provider→customer edges.
  std::size_t CustomerConeSize(Asn asn) const;

  // Directed downhill reachability: can `from` reach `to` by descending
  // provider→customer edges, traversing sibling links freely?
  bool ReachesDownhill(Asn from, Asn to) const;

  // Thaws the frozen graph back into a builder (ASes in id order, each link
  // once, from its lower-id endpoint). For the rare consumers that engineer
  // extra links onto an already-frozen topology — mutate the builder, then
  // Freeze() again. Simulator results are insensitive to the resulting
  // adjacency re-ordering (the decision process tiebreaks by neighbor ASN,
  // never by slot).
  GraphBuilder ToBuilder() const;

  // --- CSR (de)serialization ----------------------------------------------

  CsrArrays Csr() const;

  // Builds a graph whose spans alias `arrays` directly; `keepalive` (e.g. an
  // mmap'ed file) is held for the graph's lifetime. Validates every
  // structural invariant (extents, id ranges, back slots, grouping, lookup
  // table, ranks) before accepting; on failure returns nullopt and sets
  // `*error`. This is the snapshot zero-copy load path.
  static std::optional<AsGraph> FromCsr(const CsrArrays& arrays,
                                        std::shared_ptr<const void> keepalive,
                                        std::string* error);

 private:
  friend class GraphBuilder;

  struct Storage;

  std::span<const Asn> SegmentAt(AsId id, Relation rel) const;
  void Adopt(const CsrArrays& arrays, std::shared_ptr<const void> keepalive);

  std::span<const Asn> asn_of_;
  std::span<const Asn> lookup_asn_;
  std::span<const AsId> lookup_id_;
  std::span<const std::uint32_t> offsets_;
  std::span<const std::uint32_t> seg_ends_;
  std::span<const std::uint32_t> ranks_;
  std::span<const AsId> ids_by_rank_;
  std::span<const std::uint32_t> rank_pos_;
  std::span<const Asn> edge_asns_;
  std::span<const Edge> edges_;
  std::uint64_t num_links_ = 0;
  std::uint32_t num_ranks_ = 0;
  bool connected_ = true;   // vacuously, for the empty graph
  bool acyclic_ = true;
  std::shared_ptr<const void> keepalive_;
};

// The mutable construction phase. Accumulates ASes and links (insertion
// order preserved: it is the stable order inside each frozen relation
// segment), then Freeze() compiles an AsGraph.
class GraphBuilder {
 public:
  // Registers an AS. Idempotent.
  void AddAs(Asn asn);

  // Adds a bidirectional link; `rel_of_b` is b's role relative to a
  // (e.g. AddLink(a, b, Relation::kCustomer) makes b a customer of a).
  // Both endpoints are registered if needed. Re-adding an existing link with
  // the same relationship is idempotent; with a different relationship it
  // aborts — ambiguous inputs must be resolved by the caller (see infer/).
  void AddLink(Asn a, Asn b, Relation rel_of_b);

  bool HasAs(Asn asn) const { return index_.contains(asn); }
  bool HasLink(Asn a, Asn b) const { return RelationOf(a, b).has_value(); }
  std::optional<Relation> RelationOf(Asn a, Asn b) const;

  std::size_t Degree(Asn asn) const;
  std::size_t NumAses() const { return asns_.size(); }
  std::size_t NumLinks() const { return num_links_; }
  const std::vector<Asn>& Ases() const { return asns_; }

  // Directed downhill reachability over the partial graph (customer and
  // sibling edges) — what SiblingLinkCreatesCycle needs mid-construction.
  bool ReachesDownhill(Asn from, Asn to) const;

  // Compiles the current state into an immutable CSR graph. Non-destructive;
  // the builder remains usable (e.g. the generator freezes once at the end,
  // tests may freeze intermediate states).
  AsGraph Freeze() const;

 private:
  struct Entry {
    Asn asn;       // neighbor ASN
    AsId id;       // neighbor dense id (known at AddLink time)
    Relation rel;  // neighbor's role relative to the owning AS
  };

  std::unordered_map<Asn, AsId> index_;
  std::vector<Asn> asns_;
  std::vector<std::vector<Entry>> adjacency_;
  std::size_t num_links_ = 0;
};

// Would adding a sibling link a–b create a cycle in the sibling-merged
// provider→customer digraph? True exactly when a directed provider→customer
// path (traversing existing sibling links freely) already connects a to b in
// either direction. Used by the generator and scenario builders to keep
// every produced topology convergence-safe.
bool SiblingLinkCreatesCycle(const GraphBuilder& builder, Asn a, Asn b);
bool SiblingLinkCreatesCycle(const AsGraph& graph, Asn a, Asn b);

}  // namespace asppi::topo
