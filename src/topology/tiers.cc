#include "topology/tiers.h"

#include <algorithm>
#include <deque>

#include "util/check.h"

namespace asppi::topo {

int TierInfo::TierOf(Asn asn) const {
  ASPPI_CHECK(graph_ != nullptr);
  return tier_by_index_[graph_->IndexOf(asn)];
}

std::vector<Asn> TierInfo::AsesAtTier(int t) const {
  ASPPI_CHECK(graph_ != nullptr);
  std::vector<Asn> out;
  for (Asn asn : graph_->Ases()) {
    if (TierOf(asn) == t) out.push_back(asn);
  }
  std::sort(out.begin(), out.end());
  return out;
}

TierInfo ClassifyTiers(const AsGraph& graph) {
  TierInfo info;
  info.graph_ = &graph;
  info.tier_by_index_.assign(graph.NumAses(), TierInfo::kUnranked);

  // Candidates: provider-free ASes.
  std::vector<Asn> candidates;
  for (AsId id = 0; id < graph.NumAses(); ++id) {
    if (graph.ProvidersAt(id).empty()) candidates.push_back(graph.AsnAt(id));
  }

  // Keep the densely inter-peered core: candidates peering with at least half
  // of the other candidates. A lone provider-free AS (degenerate graphs,
  // small unit-test fixtures) is kept as-is.
  std::vector<Asn> core;
  if (candidates.size() <= 1) {
    core = candidates;
  } else {
    for (Asn a : candidates) {
      std::size_t peered = 0;
      for (Asn b : candidates) {
        if (a != b && graph.RelationOf(a, b) == Relation::kPeer) ++peered;
      }
      if (2 * peered >= candidates.size() - 1) core.push_back(a);
    }
    if (core.empty()) core = candidates;  // no peering structure: keep all
  }
  std::sort(core.begin(), core.end());
  info.tier1_ = core;

  // BFS down provider→customer edges: tier(v) = 1 + min tier over providers.
  // Sibling links propagate tier without incrementing (common administration).
  std::deque<AsId> queue;
  for (Asn asn : core) {
    AsId id = graph.IndexOf(asn);
    info.tier_by_index_[id] = 1;
    queue.push_back(id);
  }
  while (!queue.empty()) {
    AsId cur = queue.front();
    queue.pop_front();
    int cur_tier = info.tier_by_index_[cur];
    for (const AsGraph::Neighbor& n : graph.NeighborsAt(cur)) {
      int proposed;
      if (n.rel == Relation::kCustomer) {
        proposed = cur_tier + 1;
      } else if (n.rel == Relation::kSibling) {
        proposed = cur_tier;
      } else {
        continue;
      }
      int& slot = info.tier_by_index_[n.id];
      if (proposed < slot) {
        slot = proposed;
        queue.push_back(n.id);
      }
    }
  }

  info.max_tier_ = 0;
  for (int t : info.tier_by_index_) {
    if (t != TierInfo::kUnranked) info.max_tier_ = std::max(info.max_tier_, t);
  }
  return info;
}

}  // namespace asppi::topo
