file(REMOVE_RECURSE
  "CMakeFiles/fig10_sweep_t1_t3.dir/fig10_sweep_t1_t3.cc.o"
  "CMakeFiles/fig10_sweep_t1_t3.dir/fig10_sweep_t1_t3.cc.o.d"
  "fig10_sweep_t1_t3"
  "fig10_sweep_t1_t3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_sweep_t1_t3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
