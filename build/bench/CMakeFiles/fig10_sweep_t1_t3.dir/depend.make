# Empty dependencies file for fig10_sweep_t1_t3.
# This may be replaced when dependencies are built.
