file(REMOVE_RECURSE
  "CMakeFiles/fig07_tier1_pairs.dir/fig07_tier1_pairs.cc.o"
  "CMakeFiles/fig07_tier1_pairs.dir/fig07_tier1_pairs.cc.o.d"
  "fig07_tier1_pairs"
  "fig07_tier1_pairs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_tier1_pairs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
