# Empty dependencies file for fig07_tier1_pairs.
# This may be replaced when dependencies are built.
