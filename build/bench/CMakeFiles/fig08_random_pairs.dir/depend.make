# Empty dependencies file for fig08_random_pairs.
# This may be replaced when dependencies are built.
