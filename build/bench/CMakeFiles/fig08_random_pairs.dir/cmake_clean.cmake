file(REMOVE_RECURSE
  "CMakeFiles/fig08_random_pairs.dir/fig08_random_pairs.cc.o"
  "CMakeFiles/fig08_random_pairs.dir/fig08_random_pairs.cc.o.d"
  "fig08_random_pairs"
  "fig08_random_pairs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_random_pairs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
