# Empty dependencies file for fig12_sweep_small_small.
# This may be replaced when dependencies are built.
