file(REMOVE_RECURSE
  "CMakeFiles/fig12_sweep_small_small.dir/fig12_sweep_small_small.cc.o"
  "CMakeFiles/fig12_sweep_small_small.dir/fig12_sweep_small_small.cc.o.d"
  "fig12_sweep_small_small"
  "fig12_sweep_small_small.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_sweep_small_small.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
