# Empty dependencies file for ablation_attack_comparison.
# This may be replaced when dependencies are built.
