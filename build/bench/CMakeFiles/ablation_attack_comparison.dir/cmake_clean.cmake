file(REMOVE_RECURSE
  "CMakeFiles/ablation_attack_comparison.dir/ablation_attack_comparison.cc.o"
  "CMakeFiles/ablation_attack_comparison.dir/ablation_attack_comparison.cc.o.d"
  "ablation_attack_comparison"
  "ablation_attack_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_attack_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
