# Empty dependencies file for fig06_prepend_counts.
# This may be replaced when dependencies are built.
