file(REMOVE_RECURSE
  "CMakeFiles/fig06_prepend_counts.dir/fig06_prepend_counts.cc.o"
  "CMakeFiles/fig06_prepend_counts.dir/fig06_prepend_counts.cc.o.d"
  "fig06_prepend_counts"
  "fig06_prepend_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_prepend_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
