file(REMOVE_RECURSE
  "CMakeFiles/fig01_table1_facebook_anomaly.dir/fig01_table1_facebook_anomaly.cc.o"
  "CMakeFiles/fig01_table1_facebook_anomaly.dir/fig01_table1_facebook_anomaly.cc.o.d"
  "fig01_table1_facebook_anomaly"
  "fig01_table1_facebook_anomaly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_table1_facebook_anomaly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
