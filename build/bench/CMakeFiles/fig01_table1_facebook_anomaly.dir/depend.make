# Empty dependencies file for fig01_table1_facebook_anomaly.
# This may be replaced when dependencies are built.
