# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig01_table1_facebook_anomaly.
