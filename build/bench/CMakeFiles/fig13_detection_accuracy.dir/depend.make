# Empty dependencies file for fig13_detection_accuracy.
# This may be replaced when dependencies are built.
