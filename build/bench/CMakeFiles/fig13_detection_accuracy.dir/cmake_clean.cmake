file(REMOVE_RECURSE
  "CMakeFiles/fig13_detection_accuracy.dir/fig13_detection_accuracy.cc.o"
  "CMakeFiles/fig13_detection_accuracy.dir/fig13_detection_accuracy.cc.o.d"
  "fig13_detection_accuracy"
  "fig13_detection_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_detection_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
