# Empty compiler generated dependencies file for fig05_prepend_usage.
# This may be replaced when dependencies are built.
