file(REMOVE_RECURSE
  "CMakeFiles/fig05_prepend_usage.dir/fig05_prepend_usage.cc.o"
  "CMakeFiles/fig05_prepend_usage.dir/fig05_prepend_usage.cc.o.d"
  "fig05_prepend_usage"
  "fig05_prepend_usage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_prepend_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
