# Empty dependencies file for fig09_sweep_t1_t1.
# This may be replaced when dependencies are built.
