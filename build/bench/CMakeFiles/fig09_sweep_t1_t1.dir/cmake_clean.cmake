file(REMOVE_RECURSE
  "CMakeFiles/fig09_sweep_t1_t1.dir/fig09_sweep_t1_t1.cc.o"
  "CMakeFiles/fig09_sweep_t1_t1.dir/fig09_sweep_t1_t1.cc.o.d"
  "fig09_sweep_t1_t1"
  "fig09_sweep_t1_t1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_sweep_t1_t1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
