file(REMOVE_RECURSE
  "CMakeFiles/fig11_sweep_small_t1.dir/fig11_sweep_small_t1.cc.o"
  "CMakeFiles/fig11_sweep_small_t1.dir/fig11_sweep_small_t1.cc.o.d"
  "fig11_sweep_small_t1"
  "fig11_sweep_small_t1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_sweep_small_t1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
