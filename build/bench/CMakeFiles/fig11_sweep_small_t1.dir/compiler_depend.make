# Empty compiler generated dependencies file for fig11_sweep_small_t1.
# This may be replaced when dependencies are built.
