file(REMOVE_RECURSE
  "../lib/libasppi_bench_common.a"
  "../lib/libasppi_bench_common.pdb"
  "CMakeFiles/asppi_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/asppi_bench_common.dir/bench_common.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asppi_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
