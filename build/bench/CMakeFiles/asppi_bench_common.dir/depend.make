# Empty dependencies file for asppi_bench_common.
# This may be replaced when dependencies are built.
