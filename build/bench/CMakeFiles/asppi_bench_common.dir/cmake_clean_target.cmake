file(REMOVE_RECURSE
  "../lib/libasppi_bench_common.a"
)
