file(REMOVE_RECURSE
  "CMakeFiles/ablation_self_defense.dir/ablation_self_defense.cc.o"
  "CMakeFiles/ablation_self_defense.dir/ablation_self_defense.cc.o.d"
  "ablation_self_defense"
  "ablation_self_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_self_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
