file(REMOVE_RECURSE
  "CMakeFiles/fig14_detection_speed.dir/fig14_detection_speed.cc.o"
  "CMakeFiles/fig14_detection_speed.dir/fig14_detection_speed.cc.o.d"
  "fig14_detection_speed"
  "fig14_detection_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_detection_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
