file(REMOVE_RECURSE
  "CMakeFiles/perf_engines.dir/perf_engines.cc.o"
  "CMakeFiles/perf_engines.dir/perf_engines.cc.o.d"
  "perf_engines"
  "perf_engines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
