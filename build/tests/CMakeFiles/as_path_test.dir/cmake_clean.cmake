file(REMOVE_RECURSE
  "CMakeFiles/as_path_test.dir/as_path_test.cc.o"
  "CMakeFiles/as_path_test.dir/as_path_test.cc.o.d"
  "as_path_test"
  "as_path_test.pdb"
  "as_path_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/as_path_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
