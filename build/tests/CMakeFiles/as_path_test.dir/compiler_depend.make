# Empty compiler generated dependencies file for as_path_test.
# This may be replaced when dependencies are built.
