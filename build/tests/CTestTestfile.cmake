# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/topology_test[1]_include.cmake")
include("/root/repo/build/tests/as_path_test[1]_include.cmake")
include("/root/repo/build/tests/policy_test[1]_include.cmake")
include("/root/repo/build/tests/propagation_test[1]_include.cmake")
include("/root/repo/build/tests/routing_tree_test[1]_include.cmake")
include("/root/repo/build/tests/attack_test[1]_include.cmake")
include("/root/repo/build/tests/detect_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/infer_test[1]_include.cmake")
include("/root/repo/build/tests/placement_test[1]_include.cmake")
include("/root/repo/build/tests/propagation_property_test[1]_include.cmake")
include("/root/repo/build/tests/detector_property_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
