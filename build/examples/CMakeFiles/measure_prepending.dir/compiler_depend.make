# Empty compiler generated dependencies file for measure_prepending.
# This may be replaced when dependencies are built.
