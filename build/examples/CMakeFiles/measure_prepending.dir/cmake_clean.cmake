file(REMOVE_RECURSE
  "CMakeFiles/measure_prepending.dir/measure_prepending.cpp.o"
  "CMakeFiles/measure_prepending.dir/measure_prepending.cpp.o.d"
  "measure_prepending"
  "measure_prepending.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measure_prepending.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
