file(REMOVE_RECURSE
  "CMakeFiles/facebook_anomaly.dir/facebook_anomaly.cpp.o"
  "CMakeFiles/facebook_anomaly.dir/facebook_anomaly.cpp.o.d"
  "facebook_anomaly"
  "facebook_anomaly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/facebook_anomaly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
