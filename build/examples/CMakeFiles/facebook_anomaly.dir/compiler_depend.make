# Empty compiler generated dependencies file for facebook_anomaly.
# This may be replaced when dependencies are built.
