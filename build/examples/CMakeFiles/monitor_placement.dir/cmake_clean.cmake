file(REMOVE_RECURSE
  "CMakeFiles/monitor_placement.dir/monitor_placement.cpp.o"
  "CMakeFiles/monitor_placement.dir/monitor_placement.cpp.o.d"
  "monitor_placement"
  "monitor_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitor_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
