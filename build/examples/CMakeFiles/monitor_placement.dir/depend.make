# Empty dependencies file for monitor_placement.
# This may be replaced when dependencies are built.
