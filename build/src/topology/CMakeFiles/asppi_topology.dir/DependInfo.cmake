
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/as_graph.cc" "src/topology/CMakeFiles/asppi_topology.dir/as_graph.cc.o" "gcc" "src/topology/CMakeFiles/asppi_topology.dir/as_graph.cc.o.d"
  "/root/repo/src/topology/builders.cc" "src/topology/CMakeFiles/asppi_topology.dir/builders.cc.o" "gcc" "src/topology/CMakeFiles/asppi_topology.dir/builders.cc.o.d"
  "/root/repo/src/topology/generator.cc" "src/topology/CMakeFiles/asppi_topology.dir/generator.cc.o" "gcc" "src/topology/CMakeFiles/asppi_topology.dir/generator.cc.o.d"
  "/root/repo/src/topology/serialization.cc" "src/topology/CMakeFiles/asppi_topology.dir/serialization.cc.o" "gcc" "src/topology/CMakeFiles/asppi_topology.dir/serialization.cc.o.d"
  "/root/repo/src/topology/tiers.cc" "src/topology/CMakeFiles/asppi_topology.dir/tiers.cc.o" "gcc" "src/topology/CMakeFiles/asppi_topology.dir/tiers.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/asppi_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
