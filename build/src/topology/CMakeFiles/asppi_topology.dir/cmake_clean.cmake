file(REMOVE_RECURSE
  "CMakeFiles/asppi_topology.dir/as_graph.cc.o"
  "CMakeFiles/asppi_topology.dir/as_graph.cc.o.d"
  "CMakeFiles/asppi_topology.dir/builders.cc.o"
  "CMakeFiles/asppi_topology.dir/builders.cc.o.d"
  "CMakeFiles/asppi_topology.dir/generator.cc.o"
  "CMakeFiles/asppi_topology.dir/generator.cc.o.d"
  "CMakeFiles/asppi_topology.dir/serialization.cc.o"
  "CMakeFiles/asppi_topology.dir/serialization.cc.o.d"
  "CMakeFiles/asppi_topology.dir/tiers.cc.o"
  "CMakeFiles/asppi_topology.dir/tiers.cc.o.d"
  "libasppi_topology.a"
  "libasppi_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asppi_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
