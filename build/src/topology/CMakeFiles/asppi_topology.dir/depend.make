# Empty dependencies file for asppi_topology.
# This may be replaced when dependencies are built.
