file(REMOVE_RECURSE
  "libasppi_topology.a"
)
