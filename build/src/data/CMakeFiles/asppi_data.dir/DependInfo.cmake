
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/behavior.cc" "src/data/CMakeFiles/asppi_data.dir/behavior.cc.o" "gcc" "src/data/CMakeFiles/asppi_data.dir/behavior.cc.o.d"
  "/root/repo/src/data/characterize.cc" "src/data/CMakeFiles/asppi_data.dir/characterize.cc.o" "gcc" "src/data/CMakeFiles/asppi_data.dir/characterize.cc.o.d"
  "/root/repo/src/data/formats.cc" "src/data/CMakeFiles/asppi_data.dir/formats.cc.o" "gcc" "src/data/CMakeFiles/asppi_data.dir/formats.cc.o.d"
  "/root/repo/src/data/measurement.cc" "src/data/CMakeFiles/asppi_data.dir/measurement.cc.o" "gcc" "src/data/CMakeFiles/asppi_data.dir/measurement.cc.o.d"
  "/root/repo/src/data/prefix.cc" "src/data/CMakeFiles/asppi_data.dir/prefix.cc.o" "gcc" "src/data/CMakeFiles/asppi_data.dir/prefix.cc.o.d"
  "/root/repo/src/data/traceroute.cc" "src/data/CMakeFiles/asppi_data.dir/traceroute.cc.o" "gcc" "src/data/CMakeFiles/asppi_data.dir/traceroute.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bgp/CMakeFiles/asppi_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/asppi_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/asppi_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
