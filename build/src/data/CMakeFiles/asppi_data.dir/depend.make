# Empty dependencies file for asppi_data.
# This may be replaced when dependencies are built.
