file(REMOVE_RECURSE
  "libasppi_data.a"
)
