file(REMOVE_RECURSE
  "CMakeFiles/asppi_data.dir/behavior.cc.o"
  "CMakeFiles/asppi_data.dir/behavior.cc.o.d"
  "CMakeFiles/asppi_data.dir/characterize.cc.o"
  "CMakeFiles/asppi_data.dir/characterize.cc.o.d"
  "CMakeFiles/asppi_data.dir/formats.cc.o"
  "CMakeFiles/asppi_data.dir/formats.cc.o.d"
  "CMakeFiles/asppi_data.dir/measurement.cc.o"
  "CMakeFiles/asppi_data.dir/measurement.cc.o.d"
  "CMakeFiles/asppi_data.dir/prefix.cc.o"
  "CMakeFiles/asppi_data.dir/prefix.cc.o.d"
  "CMakeFiles/asppi_data.dir/traceroute.cc.o"
  "CMakeFiles/asppi_data.dir/traceroute.cc.o.d"
  "libasppi_data.a"
  "libasppi_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asppi_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
