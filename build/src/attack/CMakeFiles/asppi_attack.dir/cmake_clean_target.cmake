file(REMOVE_RECURSE
  "libasppi_attack.a"
)
