
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/impact.cc" "src/attack/CMakeFiles/asppi_attack.dir/impact.cc.o" "gcc" "src/attack/CMakeFiles/asppi_attack.dir/impact.cc.o.d"
  "/root/repo/src/attack/interceptor.cc" "src/attack/CMakeFiles/asppi_attack.dir/interceptor.cc.o" "gcc" "src/attack/CMakeFiles/asppi_attack.dir/interceptor.cc.o.d"
  "/root/repo/src/attack/scenarios.cc" "src/attack/CMakeFiles/asppi_attack.dir/scenarios.cc.o" "gcc" "src/attack/CMakeFiles/asppi_attack.dir/scenarios.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bgp/CMakeFiles/asppi_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/asppi_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/asppi_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
