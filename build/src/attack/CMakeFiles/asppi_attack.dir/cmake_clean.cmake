file(REMOVE_RECURSE
  "CMakeFiles/asppi_attack.dir/impact.cc.o"
  "CMakeFiles/asppi_attack.dir/impact.cc.o.d"
  "CMakeFiles/asppi_attack.dir/interceptor.cc.o"
  "CMakeFiles/asppi_attack.dir/interceptor.cc.o.d"
  "CMakeFiles/asppi_attack.dir/scenarios.cc.o"
  "CMakeFiles/asppi_attack.dir/scenarios.cc.o.d"
  "libasppi_attack.a"
  "libasppi_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asppi_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
