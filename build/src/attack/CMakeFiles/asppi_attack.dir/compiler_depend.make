# Empty compiler generated dependencies file for asppi_attack.
# This may be replaced when dependencies are built.
