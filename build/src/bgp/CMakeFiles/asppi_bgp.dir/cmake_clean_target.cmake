file(REMOVE_RECURSE
  "libasppi_bgp.a"
)
