file(REMOVE_RECURSE
  "CMakeFiles/asppi_bgp.dir/as_path.cc.o"
  "CMakeFiles/asppi_bgp.dir/as_path.cc.o.d"
  "CMakeFiles/asppi_bgp.dir/policy.cc.o"
  "CMakeFiles/asppi_bgp.dir/policy.cc.o.d"
  "CMakeFiles/asppi_bgp.dir/propagation.cc.o"
  "CMakeFiles/asppi_bgp.dir/propagation.cc.o.d"
  "CMakeFiles/asppi_bgp.dir/route.cc.o"
  "CMakeFiles/asppi_bgp.dir/route.cc.o.d"
  "CMakeFiles/asppi_bgp.dir/routing_tree.cc.o"
  "CMakeFiles/asppi_bgp.dir/routing_tree.cc.o.d"
  "libasppi_bgp.a"
  "libasppi_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asppi_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
