# Empty compiler generated dependencies file for asppi_bgp.
# This may be replaced when dependencies are built.
