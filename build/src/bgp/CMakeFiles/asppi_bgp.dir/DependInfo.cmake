
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bgp/as_path.cc" "src/bgp/CMakeFiles/asppi_bgp.dir/as_path.cc.o" "gcc" "src/bgp/CMakeFiles/asppi_bgp.dir/as_path.cc.o.d"
  "/root/repo/src/bgp/policy.cc" "src/bgp/CMakeFiles/asppi_bgp.dir/policy.cc.o" "gcc" "src/bgp/CMakeFiles/asppi_bgp.dir/policy.cc.o.d"
  "/root/repo/src/bgp/propagation.cc" "src/bgp/CMakeFiles/asppi_bgp.dir/propagation.cc.o" "gcc" "src/bgp/CMakeFiles/asppi_bgp.dir/propagation.cc.o.d"
  "/root/repo/src/bgp/route.cc" "src/bgp/CMakeFiles/asppi_bgp.dir/route.cc.o" "gcc" "src/bgp/CMakeFiles/asppi_bgp.dir/route.cc.o.d"
  "/root/repo/src/bgp/routing_tree.cc" "src/bgp/CMakeFiles/asppi_bgp.dir/routing_tree.cc.o" "gcc" "src/bgp/CMakeFiles/asppi_bgp.dir/routing_tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topology/CMakeFiles/asppi_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/asppi_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
