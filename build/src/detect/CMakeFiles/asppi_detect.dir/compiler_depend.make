# Empty compiler generated dependencies file for asppi_detect.
# This may be replaced when dependencies are built.
