file(REMOVE_RECURSE
  "libasppi_detect.a"
)
