file(REMOVE_RECURSE
  "CMakeFiles/asppi_detect.dir/detector.cc.o"
  "CMakeFiles/asppi_detect.dir/detector.cc.o.d"
  "CMakeFiles/asppi_detect.dir/evaluation.cc.o"
  "CMakeFiles/asppi_detect.dir/evaluation.cc.o.d"
  "CMakeFiles/asppi_detect.dir/monitors.cc.o"
  "CMakeFiles/asppi_detect.dir/monitors.cc.o.d"
  "CMakeFiles/asppi_detect.dir/observation.cc.o"
  "CMakeFiles/asppi_detect.dir/observation.cc.o.d"
  "CMakeFiles/asppi_detect.dir/placement.cc.o"
  "CMakeFiles/asppi_detect.dir/placement.cc.o.d"
  "libasppi_detect.a"
  "libasppi_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asppi_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
