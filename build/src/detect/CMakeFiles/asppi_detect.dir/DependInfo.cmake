
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detect/detector.cc" "src/detect/CMakeFiles/asppi_detect.dir/detector.cc.o" "gcc" "src/detect/CMakeFiles/asppi_detect.dir/detector.cc.o.d"
  "/root/repo/src/detect/evaluation.cc" "src/detect/CMakeFiles/asppi_detect.dir/evaluation.cc.o" "gcc" "src/detect/CMakeFiles/asppi_detect.dir/evaluation.cc.o.d"
  "/root/repo/src/detect/monitors.cc" "src/detect/CMakeFiles/asppi_detect.dir/monitors.cc.o" "gcc" "src/detect/CMakeFiles/asppi_detect.dir/monitors.cc.o.d"
  "/root/repo/src/detect/observation.cc" "src/detect/CMakeFiles/asppi_detect.dir/observation.cc.o" "gcc" "src/detect/CMakeFiles/asppi_detect.dir/observation.cc.o.d"
  "/root/repo/src/detect/placement.cc" "src/detect/CMakeFiles/asppi_detect.dir/placement.cc.o" "gcc" "src/detect/CMakeFiles/asppi_detect.dir/placement.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/attack/CMakeFiles/asppi_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/asppi_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/asppi_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/asppi_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
