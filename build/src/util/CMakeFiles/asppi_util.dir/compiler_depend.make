# Empty compiler generated dependencies file for asppi_util.
# This may be replaced when dependencies are built.
