file(REMOVE_RECURSE
  "CMakeFiles/asppi_util.dir/flags.cc.o"
  "CMakeFiles/asppi_util.dir/flags.cc.o.d"
  "CMakeFiles/asppi_util.dir/rng.cc.o"
  "CMakeFiles/asppi_util.dir/rng.cc.o.d"
  "CMakeFiles/asppi_util.dir/stats.cc.o"
  "CMakeFiles/asppi_util.dir/stats.cc.o.d"
  "CMakeFiles/asppi_util.dir/strings.cc.o"
  "CMakeFiles/asppi_util.dir/strings.cc.o.d"
  "CMakeFiles/asppi_util.dir/table.cc.o"
  "CMakeFiles/asppi_util.dir/table.cc.o.d"
  "libasppi_util.a"
  "libasppi_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asppi_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
