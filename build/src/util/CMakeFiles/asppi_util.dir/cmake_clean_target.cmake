file(REMOVE_RECURSE
  "libasppi_util.a"
)
