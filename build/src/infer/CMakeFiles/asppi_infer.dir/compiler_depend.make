# Empty compiler generated dependencies file for asppi_infer.
# This may be replaced when dependencies are built.
