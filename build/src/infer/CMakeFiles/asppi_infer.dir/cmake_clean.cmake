file(REMOVE_RECURSE
  "CMakeFiles/asppi_infer.dir/inference.cc.o"
  "CMakeFiles/asppi_infer.dir/inference.cc.o.d"
  "libasppi_infer.a"
  "libasppi_infer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asppi_infer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
