file(REMOVE_RECURSE
  "libasppi_infer.a"
)
