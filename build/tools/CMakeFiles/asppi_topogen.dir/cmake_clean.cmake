file(REMOVE_RECURSE
  "CMakeFiles/asppi_topogen.dir/asppi_topogen.cc.o"
  "CMakeFiles/asppi_topogen.dir/asppi_topogen.cc.o.d"
  "asppi_topogen"
  "asppi_topogen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asppi_topogen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
