# Empty dependencies file for asppi_topogen.
# This may be replaced when dependencies are built.
