file(REMOVE_RECURSE
  "CMakeFiles/asppi_attack_tool.dir/asppi_attack.cc.o"
  "CMakeFiles/asppi_attack_tool.dir/asppi_attack.cc.o.d"
  "asppi_attack_tool"
  "asppi_attack_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asppi_attack_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
