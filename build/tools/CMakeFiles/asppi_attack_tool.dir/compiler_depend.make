# Empty compiler generated dependencies file for asppi_attack_tool.
# This may be replaced when dependencies are built.
