
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/asppi_attack.cc" "tools/CMakeFiles/asppi_attack_tool.dir/asppi_attack.cc.o" "gcc" "tools/CMakeFiles/asppi_attack_tool.dir/asppi_attack.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/detect/CMakeFiles/asppi_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/asppi_data.dir/DependInfo.cmake"
  "/root/repo/build/src/infer/CMakeFiles/asppi_infer.dir/DependInfo.cmake"
  "/root/repo/build/src/attack/CMakeFiles/asppi_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/asppi_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/asppi_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/asppi_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
