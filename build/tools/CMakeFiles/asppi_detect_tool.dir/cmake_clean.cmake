file(REMOVE_RECURSE
  "CMakeFiles/asppi_detect_tool.dir/asppi_detect.cc.o"
  "CMakeFiles/asppi_detect_tool.dir/asppi_detect.cc.o.d"
  "asppi_detect_tool"
  "asppi_detect_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asppi_detect_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
