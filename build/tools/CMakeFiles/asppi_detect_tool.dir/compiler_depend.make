# Empty compiler generated dependencies file for asppi_detect_tool.
# This may be replaced when dependencies are built.
