// asppi_topogen — generate a synthetic Internet-like AS topology and write it
// in the CAIDA-style as-rel text format.
//
//   $ asppi_topogen --seed=42 --out=topology.topo
#include <cstdio>

#include "bench/experiment.h"
#include "topology/serialization.h"
#include "topology/tiers.h"

using namespace asppi;

int main(int argc, char** argv) {
  bench::Experiment e("asppi_topogen",
                      "synthetic Internet-like topology generator");
  e.WithTopologyFlags();
  e.Flags().DefineString("out", "topology.topo",
                         "output file (as-rel format)");
  if (!e.ParseFlags(argc, argv)) return 1;

  topo::GeneratedTopology gen = topo::GenerateInternetTopology(e.Params());
  topo::WriteAsRelFile(gen.graph, e.Flags().GetString("out"));

  topo::TierInfo tiers = topo::ClassifyTiers(gen.graph);
  e.Note("wrote %s: %zu ASes, %zu links",
         e.Flags().GetString("out").c_str(), gen.graph.NumAses(),
         gen.graph.NumLinks());
  std::printf("tiers: ");
  for (int t = 1; t <= tiers.MaxTier(); ++t) {
    std::printf("t%d=%zu ", t, tiers.AsesAtTier(t).size());
  }
  std::printf("\ntier-1 clique:");
  for (topo::Asn asn : gen.tier1) std::printf(" AS%u", asn);
  std::printf("\n");
  return e.Finish();
}
