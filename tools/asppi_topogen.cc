// asppi_topogen — generate a synthetic Internet-like AS topology and write it
// in the CAIDA-style as-rel text format.
//
//   $ asppi_topogen --seed=42 --out=topology.topo
#include <cstdio>

#include "topology/generator.h"
#include "topology/serialization.h"
#include "topology/tiers.h"
#include "util/flags.h"

using namespace asppi;

int main(int argc, char** argv) {
  util::Flags flags;
  flags.DefineUint("seed", 42, "generator seed");
  flags.DefineUint("tier1", 10, "number of tier-1 ASes");
  flags.DefineUint("tier2", 120, "number of tier-2 ASes");
  flags.DefineUint("tier3", 700, "number of tier-3 ASes");
  flags.DefineUint("stubs", 3000, "number of stub ASes");
  flags.DefineUint("content", 20, "number of content/CDN ASes");
  flags.DefineUint("siblings", 15, "number of sibling pairs");
  flags.DefineString("out", "topology.topo", "output file (as-rel format)");
  if (!flags.Parse(argc, argv)) return 1;

  topo::GeneratorParams params;
  params.seed = flags.GetUint("seed");
  params.num_tier1 = flags.GetUint("tier1");
  params.num_tier2 = flags.GetUint("tier2");
  params.num_tier3 = flags.GetUint("tier3");
  params.num_stubs = flags.GetUint("stubs");
  params.num_content = flags.GetUint("content");
  params.num_sibling_pairs = flags.GetUint("siblings");

  topo::GeneratedTopology gen = topo::GenerateInternetTopology(params);
  topo::WriteAsRelFile(gen.graph, flags.GetString("out"));

  topo::TierInfo tiers = topo::ClassifyTiers(gen.graph);
  std::printf("wrote %s: %zu ASes, %zu links\n", flags.GetString("out").c_str(),
              gen.graph.NumAses(), gen.graph.NumLinks());
  std::printf("tiers: ");
  for (int t = 1; t <= tiers.MaxTier(); ++t) {
    std::printf("t%d=%zu ", t, tiers.AsesAtTier(t).size());
  }
  std::printf("\ntier-1 clique:");
  for (topo::Asn asn : gen.tier1) std::printf(" AS%u", asn);
  std::printf("\n");
  return 0;
}
