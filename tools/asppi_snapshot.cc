// asppi_snapshot — compile a topology (+ prepend policy + optional
// precomputed baseline routing states) into the binary snapshot format
// (data/snapshot.h) that asppi_serve and the --snapshot fast path of the
// batch tools load by mmap.
//
//   $ asppi_snapshot --topo=topology.topo --out=topology.snap
//   $ asppi_snapshot --topo=topology.topo --out=topology.snap
//       --baselines=3831,9002 --lambda=4 --policy=3831:4
//   $ asppi_snapshot --topo=topology.topo --out=defended.snap
//       --defense=top-degree:0.3:rov+pathval
//   $ asppi_snapshot --info --topo=topology.snap
//
// --defense embeds a per-AS defense deployment (kDefense section) that
// asppi_serve activates as the import filter for every what-if query.
//
// --baselines precomputes the attack-free converged state for each listed
// origin (announced with the snapshot policy overlaid by a uniform --lambda
// default) and embeds the checkpoints, so a server warm-starts without
// running propagation. --verify reloads the written file and cross-checks
// the graph and policy against the text-loaded corpus before reporting
// success.
#include <cstdio>
#include <set>

#include "attack/baseline_cache.h"
#include "bench/experiment.h"
#include "bgp/propagation.h"
#include "data/snapshot.h"
#include "defense/deployment.h"
#include "defense/policy.h"
#include "util/strings.h"
#include "util/table.h"

using namespace asppi;

namespace {

// "asn:pads[,asn:pads...]" → per-origin default pad counts.
bool ParsePolicyFlag(const std::string& text, bgp::PrependPolicy* policy) {
  if (text.empty()) return true;
  for (const std::string& item : util::Split(text, ',')) {
    const std::vector<std::string> parts = util::Split(item, ':');
    std::optional<std::uint32_t> asn;
    std::optional<std::uint64_t> pads;
    if (parts.size() == 2) {
      asn = util::ParseAsn(parts[0]);
      pads = util::ParseUint(parts[1]);
    }
    if (!asn.has_value() || !pads.has_value() || *pads < 1 || *pads > 64) {
      std::fprintf(stderr,
                   "error: --policy entry '%s' is not ASN:PADS "
                   "(pads in 1..64)\n",
                   item.c_str());
      return false;
    }
    policy->SetDefault(static_cast<topo::Asn>(*asn), static_cast<int>(*pads));
  }
  return true;
}

bool ParseBaselinesFlag(const std::string& text, std::vector<topo::Asn>* out) {
  if (text.empty()) return true;
  std::set<topo::Asn> origins;
  for (const std::string& item : util::Split(text, ',')) {
    const std::optional<std::uint32_t> asn = util::ParseAsn(item);
    if (!asn.has_value()) {
      std::fprintf(stderr,
                   "error: --baselines entry '%s' is not a valid AS number\n",
                   item.c_str());
      return false;
    }
    origins.insert(static_cast<topo::Asn>(*asn));
  }
  out->assign(origins.begin(), origins.end());
  return true;
}

// "--defense=" spec → dense per-AsId tag bytes. Two forms:
//   ASN:KINDS[,ASN:KINDS...]      explicit per-AS assignment
//   STRATEGY:FRAC[:KINDS]         plan-based corpus-wide deployment, where
//                                 STRATEGY is top-degree or random
//                                 (victim-cone needs a victim and is a
//                                 per-attack notion, not a corpus property)
// KINDS is rov / pathval / detector / all or a '+'-joined combination
// (default all). `seed` feeds the random strategy's shuffle.
bool ParseDefenseFlag(const std::string& text, const topo::AsGraph& graph,
                      std::uint64_t seed, std::vector<std::uint8_t>* tags) {
  if (text.empty()) return true;
  auto bad = [&text](const char* why) {
    std::fprintf(stderr, "error: --defense spec '%s': %s\n", text.c_str(), why);
    return false;
  };
  const std::vector<std::string> head = util::Split(
      util::Split(text, ',')[0], ':');
  if (!head.empty() && defense::ParseStrategy(head[0]).has_value()) {
    const defense::Strategy strategy = *defense::ParseStrategy(head[0]);
    if (strategy == defense::Strategy::kVictimCone) {
      return bad("victim-cone plans need a victim; use asppi_defense");
    }
    if (head.size() < 2 || head.size() > 3) {
      return bad("expected STRATEGY:FRAC[:KINDS]");
    }
    const std::optional<double> frac = util::ParseDouble(head[1]);
    if (!frac.has_value() || *frac < 0.0 || *frac > 1.0) {
      return bad("FRAC must be in [0, 1]");
    }
    std::uint8_t kinds = defense::kAllPolicies;
    if (head.size() == 3) {
      const std::optional<std::uint8_t> parsed =
          defense::ParsePolicyKinds(head[2]);
      if (!parsed.has_value()) return bad("unknown KINDS");
      kinds = *parsed;
    }
    const defense::DeploymentPlan plan = defense::DeploymentPlan::Make(
        graph, strategy, /*victim=*/0, /*attacker=*/0, seed);
    *tags = plan.AtFraction(*frac, kinds).RawTags();
    return true;
  }
  defense::PolicySet set(graph);
  for (const std::string& item : util::Split(text, ',')) {
    const std::vector<std::string> parts = util::Split(item, ':');
    if (parts.size() != 2) return bad("expected ASN:KINDS entries");
    const std::optional<std::uint32_t> asn = util::ParseAsn(parts[0]);
    const std::optional<std::uint8_t> kinds =
        defense::ParsePolicyKinds(parts[1]);
    if (!asn.has_value() || !kinds.has_value()) {
      return bad("expected ASN:KINDS entries");
    }
    if (!graph.HasAs(*asn)) return bad("AS not in topology");
    set.Assign(static_cast<topo::Asn>(*asn), *kinds);
  }
  *tags = set.RawTags();
  return true;
}

// Structural graph equality (same ASes in order, same relations), the
// --verify cross-check between the text loader and the snapshot loader.
bool SameGraph(const topo::AsGraph& a, const topo::AsGraph& b) {
  if (a.NumAses() != b.NumAses() || a.NumLinks() != b.NumLinks()) return false;
  for (topo::Asn asn : a.Ases()) {
    if (!b.HasAs(asn)) return false;
    for (const auto& neighbor : a.NeighborsOf(asn)) {
      const auto rel = b.RelationOf(asn, neighbor.asn);
      if (!rel.has_value() || *rel != neighbor.rel) return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Experiment e("asppi_snapshot",
                      "compile a topology into a binary snapshot");
  e.WithThreadsFlag();
  e.Flags().DefineString("topo", "topology.topo",
                         "as-rel topology file (or a snapshot, with --info)");
  e.Flags().DefineString("out", "topology.snap", "output snapshot path");
  e.Flags().DefineString("baselines", "",
                         "comma-separated origin ASNs whose attack-free "
                         "baselines are precomputed and embedded");
  e.Flags().DefineInt("lambda", 4,
                      "default prepend count for embedded baselines");
  e.Flags().DefineString("policy", "",
                         "prepend policy defaults to embed, as "
                         "ASN:PADS[,ASN:PADS...]");
  e.Flags().DefineString("defense", "",
                         "defense deployment to embed: ASN:KINDS[,...] or "
                         "STRATEGY:FRAC[:KINDS] (top-degree|random)");
  e.Flags().DefineUint("seed", 1, "shuffle seed for --defense=random:...");
  e.Flags().DefineBool("info", false,
                       "print the info section of --topo (a snapshot) "
                       "and exit");
  e.Flags().DefineBool("verify", false,
                       "reload the written snapshot and cross-check it "
                       "against the text-loaded corpus");
  if (!e.ParseFlags(argc, argv)) return 1;

  if (e.Flags().GetBool("info")) {
    data::Snapshot snapshot;
    std::string err = data::Snapshot::Load(e.Flags().GetString("topo"),
                                           snapshot);
    if (!err.empty()) {
      std::fprintf(stderr, "error reading snapshot: %s\n", err.c_str());
      return 1;
    }
    const data::SnapshotInfo& info = snapshot.Info();
    e.PrintHeader();
    std::printf("snapshot %s\n", e.Flags().GetString("topo").c_str());
    std::printf("  version:   %u\n", info.version);
    std::printf("  creator:   %s\n", info.creator.c_str());
    std::printf("  ases:      %llu\n",
                static_cast<unsigned long long>(info.num_ases));
    std::printf("  links:     %llu\n",
                static_cast<unsigned long long>(info.num_links));
    std::printf("  baselines: %llu\n",
                static_cast<unsigned long long>(info.num_baselines));
    std::printf("  defended:  %llu\n",
                static_cast<unsigned long long>(info.num_defense_tagged));
    return e.Finish();
  }

  topo::AsGraph graph;
  if (!e.LoadTopology(e.Flags().GetString("topo"), &graph)) return 1;

  bgp::PrependPolicy policy;
  if (!ParsePolicyFlag(e.Flags().GetString("policy"), &policy)) return 1;
  std::vector<topo::Asn> origins;
  if (!ParseBaselinesFlag(e.Flags().GetString("baselines"), &origins)) {
    return 1;
  }
  const int lambda = static_cast<int>(e.Flags().GetInt("lambda"));
  for (topo::Asn origin : origins) {
    if (!graph.HasAs(origin)) {
      std::fprintf(stderr, "error: --baselines origin AS%u not in topology\n",
                   origin);
      return 1;
    }
  }

  e.Note("topology: %zu ASes, %zu links", graph.NumAses(), graph.NumLinks());

  // Converge each requested origin's attack-free baseline. The announcement
  // shape (policy + uniform λ default for the origin) matches what
  // serve::QueryService derives per request, so the embedded checkpoints are
  // warm cache entries, not near misses.
  std::vector<std::shared_ptr<const bgp::PropagationResult>> baselines(
      origins.size());
  if (!origins.empty()) {
    attack::BaselineCache cache(graph);
    e.Pool()->ParallelFor(origins.size(), [&](std::size_t i) {
      bgp::Announcement announcement;
      announcement.origin = origins[i];
      announcement.prepends = policy;
      announcement.prepends.SetDefault(origins[i], lambda);
      baselines[i] = cache.Get(announcement);
    });
    e.Note("converged %zu baseline(s) at lambda=%d", baselines.size(), lambda);
  }

  std::vector<std::uint8_t> defense_tags;
  if (!ParseDefenseFlag(e.Flags().GetString("defense"), graph,
                        e.Flags().GetUint("seed"), &defense_tags)) {
    return 1;
  }
  std::size_t defended = 0;
  for (std::uint8_t tag : defense_tags) defended += tag != 0 ? 1 : 0;
  if (!defense_tags.empty()) {
    e.Note("defense: %zu AS(es) tagged", defended);
  }

  const std::string out = e.Flags().GetString("out");
  std::string err = data::WriteSnapshotFile(out, graph, policy, baselines,
                                            "asppi_snapshot", defense_tags);
  if (!err.empty()) {
    std::fprintf(stderr, "error writing snapshot: %s\n", err.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu ASes, %zu links, %zu baselines, %zu defended)\n",
              out.c_str(), graph.NumAses(), graph.NumLinks(), baselines.size(),
              defended);

  if (e.Flags().GetBool("verify")) {
    data::Snapshot reloaded;
    err = data::Snapshot::Load(out, reloaded);
    if (!err.empty()) {
      std::fprintf(stderr, "verify failed: %s\n", err.c_str());
      return 1;
    }
    if (!SameGraph(graph, reloaded.Graph()) ||
        policy.KeyString() != reloaded.Policy().KeyString() ||
        reloaded.Baselines().size() != baselines.size() ||
        reloaded.DefenseTags() != defense_tags) {
      std::fprintf(stderr,
                   "verify failed: reloaded snapshot differs from the "
                   "text-loaded corpus\n");
      return 1;
    }
    e.Note("verify: snapshot round-trips the text-loaded corpus");
  }

  util::Table table({"ases", "links", "baselines", "lambda", "defended"});
  table.Row()
      .Cell(static_cast<std::uint64_t>(graph.NumAses()))
      .Cell(static_cast<std::uint64_t>(graph.NumLinks()))
      .Cell(static_cast<std::uint64_t>(baselines.size()))
      .Cell(lambda)
      .Cell(static_cast<std::uint64_t>(defended));
  e.RecordTable(table);
  return e.Finish();
}
