// asppi_snapshot — compile a topology (+ prepend policy + optional
// precomputed baseline routing states) into the binary snapshot format
// (data/snapshot.h) that asppi_serve and the --snapshot fast path of the
// batch tools load by mmap.
//
//   $ asppi_snapshot --topo=topology.topo --out=topology.snap
//   $ asppi_snapshot --topo=topology.topo --out=topology.snap
//       --baselines=3831,9002 --lambda=4 --policy=3831:4
//   $ asppi_snapshot --info --topo=topology.snap
//
// --baselines precomputes the attack-free converged state for each listed
// origin (announced with the snapshot policy overlaid by a uniform --lambda
// default) and embeds the checkpoints, so a server warm-starts without
// running propagation. --verify reloads the written file and cross-checks
// the graph and policy against the text-loaded corpus before reporting
// success.
#include <cstdio>
#include <set>

#include "attack/baseline_cache.h"
#include "bench/experiment.h"
#include "bgp/propagation.h"
#include "data/snapshot.h"
#include "util/strings.h"
#include "util/table.h"

using namespace asppi;

namespace {

// "asn:pads[,asn:pads...]" → per-origin default pad counts.
bool ParsePolicyFlag(const std::string& text, bgp::PrependPolicy* policy) {
  if (text.empty()) return true;
  for (const std::string& item : util::Split(text, ',')) {
    const std::vector<std::string> parts = util::Split(item, ':');
    std::optional<std::uint32_t> asn;
    std::optional<std::uint64_t> pads;
    if (parts.size() == 2) {
      asn = util::ParseAsn(parts[0]);
      pads = util::ParseUint(parts[1]);
    }
    if (!asn.has_value() || !pads.has_value() || *pads < 1 || *pads > 64) {
      std::fprintf(stderr,
                   "error: --policy entry '%s' is not ASN:PADS "
                   "(pads in 1..64)\n",
                   item.c_str());
      return false;
    }
    policy->SetDefault(static_cast<topo::Asn>(*asn), static_cast<int>(*pads));
  }
  return true;
}

bool ParseBaselinesFlag(const std::string& text, std::vector<topo::Asn>* out) {
  if (text.empty()) return true;
  std::set<topo::Asn> origins;
  for (const std::string& item : util::Split(text, ',')) {
    const std::optional<std::uint32_t> asn = util::ParseAsn(item);
    if (!asn.has_value()) {
      std::fprintf(stderr,
                   "error: --baselines entry '%s' is not a valid AS number\n",
                   item.c_str());
      return false;
    }
    origins.insert(static_cast<topo::Asn>(*asn));
  }
  out->assign(origins.begin(), origins.end());
  return true;
}

// Structural graph equality (same ASes in order, same relations), the
// --verify cross-check between the text loader and the snapshot loader.
bool SameGraph(const topo::AsGraph& a, const topo::AsGraph& b) {
  if (a.NumAses() != b.NumAses() || a.NumLinks() != b.NumLinks()) return false;
  for (topo::Asn asn : a.Ases()) {
    if (!b.HasAs(asn)) return false;
    for (const auto& neighbor : a.NeighborsOf(asn)) {
      const auto rel = b.RelationOf(asn, neighbor.asn);
      if (!rel.has_value() || *rel != neighbor.rel) return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Experiment e("asppi_snapshot",
                      "compile a topology into a binary snapshot");
  e.WithThreadsFlag();
  e.Flags().DefineString("topo", "topology.topo",
                         "as-rel topology file (or a snapshot, with --info)");
  e.Flags().DefineString("out", "topology.snap", "output snapshot path");
  e.Flags().DefineString("baselines", "",
                         "comma-separated origin ASNs whose attack-free "
                         "baselines are precomputed and embedded");
  e.Flags().DefineInt("lambda", 4,
                      "default prepend count for embedded baselines");
  e.Flags().DefineString("policy", "",
                         "prepend policy defaults to embed, as "
                         "ASN:PADS[,ASN:PADS...]");
  e.Flags().DefineBool("info", false,
                       "print the info section of --topo (a snapshot) "
                       "and exit");
  e.Flags().DefineBool("verify", false,
                       "reload the written snapshot and cross-check it "
                       "against the text-loaded corpus");
  if (!e.ParseFlags(argc, argv)) return 1;

  if (e.Flags().GetBool("info")) {
    data::Snapshot snapshot;
    std::string err = data::Snapshot::Load(e.Flags().GetString("topo"),
                                           snapshot);
    if (!err.empty()) {
      std::fprintf(stderr, "error reading snapshot: %s\n", err.c_str());
      return 1;
    }
    const data::SnapshotInfo& info = snapshot.Info();
    e.PrintHeader();
    std::printf("snapshot %s\n", e.Flags().GetString("topo").c_str());
    std::printf("  version:   %u\n", info.version);
    std::printf("  creator:   %s\n", info.creator.c_str());
    std::printf("  ases:      %llu\n",
                static_cast<unsigned long long>(info.num_ases));
    std::printf("  links:     %llu\n",
                static_cast<unsigned long long>(info.num_links));
    std::printf("  baselines: %llu\n",
                static_cast<unsigned long long>(info.num_baselines));
    return e.Finish();
  }

  topo::AsGraph graph;
  if (!e.LoadTopology(e.Flags().GetString("topo"), &graph)) return 1;

  bgp::PrependPolicy policy;
  if (!ParsePolicyFlag(e.Flags().GetString("policy"), &policy)) return 1;
  std::vector<topo::Asn> origins;
  if (!ParseBaselinesFlag(e.Flags().GetString("baselines"), &origins)) {
    return 1;
  }
  const int lambda = static_cast<int>(e.Flags().GetInt("lambda"));
  for (topo::Asn origin : origins) {
    if (!graph.HasAs(origin)) {
      std::fprintf(stderr, "error: --baselines origin AS%u not in topology\n",
                   origin);
      return 1;
    }
  }

  e.Note("topology: %zu ASes, %zu links", graph.NumAses(), graph.NumLinks());

  // Converge each requested origin's attack-free baseline. The announcement
  // shape (policy + uniform λ default for the origin) matches what
  // serve::QueryService derives per request, so the embedded checkpoints are
  // warm cache entries, not near misses.
  std::vector<std::shared_ptr<const bgp::PropagationResult>> baselines(
      origins.size());
  if (!origins.empty()) {
    attack::BaselineCache cache(graph);
    e.Pool()->ParallelFor(origins.size(), [&](std::size_t i) {
      bgp::Announcement announcement;
      announcement.origin = origins[i];
      announcement.prepends = policy;
      announcement.prepends.SetDefault(origins[i], lambda);
      baselines[i] = cache.Get(announcement);
    });
    e.Note("converged %zu baseline(s) at lambda=%d", baselines.size(), lambda);
  }

  const std::string out = e.Flags().GetString("out");
  std::string err =
      data::WriteSnapshotFile(out, graph, policy, baselines, "asppi_snapshot");
  if (!err.empty()) {
    std::fprintf(stderr, "error writing snapshot: %s\n", err.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu ASes, %zu links, %zu baselines)\n", out.c_str(),
              graph.NumAses(), graph.NumLinks(), baselines.size());

  if (e.Flags().GetBool("verify")) {
    data::Snapshot reloaded;
    err = data::Snapshot::Load(out, reloaded);
    if (!err.empty()) {
      std::fprintf(stderr, "verify failed: %s\n", err.c_str());
      return 1;
    }
    if (!SameGraph(graph, reloaded.Graph()) ||
        policy.KeyString() != reloaded.Policy().KeyString() ||
        reloaded.Baselines().size() != baselines.size()) {
      std::fprintf(stderr,
                   "verify failed: reloaded snapshot differs from the "
                   "text-loaded corpus\n");
      return 1;
    }
    e.Note("verify: snapshot round-trips the text-loaded corpus");
  }

  util::Table table({"ases", "links", "baselines", "lambda"});
  table.Row()
      .Cell(static_cast<std::uint64_t>(graph.NumAses()))
      .Cell(static_cast<std::uint64_t>(graph.NumLinks()))
      .Cell(static_cast<std::uint64_t>(baselines.size()))
      .Cell(lambda);
  e.RecordTable(table);
  return e.Finish();
}
