// asppi_defense — deployment-sweep experiments on a topology file: how fast
// does interception success fall as a defense rolls out, per placement
// strategy?
//
//   $ asppi_defense_tool --topo=topology.topo --pairs=8 --lambda=4
//   $ asppi_defense_tool --topo=topology.topo --victim=3831 --attacker=7
//       --policies=rov+pathval --fracs=0,0.1,0.25,0.5,1
//
// Each row is one (strategy, deployment fraction) point: the mean post-attack
// pollution over the probed (victim, attacker) pairs with the first ⌈f·n⌉
// ASes of that strategy's adoption ordering running --policies as their
// import filter. Fraction 0 is the undefended reference. --verify-engines
// re-runs every point on both convergence engines and fails the run on any
// bit-level divergence.
#include <cstdio>

#include "bench/experiment.h"
#include "defense/sweep.h"
#include "util/strings.h"
#include "util/table.h"

using namespace asppi;

namespace {

bool ParseFracsFlag(const std::string& text, std::vector<double>* out) {
  if (text.empty()) return true;
  std::vector<double> fracs;
  for (const std::string& item : util::Split(text, ',')) {
    const std::optional<double> frac = util::ParseDouble(item);
    if (!frac.has_value() || *frac < 0.0 || *frac > 1.0) {
      std::fprintf(stderr, "error: --fracs entry '%s' not in [0, 1]\n",
                   item.c_str());
      return false;
    }
    fracs.push_back(*frac);
  }
  *out = std::move(fracs);
  return true;
}

bool ParseStrategiesFlag(const std::string& text,
                         std::vector<defense::Strategy>* out) {
  if (text.empty()) return true;
  std::vector<defense::Strategy> strategies;
  for (const std::string& item : util::Split(text, ',')) {
    const std::optional<defense::Strategy> strategy =
        defense::ParseStrategy(item);
    if (!strategy.has_value()) {
      std::fprintf(stderr,
                   "error: --strategies entry '%s' is not "
                   "top-degree|random|victim-cone\n",
                   item.c_str());
      return false;
    }
    strategies.push_back(*strategy);
  }
  *out = std::move(strategies);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Experiment e("asppi_defense",
                      "interception success vs defense-deployment fraction");
  e.WithThreadsFlag();
  e.Flags().DefineString("topo", "topology.topo",
                         "as-rel topology file or binary snapshot");
  e.Flags().DefineUint("victim", 0,
                       "victim ASN (0 = average over --pairs random pairs)");
  e.Flags().DefineUint("attacker", 0, "attacker ASN (with --victim)");
  e.Flags().DefineUint("pairs", 8,
                       "random (victim, attacker) pairs averaged per point");
  e.Flags().DefineInt("lambda", 4, "victim prepend count");
  e.Flags().DefineBool("violate", false,
                       "attacker violates valley-free export");
  e.Flags().DefineString("fracs", "0,0.2,0.4,0.6,0.8,1",
                         "deployment fractions to probe, ascending");
  e.Flags().DefineString("strategies", "top-degree,random,victim-cone",
                         "placement strategies to compare");
  e.Flags().DefineString("policies", "all",
                         "policies every deployed AS runs: rov / pathval / "
                         "detector / all, or '+'-joined");
  e.Flags().DefineUint("seed", 1, "pair-pick and random-placement seed");
  e.Flags().DefineBool("verify-engines", false,
                       "run every point on both engines and require "
                       "bit-identical attacked states");
  if (!e.ParseFlags(argc, argv)) return 1;

  topo::AsGraph loaded_graph;
  data::Snapshot snapshot;
  const topo::AsGraph* graph_ptr = e.LoadTopologyOrSnapshot(
      e.Flags().GetString("topo"), &loaded_graph, &snapshot);
  if (graph_ptr == nullptr) return 1;
  const topo::AsGraph& graph = *graph_ptr;

  defense::DefenseSweepOptions options;
  options.lambda = static_cast<int>(e.Flags().GetInt("lambda"));
  options.violate_valley_free = e.Flags().GetBool("violate");
  options.num_pairs = static_cast<std::size_t>(e.Flags().GetUint("pairs"));
  options.seed = e.Flags().GetUint("seed");
  options.pool = e.Pool();
  options.engine = e.Engine();
  options.verify_engines = e.Flags().GetBool("verify-engines");
  if (!ParseFracsFlag(e.Flags().GetString("fracs"), &options.fractions) ||
      !ParseStrategiesFlag(e.Flags().GetString("strategies"),
                           &options.strategies)) {
    return 1;
  }
  const std::optional<std::uint8_t> kinds =
      defense::ParsePolicyKinds(e.Flags().GetString("policies"));
  if (!kinds.has_value()) {
    std::fprintf(stderr, "error: unknown --policies '%s'\n",
                 e.Flags().GetString("policies").c_str());
    return 1;
  }
  options.kinds = *kinds;

  topo::Asn victim = 0;
  topo::Asn attacker = 0;
  if (!e.AsnFlag("victim", &victim) || !e.AsnFlag("attacker", &attacker)) {
    return 1;
  }
  if (victim != 0) {
    if (!graph.HasAs(victim) || !graph.HasAs(attacker) || victim == attacker) {
      std::fprintf(stderr,
                   "need distinct --victim and --attacker present in the "
                   "topology\n");
      return 1;
    }
    options.pairs = {{victim, attacker}};
  }

  e.Note("topology: %zu ASes, %zu links", graph.NumAses(), graph.NumLinks());
  e.Note("sweep: %zu strategies x %zu fractions, %zu pair(s), lambda=%d, "
         "policies=%s",
         options.strategies.size(), options.fractions.size(),
         options.pairs.empty() ? options.num_pairs : options.pairs.size(),
         options.lambda, defense::PolicyKindsName(options.kinds).c_str());

  const std::vector<defense::DefenseSweepPoint> points =
      defense::RunDefenseSweep(graph, options);

  util::Table table(
      {"strategy", "frac", "deployed", "pct_before", "pct_after"});
  bool engines_agree = true;
  for (const defense::DefenseSweepPoint& point : points) {
    std::printf("  %-11s f=%.2f  deployed=%8.1f  %6.2f%% -> %6.2f%%\n",
                defense::StrategyName(point.strategy), point.fraction,
                point.mean_deployed, 100.0 * point.mean_fraction_before,
                100.0 * point.mean_fraction_after);
    table.Row()
        .Cell(defense::StrategyName(point.strategy))
        .Cell(point.fraction, 2)
        .Cell(point.mean_deployed, 1)
        .Cell(100.0 * point.mean_fraction_before, 2)
        .Cell(100.0 * point.mean_fraction_after, 2);
    engines_agree = engines_agree && point.engines_agree;
  }
  e.RecordTable(table);
  if (options.verify_engines) {
    if (!engines_agree) {
      std::fprintf(stderr,
                   "FAIL: full and delta engines diverged on a defended "
                   "attack state\n");
      return e.Finish(1);
    }
    e.Note("verify-engines: full and delta agree bit-identically at every "
           "point");
  }
  return e.Finish();
}
