// asppi_stream — online ASPP-interception detection over a sequenced update
// stream, replayed through the sharded incremental pipeline.
//
//   $ asppi_stream --rib=base.rib --upd=churn.upd [--topo=as-rel.topo]
//                  [--victim=3831 --lambda=4] [--threads=8] [--shards=0]
//                  [--batch=1024]
//
// Or self-contained on a synthetic corpus (CI smoke / demos):
//
//   $ asppi_stream --gen [--monitors=30 --prefixes=400 --churn=300]
//
// Every emitted alarm is printed with the sequence number of the update that
// raised it. --victim filters the report to one prefix owner; --lambda
// additionally enables the victim-aware rule for it. Exit code 2 signals
// "attack suspected" (at least one reported alarm), matching asppi_detect.
#include <cstdio>

#include "bench/experiment.h"
#include "data/formats.h"
#include "data/measurement.h"
#include "detect/monitors.h"
#include "stream/pipeline.h"
#include "stream/update_source.h"
#include "util/strings.h"

using namespace asppi;

int main(int argc, char** argv) {
  bench::Experiment e("asppi_stream",
                      "online ASPP-interception detection over an update "
                      "stream (sharded incremental pipeline)");
  e.WithTopologyFlags();  // powers --gen; includes --threads
  e.Flags().DefineBool("gen", false,
                       "generate a synthetic corpus from the topology flags "
                       "instead of reading --rib/--upd");
  e.Flags().DefineUint("monitors", 30, "--gen: top-degree monitor count");
  e.Flags().DefineUint("prefixes", 400, "--gen: prefixes in the corpus");
  e.Flags().DefineUint("churn", 300, "--gen: churn events in the stream");
  e.Flags().DefineString("rib", "", "baseline RIB snapshot (.rib)");
  e.Flags().DefineString("upd", "", "update stream (.upd)");
  e.Flags().DefineString("topo", "",
                         "as-rel topology file or binary snapshot (enables "
                         "hint rules; --gen uses the generated graph)");
  e.Flags().DefineString("snapshot", "",
                         "binary snapshot (asppi_snapshot output) to load "
                         "instead of --topo (mmap fast path)");
  e.Flags().DefineUint("victim", 0,
                       "report alarms only for this prefix owner (0 = all)");
  e.Flags().DefineInt("lambda", 0,
                      "announced padding for --victim (enables the "
                      "victim-aware rule; 0=off)");
  e.Flags().DefineUint("shards", 0, "detector shards (0 = --threads)");
  e.Flags().DefineUint("batch", 1024,
                       "per-shard queue capacity (window size bound)");
  if (!e.ParseFlags(argc, argv)) return 1;

  data::RibSnapshot rib;
  stream::UpdateSource source;
  topo::AsGraph file_graph;
  data::Snapshot topo_snapshot;
  const topo::AsGraph* graph = nullptr;

  if (e.Flags().GetBool("gen")) {
    topo::GeneratorParams params = e.Params();
    params.num_sibling_pairs = 0;  // measurement engine is RoutingTree-based
    const topo::GeneratedTopology& gen = e.GenerateTopology(params);
    graph = &gen.graph;
    const std::vector<topo::Asn> monitors = detect::TopDegreeMonitors(
        gen.graph, static_cast<std::size_t>(e.Flags().GetUint("monitors")));
    data::MeasurementParams corpus;
    corpus.num_prefixes =
        static_cast<std::size_t>(e.Flags().GetUint("prefixes"));
    corpus.num_churn_events =
        static_cast<std::size_t>(e.Flags().GetUint("churn"));
    corpus.seed = e.Flags().GetUint("seed");
    data::MeasurementGenerator generator(gen.graph, corpus);
    rib = generator.GenerateRib(monitors);
    source = stream::UpdateSource::FromGenerator(generator, monitors);
  } else {
    e.PrintHeader();
    if (e.Flags().GetString("rib").empty() ||
        e.Flags().GetString("upd").empty()) {
      std::fprintf(stderr, "--rib and --upd are required (or pass --gen)\n");
      return 1;
    }
    std::string err = data::ReadRibFile(e.Flags().GetString("rib"), rib);
    if (!err.empty()) {
      std::fprintf(stderr, "error reading %s: %s\n",
                   e.Flags().GetString("rib").c_str(), err.c_str());
      return 1;
    }
    err = stream::UpdateSource::FromFile(e.Flags().GetString("upd"), source);
    if (!err.empty()) {
      std::fprintf(stderr, "error reading %s: %s\n",
                   e.Flags().GetString("upd").c_str(), err.c_str());
      return 1;
    }
    const std::string& snapshot_path = e.Flags().GetString("snapshot");
    const std::string& topo_path =
        snapshot_path.empty() ? e.Flags().GetString("topo") : snapshot_path;
    if (!topo_path.empty()) {
      graph = e.LoadTopologyOrSnapshot(topo_path, &file_graph, &topo_snapshot);
      if (graph == nullptr) return 1;
    }
  }

  topo::Asn victim = 0;
  if (!e.AsnFlag("victim", &victim)) return 1;
  bgp::PrependPolicy policy;
  const bgp::PrependPolicy* policy_ptr = nullptr;
  if (e.Flags().GetInt("lambda") > 0 && victim != 0) {
    policy.SetDefault(victim, static_cast<int>(e.Flags().GetInt("lambda")));
    policy_ptr = &policy;
  }

  stream::Pipeline::Options options;
  options.num_shards = static_cast<std::size_t>(e.Flags().GetUint("shards"));
  options.queue_capacity = static_cast<std::size_t>(e.Flags().GetUint("batch"));
  options.detector.graph = graph;
  options.detector.victim_policy = policy_ptr;
  stream::Pipeline pipeline(e.Pool(), options);

  pipeline.SeedBaseline(rib);
  data::Update update;
  while (source.Next(update)) pipeline.Push(update);
  const std::vector<stream::StampedAlarm> emitted = pipeline.Finish();

  util::Table table({"sequence", "victim", "confidence", "suspect", "observer",
                     "pads_removed", "detail"});
  std::size_t reported = 0;
  for (const stream::StampedAlarm& stamped : emitted) {
    if (victim != 0 && stamped.victim != victim) continue;
    ++reported;
    const detect::Alarm& alarm = stamped.alarm;
    const bool high = alarm.confidence == detect::Alarm::Confidence::kHigh;
    std::printf(
        "seq %llu victim AS%u [%s] suspect AS%u (observer AS%u, %d pads "
        "removed): %s\n",
        static_cast<unsigned long long>(stamped.sequence), stamped.victim,
        high ? "HIGH" : "possible", alarm.suspect, alarm.observer,
        alarm.pads_removed, alarm.detail.c_str());
    table.Row()
        .Cell(static_cast<std::uint64_t>(stamped.sequence))
        .Cell(util::Format("AS%u", stamped.victim))
        .Cell(high ? "HIGH" : "possible")
        .Cell(util::Format("AS%u", alarm.suspect))
        .Cell(util::Format("AS%u", alarm.observer))
        .Cell(alarm.pads_removed)
        .Cell(alarm.detail);
  }
  e.Note("%zu event(s) through %zu shard(s): %zu alarm(s) reported%s",
         source.Size(), pipeline.NumShards(), reported,
         victim != 0 ? " (filtered to --victim)" : "");
  e.RecordTable(table);
  // Exit 2 signals "attack suspected", matching asppi_detect.
  return e.Finish(reported == 0 ? 0 : 2);
}
