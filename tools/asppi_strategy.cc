// asppi_strategy — beam-search the strategic-attacker space on a topology
// file and report the worst program found against the paper's interceptor.
//
//   $ asppi_strategy --topo=topology.topo --victim=3831 --attacker=1 \
//       --lambda=4 --beam=4 --rounds=2
//
// --colluders adds accomplices (comma-separated ASNs) so the search runs
// over a colluding set; the attacker is always part of it. The dominance
// guarantee prints as paper-vs-best: best is never below paper, because the
// paper model seeds the beam. --verify-engines rescrores every candidate on
// the other convergence engine and fails (exit 1) on any state mismatch.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/experiment.h"
#include "strategy/program.h"
#include "strategy/search.h"
#include "util/strings.h"

using namespace asppi;

namespace {

// "174,3356" -> sorted unique ASNs; false on any unparsable piece.
bool ParseAsnList(const std::string& text, std::vector<topo::Asn>* out) {
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    const std::string piece = text.substr(start, comma - start);
    if (!piece.empty()) {
      const std::optional<std::uint32_t> asn = util::ParseAsn(piece);
      if (!asn.has_value()) return false;
      out->push_back(*asn);
    }
    start = comma + 1;
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Experiment e("asppi_strategy",
                      "strategic-attacker beam search on a topology file");
  e.WithThreadsFlag();
  e.Flags().DefineString("topo", "topology.topo",
                         "as-rel topology file or binary snapshot");
  e.Flags().DefineUint("victim", 0, "victim ASN (prefix owner)");
  e.Flags().DefineUint("attacker", 0, "attacker ASN (leads the colluder set)");
  e.Flags().DefineString("colluders", "",
                         "comma-separated accomplice ASNs (optional)");
  e.Flags().DefineInt("lambda", 4, "victim prepend count");
  e.Flags().DefineUint("beam", 4, "beam width");
  e.Flags().DefineUint("rounds", 2, "beam search rounds");
  e.Flags().DefineUint("max-neighbors", 12,
                       "per-colluder neighbors considered for overrides");
  e.Flags().DefineUint("poison-candidates", 2,
                       "top-degree ASes considered as poison targets");
  e.Flags().DefineBool("verify-engines", false,
                       "rescore every program on the other convergence "
                       "engine; any state mismatch fails the run");
  if (!e.ParseFlags(argc, argv)) return 1;

  topo::AsGraph loaded_graph;
  data::Snapshot snapshot;
  const topo::AsGraph* graph_ptr = e.LoadTopologyOrSnapshot(
      e.Flags().GetString("topo"), &loaded_graph, &snapshot);
  if (graph_ptr == nullptr) return 1;
  const topo::AsGraph& graph = *graph_ptr;

  topo::Asn victim = 0;
  topo::Asn attacker = 0;
  if (!e.AsnFlag("victim", &victim) || !e.AsnFlag("attacker", &attacker)) {
    return 1;
  }
  std::vector<topo::Asn> colluders;
  if (!ParseAsnList(e.Flags().GetString("colluders"), &colluders)) {
    std::fprintf(stderr, "error: unparsable --colluders '%s'\n",
                 e.Flags().GetString("colluders").c_str());
    return 1;
  }
  colluders.push_back(attacker);
  std::sort(colluders.begin(), colluders.end());
  colluders.erase(std::unique(colluders.begin(), colluders.end()),
                  colluders.end());
  if (!graph.HasAs(victim) || victim == attacker || attacker == 0) {
    std::fprintf(stderr,
                 "need distinct --victim and --attacker present in the "
                 "topology\n");
    return 1;
  }
  for (topo::Asn asn : colluders) {
    if (!graph.HasAs(asn) || asn == victim) {
      std::fprintf(stderr,
                   "colluder AS%u missing from the topology or equal to the "
                   "victim\n", asn);
      return 1;
    }
  }

  strategy::SearchOptions options;
  options.lambda = static_cast<int>(e.Flags().GetInt("lambda"));
  options.beam_width = e.Flags().GetUint("beam");
  options.rounds = e.Flags().GetUint("rounds");
  options.max_neighbors = e.Flags().GetUint("max-neighbors");
  options.poison_candidates = e.Flags().GetUint("poison-candidates");
  options.verify_engines = e.Flags().GetBool("verify-engines");
  options.pool = e.Pool();
  options.engine = e.Engine();

  e.Note("topology: %zu ASes, %zu links", graph.NumAses(), graph.NumLinks());
  e.Note("search: AS%u (+%zu accomplices) vs AS%u, lambda=%d, beam=%zu x "
         "%zu rounds%s",
         attacker, colluders.size() - 1, victim, options.lambda,
         options.beam_width, options.rounds,
         options.verify_engines ? ", engine equivalence gated" : "");

  const strategy::Search search(graph, options);
  const strategy::SearchResult result = search.Run(victim, colluders);

  e.Note("paper model pollution: %.2f%%", 100.0 * result.paper_after);
  e.Note("best program pollution: %.2f%% (gap %.2f points, %zu programs "
         "scored)",
         100.0 * result.best.fraction_after, 100.0 * result.gap,
         result.programs_scored);
  std::printf("%s", strategy::Describe(result.best.program).c_str());
  std::printf("key: %s\n", result.best.program.KeyString().c_str());

  if (options.verify_engines && result.engine_mismatches != 0) {
    e.Note("FAIL: %zu scored program(s) diverged between the convergence "
           "engines", result.engine_mismatches);
    return e.Finish(1);
  }
  if (result.gap < 0.0) {
    e.Note("FAIL: best program scored below the paper model (dominance "
           "violated)");
    return e.Finish(1);
  }
  return e.Finish();
}
