// asppi_fuzz — differential fuzzing of every fast engine (propagation
// simulator, routing tree, attack impact, batch + stream detectors) against
// the deliberately-naive check::ReferenceEngine oracle, plus the full
// invariant battery from check/invariants.h.
//
//   $ asppi_fuzz --iters=500 --seed=42 [--threads=8] [--minimize=1]
//                [--out=tests/corpus]
//
// Scenario i is derived from (seed, i) alone, so the failure set is
// bit-identical for every --threads value. Failing scenarios are shrunk to a
// minimal topology and (with --out) serialized as replayable `.scn` files.
//
// Exit codes: 0 = clean run, 1 = usage error, 3 = divergence found.
// --inject-bug is a test hook that corrupts the attack engine's outcome
// before comparison, forcing a divergence on every scenario — the death tests
// use it to pin the exit code and shrinker behaviour.
#include <cstdio>

#include "bench/experiment.h"
#include "check/fuzzer.h"
#include "util/table.h"

using namespace asppi;

int main(int argc, char** argv) {
  bench::Experiment e("asppi_fuzz",
                      "differential fuzzing: fast engines vs the O(V·E) "
                      "reference oracle + invariant battery");
  e.WithThreadsFlag();
  e.Flags().DefineUint("iters", 100, "scenarios to fuzz");
  e.Flags().DefineUint("seed", 42,
                       "campaign seed (scenario i derives from (seed, i))");
  e.Flags().DefineBool("minimize", true,
                       "shrink failing scenarios before reporting");
  e.Flags().DefineString("out", "",
                         "directory to write .scn repros of failures");
  e.Flags().DefineUint("shrink-budget", 200,
                       "max scenario evaluations per shrink");
  e.Flags().DefineBool("inject-bug", false,
                       "test hook: corrupt the attack engine's outcome so "
                       "every scenario diverges");
  if (!e.ParseFlags(argc, argv)) return 1;
  e.PrintHeader();

  check::FuzzOptions options;
  options.seed = e.Flags().GetUint("seed");
  options.iterations = static_cast<std::size_t>(e.Flags().GetUint("iters"));
  options.minimize = e.Flags().GetBool("minimize");
  options.inject_bug = e.Flags().GetBool("inject-bug");
  options.corpus_dir = e.Flags().GetString("out");
  options.shrink_budget =
      static_cast<std::size_t>(e.Flags().GetUint("shrink-budget"));
  options.pool = e.Pool();

  const check::Fuzzer fuzzer(options);
  const check::FuzzResult result = fuzzer.Run();

  util::Table table({"iteration", "ases", "lambda", "violations", "repro"});
  for (const check::FuzzFailure& failure : result.failures) {
    table.Row()
        .Cell(static_cast<std::uint64_t>(failure.iteration))
        .Cell(static_cast<std::uint64_t>(
            failure.scenario.tier1 + failure.scenario.tier2 +
            failure.scenario.tier3 + failure.scenario.stubs +
            failure.scenario.content))
        .Cell(failure.scenario.lambda)
        .Cell(static_cast<std::uint64_t>(failure.violations.size()))
        .Cell(failure.repro_path.empty() ? "-" : failure.repro_path);
  }
  if (!result.failures.empty()) {
    e.PrintTable(table);
    for (const check::FuzzFailure& failure : result.failures) {
      std::printf("--- iteration %zu ---\n", failure.iteration);
      for (const std::string& violation : failure.violations) {
        std::printf("  %s\n", violation.c_str());
      }
      std::printf("%s", failure.scenario.Serialize().c_str());
    }
  } else {
    e.RecordTable(table);
  }
  e.Note("%zu scenario(s), %zu divergence(s)", result.iterations,
         result.failures.size());
  return e.Finish(result.Clean() ? 0 : 3);
}
