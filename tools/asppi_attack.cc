// asppi_attack — run an ASPP interception on a topology file and report the
// damage.
//
//   $ asppi_attack --topo=topology.topo --victim=3831 --attacker=1 --lambda=4
//
// With --attacker=0 every other AS is tried as the attacker (a full
// single-victim pair sweep, parallelized over --threads with one shared
// attack-free baseline) and the most damaging instances are printed.
#include <cstdio>

#include "attack/impact.h"
#include "bench/experiment.h"
#include "util/strings.h"

using namespace asppi;

int main(int argc, char** argv) {
  bench::Experiment e("asppi_attack", "ASPP interception on a topology file");
  e.WithThreadsFlag();
  e.Flags().DefineString("topo", "topology.topo",
                         "as-rel topology file or binary snapshot");
  e.Flags().DefineString("snapshot", "",
                         "binary snapshot (asppi_snapshot output) to load "
                         "instead of --topo (mmap fast path)");
  e.Flags().DefineUint("victim", 0, "victim ASN (prefix owner)");
  e.Flags().DefineUint("attacker", 0,
                       "attacker ASN (0 = sweep every AS as the attacker)");
  e.Flags().DefineInt("lambda", 4, "victim prepend count");
  e.Flags().DefineBool("violate", false,
                       "attacker violates valley-free export");
  e.Flags().DefineInt("show", 8,
                      "number of hijacked routes / sweep rows to print");
  if (!e.ParseFlags(argc, argv)) return 1;

  topo::AsGraph loaded_graph;
  data::Snapshot snapshot;
  const std::string& snapshot_path = e.Flags().GetString("snapshot");
  const topo::AsGraph* graph_ptr = e.LoadTopologyOrSnapshot(
      snapshot_path.empty() ? e.Flags().GetString("topo") : snapshot_path,
      &loaded_graph, &snapshot);
  if (graph_ptr == nullptr) return 1;
  const topo::AsGraph& graph = *graph_ptr;
  topo::Asn victim = 0;
  topo::Asn attacker = 0;
  if (!e.AsnFlag("victim", &victim) || !e.AsnFlag("attacker", &attacker)) {
    return 1;
  }
  if (!graph.HasAs(victim)) {
    std::fprintf(stderr, "need --victim present in the topology\n");
    return 1;
  }
  const int lambda = static_cast<int>(e.Flags().GetInt("lambda"));
  const int show = static_cast<int>(e.Flags().GetInt("show"));

  e.Note("topology: %zu ASes, %zu links", graph.NumAses(), graph.NumLinks());

  if (attacker == 0) {
    // Sweep mode: every AS attacks `victim`; the baseline cache computes the
    // victim's attack-free propagation exactly once for the whole sweep.
    std::vector<std::pair<topo::Asn, topo::Asn>> pairs;
    for (topo::Asn asn : graph.Ases()) {
      if (asn != victim) pairs.emplace_back(asn, victim);
    }
    attack::PairSweepOptions options;
    options.lambda = lambda;
    options.violate_valley_free = e.Flags().GetBool("violate");
    options.pool = e.Pool();
    options.engine = e.Engine();
    auto results = attack::RunPairSweep(graph, pairs, options);
    e.Note("sweep: %zu candidate attackers against AS%u (lambda=%d), "
           "top %d by pollution:",
           results.size(), victim, lambda, show);
    util::Table table({"rank", "attacker", "pct_before", "pct_after"});
    int rank = 0;
    for (const auto& row : results) {
      if (rank++ >= show) break;
      std::printf("  %2d. AS%-7u %6.2f%% -> %6.2f%%\n", rank, row.attacker,
                  100.0 * row.before, 100.0 * row.after);
      table.Row()
          .Cell(rank)
          .Cell(util::Format("AS%u", row.attacker))
          .Cell(100.0 * row.before, 2)
          .Cell(100.0 * row.after, 2);
    }
    e.RecordTable(table);
    return e.Finish();
  }

  if (!graph.HasAs(attacker) || victim == attacker) {
    std::fprintf(stderr,
                 "need distinct --victim and --attacker present in the "
                 "topology\n");
    return 1;
  }

  attack::AttackSimulator simulator(graph, nullptr, e.Engine());
  attack::AttackOutcome outcome = simulator.RunAsppInterception(
      victim, attacker, lambda, e.Flags().GetBool("violate"));

  e.Note("AS%u intercepts AS%u's prefix (lambda=%d%s)", attacker, victim,
         lambda, e.Flags().GetBool("violate") ? ", violating policy" : "");
  e.Note("paths traversing the attacker: %.2f%% -> %.2f%% "
         "(%zu newly polluted ASes)",
         100.0 * outcome.fraction_before, 100.0 * outcome.fraction_after,
         outcome.newly_polluted.size());

  int remaining = show;
  for (topo::Asn asn : outcome.newly_polluted) {
    if (remaining-- <= 0) break;
    const auto& was = outcome.before->BestAt(asn);
    const auto& now = outcome.after.BestAt(asn);
    std::printf("  AS%-7u %s  ->  %s\n", asn,
                was ? was->path.ToString().c_str() : "<none>",
                now ? now->path.ToString().c_str() : "<none>");
  }
  return e.Finish();
}
