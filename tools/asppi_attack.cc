// asppi_attack — run an ASPP interception on a topology file and report the
// damage.
//
//   $ asppi_attack --topo=topology.topo --victim=3831 --attacker=1 --lambda=4
//
// With --attacker=0 every other AS is tried as the attacker (a full
// single-victim pair sweep, parallelized over --threads with one shared
// attack-free baseline) and the most damaging instances are printed.
#include <algorithm>
#include <cstdio>
#include <thread>

#include "attack/impact.h"
#include "topology/serialization.h"
#include "util/flags.h"
#include "util/thread_pool.h"

using namespace asppi;

int main(int argc, char** argv) {
  util::Flags flags;
  flags.DefineString("topo", "topology.topo", "as-rel topology file");
  flags.DefineUint("victim", 0, "victim ASN (prefix owner)");
  flags.DefineUint("attacker", 0,
                   "attacker ASN (0 = sweep every AS as the attacker)");
  flags.DefineInt("lambda", 4, "victim prepend count");
  flags.DefineBool("violate", false, "attacker violates valley-free export");
  flags.DefineInt("show", 8, "number of hijacked routes / sweep rows to print");
  flags.DefineUint(
      "threads",
      std::max<unsigned int>(1, std::thread::hardware_concurrency()),
      "worker threads for the attacker sweep (results are identical for any "
      "value)");
  if (!flags.Parse(argc, argv)) return 1;

  topo::AsGraph graph;
  std::string err = topo::ReadAsRelFile(flags.GetString("topo"), graph);
  if (!err.empty()) {
    std::fprintf(stderr, "error reading topology: %s\n", err.c_str());
    return 1;
  }
  const topo::Asn victim = static_cast<topo::Asn>(flags.GetUint("victim"));
  const topo::Asn attacker = static_cast<topo::Asn>(flags.GetUint("attacker"));
  if (!graph.HasAs(victim)) {
    std::fprintf(stderr, "need --victim present in the topology\n");
    return 1;
  }
  const int lambda = static_cast<int>(flags.GetInt("lambda"));
  const int show = static_cast<int>(flags.GetInt("show"));

  std::printf("topology: %zu ASes, %zu links\n", graph.NumAses(),
              graph.NumLinks());

  if (attacker == 0) {
    // Sweep mode: every AS attacks `victim`; the baseline cache computes the
    // victim's attack-free propagation exactly once for the whole sweep.
    std::vector<std::pair<topo::Asn, topo::Asn>> pairs;
    for (topo::Asn asn : graph.Ases()) {
      if (asn != victim) pairs.emplace_back(asn, victim);
    }
    util::ThreadPool pool(static_cast<std::size_t>(
        std::max<std::uint64_t>(1, flags.GetUint("threads"))));
    attack::PairSweepOptions options;
    options.lambda = lambda;
    options.violate_valley_free = flags.GetBool("violate");
    options.pool = &pool;
    auto results = attack::RunPairSweep(graph, pairs, options);
    std::printf("sweep: %zu candidate attackers against AS%u (lambda=%d), "
                "top %d by pollution:\n",
                results.size(), victim, lambda, show);
    int rank = 0;
    for (const auto& row : results) {
      if (rank++ >= show) break;
      std::printf("  %2d. AS%-7u %6.2f%% -> %6.2f%%\n", rank, row.attacker,
                  100.0 * row.before, 100.0 * row.after);
    }
    return 0;
  }

  if (!graph.HasAs(attacker) || victim == attacker) {
    std::fprintf(stderr,
                 "need distinct --victim and --attacker present in the "
                 "topology\n");
    return 1;
  }

  attack::AttackSimulator simulator(graph);
  attack::AttackOutcome outcome = simulator.RunAsppInterception(
      victim, attacker, lambda, flags.GetBool("violate"));

  std::printf("AS%u intercepts AS%u's prefix (lambda=%d%s)\n", attacker,
              victim, lambda,
              flags.GetBool("violate") ? ", violating policy" : "");
  std::printf("paths traversing the attacker: %.2f%% -> %.2f%% "
              "(%zu newly polluted ASes)\n",
              100.0 * outcome.fraction_before, 100.0 * outcome.fraction_after,
              outcome.newly_polluted.size());

  int remaining = show;
  for (topo::Asn asn : outcome.newly_polluted) {
    if (remaining-- <= 0) break;
    const auto& was = outcome.before->BestAt(asn);
    const auto& now = outcome.after.BestAt(asn);
    std::printf("  AS%-7u %s  ->  %s\n", asn,
                was ? was->path.ToString().c_str() : "<none>",
                now ? now->path.ToString().c_str() : "<none>");
  }
  return 0;
}
