// asppi_attack — run an ASPP interception on a topology file and report the
// damage.
//
//   $ asppi_attack --topo=topology.topo --victim=3831 --attacker=1 --lambda=4
#include <cstdio>

#include "attack/impact.h"
#include "topology/serialization.h"
#include "util/flags.h"

using namespace asppi;

int main(int argc, char** argv) {
  util::Flags flags;
  flags.DefineString("topo", "topology.topo", "as-rel topology file");
  flags.DefineUint("victim", 0, "victim ASN (prefix owner)");
  flags.DefineUint("attacker", 0, "attacker ASN");
  flags.DefineInt("lambda", 4, "victim prepend count");
  flags.DefineBool("violate", false, "attacker violates valley-free export");
  flags.DefineInt("show", 8, "number of hijacked routes to print");
  if (!flags.Parse(argc, argv)) return 1;

  topo::AsGraph graph;
  std::string err = topo::ReadAsRelFile(flags.GetString("topo"), graph);
  if (!err.empty()) {
    std::fprintf(stderr, "error reading topology: %s\n", err.c_str());
    return 1;
  }
  const topo::Asn victim = static_cast<topo::Asn>(flags.GetUint("victim"));
  const topo::Asn attacker = static_cast<topo::Asn>(flags.GetUint("attacker"));
  if (!graph.HasAs(victim) || !graph.HasAs(attacker) || victim == attacker) {
    std::fprintf(stderr,
                 "need distinct --victim and --attacker present in the "
                 "topology\n");
    return 1;
  }

  attack::AttackSimulator simulator(graph);
  attack::AttackOutcome outcome = simulator.RunAsppInterception(
      victim, attacker, static_cast<int>(flags.GetInt("lambda")),
      flags.GetBool("violate"));

  std::printf("topology: %zu ASes, %zu links\n", graph.NumAses(),
              graph.NumLinks());
  std::printf("AS%u intercepts AS%u's prefix (lambda=%lld%s)\n", attacker,
              victim, static_cast<long long>(flags.GetInt("lambda")),
              flags.GetBool("violate") ? ", violating policy" : "");
  std::printf("paths traversing the attacker: %.2f%% -> %.2f%% "
              "(%zu newly polluted ASes)\n",
              100.0 * outcome.fraction_before, 100.0 * outcome.fraction_after,
              outcome.newly_polluted.size());

  int show = static_cast<int>(flags.GetInt("show"));
  for (topo::Asn asn : outcome.newly_polluted) {
    if (show-- <= 0) break;
    const auto& was = outcome.before.BestAt(asn);
    const auto& now = outcome.after.BestAt(asn);
    std::printf("  AS%-7u %s  ->  %s\n", asn,
                was ? was->path.ToString().c_str() : "<none>",
                now ? now->path.ToString().c_str() : "<none>");
  }
  return 0;
}
