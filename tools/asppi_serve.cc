// asppi_serve — long-lived what-if query daemon over a compiled snapshot
// (or an as-rel text topology), speaking newline-delimited JSON over TCP.
//
//   $ asppi_snapshot --topo=topology.topo --out=topology.snap --baselines=3831
//   $ asppi_serve --snapshot=topology.snap --port=4179 &
//   $ printf '{"op":"impact","victim":3831,"attacker":7}\n' | nc localhost 4179
//
// Request types: impact, detect, route, defense, strategy, stats, health,
// reload (serve/protocol.h). A snapshot carrying a kDefense section serves
// every what-if with that deployment active as the engines' import filter.
//
// Two servers share the protocol byte-for-byte:
//   --server=reactor  (default) N epoll/poll event-loop shards (src/net/),
//                     connections far beyond the thread count, requests
//                     drained per readiness event and executed as batches;
//   --server=threaded the thread-per-connection front end — the baseline
//                     perf_serve compares the reactor against.
//
// Hot reload: SIGHUP (or a {"op":"reload"} line) rebuilds the serving stack
// from the snapshot path and atomically swaps it in as a new epoch;
// in-flight queries finish on the generation they started on. --port=0
// picks an ephemeral port; --port-file writes the bound port for scripted
// clients (the CI smoke job). SIGINT/SIGTERM drain gracefully: in-flight
// requests finish and flush before the process exits, then the run report
// (--json) carries the serve.*/net.* metrics.
#include <csignal>
#include <cstdio>
#include <thread>

#include "bench/experiment.h"
#include "serve/epoch.h"
#include "serve/reactor.h"
#include "serve/server.h"
#include "serve/service.h"
#include "util/metrics.h"

using namespace asppi;

namespace {

volatile std::sig_atomic_t g_stop = 0;
volatile std::sig_atomic_t g_reload = 0;

void HandleSignal(int) { g_stop = 1; }
void HandleHup(int) { g_reload = 1; }

}  // namespace

int main(int argc, char** argv) {
  bench::Experiment e("asppi_serve",
                      "what-if query daemon (NDJSON over TCP) on a snapshot");
  e.WithThreadsFlag();
  e.Flags().DefineString("topo", "",
                         "as-rel topology file or binary snapshot");
  e.Flags().DefineString("snapshot", "",
                         "binary snapshot (asppi_snapshot output) to serve "
                         "(overrides --topo)");
  e.Flags().DefineString("server", "reactor",
                         "front end: 'reactor' (event-loop shards) or "
                         "'threaded' (thread per connection)");
  e.Flags().DefineUint("shards", 2, "reactor event-loop shard count");
  e.Flags().DefineString("backend", "auto",
                         "reactor readiness backend: auto|epoll|poll");
  e.Flags().DefineBool("batch", true,
                       "reactor: execute readiness batches through "
                       "HandleBatch (false = per-line, the ablation)");
  e.Flags().DefineUint("port", 0, "TCP port (0 = pick an ephemeral port)");
  e.Flags().DefineString("port-file", "",
                         "write the bound port number to this file once "
                         "listening (for scripted clients)");
  e.Flags().DefineInt("lambda", 4, "default victim prepend count");
  e.Flags().DefineUint("monitors", 30, "default top-degree vantage count");
  e.Flags().DefineUint("cache", 4096,
                       "result-cache entry budget (0 disables caching)");
  e.Flags().DefineUint("max-conns", 0,
                       "concurrent connection bound (0 = server default: "
                       "64 threaded, 1024 reactor)");
  e.Flags().DefineUint("max-inflight", 128,
                       "queued-or-executing request bound (beyond it, "
                       "requests get an 'overloaded' response)");
  e.Flags().DefineInt("deadline-ms", 10000,
                      "queue-wait deadline per request (stale work is shed "
                      "with a 'deadline exceeded' response)");
  e.Flags().DefineInt("slow-ms", 1000, "slow-query log threshold");
  e.Flags().DefineInt("duration", 0,
                      "exit after this many seconds (0 = run until signal)");
  if (!e.ParseFlags(argc, argv)) return 1;

  const std::string& snapshot_path = e.Flags().GetString("snapshot");
  const std::string& path =
      snapshot_path.empty() ? e.Flags().GetString("topo") : snapshot_path;
  if (path.empty()) {
    std::fprintf(stderr, "need --snapshot (or --topo)\n");
    return 1;
  }
  const std::string& server_kind = e.Flags().GetString("server");
  if (server_kind != "reactor" && server_kind != "threaded") {
    std::fprintf(stderr, "--server must be 'reactor' or 'threaded'\n");
    return 1;
  }
  net::PollerBackend backend = net::PollerBackend::kAuto;
  if (!net::ParsePollerBackend(e.Flags().GetString("backend"), &backend)) {
    std::fprintf(stderr, "--backend must be auto|epoll|poll\n");
    return 1;
  }

  serve::ServiceOptions service_options;
  service_options.engine = e.Engine();
  service_options.default_lambda = static_cast<int>(e.Flags().GetInt("lambda"));
  service_options.default_monitors =
      static_cast<std::size_t>(e.Flags().GetUint("monitors"));
  service_options.cache_capacity =
      static_cast<std::size_t>(e.Flags().GetUint("cache"));

  serve::EpochManager epochs;
  // Text topologies load through the harness (no snapshot to re-read), so
  // only snapshot-backed serving gets a reload source.
  topo::AsGraph loaded_graph;
  data::Snapshot legacy_snapshot;
  std::unique_ptr<serve::QueryService> text_service;
  if (data::Snapshot::SniffFile(path)) {
    std::shared_ptr<serve::Epoch> first;
    const std::string err =
        serve::MakeSnapshotEpoch(path, /*id=*/1, service_options, &first);
    if (!err.empty()) {
      std::fprintf(stderr, "error loading %s: %s\n", path.c_str(),
                   err.c_str());
      return 1;
    }
    if (first->snapshot->DefenseTags().size() > 0) {
      e.Note("defense: %llu AS(es) tagged in snapshot",
             static_cast<unsigned long long>(
                 first->snapshot->Info().num_defense_tagged));
    }
    epochs.Install(first);
    epochs.SetReloader([path, service_options](
                           std::uint64_t next_id,
                           std::shared_ptr<serve::Epoch>* out) {
      return serve::MakeSnapshotEpoch(path, next_id, service_options, out);
    });
  } else {
    const topo::AsGraph* graph =
        e.LoadTopologyOrSnapshot(path, &loaded_graph, &legacy_snapshot);
    if (graph == nullptr) return 1;
    text_service = std::make_unique<serve::QueryService>(
        *graph, legacy_snapshot.Policy(), service_options);
    epochs.Install(serve::MakeUnownedEpoch(text_service.get(), /*id=*/1));
  }
  {
    const auto epoch = epochs.Current();
    e.Note("epoch 1: %zu ASes, %zu links", epoch->service->Graph().NumAses(),
           epoch->service->Graph().NumLinks());
  }

  const std::size_t max_conns =
      static_cast<std::size_t>(e.Flags().GetUint("max-conns"));
  std::unique_ptr<serve::Server> threaded;
  std::unique_ptr<serve::ReactorServer> reactor;
  int port = 0;
  if (server_kind == "threaded") {
    serve::ServerOptions options;
    options.port = static_cast<int>(e.Flags().GetUint("port"));
    if (max_conns != 0) options.max_connections = max_conns;
    options.max_inflight =
        static_cast<std::size_t>(e.Flags().GetUint("max-inflight"));
    options.deadline_ms = static_cast<int>(e.Flags().GetInt("deadline-ms"));
    options.slow_query_ms = static_cast<int>(e.Flags().GetInt("slow-ms"));
    threaded = std::make_unique<serve::Server>(&epochs, e.Pool(), options);
    const std::string err = threaded->Start();
    if (!err.empty()) {
      std::fprintf(stderr, "error starting server: %s\n", err.c_str());
      return 1;
    }
    port = threaded->Port();
  } else {
    serve::ReactorOptions options;
    options.port = static_cast<int>(e.Flags().GetUint("port"));
    options.shards = static_cast<int>(e.Flags().GetUint("shards"));
    options.backend = backend;
    options.batch = e.Flags().GetBool("batch");
    if (max_conns != 0) options.max_connections = max_conns;
    options.max_inflight =
        static_cast<std::size_t>(e.Flags().GetUint("max-inflight"));
    options.deadline_ms = static_cast<int>(e.Flags().GetInt("deadline-ms"));
    options.slow_query_ms = static_cast<int>(e.Flags().GetInt("slow-ms"));
    reactor = std::make_unique<serve::ReactorServer>(&epochs, e.Pool(),
                                                     options);
    const std::string err = reactor->Start();
    if (!err.empty()) {
      std::fprintf(stderr, "error starting server: %s\n", err.c_str());
      return 1;
    }
    port = reactor->Port();
    e.Note("reactor: %u shard(s), %s backend, batch=%d",
           static_cast<unsigned>(e.Flags().GetUint("shards")),
           net::PollerBackendName(reactor->Backend()),
           options.batch ? 1 : 0);
  }

  const std::string& port_file = e.Flags().GetString("port-file");
  if (!port_file.empty()) {
    std::FILE* f = std::fopen(port_file.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error writing %s\n", port_file.c_str());
      if (threaded) threaded->Stop();
      if (reactor) reactor->Stop();
      return 1;
    }
    std::fprintf(f, "%d\n", port);
    std::fclose(f);
  }

  e.Note("serving on port %d (%s server)", port, server_kind.c_str());
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGHUP, HandleHup);
  const int duration_s = static_cast<int>(e.Flags().GetInt("duration"));
  const auto started = std::chrono::steady_clock::now();
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (g_reload != 0) {
      // The handler only flips a flag; the actual swap runs here on the
      // main thread, outside async-signal context.
      g_reload = 0;
      const std::string err = epochs.Reload();
      if (err.empty()) {
        e.Note("reload: now serving epoch %llu",
               static_cast<unsigned long long>(epochs.CurrentId()));
      } else {
        std::fprintf(stderr, "[asppi_serve] reload failed: %s\n",
                     err.c_str());
      }
      std::fflush(stdout);
    }
    if (duration_s > 0 &&
        std::chrono::steady_clock::now() - started >=
            std::chrono::seconds(duration_s)) {
      break;
    }
  }

  // Graceful drain: stop accepting, let in-flight requests finish and flush.
  serve::ServerStats stats;
  if (threaded) {
    threaded->Stop();
    const serve::Server::Counters counters = threaded->GetCounters();
    stats.accepted = counters.accepted;
    stats.overload_rejects = counters.overload_rejects;
    stats.deadline_exceeded = counters.deadline_exceeded;
    stats.slow_queries = counters.slow_queries;
  } else {
    reactor->Stop();
    stats = reactor->Stats();
  }
  e.Note("drained: %llu connection(s), %llu overload reject(s), "
         "%llu deadline(s), %llu slow, %llu batch(es)",
         static_cast<unsigned long long>(stats.accepted),
         static_cast<unsigned long long>(stats.overload_rejects),
         static_cast<unsigned long long>(stats.deadline_exceeded),
         static_cast<unsigned long long>(stats.slow_queries),
         static_cast<unsigned long long>(stats.batches));
  {
    const auto epoch = epochs.Current();
    const util::ShardedLruCache::Stats cache =
        epoch->service->Cache().GetStats();
    e.Note("epoch %llu cache: %llu hit(s), %llu miss(es), %llu eviction(s); "
           "%llu reload(s)",
           static_cast<unsigned long long>(epochs.CurrentId()),
           static_cast<unsigned long long>(cache.hits),
           static_cast<unsigned long long>(cache.misses),
           static_cast<unsigned long long>(cache.evictions),
           static_cast<unsigned long long>(epochs.ReloadCount()));
  }
  util::Metrics::Global().SetGauge("serve.port", static_cast<double>(port));
  return e.Finish();
}
