// asppi_serve — long-lived what-if query daemon over a compiled snapshot
// (or an as-rel text topology), speaking newline-delimited JSON over TCP.
//
//   $ asppi_snapshot --topo=topology.topo --out=topology.snap --baselines=3831
//   $ asppi_serve --snapshot=topology.snap --port=4179 &
//   $ printf '{"op":"impact","victim":3831,"attacker":7}\n' | nc localhost 4179
//
// Request types: impact, detect, route, defense, stats, health
// (serve/protocol.h). A snapshot carrying a kDefense section serves every
// what-if with that deployment active as the engines' import filter.
// --port=0 picks an ephemeral port; --port-file writes the bound port for
// scripted clients (the CI smoke job). SIGINT/SIGTERM drain gracefully:
// in-flight requests finish and flush before the process exits, then the
// run report (--json) carries the serve.* metrics.
#include <csignal>
#include <cstdio>
#include <thread>

#include "bench/experiment.h"
#include "serve/server.h"
#include "serve/service.h"
#include "util/metrics.h"

using namespace asppi;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  bench::Experiment e("asppi_serve",
                      "what-if query daemon (NDJSON over TCP) on a snapshot");
  e.WithThreadsFlag();
  e.Flags().DefineString("topo", "",
                         "as-rel topology file or binary snapshot");
  e.Flags().DefineString("snapshot", "",
                         "binary snapshot (asppi_snapshot output) to serve "
                         "(overrides --topo)");
  e.Flags().DefineUint("port", 0, "TCP port (0 = pick an ephemeral port)");
  e.Flags().DefineString("port-file", "",
                         "write the bound port number to this file once "
                         "listening (for scripted clients)");
  e.Flags().DefineInt("lambda", 4, "default victim prepend count");
  e.Flags().DefineUint("monitors", 30, "default top-degree vantage count");
  e.Flags().DefineUint("cache", 4096,
                       "result-cache entry budget (0 disables caching)");
  e.Flags().DefineUint("max-conns", 64, "concurrent connection bound");
  e.Flags().DefineUint("max-inflight", 128,
                       "queued-or-executing request bound (beyond it, "
                       "requests get an 'overloaded' response)");
  e.Flags().DefineInt("deadline-ms", 10000,
                      "queue-wait deadline per request (stale work is shed "
                      "with a 'deadline exceeded' response)");
  e.Flags().DefineInt("slow-ms", 1000, "slow-query log threshold");
  e.Flags().DefineInt("duration", 0,
                      "exit after this many seconds (0 = run until signal)");
  if (!e.ParseFlags(argc, argv)) return 1;

  const std::string& snapshot_path = e.Flags().GetString("snapshot");
  const std::string& path =
      snapshot_path.empty() ? e.Flags().GetString("topo") : snapshot_path;
  if (path.empty()) {
    std::fprintf(stderr, "need --snapshot (or --topo)\n");
    return 1;
  }
  topo::AsGraph loaded_graph;
  data::Snapshot snapshot;
  const topo::AsGraph* graph =
      e.LoadTopologyOrSnapshot(path, &loaded_graph, &snapshot);
  if (graph == nullptr) return 1;

  serve::ServiceOptions service_options;
  service_options.engine = e.Engine();
  service_options.default_lambda = static_cast<int>(e.Flags().GetInt("lambda"));
  service_options.default_monitors =
      static_cast<std::size_t>(e.Flags().GetUint("monitors"));
  service_options.cache_capacity =
      static_cast<std::size_t>(e.Flags().GetUint("cache"));
  // A snapshot's kDefense section becomes the live deployment: every
  // impact/detect what-if runs with it as the engines' import filter, and
  // its digest segregates the result cache from undefended answers.
  if (!snapshot.DefenseTags().empty()) {
    service_options.active_defense = std::make_shared<defense::PolicySet>(
        *graph, snapshot.DefenseTags());
    e.Note("defense: %zu AS(es) deployed (digest %08x)",
           service_options.active_defense->DeployedCount(),
           service_options.active_defense->Digest());
  }
  serve::QueryService service(*graph, snapshot.Policy(), service_options);
  const std::size_t warmed = service.WarmBaselines(snapshot.Baselines());

  serve::ServerOptions server_options;
  server_options.port = static_cast<int>(e.Flags().GetUint("port"));
  server_options.max_connections =
      static_cast<std::size_t>(e.Flags().GetUint("max-conns"));
  server_options.max_inflight =
      static_cast<std::size_t>(e.Flags().GetUint("max-inflight"));
  server_options.deadline_ms = static_cast<int>(e.Flags().GetInt("deadline-ms"));
  server_options.slow_query_ms = static_cast<int>(e.Flags().GetInt("slow-ms"));
  serve::Server server(&service, e.Pool(), server_options);
  std::string err = server.Start();
  if (!err.empty()) {
    std::fprintf(stderr, "error starting server: %s\n", err.c_str());
    return 1;
  }

  const std::string& port_file = e.Flags().GetString("port-file");
  if (!port_file.empty()) {
    std::FILE* f = std::fopen(port_file.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error writing %s\n", port_file.c_str());
      server.Stop();
      return 1;
    }
    std::fprintf(f, "%d\n", server.Port());
    std::fclose(f);
  }

  e.Note("serving %zu ASes, %zu links on port %d (%zu warmed baselines)",
         graph->NumAses(), graph->NumLinks(), server.Port(), warmed);
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  const int duration_s = static_cast<int>(e.Flags().GetInt("duration"));
  const auto started = std::chrono::steady_clock::now();
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (duration_s > 0 &&
        std::chrono::steady_clock::now() - started >=
            std::chrono::seconds(duration_s)) {
      break;
    }
  }

  // Graceful drain: stop accepting, let in-flight requests finish and flush.
  server.Stop();
  const serve::Server::Counters counters = server.GetCounters();
  const util::ShardedLruCache::Stats cache = service.Cache().GetStats();
  e.Note("drained: %llu connection(s), %llu overload reject(s), "
         "%llu deadline(s), %llu slow quer(ies)",
         static_cast<unsigned long long>(counters.accepted),
         static_cast<unsigned long long>(counters.overload_rejects),
         static_cast<unsigned long long>(counters.deadline_exceeded),
         static_cast<unsigned long long>(counters.slow_queries));
  e.Note("cache: %llu hit(s), %llu miss(es), %llu eviction(s)",
         static_cast<unsigned long long>(cache.hits),
         static_cast<unsigned long long>(cache.misses),
         static_cast<unsigned long long>(cache.evictions));
  util::Metrics::Global().SetGauge("serve.port",
                                   static_cast<double>(server.Port()));
  return e.Finish();
}
