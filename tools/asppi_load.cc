// asppi_load — open-loop load generator for a running asppi_serve.
//
//   $ asppi_serve --snapshot=topology.snap --port-file=port.txt &
//   $ asppi_load --port=$(cat port.txt) --rate=500 --duration=2 --conns=16
//
// Drives a Poisson request stream (exponential inter-arrival gaps) of the
// scripted op mix at the target rate, independent of server responsiveness —
// the open-loop discipline that keeps queueing delay inside the latency
// numbers (src/load/loadgen.h). Prints p50/p99/p999/max and the health
// verdict; exits non-zero when any request failed, was shed, or went
// unanswered, which is what lets the CI smoke treat "load survived a SIGHUP
// reload" as a hard gate.
//
// --sweep replaces the single run with a max-sustainable-rps search: double
// the rate until the p99 SLO (--slo-p99-ms) breaks, then bisect.
#include <cstdio>

#include "bench/experiment.h"
#include "load/loadgen.h"
#include "util/metrics.h"

using namespace asppi;

int main(int argc, char** argv) {
  bench::Experiment e("asppi_load",
                      "open-loop NDJSON load generator for asppi_serve");
  e.Flags().DefineUint("port", 0, "asppi_serve TCP port (required)");
  e.Flags().DefineUint("conns", 8, "concurrent connections");
  e.Flags().DefineDouble("rate", 500.0, "target request rate (req/s)");
  e.Flags().DefineInt("duration", 2, "send window in seconds");
  e.Flags().DefineInt("drain-ms", 5000,
                      "grace period for in-flight responses after the send "
                      "window closes");
  e.Flags().DefineUint("seed", 1, "workload seed");
  e.Flags().DefineUint("ases", 64,
                       "ASN space to draw request endpoints from (match the "
                       "served topology)");
  e.Flags().DefineString("mix",
                         "impact:60,route:25,detect:10,stats:4,health:1",
                         "scripted op mix as op:weight[,op:weight...]");
  e.Flags().DefineBool("sweep", false,
                       "search for the max sustainable rate instead of a "
                       "single run");
  e.Flags().DefineDouble("slo-p99-ms", 50.0, "sweep SLO: p99 bound (ms)");
  e.Flags().DefineDouble("max-rate", 32000.0, "sweep rate ceiling (req/s)");
  if (!e.ParseFlags(argc, argv)) return 1;

  const std::uint16_t port =
      static_cast<std::uint16_t>(e.Flags().GetUint("port"));
  if (port == 0) {
    std::fprintf(stderr, "need --port\n");
    return 1;
  }

  load::LoadGenOptions options;
  options.port = port;
  options.connections = static_cast<int>(e.Flags().GetUint("conns"));
  options.rate_rps = e.Flags().GetDouble("rate");
  options.duration_ms = static_cast<int>(e.Flags().GetInt("duration")) * 1000;
  options.drain_timeout_ms = static_cast<int>(e.Flags().GetInt("drain-ms"));
  options.workload.seed = e.Flags().GetUint("seed");
  options.workload.as_count =
      static_cast<std::uint32_t>(e.Flags().GetUint("ases"));
  options.workload.mix = e.Flags().GetString("mix");
  std::vector<load::MixEntry> mix;
  if (!load::Workload::ParseMix(options.workload.mix, &mix)) {
    std::fprintf(stderr, "bad --mix '%s'\n", options.workload.mix.c_str());
    return 1;
  }

  bool healthy = true;
  if (e.Flags().GetBool("sweep")) {
    load::SloTarget slo;
    slo.p99_ms = e.Flags().GetDouble("slo-p99-ms");
    const load::SweepResult sweep = load::FindMaxSustainableRps(
        options, slo, options.rate_rps, e.Flags().GetDouble("max-rate"));
    for (const load::SweepPoint& point : sweep.points) {
      e.Note("%s %s", point.report.ToString().c_str(),
             point.meets_slo ? "MEETS-SLO" : "breaks-slo");
    }
    e.Note("max sustainable: %.0f req/s under p99<=%.1fms",
           sweep.max_sustainable_rps, slo.p99_ms);
    util::Metrics::Global().SetGauge("load.max_sustainable_rps",
                                     sweep.max_sustainable_rps);
    healthy = sweep.max_sustainable_rps > 0.0;
  } else {
    const load::LoadReport report = load::RunLoad(options);
    e.Note("%s", report.ToString().c_str());
    e.Note("max=%llums healthy=%d",
           static_cast<unsigned long long>(report.max_us / 1000),
           report.Healthy() ? 1 : 0);
    util::Metrics::Global().SetGauge("load.achieved_rps",
                                     report.achieved_rps);
    util::Metrics::Global().SetGauge("load.p99_us",
                                     static_cast<double>(report.p99_us));
    healthy = report.Healthy();
  }
  const int rc = e.Finish();
  // Health is the contract: CI treats any shed/failed/unanswered request
  // during the smoke (including across a SIGHUP reload) as a failure.
  return healthy ? rc : 1;
}
