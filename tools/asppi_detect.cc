// asppi_detect — run the ASPP-interception detector over two RIB snapshots
// (before/after) in the library's .rib text format, for one victim prefix
// owner.
//
//   $ asppi_detect --topo=topology.topo --before=t0.rib --after=t1.rib
//                  --victim=3831 [--lambda=4]
//
// Passing --lambda enables the victim-aware rule with a uniform announced
// padding; omit it to run purely on routing data.
#include <cstdio>

#include "data/formats.h"
#include "detect/detector.h"
#include "topology/serialization.h"
#include "util/flags.h"

using namespace asppi;

namespace {

// Flattens a RIB snapshot into per-monitor paths toward the victim's
// prefixes (any prefix whose best path originates at the victim).
std::vector<std::pair<topo::Asn, bgp::AsPath>> PathsToward(
    const data::RibSnapshot& snapshot, topo::Asn victim) {
  std::vector<std::pair<topo::Asn, bgp::AsPath>> out;
  for (const auto& [monitor, table] : snapshot.tables) {
    for (const auto& [prefix, path] : table) {
      if (!path.Empty() && path.OriginAs() == victim) {
        out.emplace_back(monitor, path);
      }
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags;
  flags.DefineString("topo", "", "as-rel topology file (enables hint rules)");
  flags.DefineString("before", "", "RIB snapshot before the change (.rib)");
  flags.DefineString("after", "", "RIB snapshot after the change (.rib)");
  flags.DefineUint("victim", 0, "prefix owner ASN");
  flags.DefineInt("lambda", 0,
                  "announced padding (enables the victim-aware rule; 0=off)");
  if (!flags.Parse(argc, argv)) return 1;

  if (flags.GetString("before").empty() || flags.GetString("after").empty() ||
      flags.GetUint("victim") == 0) {
    std::fprintf(stderr, "--before, --after and --victim are required\n");
    return 1;
  }

  topo::AsGraph graph;
  bool have_graph = false;
  if (!flags.GetString("topo").empty()) {
    std::string err = topo::ReadAsRelFile(flags.GetString("topo"), graph);
    if (!err.empty()) {
      std::fprintf(stderr, "error reading topology: %s\n", err.c_str());
      return 1;
    }
    have_graph = true;
  }

  data::RibSnapshot before, after;
  for (auto [path, rib] : {std::pair{flags.GetString("before"), &before},
                           std::pair{flags.GetString("after"), &after}}) {
    std::string err = data::ReadRibFile(path, *rib);
    if (!err.empty()) {
      std::fprintf(stderr, "error reading %s: %s\n", path.c_str(),
                   err.c_str());
      return 1;
    }
  }

  const topo::Asn victim = static_cast<topo::Asn>(flags.GetUint("victim"));
  detect::AsppDetector detector(have_graph ? &graph : nullptr);
  bgp::PrependPolicy policy;
  const bgp::PrependPolicy* policy_ptr = nullptr;
  if (flags.GetInt("lambda") > 0) {
    policy.SetDefault(victim, static_cast<int>(flags.GetInt("lambda")));
    policy_ptr = &policy;
  }

  auto alarms = detector.Scan(victim, PathsToward(before, victim),
                              PathsToward(after, victim), policy_ptr);
  std::printf("%zu alarm(s) for AS%u's prefixes\n", alarms.size(), victim);
  for (const auto& alarm : alarms) {
    std::printf("  [%s] suspect AS%u (observer AS%u, %d pads removed): %s\n",
                alarm.confidence == detect::Alarm::Confidence::kHigh
                    ? "HIGH"
                    : "possible",
                alarm.suspect, alarm.observer, alarm.pads_removed,
                alarm.detail.c_str());
  }
  return alarms.empty() ? 0 : 2;  // exit 2 signals "attack suspected"
}
