// asppi_detect — run the ASPP-interception detector over two RIB snapshots
// (before/after) in the library's .rib text format, for one victim prefix
// owner.
//
//   $ asppi_detect --topo=topology.topo --before=t0.rib --after=t1.rib
//                  --victim=3831 [--lambda=4]
//
// Passing --lambda enables the victim-aware rule with a uniform announced
// padding; omit it to run purely on routing data. --victim=0 scans every
// origin AS appearing in the snapshots (parallelized over --threads).
#include <cstdio>
#include <set>

#include "bench/experiment.h"
#include "data/formats.h"
#include "detect/detector.h"
#include "util/strings.h"

using namespace asppi;

namespace {

// Flattens a RIB snapshot into per-monitor paths toward the victim's
// prefixes (any prefix whose best path originates at the victim).
std::vector<std::pair<topo::Asn, bgp::AsPath>> PathsToward(
    const data::RibSnapshot& snapshot, topo::Asn victim) {
  std::vector<std::pair<topo::Asn, bgp::AsPath>> out;
  for (const auto& [monitor, table] : snapshot.tables) {
    for (const auto& [prefix, path] : table) {
      if (!path.Empty() && path.OriginAs() == victim) {
        out.emplace_back(monitor, path);
      }
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Experiment e("asppi_detect",
                      "ASPP-interception detector over RIB snapshots");
  e.WithThreadsFlag();
  e.Flags().DefineString("topo", "",
                         "as-rel topology file or binary snapshot (enables "
                         "hint rules)");
  e.Flags().DefineString("snapshot", "",
                         "binary snapshot (asppi_snapshot output) to load "
                         "instead of --topo (mmap fast path)");
  e.Flags().DefineString("before", "",
                         "RIB snapshot before the change (.rib)");
  e.Flags().DefineString("after", "", "RIB snapshot after the change (.rib)");
  e.Flags().DefineUint(
      "victim", 0,
      "prefix owner ASN (0 = scan every origin in the snapshots)");
  e.Flags().DefineInt(
      "lambda", 0,
      "announced padding (enables the victim-aware rule; 0=off)");
  if (!e.ParseFlags(argc, argv)) return 1;

  if (e.Flags().GetString("before").empty() ||
      e.Flags().GetString("after").empty()) {
    std::fprintf(stderr, "--before and --after are required\n");
    return 1;
  }

  topo::AsGraph loaded_graph;
  data::Snapshot topo_snapshot;
  const topo::AsGraph* graph = nullptr;
  {
    const std::string& snapshot_path = e.Flags().GetString("snapshot");
    const std::string& path =
        snapshot_path.empty() ? e.Flags().GetString("topo") : snapshot_path;
    if (!path.empty()) {
      graph = e.LoadTopologyOrSnapshot(path, &loaded_graph, &topo_snapshot);
      if (graph == nullptr) return 1;
    }
  }

  data::RibSnapshot before, after;
  for (auto [path, rib] : {std::pair{e.Flags().GetString("before"), &before},
                           std::pair{e.Flags().GetString("after"), &after}}) {
    std::string err = data::ReadRibFile(path, *rib);
    if (!err.empty()) {
      std::fprintf(stderr, "error reading %s: %s\n", path.c_str(),
                   err.c_str());
      return 1;
    }
  }

  topo::Asn victim = 0;
  if (!e.AsnFlag("victim", &victim)) return 1;
  detect::AsppDetector detector(graph);

  // Victim set: the requested AS, or every origin appearing in a snapshot.
  std::vector<topo::Asn> victims;
  if (victim != 0) {
    victims.push_back(victim);
  } else {
    std::set<topo::Asn> origins;
    for (const auto* snapshot : {&before, &after}) {
      for (const auto& [monitor, table] : snapshot->tables) {
        for (const auto& [prefix, path] : table) {
          if (!path.Empty()) origins.insert(path.OriginAs());
        }
      }
    }
    victims.assign(origins.begin(), origins.end());
  }

  bgp::PrependPolicy policy;
  const bgp::PrependPolicy* policy_ptr = nullptr;
  if (e.Flags().GetInt("lambda") > 0 && victim != 0) {
    policy.SetDefault(victim, static_cast<int>(e.Flags().GetInt("lambda")));
    policy_ptr = &policy;
  }

  // Scan victims in parallel; alarms are reported in victim order, so the
  // output is identical for any --threads value.
  std::vector<std::vector<detect::Alarm>> per_victim(victims.size());
  e.Pool()->ParallelFor(victims.size(), [&](std::size_t i) {
    per_victim[i] = detector.Scan(victims[i], PathsToward(before, victims[i]),
                                  PathsToward(after, victims[i]), policy_ptr);
  });

  util::Table table({"victim", "confidence", "suspect", "observer",
                     "pads_removed", "detail"});
  std::size_t total_alarms = 0;
  for (std::size_t i = 0; i < victims.size(); ++i) {
    const auto& alarms = per_victim[i];
    if (victim == 0 && alarms.empty()) continue;  // terse in scan-all mode
    total_alarms += alarms.size();
    std::printf("%zu alarm(s) for AS%u's prefixes\n", alarms.size(),
                victims[i]);
    for (const auto& alarm : alarms) {
      const bool high = alarm.confidence == detect::Alarm::Confidence::kHigh;
      std::printf("  [%s] suspect AS%u (observer AS%u, %d pads removed): %s\n",
                  high ? "HIGH" : "possible", alarm.suspect, alarm.observer,
                  alarm.pads_removed, alarm.detail.c_str());
      table.Row()
          .Cell(util::Format("AS%u", victims[i]))
          .Cell(high ? "HIGH" : "possible")
          .Cell(util::Format("AS%u", alarm.suspect))
          .Cell(util::Format("AS%u", alarm.observer))
          .Cell(alarm.pads_removed)
          .Cell(alarm.detail);
    }
  }
  if (victim == 0) {
    e.Note("%zu alarm(s) across %zu scanned origin ASes", total_alarms,
           victims.size());
  }
  e.RecordTable(table);
  // Exit 2 signals "attack suspected".
  return e.Finish(total_alarms == 0 ? 0 : 2);
}
