// Monitor (vantage point) placement study — the future work the paper
// sketches in §V-B/§VIII: how does the *selection strategy* for route
// monitors affect detection of ASPP interception?
//
// Compares top-degree, random, and tier-1-first placement across a batch of
// simulated attacks.
#include <cstdio>

#include "attack/scenarios.h"
#include "detect/evaluation.h"
#include "detect/monitors.h"
#include "topology/generator.h"
#include "topology/tiers.h"

using namespace asppi;

int main() {
  topo::GeneratorParams params;
  params.seed = 11;
  topo::GeneratedTopology gen = topo::GenerateInternetTopology(params);
  topo::TierInfo tiers = topo::ClassifyTiers(gen.graph);
  std::printf("topology: %zu ASes, %zu links\n\n", gen.graph.NumAses(),
              gen.graph.NumLinks());

  auto pairs = attack::SampleRandomPairs(gen, 120, 99);
  attack::AttackSimulator simulator(gen.graph);
  detect::DetectionConfig config;
  config.lambda = 3;

  struct Strategy {
    const char* name;
    std::vector<topo::Asn> monitors;
  };

  const std::size_t d = 80;
  std::vector<Strategy> strategies;
  strategies.push_back({"top-degree", detect::TopDegreeMonitors(gen.graph, d)});
  strategies.push_back({"random", detect::RandomMonitors(gen.graph, d, 5)});
  strategies.push_back(
      {"tier1-first", detect::Tier1FirstMonitors(gen.graph, tiers, d)});

  std::printf("%-14s %-10s %-12s %-16s %-16s\n", "strategy", "monitors",
              "detected", "high-confidence", "suspect-correct");
  for (const Strategy& strategy : strategies) {
    detect::DetectionRates rates = detect::EvaluateDetectionRates(
        simulator, pairs, strategy.monitors, config);
    double n = static_cast<double>(std::max<std::size_t>(rates.effective, 1));
    std::printf("%-14s %-10zu %-12.1f %-16.1f %-16.1f\n", strategy.name,
                strategy.monitors.size(), 100.0 * rates.DetectionRate(),
                100.0 * rates.HighConfidenceRate(),
                100.0 * static_cast<double>(rates.suspect_correct) / n);
  }

  std::printf(
      "\n-> degree-aware placement dominates random placement: high-degree\n"
      "   ASes sit on many paths, so their feeds expose the inconsistent\n"
      "   padding quickly (the paper's §VI-C choice of top-degree monitors).\n");
  return 0;
}
