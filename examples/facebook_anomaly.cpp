// The Facebook routing anomaly of Mar 22, 2011 (paper Section III),
// replayed end to end: the six-AS topology, the normal and anomalous BGP
// states, the attack interpretation, and what the detector concludes from
// US vantage points.
#include <cstdio>

#include "attack/impact.h"
#include "detect/detector.h"
#include "topology/builders.h"

using namespace asppi;
using namespace asppi::topo::fb;

namespace {

template <typename State>  // PropagationResult or RoutingView
void ShowRoute(const State& state, topo::Asn asn,
               const char* name) {
  const auto& best = state.BestAt(asn);
  std::printf("  %-14s AS%-6u: %s\n", name, asn,
              best ? best->path.ToString().c_str() : "<none>");
}

}  // namespace

int main() {
  std::printf("The Facebook anomaly, Mar 22 2011 (paper Section III)\n");
  std::printf("=====================================================\n\n");

  topo::AsGraph graph = topo::FacebookAnomalyTopology();
  attack::AttackSimulator simulator(graph);

  // Facebook normally announces its prefix with five copies of AS32934.
  attack::AttackOutcome outcome =
      simulator.RunAsppInterception(kFacebook, kSkTelecom, /*lambda=*/5);

  std::printf("normal state (Facebook prepends x5 to both providers):\n");
  ShowRoute(*outcome.before, kAtt, "AT&T");
  ShowRoute(*outcome.before, kNtt, "NTT");
  ShowRoute(*outcome.before, kLevel3, "Level3");
  ShowRoute(*outcome.before, kChinaTelecom, "ChinaTelecom");

  std::printf("\nSK Telecom (AS9318) strips 4 of the 5 prepended ASNs:\n");
  ShowRoute(outcome.after, kAtt, "AT&T");
  ShowRoute(outcome.after, kNtt, "NTT");
  ShowRoute(outcome.after, kLevel3, "Level3");
  ShowRoute(outcome.after, kChinaTelecom, "ChinaTelecom");
  std::printf(
      "\n-> AT&T and NTT now reach Facebook through Korea and China, exactly\n"
      "   the observed anomaly. Traffic still terminates at Facebook\n"
      "   (interception, not blackholing), and no fake link or bogus origin\n"
      "   exists for classic detectors to flag.\n");

  // What can monitors conclude? Feed before/after routes of the US vantage
  // points to the detector.
  std::vector<std::pair<topo::Asn, bgp::AsPath>> before_paths, after_paths;
  for (topo::Asn monitor : {kAtt, kNtt, kLevel3}) {
    before_paths.emplace_back(monitor, outcome.before->BestAt(monitor)->path);
    after_paths.emplace_back(monitor, outcome.after.BestAt(monitor)->path);
  }
  detect::AsppDetector detector(&graph);
  auto alarms = detector.Scan(kFacebook, before_paths, after_paths);
  std::printf("\ndetector on US vantage points alone: %zu alarm(s)\n",
              alarms.size());
  for (const auto& alarm : alarms) {
    std::printf("  [%s] suspect AS%u at observer AS%u: %s\n",
                alarm.confidence == detect::Alarm::Confidence::kHigh
                    ? "HIGH"
                    : "possible",
                alarm.suspect, alarm.observer, alarm.detail.c_str());
  }

  // The prefix owner knows its own policy — with the victim-aware rule the
  // stripped branch is provable.
  bgp::PrependPolicy policy;
  policy.SetDefault(kFacebook, 5);
  auto owner_alarms =
      detector.Scan(kFacebook, before_paths, after_paths, &policy);
  std::printf("\nwith the prefix owner's own policy (victim-aware rule): %zu "
              "alarm(s)\n",
              owner_alarms.size());
  for (const auto& alarm : owner_alarms) {
    std::printf("  [%s] suspect AS%u: %s\n",
                alarm.confidence == detect::Alarm::Confidence::kHigh
                    ? "HIGH"
                    : "possible",
                alarm.suspect, alarm.detail.c_str());
  }
  std::printf(
      "\n-> from US monitors alone the TE and attack interpretations are\n"
      "   indistinguishable (the paper's conclusion); the prefix owner's own\n"
      "   announcement policy pins the stripped branch on AS9318.\n");
  return 0;
}
