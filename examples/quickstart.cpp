// Quickstart: generate an Internet-like topology, launch one ASPP-based
// prefix-interception attack, and quantify the damage.
//
//   $ ./quickstart [seed]
//
// This walks the core public API end to end:
//   topology generation → BGP propagation → attack → impact metrics.
#include <cstdio>
#include <cstdlib>

#include "attack/impact.h"
#include "attack/scenarios.h"
#include "topology/generator.h"
#include "topology/tiers.h"

using namespace asppi;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  // 1. Build a seeded synthetic AS-level topology with business
  //    relationships (customer/provider/peer/sibling).
  topo::GeneratorParams params;
  params.seed = seed;
  params.num_tier1 = 8;
  params.num_tier2 = 80;
  params.num_tier3 = 400;
  params.num_stubs = 1500;
  params.num_content = 10;
  topo::GeneratedTopology gen = topo::GenerateInternetTopology(params);
  std::printf("topology: %zu ASes, %zu links (seed %llu)\n",
              gen.graph.NumAses(), gen.graph.NumLinks(),
              static_cast<unsigned long long>(seed));

  // 2. Pick an attacker/victim pair: a tier-1 transit intercepting a
  //    lower-tier victim that protects a backup link with prepending.
  attack::SweepScenario scenario = attack::Tier1VsContent(gen);
  const int lambda = 4;
  std::printf("scenario: AS%u intercepts AS%u's prefix (victim prepends "
              "x%d)\n",
              scenario.attacker, scenario.victim, lambda);

  // 3. Run the attack: the victim announces with λ copies of its ASN; the
  //    attacker strips λ-1 of them and re-announces.
  attack::AttackSimulator simulator(gen.graph);
  attack::AttackOutcome outcome = simulator.RunAsppInterception(
      scenario.victim, scenario.attacker, lambda);

  // 4. Inspect the damage.
  std::printf("paths traversing the attacker: %.1f%% -> %.1f%% "
              "(%zu ASes newly polluted)\n",
              100.0 * outcome.fraction_before, 100.0 * outcome.fraction_after,
              outcome.newly_polluted.size());

  // Show a few hijacked routes: note every polluted path still *ends* at the
  // victim — interception, not blackholing.
  std::printf("\nsample hijacked routes (all still terminate at AS%u):\n",
              scenario.victim);
  int shown = 0;
  for (topo::Asn asn : outcome.newly_polluted) {
    if (shown++ >= 5) break;
    const auto& best = outcome.after.BestAt(asn);
    std::printf("  AS%-6u now routes via  %s\n", asn,
                best->path.ToString().c_str());
  }
  std::printf("\nfor the full evaluation, run the binaries under bench/.\n");
  return 0;
}
