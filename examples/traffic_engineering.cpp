// The *legitimate* use of ASPP (paper §II-A): a dual-homed stub balances
// inbound traffic between its two providers by prepending toward one of
// them, and provisions a backup route with heavy padding.
//
// Demonstrates: per-neighbor PrependPolicy, PropagationSimulator, and how
// inbound load (measured as the share of ASes whose best route enters
// through each provider link) shifts with λ.
#include <cstdio>

#include "bgp/propagation.h"
#include "topology/generator.h"

using namespace asppi;

namespace {

// Share of ASes whose best path to `origin` enters through `provider`.
double InboundShare(const bgp::PropagationResult& result, topo::Asn origin,
                    topo::Asn provider) {
  std::size_t total = 0, via = 0;
  for (topo::Asn asn : result.Graph().Ases()) {
    if (asn == origin) continue;
    const auto& best = result.BestAt(asn);
    if (!best) continue;
    ++total;
    // The hop right before the origin padding is the provider used.
    const auto& hops = best->path.Hops();
    std::size_t i = hops.size();
    while (i > 0 && hops[i - 1] == origin) --i;
    if (i > 0 && hops[i - 1] == provider) ++via;
    if (i == 0 && asn == provider) ++via;  // the provider itself
  }
  return total == 0 ? 0.0 : static_cast<double>(via) / static_cast<double>(total);
}

}  // namespace

int main() {
  topo::GeneratorParams params;
  params.seed = 7;
  params.num_tier1 = 8;
  params.num_tier2 = 80;
  params.num_tier3 = 400;
  params.num_stubs = 1500;
  params.num_content = 10;
  topo::GeneratedTopology gen = topo::GenerateInternetTopology(params);

  // Find a dual-homed stub.
  topo::Asn stub = 0;
  std::span<const topo::Asn> providers;
  for (topo::Asn cand : gen.stubs) {
    providers = gen.graph.Providers(cand);
    if (providers.size() == 2) {
      stub = cand;
      break;
    }
  }
  if (stub == 0) {
    std::printf("no dual-homed stub found\n");
    return 1;
  }
  std::printf("dual-homed stub AS%u with providers AS%u and AS%u\n", stub,
              providers[0], providers[1]);
  std::printf("prepending toward AS%u only; inbound share per provider:\n\n",
              providers[0]);
  std::printf("%-18s %-22s %-22s\n", "pads_to_provider0", "share_via_provider0",
              "share_via_provider1");

  bgp::PropagationSimulator engine(gen.graph);
  for (int pads = 1; pads <= 6; ++pads) {
    bgp::Announcement ann;
    ann.origin = stub;
    if (pads > 1) ann.prepends.SetForNeighbor(stub, providers[0], pads);
    bgp::PropagationResult result = engine.Run(ann);
    std::printf("%-18d %-22.3f %-22.3f\n", pads,
                InboundShare(result, stub, providers[0]),
                InboundShare(result, stub, providers[1]));
  }

  std::printf(
      "\n-> a handful of prepended copies shifts nearly all inbound traffic\n"
      "   to the other provider; the padded link remains as pure backup.\n"
      "   This ubiquitous practice is exactly the surface the ASPP\n"
      "   interception attack exploits: the more copies the victim pads,\n"
      "   the more an attacker gains by stripping them.\n");
  return 0;
}
