// The Section VI-A measurement pipeline as a downstream user would run it:
// generate a synthetic measurement corpus (RIB snapshot + update stream),
// write it to files in the library's text formats, parse it back, and
// characterize ASPP usage.
//
//   $ ./measure_prepending [output_dir]
#include <cstdio>
#include <string>

#include "data/characterize.h"
#include "data/formats.h"
#include "data/measurement.h"
#include "detect/monitors.h"
#include "topology/generator.h"
#include "util/stats.h"

using namespace asppi;

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "/tmp";

  topo::GeneratorParams params;
  params.seed = 2011;
  params.num_sibling_pairs = 0;  // measurement engine uses RoutingTree
  topo::GeneratedTopology gen = topo::GenerateInternetTopology(params);

  data::MeasurementParams mp;
  mp.num_prefixes = 400;
  mp.num_churn_events = 120;
  data::MeasurementGenerator generator(gen.graph, mp);
  auto monitors = detect::TopDegreeMonitors(gen.graph, 30);

  // Produce and persist the corpus.
  data::RibSnapshot rib = generator.GenerateRib(monitors);
  std::vector<data::Update> updates = generator.GenerateUpdates(monitors);
  const std::string rib_path = dir + "/asppi_corpus.rib";
  const std::string upd_path = dir + "/asppi_corpus.upd";
  data::WriteRibFile(rib, rib_path);
  data::WriteUpdatesFile(updates, upd_path);
  std::printf("wrote %s and %s\n", rib_path.c_str(), upd_path.c_str());

  // Read it back — the formats round-trip — and characterize.
  data::RibSnapshot parsed_rib;
  std::vector<data::Update> parsed_updates;
  std::string err = data::ReadRibFile(rib_path, parsed_rib);
  if (!err.empty()) {
    std::printf("rib parse error: %s\n", err.c_str());
    return 1;
  }
  err = data::ReadUpdatesFile(upd_path, parsed_updates);
  if (!err.empty()) {
    std::printf("update parse error: %s\n", err.c_str());
    return 1;
  }

  auto table_fracs = data::PrependFractionPerMonitor(parsed_rib);
  auto update_fracs = data::PrependFractionPerMonitorUpdates(parsed_updates);
  std::printf("\nper-monitor fraction of routes with prepending:\n");
  std::printf("  tables:  mean %.3f over %zu monitors\n",
              util::Mean(table_fracs), table_fracs.size());
  std::printf("  updates: mean %.3f over %zu monitors\n",
              util::Mean(update_fracs), update_fracs.size());

  util::Histogram hist = data::PrependRunHistogram(parsed_rib);
  std::printf("\nprepend-count distribution in tables (top entries):\n");
  for (int k = 2; k <= 8; ++k) {
    if (hist.Fraction(k) > 0.0) {
      std::printf("  %d copies: %.3f\n", k, hist.Fraction(k));
    }
  }
  std::printf("  >10 copies: %.4f\n", hist.FractionAtLeast(11));
  std::printf(
      "\n-> ASPP is everywhere: a sizeable fraction of routes carry padding\n"
      "   (paper: ~13%% of table routes, more in updates), which is what\n"
      "   makes the interception attack broadly applicable.\n");
  return 0;
}
