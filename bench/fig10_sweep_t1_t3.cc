// Reproduces paper Figure 10: pollution vs prepend count when a tier-1
// hijacks a lower-tier content AS (the paper's "AT&T (AS7018) hijacks
// Facebook (AS32934)").
//
// Paper shape: 82 % at λ=2, >99 % for λ≥3 — nearly the whole Internet
// reaches the low-tier victim through provider/peer routes that the
// higher-tier attacker's stripped route beats.
#include <cstdio>

#include "attack/scenarios.h"
#include "bench/bench_common.h"

using namespace asppi;

int main(int argc, char** argv) {
  util::Flags flags;
  bench::AddCommonFlags(flags);
  flags.DefineInt("max_lambda", 8, "largest prepend count to sweep");
  if (!flags.Parse(argc, argv)) return 1;

  topo::GeneratedTopology topology =
      topo::GenerateInternetTopology(bench::ParamsFromFlags(flags));
  bench::PrintBanner(
      "Figure 10: pollution vs prepended ASNs (tier-1 hijacks content AS)",
      "AT&T hijacks Facebook: 82% at lambda=2, >99% from 3 on", topology,
      flags);

  attack::SweepScenario scenario = attack::Tier1VsContent(topology);
  std::printf("scenario: attacker AS%u (tier-1) hijacks victim AS%u "
              "(content)\n",
              scenario.attacker, scenario.victim);
  auto pool = bench::PoolFromFlags(flags);
  attack::BaselineCache baseline_cache(topology.graph);
  auto rows = bench::LambdaSweep(topology.graph, scenario.victim,
                                 scenario.attacker,
                                 static_cast<int>(flags.GetInt("max_lambda")),
                                 /*violate_valley_free=*/false, pool.get(),
                                 &baseline_cache);
  bench::PrintSweep(rows, flags, "pct_after_hijack", "pct_before_hijack");
  std::printf(
      "shape check (paper): saturates close to 100%% once lambda >= 3.\n");
  return 0;
}
