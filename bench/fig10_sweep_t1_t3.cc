// Reproduces paper Figure 10: pollution vs prepend count when a tier-1
// hijacks a lower-tier content AS (the paper's "AT&T (AS7018) hijacks
// Facebook (AS32934)").
//
// Paper shape: 82 % at λ=2, >99 % for λ≥3 — nearly the whole Internet
// reaches the low-tier victim through provider/peer routes that the
// higher-tier attacker's stripped route beats.
#include "attack/scenarios.h"
#include "bench/bench_common.h"

using namespace asppi;

int main(int argc, char** argv) {
  bench::Experiment e(
      "Figure 10: pollution vs prepended ASNs (tier-1 hijacks content AS)",
      "AT&T hijacks Facebook: 82% at lambda=2, >99% from 3 on");
  e.WithTopologyFlags();
  e.WithDefenseFlags();
  e.Flags().DefineInt("max_lambda", 8, "largest prepend count to sweep");
  if (!e.ParseFlags(argc, argv)) return 1;

  const topo::GeneratedTopology& topology = e.GenerateTopology();
  attack::SweepScenario scenario = attack::Tier1VsContent(topology);
  e.Note("scenario: attacker AS%u (tier-1) hijacks victim AS%u (content)",
         scenario.attacker, scenario.victim);
  const auto deployment = e.DefenseDeployment(topology.graph, scenario.victim,
                                              scenario.attacker);
  auto rows = bench::LambdaSweep(topology.graph, scenario.victim,
                                 scenario.attacker,
                                 static_cast<int>(e.Flags().GetInt("max_lambda")),
                                 /*violate_valley_free=*/false, e.Pool(),
                                 e.Baseline(), e.Engine(), deployment.get());
  e.PrintTable(
      bench::SweepTable(rows, "pct_after_hijack", "pct_before_hijack"));
  e.Note("shape check (paper): saturates close to 100%% once lambda >= 3.");
  return e.Finish();
}
