// Reproduces paper Figure 1 (the BGP view of the Facebook anomaly of Mar 22,
// 2011) and Table I (the data-plane traceroute during the anomaly).
//
// The six-AS topology is the paper's exactly; we show the normal route, the
// anomalous route after SK Telecom's branch carries only 3 of Facebook's 5
// prepended ASNs, and a simulated traceroute whose delay structure matches
// Table I (the Pacific crossings dominate).
#include <cstdio>

#include "attack/impact.h"
#include "bench/experiment.h"
#include "bgp/propagation.h"
#include "data/traceroute.h"
#include "topology/builders.h"

namespace {

using namespace asppi;
using topo::fb::kAtt;
using topo::fb::kChinaTelecom;
using topo::fb::kFacebook;
using topo::fb::kLevel3;
using topo::fb::kNtt;
using topo::fb::kSkTelecom;

template <typename State>  // PropagationResult or RoutingView
void PrintRoutes(const char* title, const State& result) {
  std::printf("%s\n", title);
  for (topo::Asn asn : {kLevel3, kAtt, kNtt, kChinaTelecom, kSkTelecom}) {
    const auto& best = result.BestAt(asn);
    std::printf("  AS%-6u best route: %s\n", asn,
                best ? best->path.ToString().c_str() : "<none>");
  }
}

data::TracerouteSimulator MakeDataPlane() {
  data::TracerouteSimulator sim;
  // Delay model calibrated to Table I: ~41 ms inside the access ISP, the
  // trans-Pacific hops push the clock past 220 ms, Facebook answers ~249 ms.
  sim.SetLocalDelay(1);
  sim.SetDefaultLinkDelay(20);
  sim.SetHopCount(kAtt, 3);
  sim.SetHopCount(kChinaTelecom, 3);
  sim.SetHopCount(kSkTelecom, 2);
  sim.SetHopCount(kFacebook, 3);
  sim.SetHopCount(kLevel3, 3);
  sim.SetLinkDelay(kAtt, kChinaTelecom, 90);        // US → China
  sim.SetLinkDelay(kChinaTelecom, kSkTelecom, 87);  // China → Korea
  sim.SetLinkDelay(kSkTelecom, kFacebook, 21);      // Korea → US edge
  sim.SetLinkDelay(kAtt, kLevel3, 15);
  sim.SetLinkDelay(kLevel3, kFacebook, 12);
  sim.SetIntraAsDelay(2);
  return sim;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Experiment e(
      "Figure 1 + Table I: the Facebook routing anomaly",
      "at 7:15 GMT Mar 22 2011 the 5-hop route (4134 9318 32934x3) beat the "
      "normal 7-hop route (3356 32934x5); AT&T and NTT rerouted through "
      "Korea/China");
  if (!e.ParseFlags(argc, argv)) return 1;
  e.PrintHeader();
  std::printf("\n");

  topo::AsGraph graph = topo::FacebookAnomalyTopology();
  bgp::PropagationSimulator engine(graph);

  // Normal state: Facebook prepends 5 copies to all providers.
  bgp::Announcement normal;
  normal.origin = kFacebook;
  normal.prepends.SetDefault(kFacebook, 5);
  bgp::PropagationResult before = engine.Run(normal);
  PrintRoutes("[normal] Facebook announces 32934 x5 to all providers:", before);

  // Anomaly, interpretation 1 (traffic engineering): Facebook itself sends
  // only 3 copies toward SK Telecom.
  bgp::Announcement anomaly = normal;
  anomaly.prepends.SetForNeighbor(kFacebook, kSkTelecom, 3);
  bgp::PropagationResult after = engine.Run(anomaly);
  PrintRoutes("\n[anomaly/TE] only 3 copies announced toward AS9318:", after);

  // Anomaly, interpretation 2 (ASPP interception): SK Telecom strips the
  // padding from the uniformly announced route.
  attack::AttackSimulator attack_sim(graph);
  attack::AttackOutcome attack =
      attack_sim.RunAsppInterception(kFacebook, kSkTelecom, 5);
  PrintRoutes("\n[anomaly/attack] AS9318 strips 4 of 5 prepended ASNs:",
              attack.after);
  e.Note(
      "  -> both interpretations produce the same anomalous routes; from US\n"
      "     vantage points they are indistinguishable (paper Section III).");

  // Table I: traceroute along both data paths.
  data::TracerouteSimulator dataplane = MakeDataPlane();
  std::printf("\n[Table I] traceroute US -> Facebook, normal route:\n%s",
              data::TracerouteSimulator::FormatTable(
                  dataplane.Run(bgp::AsPath({kAtt, kLevel3, kFacebook,
                                             kFacebook, kFacebook, kFacebook,
                                             kFacebook})))
                  .c_str());
  // The data path from an AT&T customer: AT&T itself, then AT&T's best route.
  const auto& att_route = attack.after.BestAt(kAtt);
  std::vector<topo::Asn> hops{kAtt};
  for (topo::Asn hop : att_route->path.Hops()) hops.push_back(hop);
  bgp::AsPath anomalous(hops);
  std::printf("\n[Table I] traceroute US -> Facebook, during the anomaly:\n%s",
              data::TracerouteSimulator::FormatTable(dataplane.Run(anomalous))
                  .c_str());
  e.Note(
      "\nshape check: the anomalous path's final-hop delay should be ~2x the\n"
      "normal path's (cross-ocean detour, Table I: 249 ms vs the usual "
      "~70-130 ms).");
  return e.Finish();
}
