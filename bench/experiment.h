// Experiment: the single entry point every figure/table binary and tool goes
// through — flag registration, topology construction, thread pool and
// baseline cache wiring, banner printing, and output (aligned table, --csv,
// --json run report, --metrics dump).
//
// Canonical bench shape:
//
//   bench::Experiment e("Figure 9: ...", "paper caption");
//   e.WithTopologyFlags();
//   e.Flags().DefineInt("max_lambda", 8, "...");
//   if (!e.ParseFlags(argc, argv)) return 1;
//   e.GenerateTopology();                       // prints the banner
//   ... compute, using e.Pool() and e.Baseline() ...
//   e.PrintTable(table);                        // pretty or CSV per --csv
//   e.Note("shape check (paper): ...");         // printed + recorded
//   return e.Finish();                          // --json / --metrics, exit code
//
// Tools skip WithTopologyFlags() (they load a topology file instead) and use
// WithThreadsFlag() + LoadTopology(); everything downstream is identical, so
// --threads, --json, and the error path exist exactly once in the codebase.
//
// The --json report schema (see DESIGN.md §4d):
//   { "meta":    { "binary", "experiment", "caption", "git", "seed"?, "flags" },
//     "metrics": { "counters", "timers", "gauges" },
//     "rows":    [ {column: value, ...}, ... ],
//     "notes":   [ "...", ... ] }
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "attack/baseline_cache.h"
#include "attack/impact.h"
#include "data/snapshot.h"
#include "defense/deployment.h"
#include "defense/policy.h"
#include "topology/generator.h"
#include "util/flags.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace asppi::bench {

class Experiment {
 public:
  // `name` heads the banner; `caption` is the paper's expected shape.
  Experiment(std::string name, std::string caption);

  // Experiment-specific flags are defined on this before ParseFlags().
  util::Flags& Flags() { return flags_; }
  const util::Flags& Flags() const { return flags_; }

  // Registers the synthetic-topology flags (--seed, tier sizes, --siblings,
  // --preset) plus --threads. For binaries that generate their own topology.
  // --preset=internet2026 swaps in topo::Internet2026Params() (~100k ASes);
  // explicitly given tier-size/seed flags still override preset fields.
  Experiment& WithTopologyFlags();

  // Registers only --threads. For tools that load a topology file.
  Experiment& WithThreadsFlag();

  // Registers --defense (policy kinds, default "none"), --deploy-frac,
  // --deploy-strategy, and --deploy-seed, so any sweep binary can re-run its
  // figure under a partial defense deployment.
  Experiment& WithDefenseFlags();

  // Builds the deployment the defense flags describe over `graph`: the first
  // ⌈frac·n⌉ ASes of the --deploy-strategy ordering (excluding `victim` and
  // `attacker`; either may be 0), each running the --defense policies.
  // Returns nullptr — no filtering — for --defense=none (the default) or
  // --deploy-frac=0, and also (with a warning) when
  // --deploy-strategy=victim-cone is asked for without a victim.
  std::shared_ptr<const defense::PolicySet> DefenseDeployment(
      const topo::AsGraph& graph, topo::Asn victim, topo::Asn attacker);

  // Parses argv (records the binary name for the run report). Returns false
  // after printing usage on --help or a flag error; main() should return 1.
  bool ParseFlags(int argc, char** argv);

  // Generator parameters from the parsed flags (WithTopologyFlags only).
  topo::GeneratorParams Params() const;

  // Generates the topology from the flags (or an adjusted `params`) and
  // prints the banner. Call once, after ParseFlags().
  const topo::GeneratedTopology& GenerateTopology();
  const topo::GeneratedTopology& GenerateTopology(
      const topo::GeneratorParams& params);
  const topo::GeneratedTopology& Topology() const;
  // For scenario builders that engineer extra links into the generated graph
  // (Fig. 11's sibling chain). Use before Baseline() is built.
  topo::GeneratedTopology& MutableTopology();

  // Prints the two banner lines (name + caption) without a topology summary —
  // for experiments on hand-built topologies. GenerateTopology() includes it.
  void PrintHeader();

  // Reads an as-rel topology file into `graph`. On failure prints the shared
  // error line to stderr and returns false; main() should return 1.
  bool LoadTopology(const std::string& path, topo::AsGraph* graph);

  // Loads `path` as either a binary snapshot (when it starts with the
  // snapshot magic — see data/snapshot.h) or an as-rel text file, so every
  // tool accepts both formats through one flag. On snapshot load `*snapshot`
  // is filled and the returned pointer aims at its graph; on text load
  // `*graph` is filled. Returns nullptr on failure (error printed).
  const topo::AsGraph* LoadTopologyOrSnapshot(const std::string& path,
                                              topo::AsGraph* graph,
                                              data::Snapshot* snapshot);

  // Parses the flag `name` as an AS number via util::ParseAsn (strict:
  // decimal digits only, must fit in 32 bits). On failure prints the shared
  // error line and returns false; main() should return 1.
  bool AsnFlag(const std::string& name, topo::Asn* out) const;

  // The --engine selection (registered on every experiment): delta (the
  // default) or full, with a warning and delta fallback on unknown values.
  attack::EngineKind Engine() const;

  // Thread pool sized by --threads (lazily built; requires a threads flag).
  // Outputs are bit-identical for any --threads value.
  util::ThreadPool* Pool();

  // Baseline cache over the generated topology (lazily built; requires
  // GenerateTopology() first).
  attack::BaselineCache* Baseline();

  // printf-style commentary: printed immediately and recorded in the run
  // report's `notes` array.
  void Note(const char* fmt, ...)
#if defined(__GNUC__) || defined(__clang__)
      __attribute__((format(printf, 2, 3)))
#endif
      ;

  // Prints `table` per --csv and records its rows for the run report.
  void PrintTable(const util::Table& table);

  // Records `table`'s rows for the run report without printing (for tools
  // that keep their own stdout formatting).
  void RecordTable(const util::Table& table);

  // Dumps metrics per --metrics, writes the --json run report (if requested),
  // and passes `exit_code` through so `return e.Finish();` ends main().
  int Finish(int exit_code = 0);

 private:
  std::string name_;
  std::string caption_;
  std::string binary_;
  util::Flags flags_;
  bool has_threads_flag_ = false;
  bool has_topology_flags_ = false;
  std::optional<topo::GeneratedTopology> topology_;
  std::unique_ptr<util::ThreadPool> pool_;
  std::unique_ptr<attack::BaselineCache> baseline_;
  std::vector<std::string> notes_;
  std::vector<util::Json> tables_;
};

}  // namespace asppi::bench
