// perf_engines: convergence-engine ablation — full re-convergence
// (PropagationSimulator::Resume) vs the incremental delta-wavefront engine
// (bgp::DeltaPropagator), over the sweep workloads the engines exist for.
//
// Three legs, all over one generated topology and one shared warm baseline
// cache (baseline computation is excluded from every timed region — both
// engines warm-start, so the ablation isolates the re-convergence cost):
//
//   1. fig09-style λ-sweep (tier-1 attacker vs tier-1 victim): per-λ timing.
//      The wavefront grows with λ — small λ shows the engine's best case,
//      λ=max its worst (most of the graph flips and export work dominates).
//   2. Pair sweeps per attacker tier (tier-1 / tier-2 / tier-3 / stub
//      against the tier-1 victim, plus fig08-style random pairs): aggregate
//      speedup per tier, which tracks wavefront size by construction.
//   3. Wavefront-size histogram (power-of-2 buckets of ASes touched per
//      delta run) across all pair-sweep attacks.
//
// Every timed delta outcome is spot-checked against the full engine's
// (fractions and newly-polluted sets must match exactly; the bit-level RIB
// equivalence lives in tests/delta_test.cc and the fuzzer's delta-vs-full
// leg); any mismatch fails the run. --smoke shrinks the topology and point
// counts to CI size; CI publishes the --json report as BENCH_engines.json.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "attack/baseline_cache.h"
#include "attack/impact.h"
#include "attack/scenarios.h"
#include "bench/experiment.h"
#include "topology/generator.h"
#include "util/metrics.h"
#include "util/table.h"

namespace {

using namespace asppi;

struct TimedRun {
  attack::AttackOutcome outcome;
  double ms = 0.0;
};

// Best-of-`reps` timing of one attack on `simulator` (baselines must already
// be warm so only re-convergence + accounting is measured).
TimedRun TimeAttack(const attack::AttackSimulator& simulator, topo::Asn victim,
                    topo::Asn attacker, int lambda, std::size_t reps) {
  TimedRun run;
  double best_ms = 0.0;
  for (std::size_t r = 0; r < reps; ++r) {
    const std::uint64_t start = util::MonotonicNowNs();
    attack::AttackOutcome outcome =
        simulator.RunAsppInterception(victim, attacker, lambda);
    const double ms =
        static_cast<double>(util::MonotonicNowNs() - start) / 1e6;
    if (r == 0 || ms < best_ms) best_ms = ms;
    run.outcome = std::move(outcome);
  }
  run.ms = best_ms;
  return run;
}

// The observable results both engines must agree on. (Bit-level state
// equivalence is the test suite's job; this keeps the bench honest about
// what it timed.)
bool SameResults(const attack::AttackOutcome& full,
                 const attack::AttackOutcome& delta) {
  return full.fraction_before == delta.fraction_before &&
         full.fraction_after == delta.fraction_after &&
         full.newly_polluted == delta.newly_polluted;
}

std::size_t WavefrontOf(const attack::AttackOutcome& outcome) {
  const bgp::DeltaResult* delta = outcome.after.Delta();
  return delta != nullptr ? delta->TouchedIndices().size() : 0;
}

std::size_t BucketOf(std::size_t wavefront) {
  std::size_t bucket = 0;
  while ((std::size_t{1} << (bucket + 1)) <= wavefront) ++bucket;
  return wavefront == 0 ? 0 : bucket + 1;  // bucket 0 reserved for "0"
}

std::string BucketLabel(std::size_t bucket) {
  if (bucket == 0) return "0";
  const std::size_t lo = std::size_t{1} << (bucket - 1);
  const std::size_t hi = (std::size_t{1} << bucket) - 1;
  if (lo == hi) return std::to_string(lo);
  return std::to_string(lo) + "-" + std::to_string(hi);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Experiment e(
      "Engine ablation: full re-convergence vs delta wavefront",
      "the delta engine must match the full engine exactly and win big "
      "wherever the attack wavefront is small (low lambda, low-tier "
      "attackers) — the common case in sweeps");
  e.WithTopologyFlags();
  e.Flags().DefineBool("smoke", false,
                       "CI-sized run: small topology, fewer lambda points "
                       "and pairs");
  e.Flags().DefineInt("max_lambda", 8, "lambda-sweep upper bound (leg 1)");
  e.Flags().DefineUint("pairs", 48, "attacker sample size per tier (leg 2)");
  e.Flags().DefineUint("reps", 3, "timing repetitions per point (best-of)");
  if (!e.ParseFlags(argc, argv)) return 1;

  const bool smoke = e.Flags().GetBool("smoke");
  topo::GeneratorParams params = e.Params();
  int max_lambda = static_cast<int>(e.Flags().GetInt("max_lambda"));
  std::size_t pair_count = e.Flags().GetUint("pairs");
  std::size_t reps = e.Flags().GetUint("reps");
  if (smoke) {
    params.num_tier1 = std::min<std::size_t>(params.num_tier1, 5);
    params.num_tier2 = std::min<std::size_t>(params.num_tier2, 40);
    params.num_tier3 = std::min<std::size_t>(params.num_tier3, 150);
    params.num_stubs = std::min<std::size_t>(params.num_stubs, 600);
    params.num_content = std::min<std::size_t>(params.num_content, 10);
    params.num_sibling_pairs = std::min<std::size_t>(params.num_sibling_pairs, 5);
    max_lambda = std::min(max_lambda, 4);
    pair_count = std::min<std::size_t>(pair_count, 8);
    reps = 1;
  }
  if (reps == 0) reps = 1;

  const topo::GeneratedTopology& topology = e.GenerateTopology(params);
  const attack::SweepScenario scenario = attack::Tier1VsTier1(topology);

  // One shared cache; both engines warm-start from identical baselines.
  attack::BaselineCache* cache = e.Baseline();
  const attack::AttackSimulator full_sim(topology.graph, cache,
                                         attack::EngineKind::kFull);
  const attack::AttackSimulator delta_sim(topology.graph, cache,
                                          attack::EngineKind::kDelta);

  bool mismatch = false;
  const auto check = [&](const attack::AttackOutcome& full,
                         const attack::AttackOutcome& delta) {
    if (!SameResults(full, delta)) {
      mismatch = true;
      std::fprintf(stderr,
                   "ENGINE MISMATCH: attacker AS%u victim AS%u lambda %d — "
                   "full %.6f/%zu vs delta %.6f/%zu (fraction_after/"
                   "newly_polluted)\n",
                   full.attacker, full.victim, full.lambda,
                   full.fraction_after, full.newly_polluted.size(),
                   delta.fraction_after, delta.newly_polluted.size());
    }
  };

  // ---- Leg 1: fig09-style λ-sweep, per-λ timing --------------------------
  e.Note("leg 1: tier-1 attacker AS%u vs tier-1 victim AS%u, lambda 1..%d "
         "(best of %zu reps)",
         scenario.attacker, scenario.victim, max_lambda, reps);
  // Pre-warm the per-λ baselines outside the timed region.
  for (int lambda = 1; lambda <= max_lambda; ++lambda) {
    bgp::Announcement announcement;
    announcement.origin = scenario.victim;
    announcement.prepends.SetDefault(scenario.victim, lambda);
    cache->Get(announcement);
  }
  util::Table sweep_table({"lambda", "full_ms", "delta_ms", "speedup",
                           "wavefront_ases", "pct_polluted"});
  double sweep_full_ms = 0.0, sweep_delta_ms = 0.0;
  for (int lambda = 1; lambda <= max_lambda; ++lambda) {
    const TimedRun full = TimeAttack(full_sim, scenario.victim,
                                     scenario.attacker, lambda, reps);
    const TimedRun delta = TimeAttack(delta_sim, scenario.victim,
                                      scenario.attacker, lambda, reps);
    check(full.outcome, delta.outcome);
    sweep_full_ms += full.ms;
    sweep_delta_ms += delta.ms;
    sweep_table.Row()
        .Cell(lambda)
        .Cell(full.ms, 3)
        .Cell(delta.ms, 3)
        .Cell(delta.ms > 0 ? full.ms / delta.ms : 0.0, 1)
        .Cell(static_cast<std::uint64_t>(WavefrontOf(delta.outcome)))
        .Cell(100.0 * delta.outcome.fraction_after, 1);
  }
  e.PrintTable(sweep_table);
  e.Note("leg 1 aggregate: full %.1f ms, delta %.1f ms, speedup %.1fx",
         sweep_full_ms, sweep_delta_ms,
         sweep_delta_ms > 0 ? sweep_full_ms / sweep_delta_ms : 0.0);

  // ---- Leg 2: pair sweeps per attacker tier ------------------------------
  struct TierLeg {
    const char* name;
    std::vector<std::pair<topo::Asn, topo::Asn>> pairs;
  };
  const auto versus_victim = [&](const std::vector<topo::Asn>& attackers) {
    std::vector<std::pair<topo::Asn, topo::Asn>> pairs;
    for (topo::Asn attacker : attackers) {
      if (attacker == scenario.victim) continue;
      if (pairs.size() >= pair_count) break;
      pairs.emplace_back(attacker, scenario.victim);
    }
    return pairs;
  };
  std::vector<TierLeg> legs;
  legs.push_back({"tier1", versus_victim(topology.tier1)});
  legs.push_back({"tier2", versus_victim(topology.tier2)});
  legs.push_back({"tier3", versus_victim(topology.tier3)});
  legs.push_back({"stub", versus_victim(topology.stubs)});
  legs.push_back(
      {"random", attack::SampleRandomPairs(topology, pair_count,
                                           params.seed + 9)});

  const int pair_lambda = std::min(3, max_lambda);
  // Pre-warm every distinct victim baseline outside the timed regions.
  for (const TierLeg& leg : legs) {
    for (const auto& [attacker, victim] : leg.pairs) {
      (void)attacker;
      bgp::Announcement announcement;
      announcement.origin = victim;
      announcement.prepends.SetDefault(victim, pair_lambda);
      cache->Get(announcement);
    }
  }

  e.Note("leg 2: per-tier pair sweeps at lambda=%d (%zu pairs per leg)",
         pair_lambda, pair_count);
  util::Table tier_table({"attacker_tier", "pairs", "full_ms", "delta_ms",
                          "speedup", "mean_wavefront", "max_wavefront"});
  std::vector<std::uint64_t> histogram;
  double fig09_pairs_speedup = 0.0;
  for (const TierLeg& leg : legs) {
    double full_ms = 0.0, delta_ms = 0.0;
    std::size_t wave_sum = 0, wave_max = 0;
    for (const auto& [attacker, victim] : leg.pairs) {
      const TimedRun full =
          TimeAttack(full_sim, victim, attacker, pair_lambda, reps);
      const TimedRun delta =
          TimeAttack(delta_sim, victim, attacker, pair_lambda, reps);
      check(full.outcome, delta.outcome);
      full_ms += full.ms;
      delta_ms += delta.ms;
      const std::size_t wavefront = WavefrontOf(delta.outcome);
      wave_sum += wavefront;
      wave_max = std::max(wave_max, wavefront);
      const std::size_t bucket = BucketOf(wavefront);
      if (histogram.size() <= bucket) histogram.resize(bucket + 1, 0);
      ++histogram[bucket];
    }
    const double speedup = delta_ms > 0 ? full_ms / delta_ms : 0.0;
    if (std::string(leg.name) == "random") fig09_pairs_speedup = speedup;
    tier_table.Row()
        .Cell(leg.name)
        .Cell(static_cast<std::uint64_t>(leg.pairs.size()))
        .Cell(full_ms, 1)
        .Cell(delta_ms, 1)
        .Cell(speedup, 1)
        .Cell(leg.pairs.empty()
                  ? 0.0
                  : static_cast<double>(wave_sum) /
                        static_cast<double>(leg.pairs.size()),
              1)
        .Cell(static_cast<std::uint64_t>(wave_max));
  }
  e.PrintTable(tier_table);
  e.Note("leg 2: random-pair sweep speedup %.1fx (the Figs. 7/8 workload "
         "shape)",
         fig09_pairs_speedup);

  // ---- Leg 3: wavefront histogram ----------------------------------------
  util::Table wave_table({"wavefront_ases", "attacks"});
  for (std::size_t bucket = 0; bucket < histogram.size(); ++bucket) {
    if (histogram[bucket] == 0) continue;
    wave_table.Row().Cell(BucketLabel(bucket)).Cell(histogram[bucket]);
  }
  e.PrintTable(wave_table);

  if (mismatch) {
    e.Note("FAIL: delta engine diverged from the full engine (see stderr)");
    return e.Finish(1);
  }
  e.Note("equivalence: every timed delta outcome matched the full engine "
         "(fractions and newly-polluted sets)");
  return e.Finish();
}
