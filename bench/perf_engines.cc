// Micro-benchmarks (google-benchmark) for the library's engines — the
// ablation DESIGN.md calls out: full path-vector propagation vs the
// three-phase routing tree, resume-based attack re-convergence vs full
// recomputation, detector scan throughput, and generator cost.
#include <benchmark/benchmark.h>

#include "attack/baseline_cache.h"
#include "attack/impact.h"
#include "attack/scenarios.h"
#include "bgp/propagation.h"
#include "bgp/routing_tree.h"
#include "detect/detector.h"
#include "detect/evaluation.h"
#include "detect/monitors.h"
#include "topology/generator.h"
#include "util/thread_pool.h"

namespace {

using namespace asppi;

topo::GeneratedTopology& Topology(bool siblings) {
  static topo::GeneratedTopology with = [] {
    topo::GeneratorParams params;
    params.seed = 42;
    return topo::GenerateInternetTopology(params);
  }();
  static topo::GeneratedTopology without = [] {
    topo::GeneratorParams params;
    params.seed = 42;
    params.num_sibling_pairs = 0;
    return topo::GenerateInternetTopology(params);
  }();
  return siblings ? with : without;
}

void BM_GenerateTopology(benchmark::State& state) {
  topo::GeneratorParams params;
  params.seed = 42;
  for (auto _ : state) {
    auto gen = topo::GenerateInternetTopology(params);
    benchmark::DoNotOptimize(gen.graph.NumLinks());
  }
}
BENCHMARK(BM_GenerateTopology)->Unit(benchmark::kMillisecond);

void BM_PropagationRun(benchmark::State& state) {
  auto& gen = Topology(true);
  bgp::PropagationSimulator sim(gen.graph);
  bgp::Announcement ann;
  ann.origin = gen.tier1[0];
  ann.prepends.SetDefault(ann.origin, 3);
  for (auto _ : state) {
    auto result = sim.Run(ann);
    benchmark::DoNotOptimize(result.ReachableCount());
  }
}
BENCHMARK(BM_PropagationRun)->Unit(benchmark::kMillisecond);

void BM_RoutingTree(benchmark::State& state) {
  auto& gen = Topology(false);
  bgp::Announcement ann;
  ann.origin = gen.tier1[0];
  ann.prepends.SetDefault(ann.origin, 3);
  for (auto _ : state) {
    bgp::RoutingTree tree(gen.graph, ann);
    benchmark::DoNotOptimize(tree.ReachableCount());
  }
}
BENCHMARK(BM_RoutingTree)->Unit(benchmark::kMillisecond);

void BM_AttackResumeVsFull(benchmark::State& state) {
  // Measures the resume path only (the baseline is computed once) — the
  // incremental re-convergence every attack experiment relies on.
  auto& gen = Topology(true);
  bgp::PropagationSimulator sim(gen.graph);
  bgp::Announcement ann;
  ann.origin = gen.tier1[0];
  ann.prepends.SetDefault(ann.origin, 3);
  bgp::PropagationResult before = sim.Run(ann);
  attack::AsppInterceptor::Config config;
  config.attacker = gen.tier1[1];
  config.victim = gen.tier1[0];
  for (auto _ : state) {
    attack::AsppInterceptor interceptor(config);
    auto after = sim.Resume(before, &interceptor, {config.attacker});
    benchmark::DoNotOptimize(after.FractionTraversing(config.attacker));
  }
}
BENCHMARK(BM_AttackResumeVsFull)->Unit(benchmark::kMillisecond);

void BM_FullAttackOutcome(benchmark::State& state) {
  auto& gen = Topology(true);
  attack::AttackSimulator sim(gen.graph);
  for (auto _ : state) {
    auto outcome =
        sim.RunAsppInterception(gen.tier1[0], gen.tier1[1], 3, false);
    benchmark::DoNotOptimize(outcome.fraction_after);
  }
}
BENCHMARK(BM_FullAttackOutcome)->Unit(benchmark::kMillisecond);

void BM_AttackOutcomeCachedBaseline(benchmark::State& state) {
  // The cached counterpart of BM_FullAttackOutcome: after the first miss the
  // attack-free baseline is served from the BaselineCache and each outcome
  // costs only the Resume() re-convergence plus the pollution scans.
  auto& gen = Topology(true);
  attack::BaselineCache cache(gen.graph);
  attack::AttackSimulator sim(gen.graph, &cache);
  // Warm the single (victim, λ) entry so the loop measures steady state.
  sim.RunAsppInterception(gen.tier1[0], gen.tier1[1], 3, false);
  for (auto _ : state) {
    auto outcome =
        sim.RunAsppInterception(gen.tier1[0], gen.tier1[1], 3, false);
    benchmark::DoNotOptimize(outcome.fraction_after);
  }
}
BENCHMARK(BM_AttackOutcomeCachedBaseline)->Unit(benchmark::kMillisecond);

void BM_PairSweepParallel(benchmark::State& state) {
  // The Figs. 7/8 workhorse at various thread counts; the per-iteration
  // internal baseline cache means each sweep pays one Run() per distinct
  // victim regardless of threads.
  auto& gen = Topology(true);
  auto pairs = attack::SampleTier1Pairs(gen, 24, /*seed=*/7);
  util::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  attack::PairSweepOptions options;
  options.lambda = 3;
  options.pool = &pool;
  for (auto _ : state) {
    auto results = attack::RunPairSweep(gen.graph, pairs, options);
    benchmark::DoNotOptimize(results.size());
  }
}
BENCHMARK(BM_PairSweepParallel)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_DetectionScan(benchmark::State& state) {
  auto& gen = Topology(true);
  attack::AttackSimulator sim(gen.graph);
  auto outcome = sim.RunAsppInterception(gen.stubs[0], gen.tier2[0], 4, false);
  auto monitors = detect::TopDegreeMonitors(gen.graph, state.range(0));
  detect::DetectionConfig config;
  config.lambda = 4;
  for (auto _ : state) {
    auto result = detect::EvaluateDetectionOnOutcome(gen.graph, outcome,
                                                     monitors, config);
    benchmark::DoNotOptimize(result.detected);
  }
}
BENCHMARK(BM_DetectionScan)->Arg(50)->Arg(150)->Arg(300)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
