// Reproduces paper Figure 5: CDF over monitors of the fraction of prefixes
// whose best route carries AS-path prepending — for all monitors (tables),
// tier-1 monitors only (tables), and all monitors (updates).
//
// Paper anchors: ~13 % mean in tables, tier-1 monitors higher, updates higher
// still.
#include <algorithm>

#include "bench/bench_common.h"
#include "data/characterize.h"
#include "data/measurement.h"
#include "detect/monitors.h"
#include "topology/tiers.h"
#include "util/stats.h"

using namespace asppi;

int main(int argc, char** argv) {
  bench::Experiment e(
      "Figure 5: fraction of routes with prepending ASes",
      "CDF over monitors; mean ~13% (tables), tier-1 higher, updates higher");
  e.WithTopologyFlags();
  e.Flags().DefineUint("prefixes", 800, "number of synthetic prefixes");
  e.Flags().DefineUint("monitors", 50, "number of monitors (top degree)");
  e.Flags().DefineUint("churn", 250,
                       "number of churn events for the update feed");
  if (!e.ParseFlags(argc, argv)) return 1;

  topo::GeneratorParams params = e.Params();
  params.num_sibling_pairs = 0;  // measurement engine is RoutingTree-based
  const topo::GeneratedTopology& topology = e.GenerateTopology(params);

  data::MeasurementParams mp;
  mp.num_prefixes = e.Flags().GetUint("prefixes");
  mp.num_churn_events = e.Flags().GetUint("churn");
  mp.seed = e.Flags().GetUint("seed") + 2011;
  data::MeasurementGenerator generator(topology.graph, mp);

  // Monitor set: top-degree ASes plus every tier-1 (RouteViews-style feeds
  // include the core; the tier-1 series needs them present).
  std::vector<topo::Asn> monitors =
      detect::TopDegreeMonitors(topology.graph, e.Flags().GetUint("monitors"));
  for (topo::Asn t1 : topology.tier1) {
    if (std::find(monitors.begin(), monitors.end(), t1) == monitors.end()) {
      monitors.push_back(t1);
    }
  }
  data::RibSnapshot rib = generator.GenerateRib(monitors);
  std::vector<data::Update> updates = generator.GenerateUpdates(monitors);

  std::vector<double> all_table = data::PrependFractionPerMonitor(rib);
  std::vector<double> tier1_table =
      data::PrependFractionPerMonitor(rib, topology.tier1);
  std::vector<double> all_updates =
      data::PrependFractionPerMonitorUpdates(updates);

  util::Cdf cdf_all(all_table), cdf_t1(tier1_table), cdf_upd(all_updates);
  util::Table table({"fraction_with_prepending", "cdf_all_table",
                     "cdf_tier1_table", "cdf_all_updates"});
  for (double x = 0.02; x <= 0.44; x += 0.02) {
    table.Row()
        .Cell(x, 2)
        .Cell(cdf_all.At(x), 3)
        .Cell(cdf_t1.At(x), 3)
        .Cell(cdf_upd.At(x), 3);
  }
  e.PrintTable(table);

  e.Note("\nmeans: all(table)=%.3f tier1(table)=%.3f all(updates)=%.3f",
         util::Mean(all_table), util::Mean(tier1_table),
         util::Mean(all_updates));
  e.Note(
      "shape check (paper): mean(table) ~= 0.13; tier-1 > all; updates > "
      "table.");
  return e.Finish();
}
