// Strategic-attacker search: how much worse than the paper's §II-B
// strip-everything interceptor can an adaptive attacker do?
//
// For a mix of tier-1 and random (attacker, victim) pairs, strategy::Search
// beam-optimizes an AttackerProgram (per-neighbor announce/withhold, partial
// strips, poisoning, customer-masquerade/forced exports, adopt-best-stripped)
// against the post-attack pollution fraction, and each row reports the
// paper-model interception next to the worst program the beam found. The gap
// column is the headroom the paper's fixed attacker leaves on the table.
//
// Two acceptance gates, both of which fail the run (exit 1):
//   * dominance: the paper model is a point of the searched space and seeds
//     the beam, so best >= paper on every pair (gap >= 0, exactly — both
//     sides are computed by the same engine on the same baseline).
//   * engines:   with --verify-engines (the --smoke default), every scored
//     program is recomputed on the other convergence engine and the attacked
//     states must match bit-for-bit; any mismatch fails the run.
//
// Determinism: for a fixed topology seed the whole table is bit-identical
// for any --threads value (pairs are scored into input-index slots; the beam
// itself orders candidates by (fraction desc, KeyString asc)).
// CI runs --smoke and publishes the --json report as BENCH_strategy.json.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "attack/scenarios.h"
#include "bench/experiment.h"
#include "strategy/program.h"
#include "strategy/search.h"
#include "topology/tiers.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/thread_pool.h"

using namespace asppi;

int main(int argc, char** argv) {
  bench::Experiment e(
      "Strategy search: adaptive attacker vs the paper's interceptor",
      "per-pair worst-case program vs paper model; gap >= 0 on every pair");
  e.WithTopologyFlags();
  e.Flags().DefineBool("smoke", false,
                       "CI-sized run: small topology, fewer pairs, "
                       "narrower beam, engine verification on");
  e.Flags().DefineUint("tier1-pairs", 6, "tier-1 attacker/victim pairs");
  e.Flags().DefineUint("random-pairs", 6, "random attacker/victim pairs");
  e.Flags().DefineInt("lambda", 4, "victim prepend count");
  e.Flags().DefineUint("beam", 4, "beam width");
  e.Flags().DefineUint("rounds", 2, "beam search rounds");
  e.Flags().DefineUint("max-neighbors", 12,
                       "per-colluder neighbors considered for overrides");
  e.Flags().DefineUint("poison-candidates", 2,
                       "top-degree ASes considered as poison targets");
  e.Flags().DefineBool("verify-engines", false,
                       "rescore every program on the other convergence "
                       "engine and require bit-identical attacked states");
  if (!e.ParseFlags(argc, argv)) return 1;

  const bool smoke = e.Flags().GetBool("smoke");
  topo::GeneratorParams params = e.Params();
  std::size_t tier1_pairs = e.Flags().GetUint("tier1-pairs");
  std::size_t random_pairs = e.Flags().GetUint("random-pairs");
  strategy::SearchOptions options;
  options.lambda = static_cast<int>(e.Flags().GetInt("lambda"));
  options.beam_width = e.Flags().GetUint("beam");
  options.rounds = e.Flags().GetUint("rounds");
  options.max_neighbors = e.Flags().GetUint("max-neighbors");
  options.poison_candidates = e.Flags().GetUint("poison-candidates");
  options.verify_engines = e.Flags().GetBool("verify-engines");
  if (smoke) {
    params.num_tier1 = std::min<std::size_t>(params.num_tier1, 4);
    params.num_tier2 = std::min<std::size_t>(params.num_tier2, 20);
    params.num_tier3 = std::min<std::size_t>(params.num_tier3, 60);
    params.num_stubs = std::min<std::size_t>(params.num_stubs, 250);
    params.num_content = std::min<std::size_t>(params.num_content, 6);
    params.num_sibling_pairs =
        std::min<std::size_t>(params.num_sibling_pairs, 3);
    tier1_pairs = std::min<std::size_t>(tier1_pairs, 3);
    random_pairs = std::min<std::size_t>(random_pairs, 3);
    options.beam_width = std::min<std::size_t>(options.beam_width, 3);
    options.rounds = std::min<std::size_t>(options.rounds, 2);
    options.max_neighbors = std::min<std::size_t>(options.max_neighbors, 6);
    options.verify_engines = true;
  }

  const topo::GeneratedTopology& topology = e.GenerateTopology(params);
  const topo::TierInfo tiers = topo::ClassifyTiers(topology.graph);
  options.baseline_cache = e.Baseline();
  options.engine = e.Engine();

  std::vector<std::pair<topo::Asn, topo::Asn>> pairs = attack::SampleTier1Pairs(
      topology, tier1_pairs, e.Flags().GetUint("seed") + 15);
  const auto random_sample = attack::SampleRandomPairs(
      topology, random_pairs, e.Flags().GetUint("seed") + 16);
  pairs.insert(pairs.end(), random_sample.begin(), random_sample.end());

  e.Note("search: %zu pairs, lambda=%d, beam=%zu x %zu rounds, "
         "%zu neighbors, %zu poison candidates%s",
         pairs.size(), options.lambda, options.beam_width, options.rounds,
         options.max_neighbors, options.poison_candidates,
         options.verify_engines ? ", engine equivalence gated" : "");

  // One Search per pair, pairs scored in parallel into input-index slots
  // (inner scoring stays serial: options.pool is left null).
  const strategy::Search search(topology.graph, options);
  std::vector<strategy::SearchResult> results(pairs.size());
  util::ParallelFor(e.Pool(), pairs.size(), [&](std::size_t i) {
    results[i] = search.Run(pairs[i].second, pairs[i].first);
  });

  util::Table table({"attacker(tier)", "victim(tier)", "pct_paper",
                     "pct_best", "gap_pts", "scored", "best_program"});
  util::Summary gap_summary;
  bool dominated = true;
  std::size_t mismatches = 0;
  double worst_gap = -1.0;
  std::size_t worst = 0;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const strategy::SearchResult& r = results[i];
    table.Row()
        .Cell(util::Format("AS%u(t%d)", pairs[i].first,
                           tiers.TierOf(pairs[i].first)))
        .Cell(util::Format("AS%u(t%d)", pairs[i].second,
                           tiers.TierOf(pairs[i].second)))
        .Cell(100.0 * r.paper_after, 2)
        .Cell(100.0 * r.best.fraction_after, 2)
        .Cell(100.0 * r.gap, 2)
        .Cell(r.programs_scored)
        .Cell(r.best.program.KeyString());
    gap_summary.Add(100.0 * r.gap);
    mismatches += r.engine_mismatches;
    if (r.gap < 0.0) {
      dominated = false;
      std::fprintf(stderr,
                   "DOMINANCE VIOLATION: pair AS%u->AS%u best %.6f below "
                   "paper %.6f\n",
                   pairs[i].first, pairs[i].second, r.best.fraction_after,
                   r.paper_after);
    }
    if (r.gap > worst_gap) {
      worst_gap = r.gap;
      worst = i;
    }
  }
  e.PrintTable(table);

  e.Note("\nmean gap over the paper model: %.2f points (max %.2f)",
         gap_summary.Mean(), gap_summary.max);
  if (!pairs.empty()) {
    e.Note("largest-gap program (AS%u vs AS%u):\n%s", pairs[worst].first,
           pairs[worst].second,
           strategy::Describe(results[worst].best.program).c_str());
  }

  bool failed = false;
  if (!dominated) {
    e.Note("FAIL: search scored below the paper model on some pair — the "
           "optimizer lost a point of its own search space (see stderr)");
    failed = true;
  }
  if (options.verify_engines) {
    if (mismatches == 0) {
      e.Note("equivalence: full and delta engines agree bit-identically on "
             "every scored program");
    } else {
      e.Note("FAIL: %zu scored program(s) diverged between the convergence "
             "engines", mismatches);
      failed = true;
    }
  }
  return e.Finish(failed ? 1 : 0);
}
