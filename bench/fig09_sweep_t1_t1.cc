// Reproduces paper Figure 9: pollution vs the victim's prepend count when a
// tier-1 hijacks a tier-1 (the paper's "Sprint (AS1239) hijacks AT&T
// (AS7018)").
//
// Paper shape: λ=1 → ~30 % (no advantage, equals the pre-attack share);
// λ=2 → ~80 %; λ≥3 → >95 %, then a plateau.
#include "attack/scenarios.h"
#include "bench/bench_common.h"

using namespace asppi;

int main(int argc, char** argv) {
  bench::Experiment e(
      "Figure 9: pollution vs prepended ASNs (tier-1 hijacks tier-1)",
      "Sprint hijacks AT&T: 30% at lambda=1, 80% at 2, >95% at 3-4, plateau");
  e.WithTopologyFlags();
  e.WithDefenseFlags();
  e.Flags().DefineInt("max_lambda", 8, "largest prepend count to sweep");
  if (!e.ParseFlags(argc, argv)) return 1;

  const topo::GeneratedTopology& topology = e.GenerateTopology();
  attack::SweepScenario scenario = attack::Tier1VsTier1(topology);
  e.Note("scenario: attacker AS%u hijacks victim AS%u", scenario.attacker,
         scenario.victim);
  const auto deployment = e.DefenseDeployment(topology.graph, scenario.victim,
                                              scenario.attacker);
  auto rows = bench::LambdaSweep(topology.graph, scenario.victim,
                                 scenario.attacker,
                                 static_cast<int>(e.Flags().GetInt("max_lambda")),
                                 /*violate_valley_free=*/false, e.Pool(),
                                 e.Baseline(), e.Engine(), deployment.get());
  e.PrintTable(
      bench::SweepTable(rows, "pct_after_hijack", "pct_before_hijack"));
  e.Note(
      "shape check (paper): sharp rise from lambda=1 to 2-3, then plateau; "
      "lambda=1 equals the before-hijack share.");
  return e.Finish();
}
