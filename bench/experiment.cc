#include "bench/experiment.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <thread>
#include <utility>

#include "topology/serialization.h"
#include "util/check.h"
#include "util/strings.h"
#include "util/json.h"
#include "util/metrics.h"

// The build stamps asppi_bench_common with `git describe` output so a run
// report identifies the exact tree it came from.
#ifndef ASPPI_GIT_DESCRIBE
#define ASPPI_GIT_DESCRIBE "unknown"
#endif

namespace asppi::bench {

Experiment::Experiment(std::string name, std::string caption)
    : name_(std::move(name)), caption_(std::move(caption)) {
  flags_.DefineBool("csv", false, "emit CSV instead of an aligned table");
  flags_.DefineString("json", "",
                      "write a JSON run report (meta, metrics, rows, notes) "
                      "to this path");
  flags_.DefineBool("metrics", false,
                    "print the metrics registry after the run");
  flags_.DefineString("engine", "delta",
                      "convergence engine for attacked states: 'delta' "
                      "(incremental wavefront, default) or 'full' (from-"
                      "scratch Resume; the reference)");
}

attack::EngineKind Experiment::Engine() const {
  const std::string& name = flags_.GetString("engine");
  if (name == "full") return attack::EngineKind::kFull;
  if (name != "delta") {
    std::fprintf(stderr,
                 "warning: unknown --engine '%s', using 'delta' "
                 "(valid: full, delta)\n",
                 name.c_str());
  }
  return attack::EngineKind::kDelta;
}

Experiment& Experiment::WithThreadsFlag() {
  if (!has_threads_flag_) {
    flags_.DefineUint(
        "threads",
        std::max<unsigned int>(1, std::thread::hardware_concurrency()),
        "worker threads for the sweep engine (output is identical for any "
        "value)");
    has_threads_flag_ = true;
  }
  return *this;
}

Experiment& Experiment::WithDefenseFlags() {
  if (!flags_.IsDefined("defense")) {
    flags_.DefineString("defense", "none",
                        "defense policies deployed ASes run: rov / pathval / "
                        "detector / all, '+'-joined ('none' = undefended)");
    flags_.DefineDouble("deploy-frac", 0.5,
                        "fraction of ASes deploying --defense, in [0, 1]");
    flags_.DefineString("deploy-strategy", "top-degree",
                        "deployment placement: top-degree, random, or "
                        "victim-cone");
    flags_.DefineUint("deploy-seed", 1,
                      "shuffle seed for --deploy-strategy=random");
  }
  return *this;
}

std::shared_ptr<const defense::PolicySet> Experiment::DefenseDeployment(
    const topo::AsGraph& graph, topo::Asn victim, topo::Asn attacker) {
  ASPPI_CHECK(flags_.IsDefined("defense"))
      << "DefenseDeployment() requires WithDefenseFlags()";
  const std::string& kinds_text = flags_.GetString("defense");
  if (kinds_text == "none") return nullptr;
  const std::optional<std::uint8_t> kinds =
      defense::ParsePolicyKinds(kinds_text);
  if (!kinds.has_value() || *kinds == defense::kNoPolicy) {
    if (!kinds.has_value()) {
      std::fprintf(stderr, "warning: unknown --defense '%s', running "
                   "undefended\n", kinds_text.c_str());
    }
    return nullptr;
  }
  const double frac = flags_.GetDouble("deploy-frac");
  if (frac <= 0.0) return nullptr;
  const std::string& strategy_text = flags_.GetString("deploy-strategy");
  const std::optional<defense::Strategy> strategy =
      defense::ParseStrategy(strategy_text);
  if (!strategy.has_value()) {
    std::fprintf(stderr, "warning: unknown --deploy-strategy '%s', running "
                 "undefended\n", strategy_text.c_str());
    return nullptr;
  }
  if (*strategy == defense::Strategy::kVictimCone && !graph.HasAs(victim)) {
    std::fprintf(stderr, "warning: --deploy-strategy=victim-cone needs a "
                 "single victim; running undefended\n");
    return nullptr;
  }
  const defense::DeploymentPlan plan = defense::DeploymentPlan::Make(
      graph, *strategy, victim, attacker, flags_.GetUint("deploy-seed"));
  auto set = std::make_shared<defense::PolicySet>(
      plan.AtFraction(std::min(frac, 1.0), *kinds));
  Note("defense: %zu AS(es) deploy %s (%s, frac=%.2f)", set->DeployedCount(),
       defense::PolicyKindsName(*kinds).c_str(),
       defense::StrategyName(*strategy), std::min(frac, 1.0));
  return set;
}

Experiment& Experiment::WithTopologyFlags() {
  WithThreadsFlag();
  if (!has_topology_flags_) {
    flags_.DefineString("preset", "",
                        "named topology preset: 'internet2026' (~100k ASes, "
                        "Internet-2026 scale); explicitly set tier-size/seed "
                        "flags override individual preset fields");
    flags_.DefineUint("seed", 42, "topology seed");
    flags_.DefineUint("tier1", 10, "number of tier-1 ASes");
    flags_.DefineUint("tier2", 120, "number of tier-2 ASes");
    flags_.DefineUint("tier3", 700, "number of tier-3 ASes");
    flags_.DefineUint("stubs", 3000, "number of stub ASes");
    flags_.DefineUint("content", 20, "number of content/CDN ASes");
    flags_.DefineUint("siblings", 15, "number of sibling pairs");
    has_topology_flags_ = true;
  }
  return *this;
}

bool Experiment::ParseFlags(int argc, char** argv) {
  if (argc > 0 && argv != nullptr && argv[0] != nullptr) {
    std::string path = argv[0];
    const std::size_t slash = path.find_last_of('/');
    binary_ = slash == std::string::npos ? path : path.substr(slash + 1);
  }
  return flags_.Parse(argc, argv);
}

topo::GeneratorParams Experiment::Params() const {
  ASPPI_CHECK(has_topology_flags_)
      << "Params() requires WithTopologyFlags()";
  topo::GeneratorParams params;
  const std::string& preset = flags_.GetString("preset");
  const bool has_preset = !preset.empty();
  if (has_preset) {
    ASPPI_CHECK(preset == "internet2026")
        << "unknown --preset '" << preset << "' (valid: internet2026)";
    params = topo::Internet2026Params();
  }
  // With a preset, an individual flag only wins when given explicitly —
  // otherwise its un-asked-for default would undo the preset.
  const auto take = [&](const char* name, auto* field) {
    if (!has_preset || flags_.WasSet(name)) {
      *field = flags_.GetUint(name);
    }
  };
  take("seed", &params.seed);
  take("tier1", &params.num_tier1);
  take("tier2", &params.num_tier2);
  take("tier3", &params.num_tier3);
  take("stubs", &params.num_stubs);
  take("content", &params.num_content);
  take("siblings", &params.num_sibling_pairs);
  return params;
}

const topo::GeneratedTopology& Experiment::GenerateTopology() {
  return GenerateTopology(Params());
}

const topo::GeneratedTopology& Experiment::GenerateTopology(
    const topo::GeneratorParams& params) {
  ASPPI_CHECK(!topology_.has_value()) << "topology generated twice";
  topology_ = topo::GenerateInternetTopology(params);
  PrintHeader();
  const topo::GeneratedTopology& t = *topology_;
  std::printf(
      "topology: %zu ASes (%zu tier-1, %zu tier-2, %zu tier-3, %zu stubs, "
      "%zu content), %zu links, seed %llu\n",
      t.graph.NumAses(), t.tier1.size(), t.tier2.size(), t.tier3.size(),
      t.stubs.size(), t.content.size(), t.graph.NumLinks(),
      static_cast<unsigned long long>(params.seed));
  util::Metrics::Global().SetGauge("experiment.topology.ases",
                                   static_cast<double>(t.graph.NumAses()));
  util::Metrics::Global().SetGauge("experiment.topology.links",
                                   static_cast<double>(t.graph.NumLinks()));
  return t;
}

const topo::GeneratedTopology& Experiment::Topology() const {
  ASPPI_CHECK(topology_.has_value()) << "GenerateTopology() not called";
  return *topology_;
}

topo::GeneratedTopology& Experiment::MutableTopology() {
  ASPPI_CHECK(topology_.has_value()) << "GenerateTopology() not called";
  ASPPI_CHECK(baseline_ == nullptr)
      << "topology must not change under a live BaselineCache";
  return *topology_;
}

void Experiment::PrintHeader() {
  std::printf("== %s ==\n", name_.c_str());
  std::printf("paper: %s\n", caption_.c_str());
}

bool Experiment::LoadTopology(const std::string& path, topo::AsGraph* graph) {
  topo::GraphBuilder builder;
  std::string err = topo::ReadAsRelFile(path, builder);
  if (!err.empty()) {
    std::fprintf(stderr, "error reading topology: %s\n", err.c_str());
    return false;
  }
  *graph = builder.Freeze();
  return true;
}

const topo::AsGraph* Experiment::LoadTopologyOrSnapshot(
    const std::string& path, topo::AsGraph* graph, data::Snapshot* snapshot) {
  if (data::Snapshot::SniffFile(path)) {
    std::string err = data::Snapshot::Load(path, *snapshot);
    if (!err.empty()) {
      std::fprintf(stderr, "error reading snapshot: %s\n", err.c_str());
      return nullptr;
    }
    return &snapshot->Graph();
  }
  if (!LoadTopology(path, graph)) return nullptr;
  return graph;
}

bool Experiment::AsnFlag(const std::string& name, topo::Asn* out) const {
  const std::string& text = flags_.GetText(name);
  const std::optional<std::uint32_t> asn = util::ParseAsn(text);
  if (!asn.has_value()) {
    std::fprintf(stderr,
                 "error: --%s='%s' is not a valid AS number "
                 "(decimal, 0..4294967295)\n",
                 name.c_str(), text.c_str());
    return false;
  }
  *out = static_cast<topo::Asn>(*asn);
  return true;
}

util::ThreadPool* Experiment::Pool() {
  ASPPI_CHECK(has_threads_flag_) << "Pool() requires a --threads flag";
  if (!pool_) {
    const std::uint64_t threads =
        std::max<std::uint64_t>(1, flags_.GetUint("threads"));
    util::Metrics::Global().SetGauge("experiment.threads",
                                     static_cast<double>(threads));
    pool_ = std::make_unique<util::ThreadPool>(
        static_cast<std::size_t>(threads));
  }
  return pool_.get();
}

attack::BaselineCache* Experiment::Baseline() {
  if (!baseline_) {
    baseline_ = std::make_unique<attack::BaselineCache>(Topology().graph);
  }
  return baseline_.get();
}

void Experiment::Note(const char* fmt, ...) {
  char buffer[2048];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buffer, sizeof(buffer), fmt, args);
  va_end(args);
  std::printf("%s\n", buffer);
  notes_.emplace_back(buffer);
}

void Experiment::PrintTable(const util::Table& table) {
  if (flags_.GetBool("csv")) {
    table.PrintCsv(std::cout);
  } else {
    table.PrintPretty(std::cout);
  }
  std::cout.flush();
  tables_.push_back(table.ToJson());
}

void Experiment::RecordTable(const util::Table& table) {
  tables_.push_back(table.ToJson());
}

int Experiment::Finish(int exit_code) {
  util::Metrics::Snapshot snapshot = util::Metrics::Global().TakeSnapshot();

  if (flags_.GetBool("metrics")) {
    std::printf("\n-- metrics --\n");
    for (const auto& [name, value] : snapshot.counters) {
      std::printf("%-42s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    }
    for (const auto& [name, stat] : snapshot.timers) {
      std::printf("%-42s %llu calls, %.3f ms\n", name.c_str(),
                  static_cast<unsigned long long>(stat.count),
                  static_cast<double>(stat.total_ns) / 1e6);
    }
    for (const auto& [name, value] : snapshot.gauges) {
      std::printf("%-42s %g\n", name.c_str(), value);
    }
  }

  const std::string& json_path = flags_.GetString("json");
  if (!json_path.empty()) {
    util::Json meta = util::Json::Object();
    meta["binary"] = util::Json(binary_);
    meta["experiment"] = util::Json(name_);
    meta["caption"] = util::Json(caption_);
    meta["git"] = util::Json(ASPPI_GIT_DESCRIBE);
    if (flags_.IsDefined("seed")) {
      meta["seed"] = util::Json(flags_.GetUint("seed"));
    }
    util::Json flag_values = util::Json::Object();
    for (const auto& [name, value] : flags_.Values()) {
      flag_values[name] = util::Json(value);
    }
    meta["flags"] = std::move(flag_values);

    util::Json counters = util::Json::Object();
    for (const auto& [name, value] : snapshot.counters) {
      counters[name] = util::Json(value);
    }
    util::Json timers = util::Json::Object();
    for (const auto& [name, stat] : snapshot.timers) {
      util::Json entry = util::Json::Object();
      entry["count"] = util::Json(stat.count);
      entry["total_ns"] = util::Json(stat.total_ns);
      timers[name] = std::move(entry);
    }
    util::Json gauges = util::Json::Object();
    for (const auto& [name, value] : snapshot.gauges) {
      gauges[name] = util::Json(value);
    }
    util::Json metrics = util::Json::Object();
    metrics["counters"] = std::move(counters);
    metrics["timers"] = std::move(timers);
    metrics["gauges"] = std::move(gauges);

    util::Json rows = util::Json::Array();
    for (const util::Json& table : tables_) {
      for (std::size_t i = 0; i < table.Items().size(); ++i) {
        rows.Push(table.Items()[i]);
      }
    }
    util::Json notes = util::Json::Array();
    for (const std::string& note : notes_) notes.Push(util::Json(note));

    util::Json report = util::Json::Object();
    report["meta"] = std::move(meta);
    report["metrics"] = std::move(metrics);
    report["rows"] = std::move(rows);
    report["notes"] = std::move(notes);

    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write run report to %s\n",
                   json_path.c_str());
      return exit_code == 0 ? 1 : exit_code;
    }
    report.Write(out, /*indent=*/2);
    out << "\n";
  }
  return exit_code;
}

}  // namespace asppi::bench
